"""Regenerate the golden fixtures (run from the repo root)::

    PYTHONPATH=src:tests python tests/goldens/capture.py

Only rerun this when an *intentional* output change lands; the whole
point of the fixtures is to freeze the rendered bytes across kernel
rewrites.
"""

import pathlib
import sys

HERE = pathlib.Path(__file__).parent
sys.path.insert(0, str(HERE))

from params import GOLDENS, generate  # noqa: E402


def main() -> None:
    for filename, (kind, params) in GOLDENS.items():
        text = generate(kind, params)
        (HERE / filename).write_text(text)
        print(f"wrote {filename} ({len(text)} chars)")


if __name__ == "__main__":
    main()
