"""Shared parameters for the byte-identity golden fixtures.

The golden files in this directory were captured from the revision
*before* the performance-kernel PR (pooled packets, tuple-entry heap,
parallel sweep executor).  ``capture.py`` regenerates them; the
determinism tests re-run the exact same reduced experiments and compare
the rendered text byte-for-byte, proving the fast kernel preserves event
ordering and RNG draw sequences.

Keep the parameters here small: these runs execute inside tier-1 tests.
"""

FIG6_PARAMS = dict(
    duration_s=2.0,
    rate_kpps=8.0,
    chainer_start_s=0.5,
    chainer_stop_s=1.2,
    keyspace=4_000,
)

FIG7_PARAMS = dict(
    duration_s=1.5,
    shift_to_hw_s=0.5,
    shift_to_sw_s=1.0,
)

SWEEP_KVS_PARAMS = dict(
    hosts=(1, 2),
    rates_kpps=(8.0, 32.0),
    duration_s=0.2,
    keyspace=4_000,
)

SWEEP_HETERO_PARAMS = dict(
    device_kinds=("netfpga-sume", "none"),
    rates_kpps=(8.0, 32.0),
    duration_s=0.2,
    keyspace=4_000,
)

GOLDENS = {
    "fig6_kvs_transition.txt": ("fig6", FIG6_PARAMS),
    "fig7_paxos_transition.txt": ("fig7", FIG7_PARAMS),
    "sweep_rack_kvs.txt": ("sweep-rack-kvs", SWEEP_KVS_PARAMS),
    "sweep_rack_hetero.txt": ("sweep-rack-hetero", SWEEP_HETERO_PARAMS),
}


def generate(kind: str, params: dict) -> str:
    """Render one golden experiment (used by capture.py and the tests)."""
    if kind == "fig6":
        from repro.experiments import run_figure6

        return run_figure6(**params).render()
    if kind == "fig7":
        from repro.experiments import run_figure7

        return run_figure7(**params).render()
    from repro.scenarios import build_sweep_spec, run_sweep

    return run_sweep(build_sweep_spec(kind, **params)).render()
