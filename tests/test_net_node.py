"""Node base classes."""

import pytest

from repro.net.node import CallbackNode, Node, SinkNode
from repro.net.packet import TrafficClass, make_packet
from repro.sim import Simulator


def test_send_without_egress_raises():
    node = Node(Simulator(), "n")
    with pytest.raises(RuntimeError):
        node.send(make_packet("n", "x", TrafficClass.NORMAL))


def test_tx_rx_counters():
    sim = Simulator()
    sink = SinkNode(sim, "sink")
    node = Node(sim, "n")
    node.attach_egress(sink.receive)
    for _ in range(3):
        node.send(make_packet("n", "sink", TrafficClass.NORMAL, now=sim.now))
    assert node.tx_packets == 3
    assert sink.rx_packets == 3
    assert len(sink.received) == 3


def test_callback_node_invokes_handler():
    sim = Simulator()
    seen = []
    node = CallbackNode(sim, "cb", on_packet=seen.append)
    packet = make_packet("x", "cb", TrafficClass.DNS, now=sim.now)
    node.receive(packet)
    assert seen == [packet]
    assert node.rx_packets == 1
