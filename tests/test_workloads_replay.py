"""Trace-driven placement replay."""

import pytest

from repro.core.shift_strategy import ShiftStrategy, ShiftStrategyModel
from repro.errors import ConfigurationError
from repro.steady import kvs_models
from repro.units import kpps
from repro.workloads.replay import (
    compare_policies,
    predictive_policy,
    replay_trace,
    static_policy,
    threshold_policy,
)


@pytest.fixture(scope="module")
def models():
    m = kvs_models()
    return m["memcached"], m["lake"]


STANDBY_W = ShiftStrategyModel().standby_power_w(ShiftStrategy.RESET_AND_GATE) - 3.0

#: a simple duty cycle: 6h nearly idle, 12h busy, 6h nearly idle.  The
#: quiet phases sit where software + gated card clearly beats the active
#: card (below ~5Kpps in this calibration); the busy phase is far above
#: the 80Kpps crossover.
TRACE = [(6 * 3600.0, 500.0), (12 * 3600.0, kpps(400)), (6 * 3600.0, 500.0)]


class TestPolicies:
    def test_static(self):
        assert static_policy(True)(0.0, False)
        assert not static_policy(False)(1e9, True)

    def test_threshold_hysteresis(self):
        policy = threshold_policy(kpps(80), kpps(50))
        assert not policy(kpps(70), False)   # below up: stay in software
        assert policy(kpps(70), True)        # above down: stay in hardware
        assert policy(kpps(90), False)
        assert not policy(kpps(40), True)

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            threshold_policy(10.0, 20.0)

    def test_predictive_prefers_hw_under_load(self, models):
        software, hardware = models
        policy = predictive_policy(software, hardware, STANDBY_W)
        assert policy(kpps(400), False)
        assert not policy(0.0, True) or STANDBY_W > 20.0


class TestReplay:
    def test_energy_accounting(self, models):
        software, hardware = models
        result = replay_trace(
            [(3600.0, kpps(400))], software, hardware, static_policy(True)
        )
        assert result.energy_j == pytest.approx(
            hardware.power_at(kpps(400)) * 3600.0
        )
        assert result.hardware_fraction == 1.0

    def test_standby_cost_charged_in_software(self, models):
        software, hardware = models
        base = replay_trace(
            [(100.0, kpps(10))], software, hardware, static_policy(False)
        )
        with_standby = replay_trace(
            [(100.0, kpps(10))], software, hardware, static_policy(False),
            standby_card_w=STANDBY_W,
        )
        assert with_standby.energy_j - base.energy_j == pytest.approx(
            STANDBY_W * 100.0
        )

    def test_shift_counting(self, models):
        software, hardware = models
        result = replay_trace(
            TRACE, software, hardware,
            threshold_policy(kpps(80), kpps(50)),
            standby_card_w=STANDBY_W,
        )
        assert result.shifts == 2
        assert 0.0 < result.hardware_fraction < 1.0

    def test_ondemand_beats_both_statics_on_busy_trace(self, models):
        """The paper's thesis on a busy duty cycle."""
        software, hardware = models
        results = compare_policies(
            TRACE, software, hardware, standby_card_w=STANDBY_W
        )
        ondemand = results["predictive"].energy_j
        assert ondemand <= results["always-hardware"].energy_j
        assert ondemand < results["always-software"].energy_j

    def test_quiet_trace_prefers_software(self, models):
        software, hardware = models
        quiet = [(3600.0, kpps(5))] * 24
        results = compare_policies(
            quiet, software, hardware, standby_card_w=STANDBY_W
        )
        assert (
            results["predictive"].energy_j
            <= results["always-hardware"].energy_j
        )

    def test_validation(self, models):
        software, hardware = models
        with pytest.raises(ConfigurationError):
            replay_trace([], software, hardware, static_policy(False))
        with pytest.raises(ConfigurationError):
            replay_trace([(0.0, 1.0)], software, hardware, static_policy(False))
        with pytest.raises(ConfigurationError):
            replay_trace([(1.0, -1.0)], software, hardware, static_policy(False))

    def test_segments_recorded(self, models):
        software, hardware = models
        result = replay_trace(
            TRACE, software, hardware, static_policy(False)
        )
        assert len(result.segments) == len(TRACE)
        assert result.mean_power_w > 0.0
