"""The fabric generalization of the steady-state fast path.

Every ``fabric-*`` registry scenario gets an explicit eligible/ineligible
verdict, the analytic uplink model gets unit coverage, and the DES-vs-
analytic tolerance gate is held at both a 1:1 and the default 4:1
oversubscription ratio.
"""

import math

import pytest

from repro.errors import ConfigurationError
from repro.naming import rack_qualified
from repro.net.link import fifo_wait_us, serialization_time_us
from repro.net.topology import uplink_effective_bps
from repro.scenarios import (
    build_spec,
    software_variant,
    split_steady,
    steady_eligible,
    steady_point,
    validate_fastpath,
)
from repro.scenarios.fastpath import DEFAULT_REL_TOL
from repro.scenarios.spec import UplinkSpec
from repro.steady import NOMINAL_KVS_PACKET_BYTES, FabricUplinkModel
from repro.units import gbit_per_s


def small_fabric(oversubscription=4.0, n_racks=2, **overrides):
    """A reduced ``fabric-kvs``: short horizon, small keyspace, clients
    entering at the next rack's ToR (all load crosses the spine)."""
    overrides.setdefault("duration_s", 0.5)
    overrides.setdefault("keyspace", 8_000)
    return build_spec(
        "fabric-kvs",
        n_racks=n_racks,
        oversubscription=oversubscription,
        **overrides,
    )


# -- eligibility: every fabric-* registry scenario --------------------------


def test_fabric_kvs_is_eligible():
    # pinned placements, no controllers anywhere, rate-constant workload
    assert steady_eligible(small_fabric())
    assert steady_eligible(software_variant(small_fabric()))


def test_fabric_kvs_crossrack_is_not_eligible():
    # a live centralized controller AND a served_by donation: serving
    # assignments can move mid-run, so the DES must replay it
    spec = build_spec("fabric-kvs-crossrack")
    assert not steady_eligible(spec)
    # the sweep's software pin strips the fabric controller but keeps the
    # donated shard — still ineligible
    assert not steady_eligible(software_variant(spec))


def test_fabric_paxos_split_is_not_eligible():
    # Paxos groups are closed-loop; the steady curves do not model them
    assert not steady_eligible(build_spec("fabric-paxos-split"))


def test_split_steady_on_fabric_is_all_or_nothing():
    import dataclasses

    from repro.scenarios import ControllerSpec

    spec = small_fabric()
    indices, residual = split_steady(spec)
    assert indices == tuple(range(len(spec.kvs_hosts)))
    assert residual is None

    # give one host a live controller: eligible and residual hosts would
    # share uplink FIFO queues, so no partial split — full DES instead
    host = dataclasses.replace(
        spec.kvs_hosts[0], controller=ControllerSpec(kind="ondemand")
    )
    mixed = dataclasses.replace(spec, kvs_hosts=(host,) + spec.kvs_hosts[1:])
    assert split_steady(mixed) == ((), mixed)


# -- the analytic uplink model ----------------------------------------------


def test_serialization_time_matches_wire_math():
    # 128 B at 10G: 1024 bits / 1e10 bps = 0.1024 us
    assert serialization_time_us(128.0, 10e9) == pytest.approx(0.1024)
    with pytest.raises(ConfigurationError):
        serialization_time_us(128.0, 0.0)


def test_fifo_wait_grows_with_load_and_stays_finite():
    assert fifo_wait_us(0.0, 128.0, 10e9) == 0.0
    light = fifo_wait_us(1e5, 128.0, 10e9)
    heavy = fifo_wait_us(5e6, 128.0, 10e9)
    assert 0.0 < light < heavy
    # utilization is clamped below 1: even an absurd offered load yields a
    # finite wait instead of a division blow-up
    assert math.isfinite(fifo_wait_us(1e12, 128.0, 10e9))
    with pytest.raises(ConfigurationError):
        fifo_wait_us(-1.0, 128.0, 10e9)


def test_uplink_effective_bps_divides_by_oversubscription():
    assert uplink_effective_bps(40e9, 4.0) == pytest.approx(10e9)
    assert uplink_effective_bps(40e9, 1.0) == pytest.approx(40e9)
    with pytest.raises(ConfigurationError):
        uplink_effective_bps(40e9, 0.5)
    with pytest.raises(ConfigurationError):
        uplink_effective_bps(0.0, 4.0)


def test_uplink_spec_effective_bandwidth_matches_builder_arithmetic():
    uplink = UplinkSpec(bandwidth_gbps=40.0, oversubscription=4.0)
    assert uplink.effective_bandwidth_bps() == pytest.approx(
        uplink_effective_bps(gbit_per_s(40.0), 4.0)
    )


def test_fabric_uplink_model_composition():
    model = FabricUplinkModel(latency_us=5.0, effective_bps=10e9)
    assert model.packet_bytes == NOMINAL_KVS_PACKET_BYTES
    assert model.capacity_pps == pytest.approx(
        10e9 / (NOMINAL_KVS_PACKET_BYTES * 8.0)
    )
    assert model.utilization(model.capacity_pps / 2) == pytest.approx(0.5)
    # one crossing = propagation + serialization + the FIFO wait at load
    load = model.capacity_pps / 2
    assert model.crossing_us(load) == pytest.approx(
        5.0 + model.serialization_us + model.wait_us(load)
    )
    # below capacity the link is fluid; above it throughput scales down
    assert model.throughput_factor(load) == 1.0
    assert model.throughput_factor(2 * model.capacity_pps) == pytest.approx(
        0.5
    )


# -- the fabric steady point ------------------------------------------------


def test_fabric_steady_point_uses_rack_qualified_keys():
    spec = small_fabric()
    estimate = steady_point(spec, "software")
    expected = {
        rack_qualified(spec.host_rack(host), host.name)
        for host in spec.kvs_hosts
    }
    assert set(estimate.power_by_placement) == expected
    assert all("/" in key for key in estimate.power_by_placement)
    assert sum(estimate.power_by_placement.values()) == pytest.approx(
        estimate.total_power_w
    )


def test_cross_rack_latency_pays_the_uplink_adder():
    """Same fleet, same rates: the 2-rack spec (every request and response
    crossing the spine) must answer slower than the 1-rack spec (all
    traffic under one ToR) by at least four propagation delays."""
    single = steady_point(small_fabric(n_racks=1), "software")
    crossed = steady_point(small_fabric(n_racks=2), "software")
    uplink_latency_us = 5.0  # fabric-kvs default
    assert crossed.p50_latency_us >= (
        single.p50_latency_us + 4 * uplink_latency_us
    )


def test_oversubscription_raises_the_analytic_latency():
    flat = steady_point(small_fabric(oversubscription=1.0), "software")
    squeezed = steady_point(small_fabric(oversubscription=4.0), "software")
    # same offered load through a 4x narrower pipe: longer serialization
    # and a busier FIFO, never faster
    assert squeezed.p50_latency_us > flat.p50_latency_us
    assert squeezed.achieved_pps <= flat.achieved_pps


# -- the tolerance gate at both oversubscription ratios ---------------------


@pytest.mark.parametrize("oversubscription", [1.0, 4.0])
def test_fabric_fastpath_gate_holds_against_des(oversubscription):
    """The ISSUE 9 satellite: DES-vs-analytic relative error on achieved
    pps, total wall W and ops/W stays inside DEFAULT_REL_TOL on a 2-rack
    fabric at 1:1 and 4:1 uplink oversubscription.  The gate takes the
    sweep's *pinned* variant — the shape ``run_sweep(fastpath=True)``
    actually answers (``power_save`` standby cards and all)."""
    gates = validate_fastpath(
        software_variant(small_fabric(oversubscription=oversubscription))
    )
    assert {g.mode for g in gates} == {"software", "hardware"}
    for gate in gates:
        assert gate.ok, (
            f"oversubscription {oversubscription}: {gate.mode} drifted — "
            f"achieved err {gate.achieved_rel_err:.3f}, "
            f"power err {gate.power_rel_err:.3f}, "
            f"ops/W err {gate.ops_per_watt_rel_err:.3f} "
            f"(tol {DEFAULT_REL_TOL})"
        )
