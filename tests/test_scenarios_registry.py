"""The scenario engine: spec validation, the builder, and the registry.

The registry contract: every named scenario builds, runs a short horizon,
and yields non-empty throughput and power series.
"""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.net.classifier import key_shard
from repro.scenarios import (
    NO_CONTROLLER,
    KvsHostSpec,
    KvsWorkloadSpec,
    PaxosSpec,
    ScenarioBuilder,
    ScenarioSpec,
    build_spec,
    run_scenario,
    scenario_names,
)

#: Per-scenario overrides keeping the short-horizon runs cheap.
_SHORT = {
    "fig6-kvs-transition": dict(duration_s=1.5, rate_kpps=8.0, keyspace=5_000),
    "fig6-kvs-netctl": dict(duration_s=1.5, keyspace=5_000, ramp_up_s=0.3),
    "fig7-paxos-transition": dict(duration_s=1.2),
    "rack-kvs": dict(duration_s=1.0, rate_per_host_kpps=4.0, keyspace=4_000),
    "rack4-kvs-sharded": dict(duration_s=1.5, total_rate_kpps=16.0, keyspace=4_000),
    "rack8-kvs-sharded": dict(duration_s=1.5, total_rate_kpps=24.0, keyspace=4_000),
    "rack-mixed": dict(
        duration_s=1.5, kvs_rate_kpps=8.0, dns_rate_kqps=6.0,
        dns_storm_kqps=12.0, keyspace=4_000, n_names=400,
    ),
    "rack-hetero": dict(
        duration_s=1.2, rate_per_host_kpps=4.0, mid_rate_per_host_kpps=6.0,
        peak_rate_per_host_kpps=8.0, keyspace=4_000,
    ),
    "rack-paxos-shared": dict(duration_s=1.2),
    "fabric-kvs": dict(duration_s=0.5, rate_per_host_kpps=4.0, keyspace=4_000),
    "fabric-kvs-crossrack": dict(duration_s=1.6, keyspace=4_000),
    "fabric-paxos-split": dict(
        duration_s=1.0, shift_to_hw_s=0.3, shift_to_sw_s=0.6
    ),
}


def test_every_scenario_is_exercised_here():
    """Keep _SHORT in sync with the registry."""
    assert set(_SHORT) == set(scenario_names())


@pytest.mark.parametrize("name", sorted(_SHORT))
def test_registered_scenario_builds_runs_and_measures(name):
    result = run_scenario(name, **_SHORT[name])
    assert result.name == name
    assert result.duration_us > 0
    if result.hosts:
        for host in result.hosts:
            assert host.responses > 0
            assert host.throughput_series
            assert any(v > 0 for _, v in host.throughput_series)
            assert host.power_series
            assert any(v > 0 for _, v in host.power_series)
        assert result.aggregate_throughput_series
        assert any(v > 0 for _, v in result.aggregate_throughput_series)
        assert any(v > 0 for _, v in result.aggregate_power_series)
    for dns_host in result.dns_hosts:
        assert dns_host.responses > 0
        assert any(v > 0 for _, v in dns_host.throughput_series)
        assert any(v > 0 for _, v in dns_host.power_series)
    for group in result.paxos_groups:
        assert group.decided > 0
        assert any(v > 0 for _, v in group.throughput_series)
        assert any(v > 0 for _, v in group.power_series)
    assert result.hosts or result.dns_hosts or result.paxos_groups
    assert result.render()


def test_unknown_scenario_rejected():
    with pytest.raises(ConfigurationError):
        build_spec("no-such-scenario")


def test_exact_case_insensitive_names_resolve_programmatically():
    """Case-insensitivity is a registry property, not a CLI shim."""
    assert build_spec("RACK-MIXED").name == "rack-mixed"
    with pytest.raises(ConfigurationError, match="did you mean"):
        build_spec("RACK-MIXD")


def test_specs_are_derivable_with_replace():
    spec = build_spec("rack4-kvs-sharded")
    short = dataclasses.replace(spec, duration_s=0.5)
    assert short.duration_s == 0.5
    assert short.kvs_hosts == spec.kvs_hosts  # the composition is shared


class TestSpecValidation:
    def test_empty_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="empty").validate()

    def test_hosts_without_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                name="x", kvs_hosts=(KvsHostSpec(name="h0"),)
            ).validate()

    def test_duplicate_host_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                name="x",
                kvs_hosts=(KvsHostSpec(name="h0"), KvsHostSpec(name="h0")),
                kvs_workload=KvsWorkloadSpec(),
            ).validate()

    def test_duplicate_client_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                name="x",
                kvs_hosts=(
                    KvsHostSpec(name="h0", client_name="gen"),
                    KvsHostSpec(name="h1", client_name="gen"),
                ),
                kvs_workload=KvsWorkloadSpec(),
            ).validate()

    def test_client_host_name_collision_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                name="x",
                kvs_hosts=(
                    KvsHostSpec(name="h0"),
                    KvsHostSpec(name="h1", client_name="h0"),
                ),
                kvs_workload=KvsWorkloadSpec(),
            ).validate()

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(
                name="x",
                duration_s=0.0,
                paxos_groups=(PaxosSpec(),),
            ).validate()


class TestBuilder:
    def test_run_is_single_use(self):
        run = ScenarioBuilder(
            build_spec("fig7-paxos-transition", duration_s=0.2)
        ).build()
        run.execute()
        with pytest.raises(ConfigurationError):
            run.execute()

    def test_sharded_rack_routes_by_key_shard(self):
        """Every request lands on the host owning its key's shard: the
        per-host stores see only their shard (no cross-shard misses)."""
        result = run_scenario(
            "rack4-kvs-sharded", duration_s=1.0, total_rate_kpps=12.0,
            keyspace=2_000,
        )
        assert sum(result.routed_per_host.values()) > 0
        # shard ownership agreed between workload split and ToR routing:
        # preloaded stores answer their shard's GETs, so rack-wide miss
        # forwards stay a small fraction (only SET write-through noise).
        total = result.total_responses
        assert total > 0

    def test_controller_disabled_host_never_shifts(self):
        spec = ScenarioSpec(
            name="static",
            duration_s=1.0,
            kvs_hosts=(KvsHostSpec(name="h0", controller=NO_CONTROLLER),),
            kvs_workload=KvsWorkloadSpec(keyspace=2_000, rate_kpps=4.0),
        )
        result = ScenarioBuilder(spec).run()
        assert result.hosts[0].shift_times_us == []
        assert result.hosts[0].responses > 0

    def test_rack_hosts_preloaded_with_own_shard_only(self):
        spec = build_spec(
            "rack4-kvs-sharded", duration_s=0.5, total_rate_kpps=4.0,
            keyspace=1_000,
        )
        run = ScenarioBuilder(spec).build()
        for index, host in enumerate(run.kvs_hosts):
            keys = list(host.memcached.store.keys())
            assert keys
            assert all(key_shard(k, len(run.kvs_hosts)) == index for k in keys)
