"""§9.4 hit:miss switch-cache offload efficiency."""

import pytest

from repro.core.energy_model import CacheOffloadEfficiency, cache_offload_efficiency
from repro.errors import ConfigurationError
from repro.steady import kvs_models
from repro.units import kpps


@pytest.fixture(scope="module")
def software():
    return kvs_models()["memcached"]


def test_full_hit_saves_nearly_everything(software):
    eff = cache_offload_efficiency(software, hit_ratio=1.0, rate_pps=kpps(500))
    assert eff.host_dynamic_w == pytest.approx(0.0)
    assert eff.saving_fraction > 0.95  # switch watts are negligible (§9.4)


def test_zero_hit_saves_nothing(software):
    eff = cache_offload_efficiency(software, hit_ratio=0.0, rate_pps=kpps(500))
    assert eff.power_saving_w == pytest.approx(0.0, abs=1e-9)


def test_saving_monotone_in_hit_ratio(software):
    """§9.4: 'it is a function of hit:miss ratio to define the efficiency
    of offloading on-demand.'"""
    savings = [
        cache_offload_efficiency(software, h, kpps(500)).power_saving_w
        for h in (0.0, 0.25, 0.5, 0.75, 1.0)
    ]
    assert savings == sorted(savings)


def test_host_near_saturation_with_low_hit_ratio(software):
    """§9.4: 'the host may still consume significant power, possibly close
    to the saturation point' — low hit ratios barely relieve it."""
    eff = cache_offload_efficiency(software, hit_ratio=0.2, rate_pps=kpps(900))
    assert eff.host_dynamic_w > 0.8 * eff.host_only_dynamic_w


def test_switch_cost_scales_with_served_rate(software):
    low = cache_offload_efficiency(software, 0.5, kpps(100))
    high = cache_offload_efficiency(software, 0.5, kpps(1000))
    assert high.switch_dynamic_w == pytest.approx(10 * low.switch_dynamic_w)
    # and it stays below 1W even at 1Mqps total (§9.4)
    assert high.switch_dynamic_w < 1.0


def test_validation(software):
    with pytest.raises(ConfigurationError):
        cache_offload_efficiency(software, hit_ratio=1.5, rate_pps=1.0)
    with pytest.raises(ConfigurationError):
        cache_offload_efficiency(software, hit_ratio=0.5, rate_pps=-1.0)
