"""Memory models (§5.3)."""

import pytest

from repro import calibration as cal
from repro.errors import ConfigurationError
from repro.hw.memory import BramBank, DramChannel, MemoryState, SramBank


def test_dram_power_and_capacity():
    dram = DramChannel()
    assert dram.power_w() == pytest.approx(4.8)
    assert dram.value_entries == 33_000_000
    assert dram.hash_entries == 268_000_000


def test_sram_power_and_capacity():
    sram = SramBank()
    assert sram.power_w() == pytest.approx(6.0)
    assert sram.freelist_entries == 4_700_000


def test_onchip_capacity_ratios():
    """§5.3: external memories hold x65k values / x32k freelist entries."""
    assert DramChannel.value_entries // BramBank.value_entries >= 60_000
    assert SramBank.freelist_entries // BramBank.freelist_entries >= 30_000


def test_reset_saves_40_percent():
    dram = DramChannel()
    dram.hold_in_reset()
    assert dram.power_w() == pytest.approx(4.8 * 0.6)
    assert not dram.usable


def test_activate_restores():
    dram = DramChannel()
    dram.hold_in_reset()
    dram.activate()
    assert dram.power_w() == pytest.approx(4.8)
    assert dram.usable


def test_removed_memory_draws_nothing():
    sram = SramBank()
    sram.remove()
    assert sram.power_w() == 0.0
    with pytest.raises(ConfigurationError):
        sram.activate()
    with pytest.raises(ConfigurationError):
        sram.hold_in_reset()


def test_gating_unsupported():
    for memory in (DramChannel(), SramBank()):
        with pytest.raises(ConfigurationError):
            memory.clock_gate()
        with pytest.raises(ConfigurationError):
            memory.power_gate()


def test_l2_hit_latency_decomposition():
    """§5.3: off-chip hit 1.67µs = on-chip 1.4µs + DRAM access."""
    assert cal.LAKE_L1_HIT_US + DramChannel.access_latency_us == pytest.approx(
        cal.LAKE_L2_HIT_MEDIAN_US
    )


def test_bram_custom_capacity():
    assert BramBank(value_entries=128).value_entries == 128
    with pytest.raises(ConfigurationError):
        BramBank(value_entries=0)
