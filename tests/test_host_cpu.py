"""CPU accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.host import CpuAccount


def test_utilization_aggregates_apps():
    cpu = CpuAccount(4)
    cpu.set_load("a", 2, 0.5)   # 1 busy core
    cpu.set_load("b", 1, 1.0)   # 1 busy core
    assert cpu.busy_cores == pytest.approx(2.0)
    assert cpu.utilization == pytest.approx(0.5)


def test_replacing_allocation():
    cpu = CpuAccount(4)
    cpu.set_load("a", 4, 1.0)
    cpu.set_load("a", 1, 0.5)
    assert cpu.busy_cores == pytest.approx(0.5)


def test_clear_load():
    cpu = CpuAccount(4)
    cpu.set_load("a", 2, 1.0)
    cpu.clear_load("a")
    assert cpu.utilization == 0.0
    cpu.clear_load("a")  # idempotent


def test_active_cores_counts_any_activity():
    cpu = CpuAccount(28)
    cpu.set_load("a", 1, 0.1)
    assert cpu.active_cores == pytest.approx(1.0)
    cpu.set_load("b", 3, 0.01)
    assert cpu.active_cores == pytest.approx(4.0)


def test_idle_apps_do_not_activate_cores():
    cpu = CpuAccount(4)
    cpu.set_load("a", 2, 0.0)
    assert cpu.active_cores == 0.0


def test_busy_cores_capped_at_physical():
    cpu = CpuAccount(2)
    cpu.set_load("a", 2, 1.0)
    cpu.set_load("b", 2, 1.0)
    assert cpu.busy_cores == 2.0
    assert cpu.utilization == 1.0


def test_app_utilization():
    cpu = CpuAccount(4)
    cpu.set_load("a", 2, 0.5)
    assert cpu.app_utilization("a") == pytest.approx(0.25)
    assert cpu.app_utilization("missing") == 0.0


def test_invalid_parameters_rejected():
    cpu = CpuAccount(4)
    with pytest.raises(ConfigurationError):
        cpu.set_load("a", 5, 1.0)
    with pytest.raises(ConfigurationError):
        cpu.set_load("a", 1, 1.5)
    with pytest.raises(ConfigurationError):
        CpuAccount(0)


def test_app_allocation_lookup():
    cpu = CpuAccount(4)
    cpu.set_load("a", 1, 0.7)
    assert cpu.app_allocation("a").utilization == 0.7
    with pytest.raises(ConfigurationError):
        cpu.app_allocation("b")
