"""Edge cases of the on-demand service and transition result objects."""

import pytest

from repro.core.ondemand import OnDemandService, Placement
from repro.errors import PlacementError
from repro.experiments.transitions import Figure6Result, Figure7Result
from repro.net import ClassifierRule, PacketClassifier, TrafficClass
from repro.sim import Simulator


def test_classifier_without_traffic_class_raises():
    sim = Simulator()
    classifier = PacketClassifier(sim)
    classifier.add_rule(
        ClassifierRule(TrafficClass.DNS, hardware=lambda p: None, host=lambda p: None)
    )
    service = OnDemandService(sim, "x", classifier=classifier, traffic_class=None)
    with pytest.raises(PlacementError):
        service.shift_to_hardware()


def test_hooks_optional():
    sim = Simulator()
    service = OnDemandService(sim, "bare")
    assert service.shift_to_hardware("no hooks")
    assert service.placement is Placement.HARDWARE
    assert service.shift_to_software()


def test_shift_reasons_recorded():
    sim = Simulator()
    service = OnDemandService(sim, "x")
    service.shift_to_hardware("because load")
    assert service.shifts[0].reason == "because load"


def _figure6_stub():
    return Figure6Result(
        duration_us=1e6,
        throughput_series=[(0.0, 100.0), (5e5, 200.0)],
        latency_series=[(0.0, 10.0), (5e5, None)],
        power_series=[(0.0, 40.0), (5e5, 50.0)],
        shift_times_us=[],
        hw_hits=0,
        hw_miss_forwards=0,
        client_responses=2,
        offered_pps=100.0,
    )


def test_figure6_result_window_helpers():
    result = _figure6_stub()
    assert result.mean_throughput_pps(0.0, 1e6) == pytest.approx(150.0)
    # None latency samples are skipped
    assert result.mean_latency_us(0.0, 1e6) == pytest.approx(10.0)
    with pytest.raises(ValueError):
        result.mean_latency_us(9e5, 1e6)
    with pytest.raises(ValueError):
        result.mean_throughput_pps(2e6, 3e6)


def test_figure7_result_window_helpers():
    result = Figure7Result(
        duration_us=1e6,
        throughput_series=[(0.0, 1000.0)],
        latency_series=[(0.0, 400.0)],
        shift_times_us=[1.0],
        decided=10,
        retries=0,
        stall_us=[100_000.0],
    )
    assert result.mean_throughput_pps(0.0, 1e6) == 1000.0
    assert result.mean_latency_us(0.0, 1e6) == 400.0
    text = result.render()
    assert "stalls" in text and "100ms" in text
