"""Edge cases of the on-demand service and transition result objects."""

import pytest

from repro.core.ondemand import OnDemandService, Placement
from repro.errors import PlacementError
from repro.experiments.transitions import Figure6Result, Figure7Result
from repro.net import ClassifierRule, PacketClassifier, TrafficClass
from repro.sim import Simulator


def test_classifier_without_traffic_class_raises():
    sim = Simulator()
    classifier = PacketClassifier(sim)
    classifier.add_rule(
        ClassifierRule(TrafficClass.DNS, hardware=lambda p: None, host=lambda p: None)
    )
    service = OnDemandService(sim, "x", classifier=classifier, traffic_class=None)
    with pytest.raises(PlacementError):
        service.shift_to_hardware()


def test_hooks_optional():
    sim = Simulator()
    service = OnDemandService(sim, "bare")
    assert service.shift_to_hardware("no hooks")
    assert service.placement is Placement.HARDWARE
    assert service.shift_to_software()


def test_shift_reasons_recorded():
    sim = Simulator()
    service = OnDemandService(sim, "x")
    service.shift_to_hardware("because load")
    assert service.shifts[0].reason == "because load"


def _figure6_stub():
    return Figure6Result(
        duration_us=1e6,
        throughput_series=[(0.0, 100.0), (5e5, 200.0)],
        latency_series=[(0.0, 10.0), (5e5, None)],
        power_series=[(0.0, 40.0), (5e5, 50.0)],
        shift_times_us=[],
        hw_hits=0,
        hw_miss_forwards=0,
        client_responses=2,
        offered_pps=100.0,
    )


def test_figure6_result_window_helpers():
    result = _figure6_stub()
    assert result.mean_throughput_pps(0.0, 1e6) == pytest.approx(150.0)
    # None latency samples are skipped
    assert result.mean_latency_us(0.0, 1e6) == pytest.approx(10.0)
    with pytest.raises(ValueError):
        result.mean_latency_us(9e5, 1e6)
    with pytest.raises(ValueError):
        result.mean_throughput_pps(2e6, 3e6)


def test_figure7_result_window_helpers():
    result = Figure7Result(
        duration_us=1e6,
        throughput_series=[(0.0, 1000.0)],
        latency_series=[(0.0, 400.0)],
        shift_times_us=[1.0],
        decided=10,
        retries=0,
        stall_us=[100_000.0],
    )
    assert result.mean_throughput_pps(0.0, 1e6) == 1000.0
    assert result.mean_latency_us(0.0, 1e6) == 400.0
    text = result.render()
    assert "stalls" in text and "100ms" in text


# -- warm-up: shifts with a non-zero activation delay -----------------------


def _counting_hooks():
    calls = {"hw": 0, "sw": 0}
    return calls, dict(
        to_hardware=lambda: calls.__setitem__("hw", calls["hw"] + 1),
        to_software=lambda: calls.__setitem__("sw", calls["sw"] + 1),
    )


def test_warmup_delays_activation_and_stamps_shift_at_flip():
    sim = Simulator()
    calls, hooks = _counting_hooks()
    service = OnDemandService(sim, "x", warmup_us=1_000.0, **hooks)
    assert service.shift_to_hardware("load")
    # card powered immediately, classifier not yet flipped
    assert calls["hw"] == 1
    assert service.warming and not service.in_hardware
    assert service.shifts == []
    sim.run()
    assert service.in_hardware and not service.warming
    assert service.shifts[0].time_us == pytest.approx(1_000.0)


def test_warmup_shift_is_idempotent_while_warming():
    sim = Simulator()
    service = OnDemandService(sim, "x", warmup_us=1_000.0)
    assert service.shift_to_hardware()
    # a second request during warm-up neither restarts nor double-books
    assert not service.shift_to_hardware()
    sim.run()
    assert service.in_hardware
    assert len(service.shifts) == 1


def test_shift_to_software_cancels_pending_warmup():
    sim = Simulator()
    calls, hooks = _counting_hooks()
    service = OnDemandService(sim, "x", warmup_us=1_000.0, **hooks)
    service.shift_to_hardware()
    assert service.shift_to_software("cooled off")
    sim.run()
    # the activation never fired: the only recorded shift is the software one
    assert not service.in_hardware and not service.warming
    assert [s.to for s in service.shifts] == [Placement.SOFTWARE]
    assert calls["sw"] == 1


def test_immediate_skips_warmup():
    sim = Simulator()
    service = OnDemandService(sim, "x", warmup_us=1_000.0)
    assert service.shift_to_hardware("declared initial placement", immediate=True)
    assert service.in_hardware and not service.warming
    assert service.shifts[0].time_us == 0.0


def test_negative_warmup_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        OnDemandService(Simulator(), "x", warmup_us=-1.0)
