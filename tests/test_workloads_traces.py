"""Dynamo and Google cluster trace synthesis + §9.3 analyses."""

import pytest

from repro import calibration as cal
from repro.errors import ConfigurationError
from repro.sim import Simulator
from repro.workloads import (
    ChainerMNWorkload,
    DynamoTraceSynthesizer,
    GoogleTraceSynthesizer,
    Task,
    analyze_offload_candidates,
    analyze_power_variation,
)
from repro.workloads.dynamo import power_variation, shift_safety
from repro.workloads.google_trace import load_diminishing_saving_w
from repro.host import make_i7_server
from repro.units import sec


class TestDynamo:
    def test_variation_math(self):
        # window [100, 110]: (110-100)/105
        variations = power_variation([100.0, 110.0, 100.0], window_samples=2)
        assert variations[0] == pytest.approx(10 / 105)

    def test_trace_statistics_near_targets(self):
        for cls in ("rack", "caching", "web"):
            synth = DynamoTraceSynthesizer(cls, seed=3)
            trace = synth.generate(3000)
            targets = synth.paper_statistics()
            analysis = analyze_power_variation(trace, targets["window_s"])
            # shapes, not exact numbers: median within 3x either way, and
            # ordering of p99 >> median preserved
            assert targets["median"] / 3 < analysis.median < targets["median"] * 3
            assert analysis.p99 > analysis.median

    def test_web_varies_more_than_caching(self):
        """§9.3: web serving varies far more than caching."""
        caching = analyze_power_variation(
            DynamoTraceSynthesizer("caching", seed=5).generate(3000), 60.0
        )
        web = analyze_power_variation(
            DynamoTraceSynthesizer("web", seed=5).generate(3000), 60.0
        )
        assert web.median > caching.median

    def test_shift_safety_rule(self):
        caching = analyze_power_variation(
            DynamoTraceSynthesizer("caching", seed=5).generate(3000), 60.0
        )
        web = analyze_power_variation(
            DynamoTraceSynthesizer("web", seed=5).generate(3000), 60.0
        )
        assert shift_safety(caching)
        assert not shift_safety(web)

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigurationError):
            DynamoTraceSynthesizer("unknown")

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            power_variation([1.0, 2.0], window_samples=1)
        with pytest.raises(ConfigurationError):
            power_variation([1.0], window_samples=2)


class TestGoogleTrace:
    @pytest.fixture(scope="class")
    def tasks(self):
        return GoogleTraceSynthesizer(seed=11).generate(n_nodes=20, duration_h=4.0)

    def test_candidate_cores_per_node_near_7_7(self, tasks):
        analysis = analyze_offload_candidates(tasks)
        assert analysis.avg_candidate_cores_per_node == pytest.approx(
            cal.GOOGLE_AVG_CANDIDATE_CORES_PER_NODE, rel=0.35
        )

    def test_long_jobs_small_count_large_utilization(self, tasks):
        analysis = analyze_offload_candidates(tasks)
        assert analysis.long_job_count_fraction < 0.15
        assert analysis.long_job_util_fraction > 0.70

    def test_candidates_subset_of_tasks(self, tasks):
        analysis = analyze_offload_candidates(tasks)
        assert 0 < analysis.offload_candidates <= analysis.total_tasks

    def test_candidate_rule(self):
        tasks = [
            Task(0, 0, 0.0, 400.0, 0.5),    # candidate
            Task(1, 0, 0.0, 100.0, 0.5),    # too short
            Task(2, 0, 0.0, 400.0, 0.05),   # too light
        ]
        analysis = analyze_offload_candidates(tasks)
        assert analysis.offload_candidates == 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            analyze_offload_candidates([])

    def test_task_validation(self):
        with pytest.raises(ConfigurationError):
            Task(0, 0, 0.0, -1.0, 0.5)
        with pytest.raises(ConfigurationError):
            Task(0, 0, 0.0, 1.0, -0.5)


def test_load_diminishing_model():
    """§9.3: offloading saves little on a busy server, the full figure on
    the last job."""
    assert load_diminishing_saving_w(1) == pytest.approx(20.0)
    assert load_diminishing_saving_w(10) == pytest.approx(2.0)
    assert load_diminishing_saving_w(0) == 0.0
    with pytest.raises(ConfigurationError):
        load_diminishing_saving_w(-1)


class TestChainerMN:
    def test_start_stop_moves_cpu_load(self):
        sim = Simulator()
        server = make_i7_server(sim)
        job = ChainerMNWorkload(sim, server, cores=2.0, utilization=1.0)
        job.start()
        assert server.cpu.utilization == pytest.approx(0.5)
        job.stop()
        assert server.cpu.utilization == 0.0

    def test_schedule(self):
        sim = Simulator()
        server = make_i7_server(sim)
        job = ChainerMNWorkload(sim, server)
        job.schedule(sec(1.0), sec(2.0))
        sim.run_until(sec(1.5))
        assert job.running
        sim.run_until(sec(2.5))
        assert not job.running
        assert job.started_at_us == sec(1.0)
        assert job.stopped_at_us == sec(2.0)

    def test_idempotent_start(self):
        sim = Simulator()
        server = make_i7_server(sim)
        job = ChainerMNWorkload(sim, server)
        job.start()
        job.start()
        job.stop()
        job.stop()
        assert server.cpu.utilization == 0.0
