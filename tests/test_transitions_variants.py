"""Transition-experiment variants beyond the paper's base configuration."""

import pytest

from repro.experiments import run_figure6, run_figure7
from repro.units import msec, sec


def test_figure6_power_save_variant_serves_identically():
    """§9.2's gating (memories in reset + clock gating) is invisible to the
    data path while in software: same service, no spurious shifts.  (The
    card-power effect of gating itself is asserted in test_kvs_lake.)"""
    base = run_figure6(
        duration_s=3.0, rate_kpps=8.0, chainer_start_s=10.0, chainer_stop_s=11.0,
        keyspace=5_000, power_save=False,
    )
    saving = run_figure6(
        duration_s=3.0, rate_kpps=8.0, chainer_start_s=10.0, chainer_stop_s=11.0,
        keyspace=5_000, power_save=True,
    )
    assert not base.shift_times_us and not saving.shift_times_us
    assert saving.client_responses == pytest.approx(base.client_responses, rel=0.02)


def test_figure6_no_chainer_no_shift():
    """Without the co-located job the host controller never triggers: the
    rate alone (below the crossover) is not a shift-up signal for it."""
    result = run_figure6(
        duration_s=4.0, rate_kpps=16.0, chainer_start_s=100.0,
        chainer_stop_s=101.0, keyspace=5_000,
    )
    assert result.shift_times_us == []
    assert result.hw_hits == 0


def test_figure6_sustain_window_filters_short_bursts():
    """A co-located job shorter than the 3s window must not trigger."""
    result = run_figure6(
        duration_s=5.0, rate_kpps=8.0, chainer_start_s=1.0, chainer_stop_s=2.2,
        keyspace=5_000,
    )
    assert result.shift_times_us == []


def test_figure7_single_shift_only():
    result = run_figure7(
        duration_s=1.5, shift_to_hw_s=0.5, shift_to_sw_s=10.0,
    )
    assert len(result.shift_times_us) == 1
    # hardware phase persists to the end
    late = result.mean_throughput_pps(sec(1.0), sec(1.5))
    early = result.mean_throughput_pps(sec(0.1), sec(0.5))
    assert late > early


def test_figure7_more_acceptors_still_works():
    result = run_figure7(
        duration_s=1.2, shift_to_hw_s=0.5, shift_to_sw_s=10.0, n_acceptors=5,
    )
    assert result.decided > 2000
    assert len(result.stall_us) >= 1


def test_figure7_larger_client_window_scales_throughput():
    small = run_figure7(duration_s=1.0, shift_to_hw_s=10.0, shift_to_sw_s=11.0,
                        client_window=1)
    large = run_figure7(duration_s=1.0, shift_to_hw_s=10.0, shift_to_sw_s=11.0,
                        client_window=3)
    thr_small = small.mean_throughput_pps(sec(0.3), sec(1.0))
    thr_large = large.mean_throughput_pps(sec(0.3), sec(1.0))
    assert thr_large > 2.0 * thr_small
