"""Matplotlib PNG renderers: guarded import, text render stays the contract."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    matplotlib_available,
    run_figure7,
    save_sweep_png,
    save_transition_png,
)

HAVE_MPL = matplotlib_available()


def _small_figure7():
    return run_figure7(duration_s=0.6, shift_to_hw_s=0.3, shift_to_sw_s=10.0)


def _synthetic_sweep_result():
    """A hand-built two-axis sweep result: no DES run needed to plot."""
    from repro.scenarios import ScenarioSweepSpec, SweepAxis
    from repro.scenarios.sweep import (
        ScenarioSweepResult,
        SweepAggregate,
        SweepPointResult,
    )

    spec = ScenarioSweepSpec(
        name="sweep-test",
        base="rack-kvs",
        axes=(
            SweepAxis("n_hosts", (1, 2)),
            SweepAxis("rate_per_host_kpps", (8.0, 32.0)),
        ),
    )

    def aggregate(mode, ops_per_watt):
        return SweepAggregate(
            mode=mode,
            offered_pps=1_000.0,
            achieved_pps=1_000.0,
            total_power_w=50.0,
            p50_latency_us=10.0,
            p99_latency_us=25.0,
            ops_per_watt=ops_per_watt,
            power_by_placement={"kvs0": 50.0},
        )

    points = [
        SweepPointResult(
            params={"n_hosts": hosts, "rate_per_host_kpps": rate},
            software=aggregate("software", 100.0 if rate < 20 else 200.0),
            hardware=aggregate("hardware", 80.0 if rate < 20 else 300.0),
        )
        for hosts in (1, 2)
        for rate in (8.0, 32.0)
    ]
    return ScenarioSweepResult(spec=spec, points=points)


def test_matplotlib_available_never_raises():
    assert matplotlib_available() in (True, False)


@pytest.mark.skipif(HAVE_MPL, reason="matplotlib installed: guard not reachable")
def test_png_without_matplotlib_raises_clean_configuration_error(tmp_path):
    result = _small_figure7()
    with pytest.raises(ConfigurationError, match="matplotlib"):
        save_transition_png(result, tmp_path / "fig7.png")


@pytest.mark.skipif(not HAVE_MPL, reason="matplotlib not installed")
def test_figure7_save_png_writes_file(tmp_path):
    result = _small_figure7()
    path = result.save_png(tmp_path / "fig7.png")
    assert path.exists()
    assert path.stat().st_size > 0
    # PNG magic bytes
    assert path.read_bytes()[:8] == b"\x89PNG\r\n\x1a\n"


@pytest.mark.skipif(not HAVE_MPL, reason="matplotlib not installed")
def test_figure6_save_png_writes_file(tmp_path):
    from repro.experiments import run_figure6

    result = run_figure6(duration_s=1.0, rate_kpps=4.0, keyspace=2_000)
    path = result.save_png(tmp_path / "fig6.png")
    assert path.exists()
    assert path.read_bytes()[:8] == b"\x89PNG\r\n\x1a\n"


@pytest.mark.skipif(HAVE_MPL, reason="matplotlib installed: guard not reachable")
def test_sweep_png_without_matplotlib_raises_clean_configuration_error(tmp_path):
    with pytest.raises(ConfigurationError, match="matplotlib"):
        save_sweep_png(_synthetic_sweep_result(), tmp_path / "sweep.png")


@pytest.mark.skipif(not HAVE_MPL, reason="matplotlib not installed")
def test_sweep_save_png_writes_file(tmp_path):
    result = _synthetic_sweep_result()
    path = save_sweep_png(result, tmp_path / "sweep.png")
    assert path.exists()
    assert path.read_bytes()[:8] == b"\x89PNG\r\n\x1a\n"


@pytest.mark.skipif(not HAVE_MPL, reason="matplotlib not installed")
def test_sweep_png_single_axis(tmp_path):
    """A one-axis sweep (no grouping params) still renders."""
    import dataclasses

    from repro.scenarios import SweepAxis

    result = _synthetic_sweep_result()
    spec = dataclasses.replace(
        result.spec, axes=(SweepAxis("rate_per_host_kpps", (8.0, 32.0)),)
    )
    result = dataclasses.replace(
        result,
        spec=spec,
        points=[pt for pt in result.points if pt.params["n_hosts"] == 1],
    )
    path = save_sweep_png(result, tmp_path / "sweep1d.png")
    assert path.read_bytes()[:8] == b"\x89PNG\r\n\x1a\n"


def test_sweep_text_render_needs_no_matplotlib():
    """The dependency-free contract extends to sweeps."""
    text = _synthetic_sweep_result().render()
    assert "Tipping points" in text


def test_text_render_needs_no_matplotlib():
    """The dependency-free contract: render() works regardless."""
    assert "Paxos leader" in _small_figure7().render()


def test_cli_png_flag_degrades_gracefully(tmp_path, capsys):
    """--png never fails the run: without matplotlib it warns on stderr."""
    from repro.__main__ import main

    assert main(["figure7", "--duration", "0.6", "--png", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    assert "Paxos leader" in captured.out
    if HAVE_MPL:
        assert (tmp_path / "figure7.png").exists()
    else:
        assert "matplotlib not importable" in captured.err
