"""The sweep executor internals: spec-materialization cache, persistent
worker pool, chunked dispatch, and the fastpath eligibility precheck."""

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    build_sweep_spec,
    clear_spec_cache,
    run_replicated,
    run_sweep,
    shutdown_executor,
    spec_cache_stats,
    spec_hash,
)
from repro.scenarios.sweep import _auto_chunksize, _get_pool, _materialize


@pytest.fixture
def fresh_cache():
    clear_spec_cache()
    yield
    clear_spec_cache()


def tiny_sweep():
    return build_sweep_spec(
        "sweep-rack-kvs",
        hosts=(1, 2),
        rates_kpps=(8.0,),
        duration_s=0.1,
        keyspace=4_000,
    )


# -- spec_hash --------------------------------------------------------------


def test_spec_hash_is_order_insensitive():
    a = spec_hash("rack-kvs", {"n_hosts": 2, "rate_per_host_kpps": 8.0})
    b = spec_hash("rack-kvs", {"rate_per_host_kpps": 8.0, "n_hosts": 2})
    assert a == b


def test_spec_hash_separates_points_and_bases():
    base = spec_hash("rack-kvs", {"n_hosts": 2})
    assert spec_hash("rack-kvs", {"n_hosts": 3}) != base
    assert spec_hash("fabric-kvs", {"n_hosts": 2}) != base


# -- the materialization cache ----------------------------------------------


def test_materialize_returns_the_cached_instance(fresh_cache):
    sweep = tiny_sweep()
    point = sweep.points()[0]
    first = _materialize(sweep, point)
    assert spec_cache_stats()["misses"] >= 1
    hits_before = spec_cache_stats()["hits"]
    second = _materialize(sweep, point)
    # frozen dataclass, same instance: no re-run of the factory
    assert second is first
    assert spec_cache_stats()["hits"] == hits_before + 1


def test_cache_pins_the_factory_identity(fresh_cache):
    """A re-registered scenario name must miss, not serve the old spec."""
    from repro.scenarios.registry import _REGISTRY

    sweep = tiny_sweep()
    point = sweep.points()[0]
    original = _REGISTRY[sweep.base]
    stale = _materialize(sweep, point)
    try:
        _REGISTRY[sweep.base] = lambda **kw: original(**kw)
        fresh = _materialize(sweep, point)
        assert fresh is not stale
    finally:
        _REGISTRY[sweep.base] = original


def test_clear_spec_cache_resets_counters(fresh_cache):
    sweep = tiny_sweep()
    _materialize(sweep, sweep.points()[0])
    clear_spec_cache()
    assert spec_cache_stats() == {"hits": 0, "misses": 0, "size": 0}


# -- chunked dispatch -------------------------------------------------------


def test_auto_chunksize_targets_four_chunks_per_worker():
    assert _auto_chunksize(32, 2) == 4
    assert _auto_chunksize(64, 4) == 4
    # small task lists degrade gracefully to per-task dispatch
    assert _auto_chunksize(4, 8) == 1
    assert _auto_chunksize(0, 2) == 1


# -- the persistent pool ----------------------------------------------------


def test_pool_is_reused_across_calls():
    try:
        first = _get_pool(2)
        assert _get_pool(2) is first
        # a different worker count retires the old pool
        resized = _get_pool(3)
        assert resized is not first
    finally:
        shutdown_executor()


def test_pool_is_rebuilt_when_the_registry_changes():
    from repro.scenarios.registry import _REGISTRY

    try:
        first = _get_pool(2)
        _REGISTRY["executor-test-probe"] = lambda: None
        try:
            assert _get_pool(2) is not first
        finally:
            del _REGISTRY["executor-test-probe"]
    finally:
        shutdown_executor()


def test_shutdown_executor_is_idempotent():
    _get_pool(2)
    shutdown_executor()
    shutdown_executor()


# -- the fastpath eligibility precheck (never-eligible sweeps refuse) -------


def never_eligible_sweep():
    # rack-mixed carries Paxos groups and DNS replicas at every grid
    # point: no pin is ever steady-state eligible
    return build_sweep_spec(
        "sweep-rack-mixed", groups=(1,), duration_s=0.1
    )


def test_run_sweep_refuses_fastpath_on_never_eligible_sweep():
    with pytest.raises(ConfigurationError, match="steady-state eligible"):
        run_sweep(never_eligible_sweep(), fastpath=True)


def test_run_replicated_refuses_fastpath_on_never_eligible_sweep():
    with pytest.raises(ConfigurationError, match="steady-state eligible"):
        run_replicated(
            never_eligible_sweep(), seeds=2, workers=1, fastpath=True
        )
