"""The §9.1 centralized fabric controller: config validation, centrally
driven placement shifts, and the same-rack/cross-rack steering asymmetry.

The controller only reads ``fabric.logical_count`` and the router fleet's
``per_host``/``shards_of``/``reassign`` surface, so these tests drive it
with small fakes whose counters grow linearly with simulated time — a
constant per-host rate without building a full scenario."""

import pytest

from repro.core.fabric_controller import (
    FABRIC_CONTROLLER_KINDS,
    FabricController,
    FabricControllerConfig,
    HostPlacement,
    SteerEvent,
)
from repro.errors import ConfigurationError
from repro.net import TrafficClass
from repro.sim import Simulator
from repro.units import msec, sec


class FakeFleet:
    """RouterFleet stand-in: linear per-host counters, steerable shards."""

    def __init__(self, sim, rates_pps, owners):
        self.sim = sim
        self.rates_pps = dict(rates_pps)
        self.owners = list(owners)
        self.reassigned = []
        self._base = {host: 0.0 for host in rates_pps}
        self._since = {host: 0.0 for host in rates_pps}

    def set_rate(self, host, rate_pps):
        """Rebase so the counter stays monotone across rate changes."""
        now = self.sim.now
        self._base[host] += self.rates_pps[host] * (now - self._since[host]) / 1e6
        self._since[host] = now
        self.rates_pps[host] = rate_pps

    @property
    def per_host(self):
        now = self.sim.now
        return {
            host: int(
                self._base[host] + rate * (now - self._since[host]) / 1e6
            )
            for host, rate in self.rates_pps.items()
        }

    def shards_of(self, host):
        return [s for s, owner in enumerate(self.owners) if owner == host]

    def reassign(self, shard, host):
        self.owners[shard] = host
        self.reassigned.append((shard, host))


class FakeFabric:
    """logical_count == fleet-wide offered packets (sum of host rates)."""

    def __init__(self, fleet):
        self.fleet = fleet

    def logical_count(self, traffic_class, logical_dst):
        return sum(self.fleet.per_host.values())


class FakeService:
    in_hardware = False
    warming = False

    def __init__(self):
        self.shifts = []

    def shift_to_hardware(self, reason=""):
        self.in_hardware = True
        self.shifts.append("hw")
        return True

    def shift_to_software(self, reason=""):
        self.in_hardware = False
        self.shifts.append("sw")
        return True


FAST = dict(
    hot_host_pps=10_000.0,
    cold_host_pps=5_000.0,
    window_us=sec(0.1),
    tick_us=msec(10.0),
    same_rack_sustain_us=sec(0.05),
    cross_rack_sustain_us=sec(0.2),
)


def _controller(sim, rates, owners, placements, **config):
    fleet = FakeFleet(sim, rates, owners)
    ctl = FabricController(
        sim,
        FakeFabric(fleet),
        TrafficClass.MEMCACHED,
        "kvs",
        placements,
        fleet=fleet,
        config=FabricControllerConfig(**{**FAST, **config}),
    )
    return ctl, fleet


def test_registry_names_the_fabric_kind():
    assert FabricController.kind in FABRIC_CONTROLLER_KINDS


def test_config_validation():
    with pytest.raises(ConfigurationError):
        FabricControllerConfig(hot_host_pps=1.0, cold_host_pps=2.0)
    with pytest.raises(ConfigurationError):
        FabricControllerConfig(shift_up_pps=1.0, shift_down_pps=2.0)
    with pytest.raises(ConfigurationError):
        FabricControllerConfig(window_us=0.0)
    with pytest.raises(ConfigurationError):
        FabricControllerConfig(tick_us=-1.0)
    with pytest.raises(ConfigurationError):
        FabricControllerConfig(same_rack_sustain_us=0.0)
    with pytest.raises(ConfigurationError):
        FabricControllerConfig(
            same_rack_sustain_us=sec(1.0), cross_rack_sustain_us=sec(0.5)
        )
    with pytest.raises(ConfigurationError):
        FabricControllerConfig(max_steers=-1)


def test_placements_must_be_nonempty_and_unique():
    sim = Simulator()
    fleet = FakeFleet(sim, {}, [])
    with pytest.raises(ConfigurationError):
        FabricController(
            sim, FakeFabric(fleet), TrafficClass.MEMCACHED, "kvs", []
        )
    dup = [HostPlacement("a", "rack0"), HostPlacement("a", "rack0")]
    with pytest.raises(ConfigurationError):
        FabricController(
            sim, FakeFabric(fleet), TrafficClass.MEMCACHED, "kvs", dup
        )


def test_centralized_placement_shift_up_then_down():
    sim = Simulator()
    service = FakeService()
    placements = [
        HostPlacement(
            "a", "rack0", service=service,
            shift_up_pps=8_000.0, shift_down_pps=2_000.0,
        ),
    ]
    ctl, fleet = _controller(sim, {"a": 12_000.0}, ["a"], placements)
    sim.run_until(sec(0.5))
    assert service.shifts[:1] == ["hw"]
    up_times = ctl.shift_times_us()
    assert len(up_times) == 1
    # cool off: counter stops growing, the window drains below shift_down
    fleet.set_rate("a", 0.0)
    sim.run_until(sec(1.0))
    assert service.shifts == ["hw", "sw"]
    assert len(ctl.shift_times_us()) == 2
    ctl.stop()


def test_placement_without_thresholds_is_left_alone():
    sim = Simulator()
    service = FakeService()
    placements = [HostPlacement("a", "rack0", service=service)]
    ctl, _ = _controller(sim, {"a": 50_000.0}, ["a"], placements)
    sim.run_until(sec(0.5))
    assert service.shifts == []
    ctl.stop()


def test_same_rack_steer_preferred_and_earlier():
    """With a cold host in the hot host's own rack, the controller steers
    same-rack at the shorter sustain — even though the cross-rack host is
    colder."""
    sim = Simulator()
    placements = [
        HostPlacement("a", "rack0"),
        HostPlacement("b", "rack0"),
        HostPlacement("c", "rack1"),
    ]
    rates = {"a": 20_000.0, "b": 4_000.0, "c": 1_000.0}
    ctl, fleet = _controller(sim, rates, ["a", "a", "b", "c"], placements)
    sim.run_until(sec(1.0))
    assert len(ctl.steers) >= 1
    first = ctl.steers[0]
    assert first.to_host == "b"
    assert not first.cross_rack
    assert first.time_us < FAST["window_us"] + FAST["cross_rack_sustain_us"]
    assert fleet.reassigned[0] == (first.shard, "b")
    ctl.stop()


def test_cross_rack_steer_waits_for_longer_sustain():
    sim = Simulator()
    placements = [HostPlacement("a", "rack0"), HostPlacement("c", "rack1")]
    ctl, fleet = _controller(
        sim, {"a": 20_000.0, "c": 1_000.0}, ["a", "a"], placements
    )
    sim.run_until(sec(1.0))
    assert len(ctl.steers) >= 1
    first = ctl.steers[0]
    assert first.to_host == "c"
    assert first.cross_rack
    assert isinstance(first, SteerEvent)
    # hot-since starts once the warm-up window has filled; the cross-rack
    # sustain is then served on top of it
    assert first.time_us >= FAST["window_us"] + FAST["cross_rack_sustain_us"]
    ctl.stop()


def test_single_shard_host_never_donates():
    sim = Simulator()
    placements = [HostPlacement("a", "rack0"), HostPlacement("b", "rack0")]
    ctl, _ = _controller(
        sim, {"a": 50_000.0, "b": 0.0}, ["a", "b"], placements
    )
    sim.run_until(sec(1.0))
    assert ctl.steers == []
    ctl.stop()


def test_max_steers_caps_the_controller():
    sim = Simulator()
    placements = [
        HostPlacement("a", "rack0"),
        HostPlacement("b", "rack0"),
        HostPlacement("c", "rack0"),
    ]
    ctl, _ = _controller(
        sim,
        {"a": 50_000.0, "b": 0.0, "c": 0.0},
        ["a"] * 6,
        placements,
        max_steers=1,
    )
    sim.run_until(sec(2.0))
    assert len(ctl.steers) == 1
    ctl.stop()


def test_rates_and_rack_rollup():
    sim = Simulator()
    placements = [HostPlacement("a", "rack0"), HostPlacement("b", "rack1")]
    ctl, _ = _controller(
        sim, {"a": 10_000.0, "b": 2_000.0}, ["a", "b"], placements
    )
    sim.run_until(sec(0.4))
    assert ctl.host_rate_pps("a") == pytest.approx(10_000.0, rel=0.15)
    racks = ctl.rack_rates_pps()
    assert racks["rack0"] == pytest.approx(10_000.0, rel=0.15)
    assert racks["rack1"] == pytest.approx(2_000.0, rel=0.15)
    ctl.stop()


def test_stop_cancels_the_tick():
    sim = Simulator()
    ctl, _ = _controller(sim, {"a": 1_000.0}, ["a"], [HostPlacement("a", "r")])
    ctl.stop()
    events_before = sim.now
    sim.run_until(sec(1.0))
    assert ctl.rate_series.times == [] or max(
        ctl.rate_series.times, default=0.0
    ) <= events_before + FAST["tick_us"]
