"""The steady-state fast path and its DES-vs-analytic tolerance gate."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    ControllerSpec,
    build_spec,
    build_sweep_spec,
    run_sweep,
    software_variant,
    steady_eligible,
    steady_point,
    validate_fastpath,
)
from repro.scenarios.fastpath import DEFAULT_REL_TOL


def small_rack(n_hosts=2, rate_per_host_kpps=12.0):
    """The sweep's software pin of a reduced rack-kvs: controllers pinned
    to ``none``, which is the form the fast path answers."""
    return software_variant(
        build_spec(
            "rack-kvs",
            n_hosts=n_hosts,
            rate_per_host_kpps=rate_per_host_kpps,
            duration_s=0.3,
            keyspace=4_000,
        )
    )


# -- eligibility ------------------------------------------------------------


def test_pinned_kvs_rack_is_eligible():
    assert steady_eligible(small_rack())


def test_live_controllers_are_not_eligible():
    # the raw rack-kvs spec keeps its default host-driven controllers;
    # only the sweep's pinned variants qualify
    assert not steady_eligible(build_spec("rack-kvs"))


def test_paxos_scenario_is_not_eligible():
    assert not steady_eligible(build_spec("fig7-paxos-transition"))


def test_colocated_jobs_are_not_eligible():
    # the sharded racks schedule co-located jobs that shift placements
    assert not steady_eligible(build_spec("rack8-kvs-sharded"))


def test_replaced_controller_breaks_eligibility():
    spec = small_rack()
    host = dataclasses.replace(
        spec.kvs_hosts[0], controller=ControllerSpec(kind="ondemand")
    )
    spec = dataclasses.replace(spec, kvs_hosts=(host,) + spec.kvs_hosts[1:])
    assert not steady_eligible(spec)


# -- the analytic point -----------------------------------------------------


def test_steady_point_rejects_unknown_mode():
    with pytest.raises(ConfigurationError):
        steady_point(small_rack(), "ondemand")


def test_steady_point_rejects_ineligible_spec():
    with pytest.raises(ConfigurationError):
        steady_point(build_spec("fig7-paxos-transition"), "software")


def test_steady_point_shape():
    spec = small_rack()
    estimate = steady_point(spec, "software")
    assert estimate.mode == "software"
    assert estimate.offered_pps == pytest.approx(24_000.0)
    assert 0.0 < estimate.achieved_pps <= estimate.offered_pps
    assert estimate.total_power_w > 0.0
    assert estimate.ops_per_watt > 0.0
    assert set(estimate.power_by_placement) == {h.name for h in spec.kvs_hosts}
    assert sum(estimate.power_by_placement.values()) == pytest.approx(
        estimate.total_power_w
    )


def test_hardware_pin_beats_software_on_ops_per_watt():
    spec = small_rack()
    software = steady_point(spec, "software")
    hardware = steady_point(spec, "hardware")
    assert hardware.ops_per_watt > software.ops_per_watt


# -- the tolerance gate -----------------------------------------------------


def test_fastpath_gate_holds_against_des():
    """Both pins of a small rack agree with the analytic curves within
    DEFAULT_REL_TOL — the contract run_sweep(fastpath=True) relies on."""
    gates = validate_fastpath(small_rack())
    assert {g.mode for g in gates} == {"software", "hardware"}
    for gate in gates:
        assert gate.ok, (
            f"{gate.mode}: achieved err {gate.achieved_rel_err:.3f}, "
            f"power err {gate.power_rel_err:.3f}, "
            f"ops/W err {gate.ops_per_watt_rel_err:.3f} "
            f"(tol {DEFAULT_REL_TOL})"
        )


# -- the sweep integration --------------------------------------------------


def test_run_sweep_fastpath_smoke():
    spec = build_sweep_spec(
        "sweep-rack-kvs",
        hosts=(1, 2),
        rates_kpps=(8.0, 32.0),
        duration_s=0.2,
        keyspace=4_000,
    )
    result = run_sweep(spec, fastpath=True)
    assert len(result.points) == 4
    for point in result.points:
        assert point.software.achieved_pps > 0.0
        assert point.hardware.total_power_w > 0.0
        assert point.hardware.ops_per_watt > point.software.ops_per_watt
    # the fast path must still drive the tipping-point reduction + report
    assert result.tipping_points()
    assert "sweep-rack-kvs" in result.render()


# -- per-placement eligibility (split_steady) --------------------------------


def hetero_rack(rate_per_host_kpps=24.0, duration_s=0.25):
    """A mixed rack: one NetFPGA host (can shift) + one NIC-only host.
    ``ramp=False`` keeps the workload rate-constant (phase-free), the
    shape the per-placement fast path requires."""
    return build_spec(
        "rack-hetero",
        device_kinds=("netfpga-sume", "none"),
        rate_per_host_kpps=rate_per_host_kpps,
        ramp=False,
        duration_s=duration_s,
        keyspace=4_000,
    )


def test_host_steady_eligible_per_host():
    from repro.scenarios import host_steady_eligible, ondemand_variant

    od = ondemand_variant(hetero_rack())
    # the offload host keeps a live on-demand controller; the NIC-only
    # host has nothing to shift to and sits pinned
    assert not host_steady_eligible(od.kvs_hosts[0])
    assert host_steady_eligible(od.kvs_hosts[1])


def test_split_steady_fully_eligible_rack():
    from repro.scenarios import split_steady

    spec = small_rack()
    indices, residual = split_steady(spec)
    assert indices == tuple(range(len(spec.kvs_hosts)))
    assert residual is None


def test_split_steady_wrong_shape_returns_spec_unchanged():
    from repro.scenarios import split_steady

    paxos = build_spec("fig7-paxos-transition")
    assert split_steady(paxos) == ((), paxos)


def test_split_steady_mixed_rack_builds_residual_subrack():
    from repro.scenarios import ondemand_variant, split_steady

    od = ondemand_variant(hetero_rack())
    indices, residual = split_steady(od)
    assert indices == (1,)  # the NIC-only host answers analytically
    assert residual is not None
    assert [h.name for h in residual.kvs_hosts] == [od.kvs_hosts[0].name]
    # the residual keeps the full rack's shard space: same n_shards, and
    # the surviving host pinned to its original shard
    assert residual.kvs_workload.n_shards == len(od.kvs_hosts)
    assert residual.kvs_hosts[0].shard_index == 0
    assert residual.sharded


def test_subset_steady_points_compose_to_the_full_estimate():
    from repro.scenarios import split_steady

    spec = small_rack(n_hosts=3)
    full = steady_point(spec, "software")
    parts = [
        steady_point(spec, "software", host_indices=[i])
        for i in range(len(spec.kvs_hosts))
    ]
    assert sum(p.offered_pps for p in parts) == pytest.approx(
        full.offered_pps
    )
    assert sum(p.achieved_pps for p in parts) == pytest.approx(
        full.achieved_pps
    )
    assert sum(p.total_power_w for p in parts) == pytest.approx(
        full.total_power_w
    )


def test_subset_steady_point_rejects_ineligible_host():
    from repro.scenarios import ondemand_variant

    od = ondemand_variant(hetero_rack())
    with pytest.raises(ConfigurationError):
        steady_point(od, "software", host_indices=[0])  # live controller


def test_hybrid_ondemand_matches_full_des_within_tolerance():
    """The per-placement fast path (analytics for the pinned half, DES
    sub-rack for the shifting half) tracks the full DES on-demand run
    within the fast-path gate tolerance."""
    from repro.scenarios import ondemand_variant, split_steady
    from repro.scenarios.builder import ScenarioBuilder
    from repro.scenarios.sweep import _aggregate, _hybrid_ondemand_aggregate

    od = ondemand_variant(hetero_rack())
    indices, residual = split_steady(od)
    assert indices and residual is not None
    hybrid = _hybrid_ondemand_aggregate(od, indices, residual)

    run = ScenarioBuilder(od).build()
    des = _aggregate(run, run.execute(), "ondemand")
    for attr in ("achieved_pps", "total_power_w", "ops_per_watt"):
        got, want = getattr(hybrid, attr), getattr(des, attr)
        assert abs(got - want) / want <= DEFAULT_REL_TOL, (
            f"{attr}: hybrid {got:.1f} vs DES {want:.1f}"
        )
    # every host is attributed power by exactly one half
    assert set(hybrid.power_by_placement) == set(des.power_by_placement)


def test_run_sweep_fastpath_covers_ondemand_on_mixed_racks():
    """run_sweep(fastpath=True) on the hetero sweep answers the pins
    analytically and the on-demand column hybrid — and still renders an
    on-demand column."""
    result = run_sweep(
        build_sweep_spec(
            "sweep-rack-hetero",
            device_kinds=("netfpga-sume",),
            rates_kpps=(24.0,),
            duration_s=0.1,
            keyspace=4_000,
        ),
        fastpath=True,
    )
    assert all(pt.ondemand is not None for pt in result.points)


def test_residual_subrack_host_series_byte_identical_to_full_rack():
    """The shifting host simulated alone (as the residual sub-rack, full
    shard space retained) reproduces the exact series it shows in the
    complete rack: name-keyed RNG streams, shard-keyed workload streams
    and per-pair ToR links make hosts independent subsystems."""
    from repro.scenarios import ondemand_variant, split_steady
    from repro.scenarios.builder import ScenarioBuilder

    od = ondemand_variant(hetero_rack())
    _, residual = split_steady(od)
    full = ScenarioBuilder(od).build().execute()
    sub = ScenarioBuilder(residual).build().execute()
    name = residual.kvs_hosts[0].name
    a, b = full.host(name), sub.host(name)
    assert a.throughput_series == b.throughput_series
    assert a.latency_series == b.latency_series
    assert a.power_series == b.power_series
    assert a.shift_times_us == b.shift_times_us
    assert (a.responses, a.hw_hits) == (b.responses, b.hw_hits)


class TestSubRackSpecValidation:
    """n_shards/shard_index declare a sub-rack of a larger shard space."""

    def _hosts(self, spec):
        return spec.kvs_hosts

    def test_shard_index_requires_n_shards(self):
        spec = hetero_rack()
        hosts = (
            dataclasses.replace(spec.kvs_hosts[0], shard_index=0),
        ) + spec.kvs_hosts[1:]
        with pytest.raises(ConfigurationError):
            dataclasses.replace(spec, kvs_hosts=hosts).validate()

    def test_n_shards_must_cover_the_hosts(self):
        spec = hetero_rack()
        with pytest.raises(ConfigurationError):
            dataclasses.replace(
                spec,
                kvs_workload=dataclasses.replace(
                    spec.kvs_workload, n_shards=1
                ),
            ).validate()

    def test_shard_indices_must_be_distinct_and_in_range(self):
        spec = hetero_rack()
        workload = dataclasses.replace(spec.kvs_workload, n_shards=4)
        dup = tuple(
            dataclasses.replace(h, shard_index=2) for h in spec.kvs_hosts
        )
        with pytest.raises(ConfigurationError):
            dataclasses.replace(
                spec, kvs_hosts=dup, kvs_workload=workload
            ).validate()
        oob = (
            dataclasses.replace(spec.kvs_hosts[0], shard_index=4),
            dataclasses.replace(spec.kvs_hosts[1], shard_index=0),
        )
        with pytest.raises(ConfigurationError):
            dataclasses.replace(
                spec, kvs_hosts=oob, kvs_workload=workload
            ).validate()

    def test_single_host_subrack_is_sharded(self):
        """One host owning one shard of a 2-shard space still routes and
        weighs as a sharded rack (the residual sub-rack shape)."""
        spec = hetero_rack()
        sub = dataclasses.replace(
            spec,
            kvs_hosts=(
                dataclasses.replace(spec.kvs_hosts[0], shard_index=0),
            ),
            kvs_workload=dataclasses.replace(spec.kvs_workload, n_shards=2),
        )
        sub.validate()
        assert sub.sharded
