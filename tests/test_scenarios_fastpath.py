"""The steady-state fast path and its DES-vs-analytic tolerance gate."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    ControllerSpec,
    build_spec,
    build_sweep_spec,
    run_sweep,
    software_variant,
    steady_eligible,
    steady_point,
    validate_fastpath,
)
from repro.scenarios.fastpath import DEFAULT_REL_TOL


def small_rack(n_hosts=2, rate_per_host_kpps=12.0):
    """The sweep's software pin of a reduced rack-kvs: controllers pinned
    to ``none``, which is the form the fast path answers."""
    return software_variant(
        build_spec(
            "rack-kvs",
            n_hosts=n_hosts,
            rate_per_host_kpps=rate_per_host_kpps,
            duration_s=0.3,
            keyspace=4_000,
        )
    )


# -- eligibility ------------------------------------------------------------


def test_pinned_kvs_rack_is_eligible():
    assert steady_eligible(small_rack())


def test_live_controllers_are_not_eligible():
    # the raw rack-kvs spec keeps its default host-driven controllers;
    # only the sweep's pinned variants qualify
    assert not steady_eligible(build_spec("rack-kvs"))


def test_paxos_scenario_is_not_eligible():
    assert not steady_eligible(build_spec("fig7-paxos-transition"))


def test_colocated_jobs_are_not_eligible():
    # the sharded racks schedule co-located jobs that shift placements
    assert not steady_eligible(build_spec("rack8-kvs-sharded"))


def test_replaced_controller_breaks_eligibility():
    spec = small_rack()
    host = dataclasses.replace(
        spec.kvs_hosts[0], controller=ControllerSpec(kind="ondemand")
    )
    spec = dataclasses.replace(spec, kvs_hosts=(host,) + spec.kvs_hosts[1:])
    assert not steady_eligible(spec)


# -- the analytic point -----------------------------------------------------


def test_steady_point_rejects_unknown_mode():
    with pytest.raises(ConfigurationError):
        steady_point(small_rack(), "ondemand")


def test_steady_point_rejects_ineligible_spec():
    with pytest.raises(ConfigurationError):
        steady_point(build_spec("fig7-paxos-transition"), "software")


def test_steady_point_shape():
    spec = small_rack()
    estimate = steady_point(spec, "software")
    assert estimate.mode == "software"
    assert estimate.offered_pps == pytest.approx(24_000.0)
    assert 0.0 < estimate.achieved_pps <= estimate.offered_pps
    assert estimate.total_power_w > 0.0
    assert estimate.ops_per_watt > 0.0
    assert set(estimate.power_by_placement) == {h.name for h in spec.kvs_hosts}
    assert sum(estimate.power_by_placement.values()) == pytest.approx(
        estimate.total_power_w
    )


def test_hardware_pin_beats_software_on_ops_per_watt():
    spec = small_rack()
    software = steady_point(spec, "software")
    hardware = steady_point(spec, "hardware")
    assert hardware.ops_per_watt > software.ops_per_watt


# -- the tolerance gate -----------------------------------------------------


def test_fastpath_gate_holds_against_des():
    """Both pins of a small rack agree with the analytic curves within
    DEFAULT_REL_TOL — the contract run_sweep(fastpath=True) relies on."""
    gates = validate_fastpath(small_rack())
    assert {g.mode for g in gates} == {"software", "hardware"}
    for gate in gates:
        assert gate.ok, (
            f"{gate.mode}: achieved err {gate.achieved_rel_err:.3f}, "
            f"power err {gate.power_rel_err:.3f}, "
            f"ops/W err {gate.ops_per_watt_rel_err:.3f} "
            f"(tol {DEFAULT_REL_TOL})"
        )


# -- the sweep integration --------------------------------------------------


def test_run_sweep_fastpath_smoke():
    spec = build_sweep_spec(
        "sweep-rack-kvs",
        hosts=(1, 2),
        rates_kpps=(8.0, 32.0),
        duration_s=0.2,
        keyspace=4_000,
    )
    result = run_sweep(spec, fastpath=True)
    assert len(result.points) == 4
    for point in result.points:
        assert point.software.achieved_pps > 0.0
        assert point.hardware.total_power_w > 0.0
        assert point.hardware.ops_per_watt > point.software.ops_per_watt
    # the fast path must still drive the tipping-point reduction + report
    assert result.tipping_points()
    assert "sweep-rack-kvs" in result.render()
