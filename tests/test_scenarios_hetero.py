"""Heterogeneous offload racks: DeviceSpec validation, NIC-only hosts,
the on-demand sweep pin, per-device tipping points, and Paxos groups
sharing acceptor boxes."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    NO_CONTROLLER,
    NO_DEVICE,
    ControllerSpec,
    DeviceSpec,
    DnsHostSpec,
    DnsWorkloadSpec,
    KvsHostSpec,
    KvsWorkloadSpec,
    PaxosSpec,
    ScenarioBuilder,
    ScenarioSpec,
    build_spec,
    build_sweep_spec,
    hardware_variant,
    ondemand_variant,
    run_scenario,
    run_sweep,
    software_variant,
)


def _kvs_spec(**host_kwargs) -> ScenarioSpec:
    return ScenarioSpec(
        name="t",
        duration_s=0.3,
        kvs_hosts=(KvsHostSpec(name="h0", **host_kwargs),),
        kvs_workload=KvsWorkloadSpec(keyspace=500, rate_kpps=2.0),
    )


# ---------------------------------------------------------------------------
# DeviceSpec validation.
# ---------------------------------------------------------------------------


class TestDeviceSpecValidation:
    def test_default_is_the_netfpga(self):
        assert KvsHostSpec(name="h").device.kind == "netfpga-sume"

    def test_unknown_kind_suggests_closest(self):
        spec = _kvs_spec(device=DeviceSpec(kind="netfga-sume"))
        with pytest.raises(ConfigurationError, match="did you mean 'netfpga-sume'"):
            spec.validate()

    def test_exact_case_insensitive_kind_resolves(self):
        _kvs_spec(
            device=DeviceSpec(kind="ASIC-NIC"),
            controller=ControllerSpec(kind="network"),
        ).validate()

    def test_unknown_device_param_rejected(self):
        spec = _kvs_spec(device=DeviceSpec(kind="netfpga-sume", params=dict(pes=9)))
        with pytest.raises(ConfigurationError, match="device param 'pes'"):
            spec.validate()

    def test_params_reach_the_card_factory(self):
        spec = _kvs_spec(
            device=DeviceSpec(kind="netfpga-sume", params=dict(pe_count=2))
        )
        run = ScenarioBuilder(spec).build()
        card = run.kvs_hosts[0].card
        assert sum(1 for m in card.modules if m.startswith("pe")) == 2

    def test_none_device_rejects_start_in_hardware(self):
        spec = _kvs_spec(
            device=NO_DEVICE, controller=NO_CONTROLLER, start_in_hardware=True
        )
        with pytest.raises(ConfigurationError, match="cannot start_in_hardware"):
            spec.validate()

    @pytest.mark.parametrize("kind", ["host", "network", "predictive"])
    def test_none_device_rejects_shifting_controllers(self, kind):
        spec = _kvs_spec(device=NO_DEVICE, controller=ControllerSpec(kind=kind))
        with pytest.raises(ConfigurationError, match="NIC-only"):
            spec.validate()

    def test_none_device_dns_rules_apply_too(self):
        spec = ScenarioSpec(
            name="t",
            duration_s=0.3,
            dns_hosts=(
                DnsHostSpec(name="d0", device=NO_DEVICE, start_in_hardware=True,
                            controller=NO_CONTROLLER),
            ),
            dns_workload=DnsWorkloadSpec(n_names=50, rate_kpps=2.0),
        )
        with pytest.raises(ConfigurationError, match="cannot start_in_hardware"):
            spec.validate()

    def test_paxos_group_rejects_none_device(self):
        spec = ScenarioSpec(
            name="t",
            duration_s=0.3,
            paxos_groups=(PaxosSpec(name="px", device=NO_DEVICE),),
        )
        with pytest.raises(ConfigurationError, match="cannot host paxos"):
            spec.validate()

    def test_paxos_group_rejects_fixed_function_nic(self):
        spec = ScenarioSpec(
            name="t",
            duration_s=0.3,
            paxos_groups=(PaxosSpec(name="px", device=DeviceSpec(kind="asic-nic")),),
        )
        with pytest.raises(ConfigurationError, match="cannot host paxos"):
            spec.validate()


# ---------------------------------------------------------------------------
# NIC-only hosts at runtime.
# ---------------------------------------------------------------------------


class TestNicOnlyHost:
    def test_builds_without_card_or_classifier(self):
        spec = _kvs_spec(device=NO_DEVICE, controller=NO_CONTROLLER)
        run = ScenarioBuilder(spec).build()
        host = run.kvs_hosts[0]
        assert host.card is None
        assert host.lake is None
        assert host.classifier is None
        assert host.server.nic is not None  # the NIC stays in
        result = run.execute()
        assert result.host("h0").responses > 0
        assert result.host("h0").device_kind == "none"
        assert result.host("h0").hw_hits == 0
        assert result.host("h0").shift_times_us == []

    def test_wall_power_includes_the_nic_not_a_card(self):
        """A NIC-only host's wall draw is platform + 3W NIC — below any
        host carrying a standby card."""
        carded = ScenarioBuilder(_kvs_spec(controller=NO_CONTROLLER)).build()
        nic_only = ScenarioBuilder(
            _kvs_spec(device=NO_DEVICE, controller=NO_CONTROLLER)
        ).build()
        carded.execute()
        nic_only.execute()
        card_w = carded.kvs_hosts[0].wall_sampler.series.values[0]
        nic_w = nic_only.kvs_hosts[0].wall_sampler.series.values[0]
        assert nic_w < card_w


# ---------------------------------------------------------------------------
# Pinned variants on heterogeneous racks.
# ---------------------------------------------------------------------------


class TestHeteroPins:
    def test_hardware_pin_skips_nic_only_hosts(self):
        spec = build_spec("rack-hetero")
        hw = hardware_variant(spec)
        by_kind = {h.device.kind: h for h in hw.kvs_hosts}
        assert by_kind["netfpga-sume"].start_in_hardware
        assert by_kind["asic-nic"].start_in_hardware
        assert not by_kind["none"].start_in_hardware
        hw.validate()  # the pin never violates the NIC-only rules

    def test_software_pin_validates_too(self):
        software_variant(build_spec("rack-hetero")).validate()

    def test_ondemand_variant_keeps_controllers_drops_triggers(self):
        spec = build_spec("rack-mixed")
        od = ondemand_variant(spec)
        assert od.name == "rack-mixed[od]"
        assert od.kvs_hosts[0].colocated == ()
        assert od.kvs_hosts[0].controller == spec.kvs_hosts[0].controller
        for host in (*od.kvs_hosts, *od.dns_hosts):
            assert host.power_save
            assert not host.start_in_hardware
        for group in od.paxos_groups:
            assert group.shifts == spec.paxos_groups[0].shifts or group.shifts
            assert not group.start_in_hardware


# ---------------------------------------------------------------------------
# The hetero scenario and sweep end to end (tiny horizons).
# ---------------------------------------------------------------------------


class TestRackHetero:
    def test_mixed_rack_runs_and_labels_devices(self):
        result = run_scenario(
            "rack-hetero",
            duration_s=1.0,
            rate_per_host_kpps=4.0,
            mid_rate_per_host_kpps=5.0,
            peak_rate_per_host_kpps=6.0,
            keyspace=2_000,
        )
        kinds = {h.name: h.device_kind for h in result.hosts}
        assert kinds == {
            "kvs0": "netfpga-sume", "kvs1": "asic-nic", "kvs2": "none",
        }
        assert all(h.responses > 0 for h in result.hosts)
        # the device column appears for heterogeneous racks only
        assert "asic-nic" in result.render()

    def test_homogeneous_override(self):
        spec = build_spec("rack-hetero", device_kind="asic-nic", ramp=False)
        assert {h.device.kind for h in spec.kvs_hosts} == {"asic-nic"}
        assert spec.kvs_workload.phases == ()

    def test_sweep_reports_per_device_tipping_points(self):
        spec = build_sweep_spec(
            "sweep-rack-hetero",
            device_kinds=("netfpga-sume", "asic-nic", "none"),
            rates_kpps=(8.0, 32.0),
            duration_s=0.3,
            keyspace=1_000,
        )
        result = run_sweep(spec)
        tips = {t.fixed["device_kind"]: t for t in result.tipping_points()}
        assert set(tips) == {"netfpga-sume", "asic-nic", "none"}
        # the NIC-only rack never tips: hardware == software there
        assert tips["none"].crossover is None
        for pt in result.points:
            if pt.params["device_kind"] == "none":
                assert pt.hardware.ops_per_watt == pytest.approx(
                    pt.software.ops_per_watt
                )
            assert pt.ondemand is not None
            assert pt.ondemand.achieved_pps > 0
        # the cheaper card tips no later than the NetFPGA
        asic_tip = tips["asic-nic"].crossover
        netfpga_tip = tips["netfpga-sume"].crossover
        if asic_tip is not None and netfpga_tip is not None:
            assert asic_tip <= netfpga_tip
        text = result.render()
        assert "od ops/W" in text
        assert "ondemand ops/W @ tip" in text


# ---------------------------------------------------------------------------
# Shared acceptor boxes.
# ---------------------------------------------------------------------------


class TestSharedAcceptors:
    def test_acceptor_hosts_length_must_match(self):
        spec = ScenarioSpec(
            name="t",
            duration_s=0.3,
            paxos_groups=(
                PaxosSpec(name="px", n_acceptors=3, acceptor_hosts=("a", "b")),
            ),
        )
        with pytest.raises(ConfigurationError, match="2 acceptor hosts for 3"):
            spec.validate()

    def test_shared_names_collide_only_with_non_acceptors(self):
        spec = ScenarioSpec(
            name="t",
            duration_s=0.3,
            kvs_hosts=(KvsHostSpec(name="box0"),),
            kvs_workload=KvsWorkloadSpec(),
            paxos_groups=(
                PaxosSpec(name="px", n_acceptors=1, acceptor_hosts=("box0",)),
            ),
        )
        with pytest.raises(ConfigurationError, match="box0"):
            spec.validate()

    def test_two_groups_share_boxes_and_split_power(self):
        result = run_scenario("rack-paxos-shared", duration_s=1.2)
        assert all(g.decided > 0 for g in result.paxos_groups)
        assert result.attributed_power_w() == pytest.approx(
            result.total_wall_power_w, abs=1e-6
        )
        # px0 drives 3 clients, px1 one: the busier group owns the larger
        # share of the shared boxes (proportional, not equal, split)
        assert (
            result.power_by_placement["px0"] > result.power_by_placement["px1"]
        )

    def test_shared_boxes_are_sampled_once(self):
        spec = build_spec("rack-paxos-shared", duration_s=0.5)
        run = ScenarioBuilder(spec).build()
        g0, g1 = run.paxos_groups
        for name in spec.paxos_groups[0].acceptor_hosts:
            assert g0.wall_samplers[name] is g1.wall_samplers[name]

    def test_disjoint_groups_still_lay_out_disjointly(self):
        spec = build_spec("rack-mixed")
        names = [
            node for g in spec.paxos_groups for node in g.node_names()
        ]
        assert len(names) == len(set(names))
