"""LRU store semantics, including hypothesis-checked invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.kvs import LruStore
from repro.errors import ConfigurationError


def test_get_set_delete():
    store = LruStore(10)
    store.set("a", b"1")
    assert store.get("a") == b"1"
    assert store.delete("a")
    assert store.get("a") is None
    assert not store.delete("a")


def test_eviction_order_is_lru():
    store = LruStore(2)
    store.set("a", b"1")
    store.set("b", b"2")
    store.get("a")           # refresh a
    store.set("c", b"3")     # evicts b
    assert "a" in store and "c" in store and "b" not in store
    assert store.evictions == 1


def test_overwrite_does_not_evict():
    store = LruStore(2)
    store.set("a", b"1")
    store.set("b", b"2")
    store.set("a", b"new")
    assert len(store) == 2
    assert store.evictions == 0
    assert store.get("a") == b"new"


def test_hit_ratio():
    store = LruStore(10)
    store.set("a", b"1")
    store.get("a")
    store.get("a")
    store.get("missing")
    assert store.hit_ratio == pytest.approx(2 / 3)


def test_bytes_accounting():
    store = LruStore(10)
    store.set("a", b"12345")
    assert store.bytes_stored == 5
    store.set("a", b"12")
    assert store.bytes_stored == 2
    store.delete("a")
    assert store.bytes_stored == 0


def test_clear():
    store = LruStore(10)
    store.set("a", b"1")
    store.clear()
    assert len(store) == 0
    assert store.bytes_stored == 0


def test_lru_key():
    store = LruStore(10)
    assert store.lru_key() is None
    store.set("a", b"1")
    store.set("b", b"2")
    store.get("a")
    assert store.lru_key() == "b"


def test_capacity_validated():
    with pytest.raises(ConfigurationError):
        LruStore(0)


# -- property-based invariants -------------------------------------------------

_ops = st.lists(
    st.tuples(
        st.sampled_from(["get", "set", "delete"]),
        st.integers(min_value=0, max_value=20).map(lambda i: f"k{i}"),
    ),
    max_size=200,
)


@given(ops=_ops, capacity=st.integers(min_value=1, max_value=8))
@settings(max_examples=100, deadline=None)
def test_lru_invariants(ops, capacity):
    store = LruStore(capacity)
    shadow = {}
    for op, key in ops:
        if op == "set":
            store.set(key, key.encode())
            shadow[key] = key.encode()
        elif op == "get":
            value = store.get(key)
            if value is not None:
                # never returns a value that was not stored
                assert shadow.get(key) == value
        else:
            store.delete(key)
            shadow.pop(key, None)
        # capacity invariant
        assert len(store) <= capacity
        # byte accounting is never negative
        assert store.bytes_stored >= 0


@given(keys=st.lists(st.integers(0, 100).map(str), min_size=1, max_size=100))
@settings(max_examples=100, deadline=None)
def test_most_recent_key_always_present(keys):
    store = LruStore(3)
    for key in keys:
        store.set(key, b"v")
        assert key in store  # the most recently set key survives
