"""§8 energy analysis and the §10 placement advisor."""

import pytest

from repro.core import tipping_point, tor_switch_analysis
from repro.core.energy_model import programmable_adoption_penalty_w
from repro.core.placement import ApplicationProfile, PlacementAdvisor
from repro.errors import ConfigurationError
from repro.steady import kvs_models
from repro.units import kpps, mpps
from repro.workloads.dynamo import PowerVariationAnalysis


class TestTippingPoint:
    def test_kvs_tipping(self):
        models = kvs_models()
        analysis = tipping_point(models["memcached"], models["lake"])
        assert analysis.hardware_ever_wins
        assert analysis.crossover_pps == pytest.approx(kpps(80), rel=0.15)
        assert analysis.software_idle_w < analysis.hardware_idle_w

    def test_describe(self):
        models = kvs_models()
        text = tipping_point(models["memcached"], models["lake"]).describe()
        assert "Kpps" in text

    def test_adoption_penalty_zero(self):
        """§6/§9.4: programmable switches cost nothing extra at idle."""
        assert programmable_adoption_penalty_w() == 0.0


class TestTorSwitch:
    def test_crossover_effectively_zero(self):
        analysis = tor_switch_analysis(kvs_models()["memcached"])
        assert analysis.switch_always_wins
        assert analysis.crossover_pps < 1000.0

    def test_server_dynamic_power_dwarfs_switch(self):
        """§9.4: a million queries draw <1W on the switch, unparalleled by
        the CPU."""
        analysis = tor_switch_analysis(kvs_models()["memcached"])
        assert analysis.server_dynamic_w_per_mqps > 50 * analysis.switch_w_per_mqps

    def test_nodes_validated(self):
        with pytest.raises(ConfigurationError):
            tor_switch_analysis(kvs_models()["memcached"], nodes_served=0)


class TestPlacementAdvisor:
    def test_low_rate_stays_on_server(self):
        advisor = PlacementAdvisor()
        best = advisor.best(ApplicationProfile("tiny", peak_rate_pps=kpps(10)))
        assert best.platform == "server"

    def test_extreme_rate_needs_switch(self):
        """§3.2/§10: billions of messages/second only fit the switch ASIC."""
        advisor = PlacementAdvisor()
        best = advisor.best(
            ApplicationProfile("paxos", peak_rate_pps=100e6, latency_sensitive=True)
        )
        assert best.platform == "switch-asic"

    def test_large_state_disqualifies_switch(self):
        """§10: switches have limited resources per Gbps."""
        advisor = PlacementAdvisor()
        ranked = advisor.recommend(
            ApplicationProfile(
                "bigkvs", peak_rate_pps=mpps(60.0), state_bytes=4 << 30
            )
        )
        platforms = [r.platform for r in ranked]
        assert platforms.index("switch-asic") > platforms.index("fpga-nic")

    def test_traffic_not_through_switch_penalized(self):
        advisor = PlacementAdvisor()
        through = advisor.recommend(
            ApplicationProfile("a", peak_rate_pps=mpps(60.0), traffic_through_switch=True)
        )
        not_through = advisor.recommend(
            ApplicationProfile("a", peak_rate_pps=mpps(60.0), traffic_through_switch=False)
        )
        score = {r.platform: r.score for r in through}["switch-asic"]
        score2 = {r.platform: r.score for r in not_through}["switch-asic"]
        assert score2 < score

    def test_high_power_variance_favors_server(self):
        """§9.3: large variance makes on-demand INC risky."""
        advisor = PlacementAdvisor()
        volatile = PowerVariationAnalysis(window_s=60.0, median=0.37, p99=0.62)
        best = advisor.best(
            ApplicationProfile(
                "web", peak_rate_pps=kpps(200), power_variation=volatile
            )
        )
        assert best.platform == "server"

    def test_flexibility_favors_fpga(self):
        advisor = PlacementAdvisor()
        ranked = advisor.recommend(
            ApplicationProfile(
                "exotic", peak_rate_pps=mpps(5.0), needs_flexibility=True,
                latency_sensitive=True,
            )
        )
        assert ranked[0].platform == "fpga-nic"

    def test_every_recommendation_has_reasons(self):
        advisor = PlacementAdvisor()
        for rec in advisor.recommend(ApplicationProfile("x", peak_rate_pps=mpps(1.0))):
            assert rec.reasons

    def test_negative_rate_rejected(self):
        advisor = PlacementAdvisor()
        with pytest.raises(ConfigurationError):
            advisor.recommend(ApplicationProfile("x", peak_rate_pps=-1.0))
