"""DNS: messages, zone, NSD and Emu DNS."""

import pytest

from repro import calibration as cal
from repro.apps.dns import (
    ARecord,
    DnsClient,
    DnsQuery,
    DnsRcode,
    DnsResponse,
    EmuDns,
    SoftwareNsd,
    ZoneTable,
)
from repro.apps.dns.emu import EMU_ZONE_CAPACITY
from repro.errors import ConfigurationError, ProtocolError
from repro.host import make_i7_server
from repro.hw.fpga import make_emu_dns_fpga
from repro.net import Switch, Topology
from repro.net.packet import TrafficClass, make_packet
from repro.sim import Simulator
from repro.units import kpps, msec, sec


class TestMessages:
    def test_name_normalization(self):
        q = DnsQuery("WWW.Example.COM.")
        assert q.name == "www.example.com"

    def test_name_length_limits(self):
        with pytest.raises(ProtocolError):
            DnsQuery("a" * 254)
        with pytest.raises(ProtocolError):
            DnsQuery(("a" * 64) + ".com")
        with pytest.raises(ProtocolError):
            DnsQuery("bad..example.com")

    def test_arecord_validation(self):
        ARecord("x.com", "10.0.0.1")
        with pytest.raises(ProtocolError):
            ARecord("x.com", "999.0.0.1")
        with pytest.raises(ProtocolError):
            ARecord("x.com", "10.0.0")
        with pytest.raises(ProtocolError):
            ARecord("x.com", "1.2.3.4", ttl=-1)

    def test_response_consistency(self):
        record = ARecord("x.com", "1.2.3.4")
        DnsResponse(DnsRcode.NOERROR, "x.com", record=record)
        with pytest.raises(ProtocolError):
            DnsResponse(DnsRcode.NOERROR, "x.com")
        with pytest.raises(ProtocolError):
            DnsResponse(DnsRcode.NXDOMAIN, "x.com", record=record)


class TestZone:
    def test_resolve_hit(self):
        zone = ZoneTable()
        zone.add(ARecord("web.corp", "10.1.2.3"))
        response = zone.resolve(DnsQuery("WEB.CORP"))
        assert response.rcode is DnsRcode.NOERROR
        assert response.record.ipv4 == "10.1.2.3"

    def test_resolve_miss_is_nxdomain(self):
        """§3.3: absent names: 'Emu DNS informs the client that it cannot
        resolve the name'."""
        response = ZoneTable().resolve(DnsQuery("nope.example"))
        assert response.rcode is DnsRcode.NXDOMAIN

    def test_recursive_queries_unsupported(self):
        """§3.3: non-recursive queries only."""
        zone = ZoneTable()
        zone.add(ARecord("x.com", "1.1.1.1"))
        response = zone.resolve(DnsQuery("x.com", recursive=True))
        assert response.rcode is DnsRcode.NOTIMP

    def test_capacity_enforced(self):
        zone = ZoneTable(capacity=2)
        zone.add(ARecord("a.com", "1.1.1.1"))
        zone.add(ARecord("b.com", "1.1.1.2"))
        with pytest.raises(ConfigurationError):
            zone.add(ARecord("c.com", "1.1.1.3"))
        # replacing an existing record is fine at capacity
        zone.add(ARecord("a.com", "9.9.9.9"))

    def test_remove(self):
        zone = ZoneTable()
        zone.add(ARecord("a.com", "1.1.1.1"))
        assert zone.remove("A.COM")
        assert not zone.remove("a.com")


def _dns_setup(hardware: bool, rate_pps=kpps(5)):
    sim = Simulator()
    topo = Topology(sim)
    switch = Switch(sim, "tor")
    topo.add(switch)
    server = make_i7_server(sim, name="dns-server", nic=None if hardware else None)
    zone = ZoneTable()
    for i in range(100):
        zone.add(ARecord(f"host{i}.rack.corp", f"10.0.0.{i % 250 + 1}"))
    if hardware:
        card = make_emu_dns_fpga()
        server.install_card(card.power_w)
        service = EmuDns(sim, card, server, zone=ZoneTable(capacity=EMU_ZONE_CAPACITY))
        for i in range(100):
            service.zone.add(ARecord(f"host{i}.rack.corp", f"10.0.0.{i % 250 + 1}"))
        server.set_packet_handler(service.offer)
    else:
        service = SoftwareNsd(sim, server, zone=zone)
        server.set_packet_handler(service.offer)
    topo.add(server)
    topo.connect_via_switch("tor", "dns-server")
    counter = [0]

    def sampler():
        counter[0] += 1
        return f"host{counter[0] % 120}.rack.corp"  # ~17% NXDOMAIN

    client = DnsClient(sim, "client", "dns-server", name_sampler=sampler)
    topo.add(client)
    topo.connect_via_switch("tor", "client")
    client.set_rate(rate_pps)
    sim.run_until(sec(0.3))
    return sim, server, service, client


class TestNsd:
    def test_serves_queries(self):
        _, _, _, client = _dns_setup(hardware=False)
        assert client.responses == pytest.approx(1500, rel=0.05)
        assert client.resolved > 0
        assert client.nxdomain > 0

    def test_latency_about_70us(self):
        """§3.3: NSD ≈ ×70 slower than Emu DNS (~70µs median)."""
        _, _, _, client = _dns_setup(hardware=False)
        assert client.latency.median() == pytest.approx(cal.NSD_MEDIAN_US, rel=0.25)

    def test_cpu_load_registered(self):
        _, server, _, _ = _dns_setup(hardware=False, rate_pps=kpps(100))
        assert server.cpu.app_utilization("nsd") > 0.0


class TestEmuDns:
    def test_serves_queries(self):
        _, _, _, client = _dns_setup(hardware=True)
        assert client.responses == pytest.approx(1500, rel=0.05)

    def test_latency_about_1us_at_server(self):
        _, _, _, client = _dns_setup(hardware=True)
        # end-to-end includes ~4µs of links; pipeline itself is ~1µs
        assert client.latency.median() < 8.0

    def test_x70_improvement_over_nsd(self):
        _, _, _, sw_client = _dns_setup(hardware=False)
        _, _, _, hw_client = _dns_setup(hardware=True)
        # compare service latency net of the shared ~4.4µs link time
        wire_us = 4.4
        sw = sw_client.latency.median() - wire_us
        hw = hw_client.latency.median() - wire_us
        assert sw / hw > 30  # paper: ~×70 for the service itself

    def test_enable_disable_hooks(self):
        sim = Simulator()
        server = make_i7_server(sim, nic=None)
        card = make_emu_dns_fpga()
        emu = EmuDns(sim, card, server)
        full = card.power_w()
        emu.disable(power_save=True)
        assert card.power_w() < full
        emu.enable()
        assert card.power_w() == pytest.approx(full)
        assert emu.enabled

    def test_zone_capacity_is_onchip_limited(self):
        """§3.4: Emu DNS uses only on-chip memory; the table is bounded."""
        sim = Simulator()
        server = make_i7_server(sim, nic=None)
        emu = EmuDns(sim, make_emu_dns_fpga(), server)
        assert emu.zone.capacity == EMU_ZONE_CAPACITY

    def test_default_rng_is_independent_per_host(self):
        """Regression: anycast replicas built without an explicit rng must
        not share a jitter stream (a fixed ``random.Random(0xD45)`` made
        every replica's pipeline jitter identical)."""

        def emu_on(name):
            sim = Simulator()
            server = make_i7_server(sim, name=name, nic=None)
            return EmuDns(sim, make_emu_dns_fpga(), server)

        packet = make_packet(
            "c", "s", TrafficClass.DNS, payload=DnsQuery("a.example.com")
        )
        a, b = emu_on("dns-a"), emu_on("dns-b")
        draws_a = [a.request_latency_us(packet) for _ in range(8)]
        draws_b = [b.request_latency_us(packet) for _ in range(8)]
        assert draws_a != draws_b
        # same node name -> same deterministic stream
        again = emu_on("dns-a")
        assert [again.request_latency_us(packet) for _ in range(8)] == draws_a
