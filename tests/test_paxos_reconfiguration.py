"""Acceptor-set reconfiguration (§9.2 extension), with hypothesis checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.paxos.reconfiguration import (
    Configuration,
    ReconfigurableGroup,
    StopCommand,
)
from repro.errors import ProtocolError


def test_normal_operation():
    group = ReconfigurableGroup(["a0", "a1", "a2"])
    for i in range(5):
        assert group.submit(f"cmd{i}") == i + 1
    assert group.delivered_commands() == [f"cmd{i}" for i in range(5)]


def test_reconfigure_replaces_acceptors():
    group = ReconfigurableGroup(["a0", "a1", "a2"])
    group.submit("before")
    config = group.reconfigure(["b0", "b1", "b2"])
    assert config.epoch == 1
    assert config.acceptors == ("b0", "b1", "b2")
    assert group.config is config


def test_log_preserved_across_reconfiguration():
    group = ReconfigurableGroup(["a0", "a1", "a2"])
    for i in range(4):
        group.submit(f"old{i}")
    group.reconfigure(["b0", "b1", "b2"])
    for i in range(3):
        group.submit(f"new{i}")
    assert group.delivered_commands() == [
        "old0", "old1", "old2", "old3", "new0", "new1", "new2",
    ]


def test_new_epoch_owns_later_instances():
    group = ReconfigurableGroup(["a0", "a1", "a2"])
    group.submit("x")
    config = group.reconfigure(["b0", "b1"])
    # stop command consumed instance 2; the new epoch starts at 3
    assert config.first_instance == 3
    assert group.submit("y") == 3


def test_growing_and_shrinking_membership():
    group = ReconfigurableGroup(["a0", "a1", "a2"])
    group.submit("a")
    group.reconfigure(["a0", "a1", "a2", "b0", "b1"])  # grow to 5
    assert group.config.quorum == 3
    group.submit("b")
    group.reconfigure(["b0", "b1", "b2"])  # shrink to 3
    assert group.config.quorum == 2
    group.submit("c")
    assert group.delivered_commands() == ["a", "b", "c"]


def test_overlapping_membership():
    group = ReconfigurableGroup(["a0", "a1", "a2"])
    group.submit("one")
    group.reconfigure(["a1", "a2", "c0"])  # keeps two old members
    group.submit("two")
    assert group.delivered_commands() == ["one", "two"]


def test_state_transfer_makes_new_acceptors_authoritative():
    group = ReconfigurableGroup(["a0", "a1", "a2"])
    for i in range(3):
        group.submit(f"v{i}")
    group.reconfigure(["b0", "b1", "b2"])
    # the fresh acceptors carry the transferred log
    for name in ("b0", "b1", "b2"):
        acceptor = group.acceptors[name]
        assert acceptor.last_voted_instance >= 4  # 3 commands + stop
        assert acceptor.votes[1][1] == "v0"


def test_stop_command_excluded_from_delivered():
    group = ReconfigurableGroup(["a0", "a1", "a2"])
    group.submit("v")
    group.reconfigure(["b0", "b1", "b2"])
    assert all(
        not isinstance(cmd, StopCommand) for cmd in group.delivered_commands()
    )


def test_empty_new_config_rejected():
    group = ReconfigurableGroup(["a0", "a1", "a2"])
    with pytest.raises(ProtocolError):
        group.reconfigure([])


def test_configuration_validation():
    with pytest.raises(ProtocolError):
        Configuration(epoch=-1, acceptors=("a",))
    with pytest.raises(ProtocolError):
        Configuration(epoch=0, acceptors=())
    with pytest.raises(ProtocolError):
        Configuration(epoch=0, acceptors=("a",), first_instance=0)


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_property_log_invariant_under_random_reconfigurations(data):
    """The delivered command sequence is append-only across any schedule of
    submissions and reconfigurations."""
    group = ReconfigurableGroup(["a0", "a1", "a2"])
    submitted = []
    pool = [f"n{i}" for i in range(12)]  # candidate acceptor names
    counter = 0
    for _ in range(data.draw(st.integers(3, 25), label="steps")):
        action = data.draw(st.sampled_from(["submit", "reconfigure"]), label="a")
        if action == "submit":
            counter += 1
            value = f"cmd{counter}"
            if group.submit(value) is not None:
                submitted.append(value)
        else:
            size = data.draw(st.integers(1, 5), label="size")
            members = data.draw(
                st.lists(st.sampled_from(pool), min_size=size, max_size=size,
                         unique=True),
                label="members",
            )
            group.reconfigure(members)
        # invariant: everything submitted so far is delivered, in order
        assert group.delivered_commands() == submitted
    # epochs are contiguous and first_instances strictly increase
    epochs = [c.epoch for c in group.configs]
    assert epochs == list(range(len(epochs)))
    firsts = [c.first_instance for c in group.configs]
    assert firsts == sorted(firsts)
