"""Every experiment runner renders non-trivial, well-formed text.

Catches regressions in the reporting layer across the whole catalogue
without asserting exact formatting.
"""

import pytest

from repro.experiments import figures


RUNNERS = [
    ("figure3a", lambda: figures.figure3a(steps=7)),
    ("figure3b", lambda: figures.figure3b(steps=7)),
    ("figure3c", lambda: figures.figure3c(steps=7)),
    ("figure4", figures.figure4),
    ("figure5", lambda: figures.figure5(steps=7)),
    ("section5", lambda: figures.section5_memories(samples=500)),
    ("section6", figures.section6_asic),
    ("section7", figures.section7_server),
    ("section8", figures.section8_tipping),
    ("section93", lambda: figures.section93_traces(trace_seconds=400)),
    ("section10", figures.section10_platforms),
]


@pytest.mark.parametrize("name,runner", RUNNERS, ids=[n for n, _ in RUNNERS])
def test_render_well_formed(name, runner):
    text = runner().render()
    lines = text.splitlines()
    assert len(lines) >= 4
    # the table header separator is present somewhere
    assert any(set(line.strip()) <= {"-", " "} and "-" in line for line in lines)
    # no accidental repr leakage
    assert "object at 0x" not in text


@pytest.mark.parametrize("name,runner", RUNNERS, ids=[n for n, _ in RUNNERS])
def test_runners_are_pure(name, runner):
    """Running twice gives identical output (no hidden global state)."""
    assert runner().render() == runner().render()
