"""Software memcached: protocol logic and DES service behaviour."""

import pytest

from repro import calibration as cal
from repro.apps.kvs import KvsClient, KvsOp, KvsRequest, KvsStatus, SoftwareMemcached
from repro.host import make_i7_server
from repro.net import Switch, Topology
from repro.sim import Simulator
from repro.units import kpps, sec


def _functional():
    sim = Simulator()
    server = make_i7_server(sim)
    return sim, SoftwareMemcached(sim, server)


class TestExecute:
    def test_set_then_get(self):
        _, mc = _functional()
        assert mc.execute(KvsRequest(KvsOp.SET, "k", value=b"v")).status is KvsStatus.STORED
        response = mc.execute(KvsRequest(KvsOp.GET, "k"))
        assert response.status is KvsStatus.HIT
        assert response.value == b"v"

    def test_get_missing(self):
        _, mc = _functional()
        assert mc.execute(KvsRequest(KvsOp.GET, "nope")).status is KvsStatus.MISS

    def test_delete(self):
        _, mc = _functional()
        mc.execute(KvsRequest(KvsOp.SET, "k", value=b"v"))
        assert mc.execute(KvsRequest(KvsOp.DELETE, "k")).status is KvsStatus.DELETED
        assert mc.execute(KvsRequest(KvsOp.DELETE, "k")).status is KvsStatus.NOT_FOUND

    def test_capacity_defaults_to_nic(self):
        _, mc = _functional()
        assert mc.capacity_pps == cal.MEMCACHED_PEAK_PPS_MELLANOX


def _des(rate_pps, duration_s=0.5):
    sim = Simulator()
    server = make_i7_server(sim, name="mc-server")
    mc = SoftwareMemcached(sim, server)
    server.set_packet_handler(mc.offer)
    switch = Switch(sim, "tor")
    topo = Topology(sim)
    topo.add(switch)
    topo.add(server)
    mc.store.set("hot", b"value")
    client = KvsClient(
        sim, "client", "mc-server",
        key_sampler=lambda: "hot", value_sampler=lambda: b"v",
    )
    topo.add(client)
    topo.connect_via_switch("tor", "mc-server")
    topo.connect_via_switch("tor", "client")
    client.set_rate(rate_pps)
    sim.run_until(sec(duration_s))
    return sim, server, mc, client


class TestDesService:
    def test_all_requests_answered_below_capacity(self):
        _, _, mc, client = _des(kpps(20))
        assert client.responses == pytest.approx(20_000 * 0.5, rel=0.05)
        assert client.hits == client.responses

    def test_latency_matches_calibration(self):
        _, _, _, client = _des(kpps(10))
        # stack 14µs + ~1µs service + ~4µs links
        assert client.latency.median() == pytest.approx(
            cal.MEMCACHED_SW_MEDIAN_US, rel=0.4
        )

    def test_cpu_load_registered(self):
        _, server, mc, _ = _des(kpps(50))
        assert server.cpu.app_utilization("memcached") > 0.0

    def test_power_rises_with_rate(self):
        _, s1, _, _ = _des(kpps(5))
        _, s2, _, _ = _des(kpps(200))
        assert s2.wall_power_w() > s1.wall_power_w()

    def test_queue_drops_over_capacity(self):
        _, _, mc, client = _des(rate_pps=3_000_000, duration_s=0.05)
        assert mc.queue.stats.dropped > 0


def test_stop_clears_cpu_load():
    sim = Simulator()
    server = make_i7_server(sim)
    mc = SoftwareMemcached(sim, server)
    assert "memcached" in server.cpu.apps
    mc.stop()
    assert "memcached" not in server.cpu.apps
