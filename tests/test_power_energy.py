"""The §8 energy model and the wall power meter."""

import pytest

from repro.errors import ConfigurationError
from repro.power import NiccoliniEnergyModel, PowerMeter, ops_per_watt
from repro.sim import Simulator
from repro.units import sec


def _model():
    return NiccoliniEnergyModel(
        active_power_w=lambda rate: 40.0 + rate / 1e4,
        idle_power_w=40.0,
        sleep_power_w=5.0,
        sleep_transition_s=0.01,
    )


class TestEnergyModel:
    def test_active_energy(self):
        # 100k packets at 100kpps = 1s of activity at Pd(100k) = 50W
        e = _model().energy(packets=100_000, rate_pps=100_000)
        assert e.active_j == pytest.approx(50.0)
        assert e.total_j == pytest.approx(50.0)

    def test_idle_energy(self):
        e = _model().energy(packets=0, rate_pps=0, idle_s=10.0)
        assert e.idle_j == pytest.approx(400.0)

    def test_sleep_transitions(self):
        e = _model().energy(packets=0, rate_pps=0, sleep_transitions=4)
        assert e.sleep_transition_j == pytest.approx(4 * 5.0 * 0.01)

    def test_all_three_terms_sum(self):
        e = _model().energy(
            packets=100_000, rate_pps=100_000, idle_s=1.0, sleep_transitions=1
        )
        assert e.total_j == pytest.approx(e.active_j + e.idle_j + e.sleep_transition_j)

    def test_dynamic_power(self):
        assert _model().dynamic_power_w(100_000) == pytest.approx(10.0)

    def test_work_without_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            _model().energy(packets=10, rate_pps=0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            _model().energy(packets=-1, rate_pps=10)
        with pytest.raises(ConfigurationError):
            NiccoliniEnergyModel(lambda r: 1.0, idle_power_w=-1.0)

    def test_slower_processing_of_same_work_costs_more_at_concave_power(self):
        """Race-to-idle: finishing W packets at a higher rate and idling the
        remainder beats processing slowly, whenever Pd grows sublinearly."""
        model = NiccoliniEnergyModel(
            active_power_w=lambda rate: 40.0 + 30.0 * (rate / 1e6) ** 0.5,
            idle_power_w=40.0,
        )
        work = 1e6
        fast = model.energy(work, rate_pps=1e6, idle_s=9.0)  # 1s active + 9s idle
        slow = model.energy(work, rate_pps=1e5, idle_s=0.0)  # 10s active
        assert fast.total_j < slow.total_j


class TestOpsPerWatt:
    def test_basic(self):
        assert ops_per_watt(1_000_000, 50.0) == pytest.approx(20_000.0)

    def test_rejects_nonpositive_power(self):
        with pytest.raises(ConfigurationError):
            ops_per_watt(1.0, 0.0)

    def test_rejects_negative_rate(self):
        with pytest.raises(ConfigurationError):
            ops_per_watt(-1.0, 10.0)


class TestPowerMeter:
    def test_mean_and_energy(self):
        sim = Simulator()
        meter = PowerMeter(sim, lambda: 60.0, interval_us=sec(1.0))
        sim.run_until(sec(10.0))
        assert meter.mean_power_w() == pytest.approx(60.0)
        assert meter.energy_j() == pytest.approx(600.0)

    def test_stop(self):
        sim = Simulator()
        meter = PowerMeter(sim, lambda: 1.0, interval_us=sec(1.0))
        sim.run_until(sec(2.0))
        meter.stop()
        samples = len(meter.series)
        sim.run_until(sec(10.0))
        assert len(meter.series) == samples

    def test_invalid_interval(self):
        with pytest.raises(ConfigurationError):
            PowerMeter(Simulator(), lambda: 1.0, interval_us=0.0)
