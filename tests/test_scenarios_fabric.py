"""Fabric scenarios end to end: spec validation, rack-qualified naming,
the single-ToR sentinel, and the two showcase scenarios (cross-rack shard
steering, rack-split Paxos quorum)."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    NO_CONTROLLER,
    ControllerSpec,
    FabricSpec,
    KvsHostSpec,
    KvsWorkloadSpec,
    ScenarioSpec,
    UplinkSpec,
    build_spec,
    run_scenario,
)


def _fabric_spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="t",
        duration_s=0.1,
        fabric=FabricSpec(racks=2),
        kvs_hosts=(
            KvsHostSpec(name="kvs0", rack="rack0", controller=NO_CONTROLLER),
            KvsHostSpec(name="kvs1", rack="rack1", controller=NO_CONTROLLER),
        ),
        kvs_workload=KvsWorkloadSpec(keyspace=500, rate_kpps=2.0),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


# -- declaration errors ------------------------------------------------------


def test_fabric_needs_at_least_one_rack():
    with pytest.raises(ConfigurationError):
        _fabric_spec(fabric=FabricSpec(racks=0)).validate()


def test_uplink_oversubscription_below_one_rejected():
    with pytest.raises(ConfigurationError):
        _fabric_spec(
            fabric=FabricSpec(uplink=UplinkSpec(oversubscription=0.5))
        ).validate()


def test_unknown_rack_on_host_rejected():
    spec = _fabric_spec(
        kvs_hosts=(
            KvsHostSpec(name="kvs0", rack="rack7", controller=NO_CONTROLLER),
            KvsHostSpec(name="kvs1", rack="rack1", controller=NO_CONTROLLER),
        )
    )
    with pytest.raises(ConfigurationError):
        spec.validate()


def test_rack_without_fabric_rejected():
    spec = _fabric_spec(fabric=None)
    with pytest.raises(ConfigurationError):
        spec.validate()


def test_fabric_controller_without_fabric_rejected():
    spec = dataclasses.replace(
        build_spec("fabric-kvs-crossrack"), fabric=None, kvs_hosts=()
    )
    with pytest.raises(ConfigurationError):
        spec.validate()


def test_hosts_per_rack_cap_enforced():
    spec = _fabric_spec(
        fabric=FabricSpec(racks=2, hosts_per_rack=1),
        kvs_hosts=(
            KvsHostSpec(name="kvs0", rack="rack0", controller=NO_CONTROLLER),
            KvsHostSpec(name="kvs1", rack="rack0", controller=NO_CONTROLLER),
        ),
    )
    with pytest.raises(ConfigurationError):
        spec.validate()


def test_served_by_must_name_a_real_other_host():
    with pytest.raises(ConfigurationError):
        _fabric_spec(
            kvs_hosts=(
                KvsHostSpec(
                    name="kvs0", rack="rack0", controller=NO_CONTROLLER,
                    served_by="rack9/ghost",
                ),
                KvsHostSpec(name="kvs1", rack="rack1", controller=NO_CONTROLLER),
            )
        ).validate()
    with pytest.raises(ConfigurationError):
        _fabric_spec(
            kvs_hosts=(
                KvsHostSpec(
                    name="kvs0", rack="rack0", controller=NO_CONTROLLER,
                    served_by="rack0/kvs0",
                ),
                KvsHostSpec(name="kvs1", rack="rack1", controller=NO_CONTROLLER),
            )
        ).validate()


# -- rack-qualified naming ---------------------------------------------------


def test_host_names_are_reused_across_racks():
    """Two racks both declare ``kvs0``/``kvs1``; the fabric namespace keeps
    them apart and every host serves traffic."""
    result = run_scenario("fabric-kvs", duration_s=0.3)
    names = sorted(h.name for h in result.hosts)
    assert names == [
        "rack0/kvs0", "rack0/kvs1", "rack1/kvs0", "rack1/kvs1",
    ]
    assert set(result.routed_per_host) == set(names)
    assert all(count > 0 for count in result.routed_per_host.values())
    assert result.fabric_racks == ("rack0", "rack1")
    assert result.spine_crossrack_packets > 0


def test_same_spelling_different_rack_hosts_diverge():
    """Per-host RNG streams hang off the fully-qualified name, so twin
    hosts in different racks do not mirror each other's series."""
    result = run_scenario("fabric-kvs", duration_s=0.3)
    by_name = {h.name: h for h in result.hosts}
    assert (
        by_name["rack0/kvs0"].responses != by_name["rack1/kvs0"].responses
        or result.routed_per_host["rack0/kvs0"]
        != result.routed_per_host["rack1/kvs0"]
    )


def test_single_tor_results_carry_no_fabric_block():
    result = run_scenario("fig6-kvs-transition", duration_s=0.3)
    assert result.fabric_racks == ()
    assert "fabric:" not in result.render()


# -- the showcases -----------------------------------------------------------


def test_crossrack_scenario_steers_across_racks():
    """The §9.1 centralized controller moves the consolidated shard from
    the hot rack0 host back across the spine to its rack1 home."""
    result = run_scenario("fabric-kvs-crossrack", duration_s=2.0)
    assert len(result.cross_rack_steers()) >= 1
    steer = result.cross_rack_steers()[0]
    assert steer.from_host == "rack0/kvs0"
    assert steer.to_host == "rack1/kvs1"
    assert steer.from_rack == "rack0"
    assert steer.to_rack == "rack1"
    # the donated shard's traffic lands on the steered-to host afterwards
    assert result.routed_per_host["rack1/kvs1"] > 0
    # the centralized placement policy also shifted the hot host
    by_name = {h.name: h for h in result.hosts}
    assert by_name["rack0/kvs0"].shift_times_us
    rendered = result.render()
    assert "fabricctl steer" in rendered and "cross-rack" in rendered


def test_fabric_paxos_split_quorum_crosses_the_spine():
    result = run_scenario(
        "fabric-paxos-split",
        duration_s=1.0,
        shift_to_hw_s=0.3,
        shift_to_sw_s=0.6,
    )
    assert len(result.paxos_groups) == 1
    group = result.paxos_groups[0]
    assert group.name == "rack0/paxos"
    assert group.decided > 0
    assert len(group.shift_times_us) == 2
    # the rack1 acceptor's 2A/2B round-trips transit the spine
    assert result.spine_crossrack_packets > 0


def test_fabric_controller_spec_rejects_unknown_kind():
    with pytest.raises(ConfigurationError):
        _fabric_spec(
            fabric_controller=ControllerSpec(kind="loadbalance")
        ).validate()
