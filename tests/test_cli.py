"""The ``python -m repro`` command-line entry point."""

import pytest

from repro.__main__ import _EXPERIMENTS, _SCENARIOS, build_parser, main


def test_catalogue_covers_every_figure_and_section():
    expected = {
        "figure3a", "figure3b", "figure3c", "figure4", "figure5",
        "figure6", "figure7",
        "section5", "section6", "section7", "section8", "section9.3",
        "section10",
    }
    assert set(_EXPERIMENTS) == expected


def test_scenario_catalogue_exposes_registry():
    from repro.scenarios import scenario_names

    assert set(_SCENARIOS) == set(scenario_names())
    assert "rack8-kvs-sharded" in _SCENARIOS


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "figure3a" in out
    assert "section10" in out
    assert "rack8-kvs-sharded (scenario)" in out


@pytest.mark.parametrize(
    "name", ["figure3a", "figure4", "section6", "section7", "section8"]
)
def test_analytic_experiments_render(capsys, name):
    assert main([name]) == 0
    out = capsys.readouterr().out
    assert len(out.splitlines()) > 3


def test_figure7_with_duration(capsys):
    assert main(["figure7", "--duration", "0.8"]) == 0
    out = capsys.readouterr().out
    assert "Paxos leader" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nonexistent"])
