"""The ``python -m repro`` command-line entry point."""

import pytest

from repro.__main__ import _EXPERIMENTS, _SCENARIOS, build_parser, main


def test_catalogue_covers_every_figure_and_section():
    expected = {
        "figure3a", "figure3b", "figure3c", "figure4", "figure5",
        "figure6", "figure7",
        "section5", "section6", "section7", "section8", "section9.3",
        "section10",
    }
    assert set(_EXPERIMENTS) == expected


def test_scenario_catalogue_exposes_registry():
    from repro.scenarios import scenario_names

    assert set(_SCENARIOS) == set(scenario_names())
    assert "rack8-kvs-sharded" in _SCENARIOS
    assert "rack-mixed" in _SCENARIOS
    assert "fig6-kvs-netctl" in _SCENARIOS


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "figure3a" in out
    assert "section10" in out
    assert "rack8-kvs-sharded" in out


def test_list_flag_prints_descriptions(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "rack-mixed" in out
    # scenario descriptions ride along
    assert "2 Paxos groups" in out
    assert "Figure 6: host-controlled" in out
    # the sweep catalogue rides along too
    assert "sweeps (run with --sweep):" in out
    assert "sweep-rack-kvs" in out
    assert "sweep-rack-mixed" in out


def test_no_arguments_prints_usage(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().err


@pytest.mark.parametrize(
    "name", ["figure3a", "figure4", "section6", "section7", "section8"]
)
def test_analytic_experiments_render(capsys, name):
    assert main([name]) == 0
    out = capsys.readouterr().out
    assert len(out.splitlines()) > 3


def test_figure7_with_duration(capsys):
    assert main(["figure7", "--duration", "0.8"]) == 0
    out = capsys.readouterr().out
    assert "Paxos leader" in out


def test_scenario_runs_from_cli(capsys):
    assert main(["fig7-paxos-transition", "--duration", "0.6"]) == 0
    out = capsys.readouterr().out
    assert "paxos[paxos]" in out


def test_unknown_experiment_rejected(capsys):
    assert main(["nonexistent"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment or scenario" in err


def test_unknown_name_suggests_closest_match(capsys):
    assert main(["rack-mxed"]) == 2
    err = capsys.readouterr().err
    assert "did you mean 'rack-mixed'?" in err

    assert main(["figure6a"]) == 2
    err = capsys.readouterr().err
    assert "did you mean" in err


def test_mixed_case_typos_still_get_suggestions(capsys):
    """Regression: difflib on raw names meant 'Rack-Mixd' or
    'FIG6-KVS-TRANSITON' produced no suggestion at all."""
    assert main(["Rack-Mixd"]) == 2
    assert "did you mean 'rack-mixed'?" in capsys.readouterr().err

    assert main(["FIG6-KVS-TRANSITON"]) == 2
    assert "did you mean 'fig6-kvs-transition'?" in capsys.readouterr().err


def test_exact_case_insensitive_names_run_directly(capsys):
    """'SECTION8' and 'FIG7-PAXOS-TRANSITION' are exact hits, not typos."""
    assert main(["SECTION8"]) == 0
    assert len(capsys.readouterr().out.splitlines()) > 3

    assert main(["FIG7-PAXOS-TRANSITION", "--duration", "0.6"]) == 0
    assert "paxos[paxos]" in capsys.readouterr().out


def test_parser_accepts_optional_experiment():
    args = build_parser().parse_args(["--list"])
    assert args.experiment is None and args.list


def test_parser_accepts_sweep_flag():
    args = build_parser().parse_args(["--sweep", "sweep-rack-kvs"])
    assert args.sweep == "sweep-rack-kvs" and args.experiment is None
