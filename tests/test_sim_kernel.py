"""Discrete-event kernel behaviour."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_schedule_and_run_until():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda: fired.append(sim.now))
    sim.schedule(20.0, lambda: fired.append(sim.now))
    sim.run_until(15.0)
    assert fired == [10.0]
    assert sim.now == 15.0
    sim.run_until(25.0)
    assert fired == [10.0, 20.0]


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30.0, lambda: order.append("c"))
    sim.schedule(10.0, lambda: order.append("a"))
    sim.schedule(20.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fifo():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.schedule(5.0, lambda l=label: order.append(l))
    sim.run()
    assert order == list("abcde")


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(10.0, lambda: fired.append(1))
    event.cancel()
    sim.run()
    assert fired == []


def test_nested_scheduling_from_callback():
    sim = Simulator()
    fired = []

    def outer():
        sim.schedule(5.0, lambda: fired.append(sim.now))

    sim.schedule(10.0, outer)
    sim.run()
    assert fired == [15.0]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_run_until_backwards_rejected():
    sim = Simulator()
    sim.run_until(100.0)
    with pytest.raises(SimulationError):
        sim.run_until(50.0)


def test_call_every_fires_periodically():
    sim = Simulator()
    fired = []
    handle = sim.call_every(10.0, lambda: fired.append(sim.now))
    sim.run_until(55.0)
    assert fired == [10.0, 20.0, 30.0, 40.0, 50.0]
    handle.cancel()
    sim.run_until(100.0)
    assert len(fired) == 5


def test_call_every_callback_can_cancel():
    sim = Simulator()
    fired = []
    handle = sim.call_every(10.0, lambda: (fired.append(sim.now), handle.cancel()))
    sim.run_until(100.0)
    assert fired == [10.0]


def test_call_every_rejects_bad_interval():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_every(0.0, lambda: None)


def test_run_bounded_by_max_events():
    sim = Simulator()

    def reschedule():
        sim.schedule(1.0, reschedule)

    sim.schedule(1.0, reschedule)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_events_executed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_pending_counts_uncancelled():
    sim = Simulator()
    e1 = sim.schedule(10.0, lambda: None)
    sim.schedule(20.0, lambda: None)
    e1.cancel()
    assert sim.pending == 1


def test_pending_tracks_execution_and_double_cancel():
    sim = Simulator()
    e1 = sim.schedule(10.0, lambda: None)
    e2 = sim.schedule(20.0, lambda: None)
    assert sim.pending == 2
    e1.cancel()
    e1.cancel()  # idempotent: must not decrement twice
    assert sim.pending == 1
    sim.run()
    assert sim.pending == 0
    e2.cancel()  # cancelling an already-executed event is a no-op
    assert sim.pending == 0


def test_pending_is_o1_with_cancelled_backlog():
    """pending must not scan the heap: a large lazily-cancelled backlog
    leaves the counter exact while the heap still holds the entries."""
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(1000)]
    for event in events[:999]:
        event.cancel()
    assert sim.pending == 1
    assert len(sim._heap) == 1000  # lazy cancellation: entries remain


def test_run_until_budget_counts_only_executed_callbacks():
    """max_events charges executed callbacks; purging cancelled events is
    free (the documented run_until semantics)."""
    sim = Simulator()
    cancelled = [sim.schedule(float(i + 1), lambda: None) for i in range(50)]
    for event in cancelled:
        event.cancel()
    fired = []
    for i in range(3):
        sim.schedule(100.0 + i, lambda i=i: fired.append(i))
    sim.run_until(200.0, max_events=3)  # would raise if purges were charged
    assert fired == [0, 1, 2]
    assert sim._heap == []  # the budget scan purged the cancelled backlog


def test_run_until_budget_still_enforced():
    from repro.errors import SimulationError

    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i + 1), lambda: None)
    with pytest.raises(SimulationError):
        sim.run_until(10.0, max_events=4)


def test_clock_advances_to_run_until_time_with_empty_heap():
    sim = Simulator()
    sim.run_until(123.0)
    assert sim.now == 123.0


# -- the fast scheduling tier ------------------------------------------------


def test_fast_tier_interleaves_with_events_in_schedule_order():
    sim = Simulator()
    order = []
    sim.schedule(10.0, lambda: order.append("event"))
    sim.schedule_fast(10.0, lambda: order.append("fast"))
    sim.schedule_call(10.0, order.append, "call")
    sim.run()
    assert order == ["event", "fast", "call"]


def test_fast_tier_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_fast(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_call(-1.0, print, None)


def test_call_every_fast_ticks_match_call_every():
    """Tick times and RNG draw order are identical to call_every — the
    property the byte-identical goldens depend on."""
    import random

    slow_ticks, fast_ticks = [], []
    sim1 = Simulator()
    sim1.call_every(
        10.0, lambda: slow_ticks.append(sim1.now), jitter=0.3,
        rng=random.Random(5),
    )
    sim1.run_until(500.0)
    sim2 = Simulator()
    sim2.call_every_fast(
        10.0, lambda: fast_ticks.append(sim2.now), jitter=0.3,
        rng=random.Random(5),
    )
    sim2.run_until(500.0)
    assert fast_ticks == slow_ticks


def test_call_every_fast_cancel_stops_ticks():
    sim = Simulator()
    fired = []
    handle = sim.call_every_fast(10.0, lambda: fired.append(sim.now))
    sim.run_until(35.0)
    handle.cancel()
    sim.run_until(200.0)
    assert fired == [10.0, 20.0, 30.0]


def test_call_every_fast_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_every_fast(0.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.call_every_fast(10.0, lambda: None, jitter=0.3)  # jitter needs rng


# -- batched arrival generation ----------------------------------------------


def test_call_every_batched_unjittered_ticks_are_exact():
    sim = Simulator()
    fired = []
    sim.call_every_batched(10.0, lambda: fired.append(sim.now), batch=4)
    sim.run_until(100.0)
    # the refill entry chains blocks at the last tick's time, so the tick
    # train continues seamlessly across block boundaries
    assert fired == [10.0 * i for i in range(1, 11)]


def test_call_every_batched_cancel_stops_ticks():
    sim = Simulator()
    fired = []
    handle = sim.call_every_batched(10.0, lambda: fired.append(sim.now), batch=8)
    sim.run_until(25.0)
    handle.cancel()
    sim.run_until(500.0)  # the rest of the block no-ops
    assert fired == [10.0, 20.0]


def test_call_every_batched_jittered_rate_and_gaps():
    import random

    sim = Simulator()
    fired = []
    sim.call_every_batched(
        10.0, lambda: fired.append(sim.now), jitter=0.3,
        rng=random.Random(9), batch=16,
    )
    sim.run_until(10_000.0)
    # mean inter-arrival is the interval; ~1000 ticks over 10ms
    assert abs(len(fired) - 1000) <= 60
    gaps = [b - a for a, b in zip(fired, fired[1:])]
    # every gap (including across refill boundaries) is interval*(1±jitter)
    assert all(6.999 <= g <= 13.001 for g in gaps)


def test_call_every_batched_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_every_batched(0.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.call_every_batched(10.0, lambda: None, batch=0)
    with pytest.raises(SimulationError):
        sim.call_every_batched(10.0, lambda: None, jitter=0.3)  # needs rng


# -- the calendar-queue scheduler --------------------------------------------


def test_unknown_scheduler_rejected():
    with pytest.raises(SimulationError):
        Simulator(scheduler="fifo")


def test_calendar_scheduler_matches_heap_order():
    """Both schedulers pop in (time, seq) order, so a mixed event/fast/call
    schedule executes identically under either queue."""
    import random

    rng = random.Random(17)
    times = [rng.uniform(0.0, 50.0) for _ in range(300)]
    orders = []
    for scheduler in ("heap", "calendar"):
        sim = Simulator(scheduler=scheduler)
        order = []
        for i, t in enumerate(times):
            if i % 3 == 0:
                sim.schedule(t, lambda i=i: order.append(i))
            elif i % 3 == 1:
                sim.schedule_fast(t, lambda i=i: order.append(i))
            else:
                sim.schedule_call(t, order.append, i)
        sim.run()
        orders.append(order)
    assert orders[0] == orders[1]


def test_calendar_scheduler_cancellation_and_periodics():
    sim = Simulator(scheduler="calendar")
    fired = []
    cancelled = sim.schedule(25.0, lambda: fired.append("cancelled"))
    cancelled.cancel()
    handle = sim.call_every_fast(10.0, lambda: fired.append(sim.now))
    sim.run_until(45.0)
    handle.cancel()
    sim.run_until(100.0)
    assert fired == [10.0, 20.0, 30.0, 40.0]


def test_calendar_scheduler_batched_ticks():
    sim = Simulator(scheduler="calendar")
    fired = []
    sim.call_every_batched(10.0, lambda: fired.append(sim.now), batch=4)
    sim.run_until(100.0)
    assert fired == [10.0 * i for i in range(1, 11)]


# -- event pooling (reschedule) ----------------------------------------------


def test_reschedule_reuses_the_same_event_object():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, lambda: fired.append(sim.now))
    sim.run_until(1.0)
    again = sim.reschedule(ev, 2.0)
    assert again is ev
    assert ev.time == 3.0
    sim.run_until(5.0)
    assert fired == [1.0, 3.0]
    assert sim.events_reused == 1


def test_reschedule_orders_like_a_fresh_schedule():
    """A reused event takes a fresh seq, so same-time FIFO order is the
    schedule-call order, exactly as if a new Event had been allocated."""
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, lambda: fired.append("pooled"))
    sim.run_until(1.0)
    sim.reschedule(ev, 1.0)  # fires at t=2.0 ...
    sim.schedule(1.0, lambda: fired.append("fresh"))  # ... ties at t=2.0
    sim.run_until(2.0)
    assert fired == ["pooled", "pooled", "fresh"]


def test_reschedule_rejects_pending_and_cancelled_events():
    sim = Simulator()
    pending = sim.schedule(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.reschedule(pending, 1.0)  # still queued: would duplicate it
    pending.cancel()
    sim.run_until(1.0)
    with pytest.raises(SimulationError):
        sim.reschedule(pending, 1.0)  # cancelled: never executed
    fired = sim.schedule(1.5, lambda: None)
    sim.run_until(2.0)
    with pytest.raises(SimulationError):
        sim.reschedule(fired, -0.5)


def test_call_every_reuses_one_event_per_loop():
    sim = Simulator()
    ticks = []
    handle = sim.call_every(1.0, lambda: ticks.append(sim.now))
    first_event = handle.event
    sim.run_until(10.0)
    assert ticks == [float(i) for i in range(1, 11)]
    assert handle.event is first_event
    # every firing re-arms the same object (incl. the last, which
    # leaves it queued for t=11): 10 firings, 1 allocation
    assert sim.events_reused == 10


def test_call_every_cancel_still_works_with_pooling():
    sim = Simulator()
    ticks = []
    handle = sim.call_every(1.0, lambda: ticks.append(sim.now))
    sim.run_until(3.0)
    handle.cancel()
    sim.run_until(10.0)
    assert ticks == [1.0, 2.0, 3.0]


def test_call_every_pooling_under_calendar_scheduler():
    sim = Simulator(scheduler="calendar")
    ticks = []
    sim.call_every(2.0, lambda: ticks.append(sim.now))
    sim.run_until(10.0)
    assert ticks == [2.0, 4.0, 6.0, 8.0, 10.0]
    assert sim.events_reused == 5
