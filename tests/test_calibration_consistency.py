"""Internal consistency of the calibration constants.

These tests pin the arithmetic relations the paper states between its own
numbers, so a future calibration edit cannot silently break one anchor
while fixing another.
"""

import pytest

from repro import calibration as cal


def test_lake_card_decomposition():
    """LaKe card = shell + logic + memories (§5 additive structure)."""
    assert cal.LAKE_CARD_W == pytest.approx(
        cal.NETFPGA_SHELL_W + cal.LAKE_LOGIC_TOTAL_W + cal.MEMORIES_TOTAL_W
    )


def test_lake_system_anchor():
    """Idle no-NIC server + LaKe card = the §4.2 59W system."""
    assert cal.I7_IDLE_NO_NIC_W + cal.LAKE_CARD_W == pytest.approx(59.0)


def test_p4xos_10w_below_lake():
    assert cal.LAKE_CARD_W - cal.P4XOS_CARD_W == pytest.approx(10.0)


def test_p4xos_standalone_consistency():
    assert cal.P4XOS_CARD_W + cal.STANDALONE_PSU_OVERHEAD_W == pytest.approx(
        cal.P4XOS_STANDALONE_IDLE_W
    )


def test_emu_system_anchor():
    """§4.4: Emu DNS draws about 48W in-server."""
    assert cal.I7_IDLE_NO_NIC_W + cal.EMU_DNS_CARD_W == pytest.approx(48.0)


def test_lake_logic_decomposition():
    assert (
        cal.LAKE_CLASSIFIER_INTERCONNECT_W + cal.LAKE_DEFAULT_PES * cal.LAKE_PE_W
    ) == pytest.approx(cal.LAKE_LOGIC_TOTAL_W)


def test_memories_no_less_than_10w():
    """§5.1 in so many words."""
    assert cal.MEMORIES_TOTAL_W >= 10.0
    assert cal.MEMORIES_TOTAL_W == pytest.approx(cal.DRAM_4GB_W + cal.SRAM_18MB_W)


def test_nic_share_keeps_idle_anchor():
    assert cal.I7_IDLE_NO_NIC_W + cal.NIC_MELLANOX_CX311A_IDLE_W == pytest.approx(
        cal.I7_IDLE_W
    )


def test_onchip_capacity_ratios():
    assert cal.DRAM_VALUE_ENTRIES // cal.ONCHIP_VALUE_ENTRIES >= 60_000
    assert cal.SRAM_FREELIST_ENTRIES // cal.ONCHIP_FREELIST_ENTRIES >= 30_000


def test_latency_chain():
    """§5.3: miss ≈ ×10 on-chip hit; L2 sits between."""
    assert cal.LAKE_MISS_MEDIAN_US / cal.LAKE_L1_HIT_US == pytest.approx(10.0, rel=0.05)
    assert cal.LAKE_L1_HIT_US < cal.LAKE_L2_HIT_MEDIAN_US < cal.LAKE_MISS_MEDIAN_US
    assert cal.LAKE_MISS_P99_US > cal.LAKE_MISS_MEDIAN_US


def test_controller_threshold_hysteresis():
    assert cal.NETCTL_KVS_UP_PPS > cal.NETCTL_KVS_DOWN_PPS
    assert cal.NETCTL_PAXOS_UP_PPS > cal.NETCTL_PAXOS_DOWN_PPS
    assert cal.NETCTL_DNS_UP_PPS > cal.NETCTL_DNS_DOWN_PPS
    assert cal.HOSTCTL_POWER_UP_W > cal.HOSTCTL_POWER_DOWN_W


def test_xeon_ladder_ordering():
    assert (
        cal.XEON_2660_IDLE_W
        < cal.XEON_2660_ONE_CORE_10PCT_W
        < cal.XEON_2660_ONE_CORE_W
        < cal.XEON_2660_FULL_LOAD_W
    )


def test_dns_capacities_comparable():
    """§4.4: Emu's peak is 'comparable' to the software's."""
    ratio = cal.EMU_DNS_CAPACITY_PPS / cal.NSD_CAPACITY_PPS
    assert 0.9 < ratio < 1.2


def test_ops_per_watt_orders_of_magnitude():
    orders = cal.OPS_PER_WATT_ORDER
    assert orders["software"] < orders["fpga"] < orders["asic"]
    assert orders["asic"] / orders["software"] == pytest.approx(1000.0)


def test_tofino_span_fits_20pct_with_p4xos():
    worst = cal.TOFINO_L2_FULL_LOAD_NORMALIZED * (
        1.0 + cal.TOFINO_P4XOS_OVERHEAD_FRACTION
    )
    assert worst / cal.TOFINO_IDLE_NORMALIZED - 1.0 < 0.20


def test_diag_more_than_twice_p4xos():
    assert cal.TOFINO_DIAG_OVERHEAD_FRACTION > 2 * cal.TOFINO_P4XOS_OVERHEAD_FRACTION


def test_server_calibrations():
    assert cal.I7_6700K.cores == 4
    assert cal.XEON_E5_2660.cores == 28
    assert cal.XEON_E5_2660.idle_w == 56.0
