"""RAPL counter model."""

import pytest

from repro.errors import ConfigurationError, PowerModelError
from repro.host import make_i7_server, make_xeon_2660_server
from repro.host.rapl import RaplDomain, RaplPowerEstimator, RaplReader
from repro.sim import Simulator
from repro.units import sec


def test_energy_integrates_constant_power():
    sim = Simulator()
    reader = RaplReader(sim, {RaplDomain.PACKAGE_0: lambda: 50.0})
    sim.run_until(sec(10.0))
    assert reader.energy_j(RaplDomain.PACKAGE_0) == pytest.approx(500.0, rel=0.01)


def test_energy_counter_monotonic():
    sim = Simulator()
    reader = RaplReader(sim, {RaplDomain.PACKAGE_0: lambda: 30.0})
    last = 0.0
    for step in range(1, 6):
        sim.run_until(sec(step))
        energy = reader.energy_j(RaplDomain.PACKAGE_0)
        assert energy >= last
        last = energy


def test_unknown_domain_raises():
    sim = Simulator()
    reader = RaplReader(sim, {RaplDomain.PACKAGE_0: lambda: 1.0})
    with pytest.raises(PowerModelError):
        reader.energy_j(RaplDomain.PACKAGE_1)


def test_needs_probes():
    with pytest.raises(PowerModelError):
        RaplReader(Simulator(), {})


def test_power_estimator_differences_reads():
    sim = Simulator()
    reader = RaplReader(sim, {RaplDomain.PACKAGE_0: lambda: 40.0})
    est = RaplPowerEstimator(reader, RaplDomain.PACKAGE_0, sim)
    assert est.read_power_w() is None  # first read establishes baseline
    sim.run_until(sec(2.0))
    assert est.read_power_w() == pytest.approx(40.0, rel=0.02)


def test_estimator_tracks_power_change():
    sim = Simulator()
    level = {"w": 40.0}
    reader = RaplReader(sim, {RaplDomain.PACKAGE_0: lambda: level["w"]})
    est = RaplPowerEstimator(reader, RaplDomain.PACKAGE_0, sim)
    est.read_power_w()
    sim.run_until(sec(1.0))
    est.read_power_w()
    level["w"] = 90.0
    sim.run_until(sec(2.0))
    assert est.read_power_w() == pytest.approx(90.0, rel=0.05)


def test_server_rapl_integration():
    sim = Simulator()
    server = make_xeon_2660_server(sim)
    server.start_rapl()
    server.cpu.set_load("x", 1, 1.0)
    sim.run_until(sec(1.0))
    # 91W for ~1s (idle->active step happened at t=0)
    energy = server.rapl.energy_j(RaplDomain.PACKAGE_0) + server.rapl.energy_j(
        RaplDomain.PACKAGE_1
    )
    assert energy == pytest.approx(91.0, rel=0.05)


def test_rapl_unstarted_raises():
    server = make_i7_server(Simulator())
    with pytest.raises(ConfigurationError):
        _ = server.rapl


def test_i7_has_single_package():
    sim = Simulator()
    server = make_i7_server(sim)
    reader = server.start_rapl()
    assert reader.domains() == [RaplDomain.PACKAGE_0]
