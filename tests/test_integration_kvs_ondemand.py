"""End-to-end: KVS on the DES with the *network-controlled* controller —
the §9.1 counterpart of Figure 6 (which uses the host controller).

Also validates the analytic steady layer against the DES at an overlapping
operating point.
"""

import pytest

from repro import calibration as cal
from repro.apps.kvs import KvsClient, LakeKvs, SoftwareMemcached
from repro.core import NetworkController, NetworkControllerConfig, OnDemandService
from repro.host import make_i7_server
from repro.hw.fpga import make_lake_fpga
from repro.net import ClassifierRule, PacketClassifier, Switch, Topology, TrafficClass
from repro.sim import RngStreams, Simulator
from repro.steady import kvs_models
from repro.units import kpps, msec, sec
from repro.workloads import EtcWorkload


def _build(seed=3, keyspace=5_000):
    sim = Simulator()
    streams = RngStreams(seed)
    server = make_i7_server(sim, name="kvs-server", nic=None)
    card = make_lake_fpga()
    server.install_card(card.power_w)
    memcached = SoftwareMemcached(sim, server)
    lake = LakeKvs(sim, card, server, memcached, rng=streams.get("lake"))
    lake.disable(power_save=True)

    classifier = PacketClassifier(sim)
    classifier.add_rule(
        ClassifierRule(TrafficClass.MEMCACHED, hardware=lake.offer, host=memcached.offer)
    )
    server.set_packet_handler(classifier.classify)

    etc = EtcWorkload(keyspace=keyspace, seed=seed)
    etc.preload(memcached.store.set, count=keyspace)

    topo = Topology(sim)
    switch = Switch(sim, "tor")
    topo.add(switch)
    topo.add(server)
    client = KvsClient(
        sim, "client", "kvs-server",
        key_sampler=etc.key, value_sampler=etc.value,
        set_fraction=etc.set_fraction, rng=streams.get("arrivals"),
    )
    topo.add(client)
    topo.connect_via_switch("tor", "kvs-server")
    topo.connect_via_switch("tor", "client")

    service = OnDemandService(
        sim, "kvs", classifier=classifier, traffic_class=TrafficClass.MEMCACHED,
        to_hardware=lake.enable,
        to_software=lambda: lake.disable(power_save=True),
    )
    config = NetworkControllerConfig(
        up_rate_pps=kpps(80), down_rate_pps=kpps(50),
        up_window_us=sec(0.5), down_window_us=sec(0.5), tick_us=msec(50.0),
    )
    controller = NetworkController(
        sim, classifier, TrafficClass.MEMCACHED, service, config
    )
    return sim, server, card, lake, client, service, controller


def test_network_controller_shifts_on_rate():
    sim, server, card, lake, client, service, controller = _build()
    client.set_rate(kpps(120))
    sim.run_until(sec(1.5))
    assert service.in_hardware
    assert lake.enabled
    # hardware is actually serving (classifier steering works end-to-end)
    assert lake.rx > 0


def test_shift_back_when_load_drops():
    sim, server, card, lake, client, service, controller = _build()
    client.set_rate(kpps(120))
    sim.run_until(sec(1.5))
    assert service.in_hardware
    client.set_rate(kpps(10))
    sim.run_until(sec(4.0))
    assert not service.in_hardware
    # §9.2 power-save standby: memories reset + clock gated
    assert card.power_w() < cal.LAKE_CARD_W


def test_no_requests_lost_across_shift():
    sim, server, card, lake, client, service, controller = _build()
    client.set_rate(kpps(60))
    sim.run_until(sec(0.3))
    client.set_rate(kpps(120))
    sim.run_until(sec(2.0))
    client.stop()
    sim.run_until(sec(2.1))
    # every request answered (no drops at these rates)
    assert client.responses == client.tx_packets


def test_wall_power_drops_when_offloaded_vs_software_at_high_rate():
    """The point of the paper: above the crossover, hardware placement
    draws less wall power than software placement at the same rate."""
    sim, server, card, lake, client, service, controller = _build()
    client.set_rate(kpps(200))
    sim.run_until(msec(900.0))  # still in software (window not elapsed)
    software_power = server.wall_power_w()
    sim.run_until(sec(3.0))     # now offloaded
    hardware_power = server.wall_power_w()
    assert service.in_hardware
    assert hardware_power < software_power


def test_des_power_matches_steady_model_in_software():
    """Cross-layer check: the DES server at a steady software load matches
    the analytic memcached curve within tolerance."""
    sim, server, card, lake, client, service, controller = _build()
    rate = kpps(40)  # below the shift threshold: stays in software
    client.set_rate(rate)
    sim.run_until(sec(1.0))
    assert not service.in_hardware
    des_power = server.wall_power_w() - card.power_w()  # host share
    analytic = kvs_models()["memcached"].power_at(rate)
    # the analytic curve includes a 3W NIC; the DES host has none
    assert des_power == pytest.approx(analytic - 3.0, rel=0.12)


def test_des_latency_matches_steady_model():
    sim, server, card, lake, client, service, controller = _build()
    client.set_rate(kpps(20))
    sim.run_until(sec(1.0))
    median = client.latency.median()
    analytic = kvs_models()["memcached"].latency_at(kpps(20))
    assert median == pytest.approx(analytic, rel=0.5)
