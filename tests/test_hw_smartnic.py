"""SmartNIC archetypes (§10)."""

import pytest

from repro import calibration as cal
from repro.errors import ConfigurationError
from repro.hw.smartnic import SMARTNIC_ARCHETYPES, SmartNic, SmartNicArchitecture


def test_all_archetypes_within_pcie_envelope():
    """§10: SmartNICs typically limit to 25W from the PCIe slot."""
    for nic in SMARTNIC_ARCHETYPES.values():
        assert nic.peak_w <= cal.SMARTNIC_PCIE_POWER_CAP_W


def test_accelnet_matches_paper():
    """§10: AccelNet consumes 17-19W standalone, ~4Mpps/W."""
    nic = SMARTNIC_ARCHETYPES["accelnet-fpga"]
    assert nic.idle_w == pytest.approx(17.0)
    assert nic.peak_w == pytest.approx(19.0)
    assert nic.mpps_per_w == pytest.approx(4.0)


def test_power_interpolates():
    nic = SMARTNIC_ARCHETYPES["accelnet-fpga"]
    assert nic.power_w(0.0) == nic.idle_w
    assert nic.power_w(1.0) == nic.peak_w
    assert nic.idle_w < nic.power_w(0.5) < nic.peak_w


def test_ops_per_watt_millions():
    """§10: SmartNICs achieve millions of operations per watt."""
    for nic in SMARTNIC_ARCHETYPES.values():
        assert nic.ops_per_watt(1.0) > 1e6


def test_over_envelope_rejected():
    with pytest.raises(ConfigurationError):
        SmartNic(
            name="too-hot",
            architecture=SmartNicArchitecture.FPGA,
            idle_w=20.0,
            peak_w=40.0,
            mpps_per_w=1.0,
            port_gbps=100.0,
            flexibility=1,
            maturity=1,
        )


def test_four_architectural_approaches():
    """§10 names four architectures; all are represented."""
    architectures = {nic.architecture for nic in SMARTNIC_ARCHETYPES.values()}
    assert architectures == set(SmartNicArchitecture)


def test_utilization_validated():
    nic = SMARTNIC_ARCHETYPES["asic-smartnic"]
    with pytest.raises(ConfigurationError):
        nic.power_w(1.1)
