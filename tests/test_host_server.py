"""Server power models against the paper's anchors."""

import pytest

from repro import calibration as cal
from repro.errors import ConfigurationError
from repro.host import (
    NIC_INTEL_X520,
    NIC_MELLANOX_CX311A,
    make_i7_server,
    make_xeon_2637_server,
    make_xeon_2660_server,
)
from repro.sim import Simulator


class TestI7:
    def test_idle_with_nic_is_39w(self):
        """§4.2: idle server draws 39W."""
        server = make_i7_server(Simulator())
        assert server.wall_power_w() == pytest.approx(cal.I7_IDLE_W)

    def test_idle_without_nic(self):
        server = make_i7_server(Simulator(), nic=None)
        assert server.wall_power_w() == pytest.approx(cal.I7_IDLE_NO_NIC_W)

    def test_power_rises_with_load(self):
        server = make_i7_server(Simulator())
        idle = server.wall_power_w()
        server.cpu.set_load("memcached", 4, 0.5)
        mid = server.wall_power_w()
        server.cpu.set_load("memcached", 4, 1.0)
        full = server.wall_power_w()
        assert idle < mid < full

    def test_peak_near_115w(self):
        server = make_i7_server(Simulator())
        server.cpu.set_load("memcached", 4, 1.0)
        assert server.wall_power_w() == pytest.approx(cal.I7_MEMCACHED_PEAK_W, abs=2.0)

    def test_concave_curve_jumps_at_low_load(self):
        """§7's observation, reproduced on the i7: low load costs
        disproportionate power."""
        server = make_i7_server(Simulator())
        idle = server.platform_power_w()
        server.cpu.set_load("x", 4, 0.1)
        low = server.platform_power_w()
        dynamic_span = cal.I7_MEMCACHED_PEAK_W - cal.NIC_MELLANOX_CX311A_IDLE_W - cal.I7_IDLE_NO_NIC_W
        assert (low - idle) > 0.2 * dynamic_span

    def test_installed_card_adds_power(self):
        server = make_i7_server(Simulator(), nic=None)
        server.install_card(lambda: 23.0)
        assert server.wall_power_w() == pytest.approx(cal.I7_IDLE_NO_NIC_W + 23.0)

    def test_lake_system_idles_at_59w(self):
        """§4.2: LaKe (server + card, NIC removed) idles at 59W."""
        from repro.hw.fpga import make_lake_fpga

        server = make_i7_server(Simulator(), nic=None)
        card = make_lake_fpga()
        server.install_card(card.power_w)
        assert server.wall_power_w() == pytest.approx(59.0)


class TestXeon2660:
    @pytest.fixture
    def server(self):
        return make_xeon_2660_server(Simulator())

    def test_idle_56w_split_evenly(self, server):
        assert server.platform_power_w() == pytest.approx(cal.XEON_2660_IDLE_W)
        assert server.socket_power_w(0) == pytest.approx(28.0)
        assert server.socket_power_w(1) == pytest.approx(28.0)

    def test_single_core_jumps_to_91w(self, server):
        server.cpu.set_load("x", 1, 1.0)
        assert server.platform_power_w() == pytest.approx(cal.XEON_2660_ONE_CORE_W)

    def test_single_core_10pct_is_86w(self, server):
        server.cpu.set_load("x", 1, 0.1)
        assert server.platform_power_w() == pytest.approx(
            cal.XEON_2660_ONE_CORE_10PCT_W
        )

    def test_full_load_134w(self, server):
        server.cpu.set_load("x", 28, 1.0)
        assert server.platform_power_w() == pytest.approx(cal.XEON_2660_FULL_LOAD_W)

    def test_extra_core_costs_1_to_2w(self, server):
        """§7: 'the overhead of an additional core running is small, in the
        order of 1W-2W'."""
        server.cpu.set_load("x", 1, 1.0)
        one = server.platform_power_w()
        server.cpu.set_load("x", 2, 1.0)
        two = server.platform_power_w()
        assert 1.0 <= (two - one) <= 2.0

    def test_activation_hits_both_sockets(self, server):
        """§7: the second socket's power rises almost equally."""
        server.cpu.set_load("x", 1, 1.0)
        assert server.socket_power_w(1) > 28.0
        ratio = server.socket_power_w(1) / server.socket_power_w(0)
        assert 0.7 < ratio < 1.0

    def test_invalid_socket(self, server):
        with pytest.raises(ConfigurationError):
            server.socket_power_w(2)


class TestXeon2637:
    def test_idle_83w(self):
        """§5.4: idle without NIC is 83W."""
        server = make_xeon_2637_server(Simulator())
        assert server.platform_power_w() == pytest.approx(83.0)

    def test_idle_exceeds_lake_full_load(self):
        """§5.4: Xeon idle (83W) is 20W more than LaKe at full load."""
        from repro.hw.fpga import make_lake_fpga

        card = make_lake_fpga()
        card.set_utilization(1.0)
        lake_standalone_full = card.power_w() + cal.STANDALONE_PSU_OVERHEAD_W
        server = make_xeon_2637_server(Simulator())
        assert server.platform_power_w() > lake_standalone_full


def test_nic_power_scales_with_utilization():
    server = make_i7_server(Simulator(), nic=NIC_MELLANOX_CX311A)
    idle = server.wall_power_w()
    server.set_nic_utilization(1.0)
    assert server.wall_power_w() > idle


def test_nic_utilization_validated():
    server = make_i7_server(Simulator())
    with pytest.raises(ConfigurationError):
        server.set_nic_utilization(1.5)


def test_intel_nic_lower_peak_rate():
    """§4.2: the Intel X520 caps host throughput lower than the Mellanox."""
    assert NIC_INTEL_X520.host_peak_pps < NIC_MELLANOX_CX311A.host_peak_pps
