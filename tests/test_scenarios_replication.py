"""The K-seed replication executor (``run_replicated``).

The contract under test: replication is *exact* — ``runs[0]`` is
byte-identical to the unreplicated sweep, every ``runs[i]`` is
byte-identical to a serial ``run_sweep`` with that seed pinned, and
neither the worker count nor the work-stealing chunk size changes a
single rendered byte.  On top of that sit the cross-seed reductions
(mean ± 95% CI, tipping fractions) and their rendering.
"""

import math

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    ReplicationSpec,
    build_sweep_spec,
    replicate_stats,
    replication_seeds,
    run_replicated,
    run_sweep,
)
from repro.scenarios.sweep import (
    SweepAggregate,
    SweepPointResult,
    _pack_point,
    _unpack_point,
)

#: one grid point, short horizon: the cheapest real replicated DES run.
TINY = dict(hosts=(1,), rates_kpps=(24.0,), duration_s=0.05, keyspace=2_000)
#: two points on the rate axis so tipping tables have something to cross.
SMALL = dict(hosts=(1,), rates_kpps=(8.0, 32.0), duration_s=0.05,
             keyspace=2_000)


def _spec(params=TINY, **extra):
    return build_sweep_spec("sweep-rack-kvs", **{**params, **extra})


# -- seed derivation ---------------------------------------------------------


def test_replication_seeds_deterministic_and_distinct():
    seeds = replication_seeds(42, 8)
    assert seeds == replication_seeds(42, 8)
    assert seeds[0] == 42
    assert len(set(seeds)) == 8
    # prefix-stable: growing K keeps the earlier seeds
    assert replication_seeds(42, 3) == seeds[:3]


def test_replication_seeds_differ_by_base():
    assert replication_seeds(1, 4)[1:] != replication_seeds(2, 4)[1:]


def test_replication_seeds_rejects_zero():
    with pytest.raises(ConfigurationError):
        replication_seeds(42, 0)


def test_replication_spec_validation():
    with pytest.raises(ConfigurationError):
        ReplicationSpec(seeds=0).validate()
    with pytest.raises(ConfigurationError):
        ReplicationSpec(workers=0).validate()
    with pytest.raises(ConfigurationError):
        ReplicationSpec(chunksize=0).validate()
    assert ReplicationSpec().validate().seeds == 8


# -- cross-seed statistics ---------------------------------------------------


def test_replicate_stats_single_value():
    st = replicate_stats([3.5])
    assert st.mean == 3.5
    assert st.ci95 == 0.0
    assert st.n == 1


def test_replicate_stats_known_interval():
    # n=2: mean 10, sample sd sqrt(2), t=12.706 -> ci = 12.706 * 1
    st = replicate_stats([9.0, 11.0])
    assert st.mean == pytest.approx(10.0)
    assert st.ci95 == pytest.approx(12.706 * math.sqrt(2.0 / 2))
    assert st.values == (9.0, 11.0)


def test_replicate_stats_empty_rejected():
    with pytest.raises(ConfigurationError):
        replicate_stats([])


# -- compact transport -------------------------------------------------------


def test_pack_point_roundtrip_is_exact():
    def agg(mode, base):
        return SweepAggregate(
            mode=mode,
            offered_pps=base + 1 / 3,
            achieved_pps=base + 1 / 7,
            total_power_w=base * math.pi,
            p50_latency_us=base + 1e-13,
            p99_latency_us=base * 1e6,
            ops_per_watt=base / 9.999,
            power_by_placement={"kvs0": base + 0.1, "kvs1": base + 0.2},
        )

    pt = SweepPointResult(
        params={"rate_kpps": 8.0, "hosts": 2},
        software=agg("software", 1.0),
        hardware=agg("hardware", 2.0),
        ondemand=agg("ondemand", 3.0),
    )
    restored = _unpack_point(*_pack_point(pt))
    for mode in ("software", "hardware", "ondemand"):
        a, b = getattr(pt, mode), getattr(restored, mode)
        for f in ("offered_pps", "achieved_pps", "total_power_w",
                  "p50_latency_us", "p99_latency_us", "ops_per_watt"):
            assert getattr(a, f) == getattr(b, f)  # exact, not approx
        assert a.power_by_placement == b.power_by_placement
    assert restored.params == pt.params


def test_pack_point_without_ondemand():
    pt = SweepPointResult(
        params={"rate_kpps": 8.0},
        software=SweepAggregate(
            mode="software", offered_pps=1, achieved_pps=1,
            total_power_w=1, p50_latency_us=1, p99_latency_us=1,
            ops_per_watt=1, power_by_placement={"kvs0": 1.0},
        ),
        hardware=SweepAggregate(
            mode="hardware", offered_pps=2, achieved_pps=2,
            total_power_w=2, p50_latency_us=2, p99_latency_us=2,
            ops_per_watt=2, power_by_placement={"kvs0": 2.0},
        ),
        ondemand=None,
    )
    restored = _unpack_point(*_pack_point(pt))
    assert restored.ondemand is None
    assert restored.hardware.ops_per_watt == 2


# -- byte identity -----------------------------------------------------------


def test_k1_matches_unreplicated_sweep():
    spec = _spec()
    replicated = run_replicated(spec, seeds=1)
    assert replicated.base_run.render() == run_sweep(spec).render()


def test_each_seed_matches_serial_run_sweep():
    replicated = run_replicated(_spec(), seeds=2)
    for seed, run in zip(replicated.seeds, replicated.runs):
        serial = run_sweep(_spec(seed=seed))
        assert run.render() == serial.render()


def test_worker_count_and_chunksize_do_not_change_bytes():
    serial = run_replicated(_spec(), seeds=2)
    pooled = run_replicated(_spec(), seeds=2, workers=2)
    chunked = run_replicated(_spec(), seeds=2, workers=2, chunksize=2)
    want = [run.render() for run in serial.runs]
    assert [run.render() for run in pooled.runs] == want
    assert [run.render() for run in chunked.runs] == want


# -- reductions and rendering ------------------------------------------------


def test_point_stats_mean_and_ci():
    replicated = run_replicated(_spec(), seeds=2)
    stats = replicated.point_stats("ops_per_watt")
    assert len(stats) == 1
    for mode in ("software", "hardware", "ondemand"):
        st = stats[0][mode]
        assert st is not None and st.n == 2
        values = [
            getattr(getattr(run.points[0], mode), "ops_per_watt")
            for run in replicated.runs
        ]
        assert st.mean == pytest.approx(sum(values) / 2)


def test_tipping_stats_counts_seeds():
    replicated = run_replicated(
        build_sweep_spec("sweep-rack-kvs", **SMALL), seeds=2
    )
    groups = replicated.tipping_stats()
    assert len(groups) == 1
    g = groups[0]
    assert g["axis"] == replicated.spec.resolved_tip_axis()
    assert len(g["crossovers"]) == 2
    assert 0.0 <= g["tip_fraction"] <= 1.0
    if g["tip_count"]:
        assert g["crossover"] is not None


def test_render_shows_error_bars_and_win_counts():
    replicated = run_replicated(
        build_sweep_spec("sweep-rack-kvs", **SMALL), seeds=2
    )
    text = replicated.render()
    assert "K=2 seeds" in text
    assert "sw ±" in text and "hw ±" in text
    assert "hw wins" in text
    assert "Tipping points across seeds" in text
    assert "/2" in text


def test_named_sweep_with_overrides():
    replicated = run_replicated("sweep-rack-kvs", seeds=1, **TINY)
    assert len(replicated.runs) == 1


def test_spec_plus_overrides_rejected():
    with pytest.raises(ConfigurationError):
        run_replicated(_spec(), seeds=1, duration_s=0.1)


def test_cli_seeds_flag_renders_replicated_tables(capsys):
    from repro.__main__ import main

    assert main([
        "--sweep", "sweep-rack-kvs", "--seeds", "2", "--duration", "0.05",
    ]) == 0
    out = capsys.readouterr().out
    assert "K=2 seeds" in out
    assert "hw wins" in out
