"""Reporting helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import bucket_rate_series, format_table
from repro.experiments.reporting import bucket_mean_series
from repro.units import msec, sec


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["name", "watts"], [["lake", 59.0], ["nsd", 96.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "lake" in text and "59.0" in text

    def test_width_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])

    def test_number_formatting(self):
        text = format_table(["v"], [[1234567.0], [0.123456], [12.34]])
        assert "1,234,567" in text
        assert "0.123" in text
        assert "12.3" in text


class TestBucketSeries:
    def test_rate_buckets(self):
        # 10 events in the first 100ms, none later
        times = [i * 10_000.0 for i in range(10)]
        series = bucket_rate_series(times, msec(100.0), sec(0.3))
        assert series[0][1] == pytest.approx(100.0)  # 10 / 0.1s
        assert series[1][1] == 0.0
        assert len(series) == 4

    def test_mean_buckets_with_gaps(self):
        samples = [(10_000.0, 5.0), (20_000.0, 15.0), (250_000.0, 7.0)]
        series = bucket_mean_series(samples, msec(100.0), msec(300.0))
        assert series[0][1] == pytest.approx(10.0)
        assert series[1][1] is None
        assert series[2][1] == pytest.approx(7.0)

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            bucket_rate_series([], 0.0, 100.0)
