"""§9.2 shift strategies: reset+gate vs keep-warm vs partial reconfiguration."""

import pytest

from repro import calibration as cal
from repro.core.shift_strategy import (
    PARTIAL_RECONFIG_HALT_S,
    ShiftStrategy,
    ShiftStrategyModel,
    StrategyAssessment,
)
from repro.errors import ConfigurationError
from repro.units import kpps


@pytest.fixture
def model():
    return ShiftStrategyModel()


def test_standby_power_ordering(model):
    """Partial reconfig < reset+gate < keep-warm, per §9.2's trade-off."""
    assert (
        model.standby_power_w(ShiftStrategy.PARTIAL_RECONFIGURATION)
        < model.standby_power_w(ShiftStrategy.RESET_AND_GATE)
        < model.standby_power_w(ShiftStrategy.KEEP_WARM)
    )


def test_keep_warm_equals_active_card(model):
    assert model.standby_power_w(ShiftStrategy.KEEP_WARM) == pytest.approx(
        cal.LAKE_CARD_W
    )


def test_gated_matches_section5_arithmetic(model):
    expected = (
        cal.NETFPGA_SHELL_W
        + cal.LAKE_LOGIC_TOTAL_W
        - cal.CLOCK_GATING_SAVING_W
        + cal.MEMORIES_TOTAL_W * 0.6
    )
    assert model.standby_power_w(ShiftStrategy.RESET_AND_GATE) == pytest.approx(expected)


def test_warmup_only_for_cold_strategies(model):
    assert model.warmup_s(ShiftStrategy.KEEP_WARM, kpps(100)) == 0.0
    cold = model.warmup_s(ShiftStrategy.RESET_AND_GATE, kpps(100))
    assert cold > 0.0
    # warm-up shrinks as rate grows (the hot set re-fetches faster)
    assert model.warmup_s(ShiftStrategy.RESET_AND_GATE, kpps(400)) < cold


def test_only_partial_reconfig_halts_traffic(model):
    """§9.2: partial reconfiguration 'may result in a momentary traffic
    halt'."""
    assert model.traffic_halt_s(ShiftStrategy.PARTIAL_RECONFIGURATION) == pytest.approx(
        PARTIAL_RECONFIG_HALT_S
    )
    assert model.traffic_halt_s(ShiftStrategy.RESET_AND_GATE) == 0.0
    assert model.traffic_halt_s(ShiftStrategy.KEEP_WARM) == 0.0


def test_paper_choice_is_reset_and_gate(model):
    """§9.2: 'We therefore choose the approach that keeps LaKe programmed
    but inactive' — cheapest strategy among those that never halt traffic."""
    choice = model.paper_choice(standby_s=600.0, rate_at_shift_pps=kpps(100))
    assert choice is ShiftStrategy.RESET_AND_GATE


def test_assess_all_sorted_by_energy(model):
    assessments = model.assess_all(standby_s=100.0, rate_at_shift_pps=kpps(100))
    energies = [a.standby_energy_j for a in assessments]
    assert energies == sorted(energies)
    assert assessments[0].strategy is ShiftStrategy.PARTIAL_RECONFIGURATION


def test_no_strategy_dominates_all(model):
    """The §9.2 trade-off is real: each strategy loses on some axis."""
    assessments = {
        a.strategy: a for a in model.assess_all(600.0, kpps(100))
    }
    keep_warm = assessments[ShiftStrategy.KEEP_WARM]
    gated = assessments[ShiftStrategy.RESET_AND_GATE]
    partial = assessments[ShiftStrategy.PARTIAL_RECONFIGURATION]
    assert not keep_warm.dominates(gated)       # loses on energy
    assert not partial.dominates(gated)         # loses on halt
    assert not gated.dominates(keep_warm)       # loses on warm-up


def test_validation():
    with pytest.raises(ConfigurationError):
        ShiftStrategyModel(active_card_w=10.0, gated_card_w=20.0, nic_only_w=5.0)
    model = ShiftStrategyModel()
    with pytest.raises(ConfigurationError):
        model.warmup_s(ShiftStrategy.RESET_AND_GATE, 0.0)
    with pytest.raises(ConfigurationError):
        model.assess(ShiftStrategy.KEEP_WARM, standby_s=-1.0, rate_at_shift_pps=1.0)
