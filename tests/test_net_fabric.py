"""Leaf-spine fabric wiring: ToR-per-rack builds, spine routing, the
transit counter identity, mirrored control plane, and oversubscribed
queueing uplinks."""

import pytest

from repro.errors import ConfigurationError
from repro.net import ForwardingRule, TrafficClass, build_fabric
from repro.net.node import SinkNode
from repro.net.packet import make_packet
from repro.sim import Simulator
from repro.units import gbit_per_s


def _fabric(n_racks=2, hosts_per_rack=1, **kwargs):
    sim = Simulator()
    fabric = build_fabric(sim, [f"rack{i}" for i in range(n_racks)], **kwargs)
    hosts = {}
    for rack in fabric.racks:
        for j in range(hosts_per_rack):
            node = SinkNode(sim, f"{rack}/h{j}")
            fabric.topology.add(node)
            fabric.connect_host(rack, node)
            hosts[node.name] = node
    return sim, fabric, hosts


def _offer(fabric, tor_rack, dst, traffic_class=TrafficClass.NORMAL, n=1):
    tor = fabric.tor(tor_rack)
    for _ in range(n):
        tor.receive(make_packet("client", dst, traffic_class, now=fabric.sim.now))


def test_build_names_tors_rack_qualified():
    _, fabric, _ = _fabric(n_racks=3)
    assert fabric.racks == ("rack0", "rack1", "rack2")
    assert sorted(t.name for t in fabric.tors.values()) == [
        "rack0/tor", "rack1/tor", "rack2/tor",
    ]
    assert fabric.spine.name == "spine"
    assert len(fabric.switches) == 4


def test_build_rejects_bad_shapes():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        build_fabric(sim, [])
    with pytest.raises(ConfigurationError):
        build_fabric(sim, ["a", "a"])
    with pytest.raises(ConfigurationError):
        build_fabric(sim, ["a"], oversubscription=0.5)


def test_same_rack_delivery_skips_spine():
    sim, fabric, hosts = _fabric(hosts_per_rack=2)
    _offer(fabric, "rack0", "rack0/h1")
    sim.run()
    assert len(hosts["rack0/h1"].received) == 1
    assert fabric.spine.forwarded == 0


def test_cross_rack_delivery_transits_spine_once():
    sim, fabric, hosts = _fabric()
    _offer(fabric, "rack0", "rack1/h0")
    sim.run()
    assert len(hosts["rack1/h0"].received) == 1
    assert fabric.spine.forwarded == 1
    # ToR -> spine was the default route, spine -> ToR a static route
    assert fabric.tor("rack0").routed == 1
    assert fabric.spine.routed == 1


def test_rack_of_and_unknown_rack():
    _, fabric, _ = _fabric()
    assert fabric.rack_of("rack1/h0") == "rack1"
    with pytest.raises(ConfigurationError):
        fabric.rack_of("nobody")
    with pytest.raises(ConfigurationError):
        fabric.tor("rack9")


def test_unroutable_destination_drops_at_spine():
    sim, fabric, _ = _fabric()
    _offer(fabric, "rack0", "ghost")
    sim.run()
    # the ToR default-routes it up; the spine has no route and drops
    assert fabric.dropped_no_route == 1
    assert fabric.spine.dropped_no_route == 1


def test_transit_identity_counts_offered_exactly_once():
    """sum(ToR logical counters) - spine == offered, spine == cross-rack."""
    sim, fabric, _ = _fabric(hosts_per_rack=1)
    cls, svc = TrafficClass.MEMCACHED, "kvs-service"
    # dispatch alternates racks so both same- and cross-rack paths occur;
    # keyed on packet_id so every hop resolves the same packet identically
    targets = ["rack0/h0", "rack1/h0"]
    fabric.install_dispatch(
        cls, svc, lambda: lambda pkt: targets[pkt.packet_id % 2]
    )
    _offer(fabric, "rack0", svc, traffic_class=cls, n=10)
    sim.run()
    assert fabric.logical_count(cls, svc) == 10
    per_rack = fabric.rack_logical_counts(cls, svc)
    crossrack = fabric.spine_logical_count(cls, svc)
    assert sum(per_rack.values()) - crossrack == 10
    assert 0 < crossrack < 10
    assert fabric.class_counters[cls] == 10


def test_install_rule_is_fleet_wide():
    """A §9.2 redirect installed through the fabric rewrites at every hop,
    so a ToR without a local port still lands the packet cross-rack."""
    sim, fabric, hosts = _fabric()
    rule = ForwardingRule(TrafficClass.PAXOS, "leader", "rack1/h0")
    fabric.install_rule(rule)
    _offer(fabric, "rack0", "leader", traffic_class=TrafficClass.PAXOS)
    sim.run()
    assert len(hosts["rack1/h0"].received) == 1
    removed = fabric.remove_rule(TrafficClass.PAXOS, "leader")
    assert removed is rule
    _offer(fabric, "rack0", "leader", traffic_class=TrafficClass.PAXOS)
    sim.run()
    assert fabric.dropped_no_route == 1


def test_oversubscribed_uplinks_queue():
    def burst(oversub):
        sim, fabric, hosts = _fabric(
            uplink_bandwidth_bps=gbit_per_s(1.0), oversubscription=oversub
        )
        for _ in range(50):
            _offer(fabric, "rack0", "rack1/h0")
        sim.run()
        assert len(hosts["rack1/h0"].received) == 50
        return sum(link.queued_us for link in fabric.uplinks)

    base, oversubscribed = burst(1.0), burst(8.0)
    assert oversubscribed > base


def test_uplinks_property_enumerates_both_directions():
    _, fabric, _ = _fabric(n_racks=3)
    uplinks = fabric.uplinks
    assert len(uplinks) == 6  # (ToR->spine, spine->ToR) per rack
    assert all(link.queueing for link in uplinks)
