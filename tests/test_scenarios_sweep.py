"""The scenario sweep engine: specs, pinned variants, the runner, the
tipping-point reduction, power attribution, and the sweep registry."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    NO_CONTROLLER,
    ScenarioSweepSpec,
    SweepAxis,
    attribute_power,
    build_spec,
    build_sweep_spec,
    closest_sweep,
    hardware_variant,
    run_sweep,
    software_variant,
    sweep_descriptions,
    sweep_names,
)
from repro.scenarios.sweep import _SWEEPS, register_sweep


# ---------------------------------------------------------------------------
# Spec validation and the grid.
# ---------------------------------------------------------------------------


class TestSweepSpec:
    def test_no_axes_rejected(self):
        with pytest.raises(ConfigurationError, match="no axes"):
            ScenarioSweepSpec(name="s", base="rack-kvs").validate()

    def test_empty_axis_values_rejected(self):
        with pytest.raises(ConfigurationError, match="no values"):
            ScenarioSweepSpec(
                name="s", base="rack-kvs", axes=(SweepAxis("n_hosts"),)
            ).validate()

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            ScenarioSweepSpec(
                name="s",
                base="rack-kvs",
                axes=(SweepAxis("a", (1,)), SweepAxis("a", (2,))),
            ).validate()

    def test_unknown_tip_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="tip_axis"):
            ScenarioSweepSpec(
                name="s",
                base="rack-kvs",
                axes=(SweepAxis("a", (1,)),),
                tip_axis="b",
            ).validate()

    def test_fixed_colliding_with_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="collides"):
            ScenarioSweepSpec(
                name="s",
                base="rack-kvs",
                axes=(SweepAxis("n_hosts", (1,)),),
                fixed=dict(n_hosts=2),
            ).validate()

    def test_points_cross_product_last_axis_fastest(self):
        spec = ScenarioSweepSpec(
            name="s",
            base="rack-kvs",
            axes=(SweepAxis("a", (1, 2)), SweepAxis("b", (10, 20))),
        )
        assert spec.points() == [
            {"a": 1, "b": 10},
            {"a": 1, "b": 20},
            {"a": 2, "b": 10},
            {"a": 2, "b": 20},
        ]

    def test_tip_axis_defaults_to_last(self):
        spec = ScenarioSweepSpec(
            name="s",
            base="rack-kvs",
            axes=(SweepAxis("a", (1,)), SweepAxis("b", (1,))),
        )
        assert spec.resolved_tip_axis() == "b"

    def test_specs_are_replace_derivable(self):
        spec = build_sweep_spec("sweep-rack-kvs")
        small = dataclasses.replace(
            spec, axes=(SweepAxis("n_hosts", (1,)),), tip_axis="n_hosts"
        )
        assert small.validate().points() == [{"n_hosts": 1}]


# ---------------------------------------------------------------------------
# Pinned variants.
# ---------------------------------------------------------------------------


class TestPinnedVariants:
    def test_software_variant_strips_triggers(self):
        spec = build_spec("rack-mixed")
        sw = software_variant(spec)
        assert sw.name == "rack-mixed[sw]"
        for host in (*sw.kvs_hosts, *sw.dns_hosts):
            assert host.controller == NO_CONTROLLER
            assert host.power_save is True
        for host in sw.kvs_hosts:
            assert host.colocated == ()
        for group in sw.paxos_groups:
            assert group.shifts == ()
            assert group.controller.kind == "schedule"
            assert not group.start_in_hardware

    def test_hardware_variant_starts_every_placement_in_hardware(self):
        spec = build_spec("rack-mixed")
        hw = hardware_variant(spec)
        assert hw.name == "rack-mixed[hw]"
        for placement in (*hw.kvs_hosts, *hw.dns_hosts, *hw.paxos_groups):
            assert placement.start_in_hardware
        for group in hw.paxos_groups:
            assert group.shifts == ()

    def test_variants_leave_the_original_untouched(self):
        spec = build_spec("rack-mixed")
        software_variant(spec)
        hardware_variant(spec)
        assert spec.kvs_hosts[0].colocated  # kvs0's ChainerMN job survives

    def test_start_in_hardware_applies_before_instrumentation(self):
        """The hardware pin is active for the t=0 power sample: the very
        first wall-power reading already includes the un-gated card."""
        from repro.scenarios import ScenarioBuilder

        base = build_spec(
            "rack-kvs", n_hosts=1, rate_per_host_kpps=2.0,
            duration_s=0.2, keyspace=500,
        )
        hw_run = ScenarioBuilder(hardware_variant(base)).build()
        sw_run = ScenarioBuilder(software_variant(base)).build()
        hw_first = hw_run.kvs_hosts[0].wall_sampler.series.values[0]
        sw_first = sw_run.kvs_hosts[0].wall_sampler.series.values[0]
        assert hw_first > sw_first  # active card vs §9.2 standby at t=0
        assert hw_run.kvs_hosts[0].service.shift_times_us() == [0.0]


# ---------------------------------------------------------------------------
# Power attribution.
# ---------------------------------------------------------------------------


class TestAttributePower:
    def test_disjoint_servers(self):
        attribution, total = attribute_power(
            {"a": [10.0, 20.0], "b": [30.0, 30.0]},
            {"a": ("p0",), "b": ("p1",)},
        )
        assert attribution == {"p0": 15.0, "p1": 30.0}
        assert total == pytest.approx(45.0)

    def test_shared_server_split_between_claimants(self):
        """The §9.4 shared-host case: two Paxos groups on one acceptor box
        each get an equal share of its draw, and nothing is lost."""
        attribution, total = attribute_power(
            {"shared": [40.0, 40.0], "own": [10.0, 10.0]},
            {"shared": ("px0", "px1"), "own": ("px0",)},
        )
        assert attribution == {"px0": 30.0, "px1": 20.0}
        assert sum(attribution.values()) == pytest.approx(total)

    def test_unclaimed_server_rejected(self):
        with pytest.raises(ConfigurationError, match="claimed by no placement"):
            attribute_power({"a": [1.0]}, {})

    def test_ragged_sample_series_rejected(self):
        """Misaligned cadences would make the independent total silently
        disagree with the attribution sum; refuse rather than approximate."""
        with pytest.raises(ConfigurationError, match="aligned sample series"):
            attribute_power(
                {"a": [10.0, 10.0], "b": [4.0]},
                {"a": ("p0",), "b": ("p1",)},
            )

    def test_empty_samples_are_skipped(self):
        attribution, total = attribute_power(
            {"a": [], "b": [5.0]}, {"a": ("p0",), "b": ("p1",)}
        )
        assert attribution == {"p1": 5.0}
        assert total == pytest.approx(5.0)

    def test_merge_power_claims_accumulates_shared_owners(self):
        """The builder-side fold: a node claimed by two placements keeps
        one sample set and both owners (reaching attribute_power's split
        path instead of the last claimant absorbing the whole draw)."""
        from repro.scenarios.builder import merge_power_claims

        samples, claims, busy = merge_power_claims(
            [
                ("shared-box", [40.0], "px0", 0.0),
                ("shared-box", [40.0], "px1", 0.0),
                ("own-box", [10.0], "px0", 1.0),
                ("own-box", [10.0], "px0", 1.0),  # duplicate claim collapses
            ]
        )
        assert samples == {"shared-box": [40.0], "own-box": [10.0]}
        assert claims == {"shared-box": ("px0", "px1"), "own-box": ("px0",)}
        assert busy == {
            "shared-box": {"px0": 0.0, "px1": 0.0},
            "own-box": {"px0": 2.0},
        }
        # no busy time recorded on the shared box -> equal-split fallback
        attribution, total = attribute_power(samples, claims, busy)
        assert attribution == {"px0": 30.0, "px1": 20.0}
        assert total == pytest.approx(50.0)

    def test_proportional_split_follows_busy_time(self):
        """The §9.4 proportional split: a shared box's draw divides by each
        claimant's busy time, and the sum-equals-total invariant holds."""
        samples = {"shared": [40.0, 40.0], "own": [10.0, 10.0]}
        claims = {"shared": ("px0", "px1"), "own": ("px0",)}
        busy = {"shared": {"px0": 3.0, "px1": 1.0}, "own": {"px0": 5.0}}
        attribution, total = attribute_power(samples, claims, busy)
        assert attribution == {"px0": 30.0 + 10.0, "px1": 10.0}
        assert sum(attribution.values()) == pytest.approx(total, abs=1e-6)

    def test_proportional_split_ignores_negative_and_missing_busy(self):
        """A claimant with no recorded busy time weighs zero; all-zero
        weights fall back to the equal split rather than dividing by 0."""
        attribution, _ = attribute_power(
            {"shared": [30.0]},
            {"shared": ("a", "b", "c")},
            {"shared": {"a": 2.0, "b": -5.0}},
        )
        assert attribution == {"a": 30.0, "b": 0.0, "c": 0.0}
        attribution, _ = attribute_power(
            {"shared": [30.0]},
            {"shared": ("a", "b", "c")},
            {"shared": {"a": -1.0}},
        )
        assert attribution == pytest.approx({"a": 10.0, "b": 10.0, "c": 10.0})


# ---------------------------------------------------------------------------
# End-to-end runs (small horizons).
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tiny_kvs_sweep():
    spec = build_sweep_spec(
        "sweep-rack-kvs",
        hosts=(1,),
        rates_kpps=(2.0, 4.0),
        duration_s=0.4,
        keyspace=1_000,
    )
    return run_sweep(spec)


class TestRunSweep:
    def test_grid_is_covered(self, tiny_kvs_sweep):
        assert [pt.params for pt in tiny_kvs_sweep.points] == [
            {"n_hosts": 1, "rate_per_host_kpps": 2.0},
            {"n_hosts": 1, "rate_per_host_kpps": 4.0},
        ]

    def test_aggregates_are_populated(self, tiny_kvs_sweep):
        for pt in tiny_kvs_sweep.points:
            for agg in (pt.software, pt.hardware):
                assert agg.achieved_pps > 0
                assert agg.total_power_w > 0
                assert agg.ops_per_watt > 0
                assert 0 < agg.p50_latency_us <= agg.p99_latency_us
                assert agg.power_by_placement

    def test_attribution_sums_to_total(self, tiny_kvs_sweep):
        for pt in tiny_kvs_sweep.points:
            for agg in (pt.software, pt.hardware):
                assert agg.attributed_power_w == pytest.approx(
                    agg.total_power_w, abs=1e-6
                )

    def test_point_lookup(self, tiny_kvs_sweep):
        pt = tiny_kvs_sweep.point(rate_per_host_kpps=4.0)
        assert pt.params["rate_per_host_kpps"] == 4.0
        with pytest.raises(KeyError):
            tiny_kvs_sweep.point(rate_per_host_kpps=99.0)

    def test_render_has_both_tables(self, tiny_kvs_sweep):
        text = tiny_kvs_sweep.render()
        assert "Sweep: sweep-rack-kvs" in text
        assert "Tipping points" in text
        assert "per-placement wall power" in text
        assert "ops/W" in text

    def test_tipping_scan_sorts_a_descending_ramp(self):
        """A ramp declared high-to-low still yields the true crossover and
        monotone=True (the scan sorts by ramp value, not declaration)."""
        from repro.scenarios.sweep import (
            ScenarioSweepResult,
            SweepAggregate,
            SweepPointResult,
        )

        spec = ScenarioSweepSpec(
            name="s",
            base="rack-kvs",
            axes=(SweepAxis("rate_per_host_kpps", (32.0, 8.0)),),
        )

        def aggregate(ops_per_watt):
            return SweepAggregate(
                mode="x",
                offered_pps=1.0,
                achieved_pps=1.0,
                total_power_w=1.0,
                p50_latency_us=1.0,
                p99_latency_us=1.0,
                ops_per_watt=ops_per_watt,
            )

        result = ScenarioSweepResult(
            spec=spec,
            points=[
                SweepPointResult(  # declared first: the high-rate hw win
                    params={"rate_per_host_kpps": 32.0},
                    software=aggregate(100.0),
                    hardware=aggregate(200.0),
                ),
                SweepPointResult(
                    params={"rate_per_host_kpps": 8.0},
                    software=aggregate(100.0),
                    hardware=aggregate(50.0),
                ),
            ],
        )
        (tip,) = result.tipping_points()
        assert tip.crossover == 32.0
        assert tip.monotone

    def test_low_rates_stay_on_software(self, tiny_kvs_sweep):
        """At 2-4 kpps/host the card's active draw cannot pay for itself:
        the §8 crossover lives far above this range."""
        for pt in tiny_kvs_sweep.points:
            assert not pt.hardware_wins

    def test_mixed_sweep_attributes_per_group(self):
        result = run_sweep(
            "sweep-rack-mixed",
            groups=(1,),
            duration_s=0.5,
            kvs_rate_kpps=4.0,
            dns_rate_kqps=3.0,
        )
        (pt,) = result.points
        for agg in (pt.software, pt.hardware):
            assert "px0" in agg.power_by_placement
            assert agg.power_by_placement["px0"] > 0
            # 2 KVS shards + 2 DNS replicas + 1 Paxos group
            assert set(agg.power_by_placement) == {
                "kvs0", "kvs1", "dns0", "dns1", "px0",
            }
            assert agg.attributed_power_w == pytest.approx(
                agg.total_power_w, abs=1e-6
            )


# ---------------------------------------------------------------------------
# The sweep registry.
# ---------------------------------------------------------------------------


class TestSweepRegistry:
    def test_catalogue(self):
        assert "sweep-rack-kvs" in sweep_names()
        assert "sweep-rack-mixed" in sweep_names()
        descriptions = sweep_descriptions()
        assert all(descriptions.values())

    def test_unknown_sweep_suggests_closest(self):
        with pytest.raises(ConfigurationError, match="sweep-rack-kvs"):
            build_sweep_spec("swep-rack-kvs")

    def test_closest_sweep_is_case_insensitive(self):
        assert closest_sweep("SWEEP-RACK-KVS") == "sweep-rack-kvs"
        assert closest_sweep("Sweep-Rack-Mixd") == "sweep-rack-mixed"
        assert closest_sweep("zzzzzz") is None

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            register_sweep("sweep-rack-kvs")(lambda: None)

    def test_run_sweep_rejects_overrides_on_spec(self):
        spec = build_sweep_spec("sweep-rack-kvs")
        with pytest.raises(ConfigurationError, match="overrides"):
            run_sweep(spec, duration_s=0.1)

    def test_bad_override_names_fail_cleanly(self):
        spec = ScenarioSweepSpec(
            name="s", base="rack-kvs", axes=(SweepAxis("no_such_param", (1,)),)
        )
        with pytest.raises(ConfigurationError, match="no_such_param"):
            run_sweep(spec)

    def test_bad_factory_overrides_fail_cleanly(self):
        """A factory kwarg typo surfaces as ConfigurationError, not a raw
        TypeError escaping through the CLI."""
        with pytest.raises(ConfigurationError, match="rejected overrides"):
            build_sweep_spec("sweep-rack-kvs", no_such_kwarg=1)


# ---------------------------------------------------------------------------
# CLI integration.
# ---------------------------------------------------------------------------


@pytest.fixture
def tiny_registered_sweep():
    name = "sweep-tiny-test"

    @register_sweep(name)
    def _tiny():
        return ScenarioSweepSpec(
            name=name,
            base="rack-kvs",
            description="tiny test sweep",
            axes=(SweepAxis("rate_per_host_kpps", (2.0,)),),
            fixed=dict(n_hosts=1, duration_s=0.3, keyspace=500),
        )

    yield name
    del _SWEEPS[name]


class TestCli:
    def test_sweep_runs_from_cli(self, capsys, tiny_registered_sweep):
        from repro.__main__ import main

        assert main(["--sweep", tiny_registered_sweep]) == 0
        out = capsys.readouterr().out
        assert "Tipping points" in out

    def test_sweep_accepts_case_insensitive_name(self, capsys, tiny_registered_sweep):
        from repro.__main__ import main

        assert main(["--sweep", tiny_registered_sweep.upper()]) == 0
        assert "Tipping points" in capsys.readouterr().out

    def test_unknown_sweep_suggests(self, capsys):
        from repro.__main__ import main

        assert main(["--sweep", "sweep-rack-kv"]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'sweep-rack-kvs'?" in err

    def test_sweep_conflicts_with_positional_experiment(self, capsys):
        from repro.__main__ import main

        assert main(["figure6", "--sweep", "sweep-rack-kvs"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_positional_sweep_name_points_at_the_flag(self, capsys):
        """A sweep name without --sweep hints at the flag, not at the
        similarly-named base scenario."""
        from repro.__main__ import main

        assert main(["sweep-rack-kvs"]) == 2
        err = capsys.readouterr().err
        assert "--sweep sweep-rack-kvs" in err

    def test_sweep_conflicts_with_list(self, capsys):
        from repro.__main__ import main

        assert main(["--list", "--sweep", "sweep-rack-kvs"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_sweep_png_flag_degrades_gracefully(
        self, capsys, tmp_path, tiny_registered_sweep
    ):
        """--png never fails a sweep run: without matplotlib it warns."""
        from repro.__main__ import main
        from repro.experiments import matplotlib_available

        assert main(["--sweep", tiny_registered_sweep, "--png", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "Tipping points" in captured.out
        if matplotlib_available():
            assert (tmp_path / f"{tiny_registered_sweep}.png").exists()
        else:
            assert "matplotlib not importable" in captured.err
