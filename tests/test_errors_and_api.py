"""Exception hierarchy and the top-level public API."""

import pytest

import repro
from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in (
        "SimulationError",
        "ConfigurationError",
        "CapacityError",
        "ProtocolError",
        "PlacementError",
        "PowerModelError",
    ):
        exc_type = getattr(errors, name)
        assert issubclass(exc_type, errors.ReproError)
        assert issubclass(exc_type, Exception)


def test_single_except_catches_everything():
    from repro.apps.kvs import LruStore

    with pytest.raises(errors.ReproError):
        LruStore(0)


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_top_level_quick_path():
    """The README's four-liner."""
    models = repro.kvs_models()
    crossover = repro.find_crossover(models["memcached"], models["lake"])
    assert 60_000 < crossover < 100_000


def test_version():
    assert repro.__version__ == "1.0.0"
