"""The vectorized steady-grid kernel: numpy/scalar parity of every array
kernel, byte-identity of :func:`steady_grid` against the per-point fast
path over the registered sweeps, and the ``REPRO_PURE_PYTHON`` gate."""

import os
import subprocess
import sys

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    build_sweep_spec,
    hardware_variant,
    software_variant,
    steady_grid,
)
from repro.scenarios.fastpath import steady_eligible, steady_point
from repro.scenarios.sweep import _materialize
from repro.steady import grid

#: Registered sweeps whose every grid point is steady-state eligible —
#: the sweeps the vectorized kernel (and the adaptive search) covers.
ELIGIBLE_SWEEPS = ["sweep-rack-kvs", "sweep-rack-hetero", "sweep-fabric-scale"]

#: Small but non-degenerate grids: below, at, and beyond capacity, plus
#: zero rate, so the saturation branches of every kernel are exercised.
_RATE = [0.0, 4_000.0, 38_000.0, 66_000.0, 250_000.0]
_CAP = [66_000.0, 66_000.0, 66_000.0, 66_000.0, 66_000.0]


def _eligible_grid(name):
    sweep = build_sweep_spec(name)
    return [_materialize(sweep, params) for params in sweep.points()]


needs_numpy = pytest.mark.skipif(
    not grid.have_numpy(), reason="numpy not importable in this env"
)


# ---------------------------------------------------------------------------
# Kernel-level parity: the numpy path vs. the scalar loop, same inputs.
# ---------------------------------------------------------------------------


@needs_numpy
class TestKernelParity:
    """Each kernel's vectorized result must equal the scalar loop exactly
    (``==`` on floats, not approx) — that is what makes the grid fast
    path byte-identical rather than merely close."""

    def _both(self, monkeypatch, func, *arrays):
        vec = func(*arrays)
        monkeypatch.setattr(grid, "_np", None)
        scalar = func(*arrays)
        return vec, scalar

    def test_software_power(self, monkeypatch):
        n = len(_RATE)
        vec, scalar = self._both(
            monkeypatch,
            grid.software_power,
            _RATE,
            _CAP,
            [35.0] * n,                      # idle_w
            [55.0] * n,                      # span_w
            [0.53, 1.0, 0.53, 2.0, 0.53],    # alpha: fractional and integral
            [0.0, 3.0, 0.0, 3.0, 0.0],       # poly_w: off and on
            [2.0] * n,                       # poly_exp
            [0.0, 4.1, 0.0, 4.1, 0.0],       # sub_w (power-save NIC out)
            [0.0, 1.2, 0.0, 1.2, 0.0],       # add_w (card standby in)
        )
        assert vec == scalar

    def test_software_latency(self, monkeypatch):
        vec, scalar = self._both(
            monkeypatch, grid.software_latency, _RATE, _CAP, [12.0] * len(_RATE)
        )
        assert vec == scalar

    def test_hardware_power(self, monkeypatch):
        n = len(_RATE)
        vec, scalar = self._both(
            monkeypatch,
            grid.hardware_power,
            _RATE,
            _CAP,
            [52.0] * n,
            [6.5] * n,
        )
        assert vec == scalar

    def test_served_pps(self, monkeypatch):
        vec, scalar = self._both(monkeypatch, grid.served_pps, _RATE, _CAP)
        assert vec == scalar

    def test_crossing_us(self, monkeypatch):
        vec, scalar = self._both(
            monkeypatch,
            grid.crossing_us,
            [0.0, 10_000.0, 900_000.0, 2_000_000.0, 5_000_000.0],
            [1.5] * 5,
            [0.48] * 5,
        )
        assert vec == scalar

    def test_throughput_factor(self, monkeypatch):
        vec, scalar = self._both(
            monkeypatch,
            grid.throughput_factor,
            [0.0, 50_000.0, 100_000.0, 150_000.0, 400_000.0],
            [100_000.0] * 5,
        )
        assert vec == scalar

    def test_pow_elementwise_is_python_pow(self):
        base = grid._asarray([0.0, 0.25, 0.5, 0.997, 1.0])
        out = grid._pow_elementwise(base, grid._asarray([0.53] * 5))
        assert out.tolist() == [b ** 0.53 for b in base.tolist()]


# ---------------------------------------------------------------------------
# Grid-level identity: steady_grid == [steady_point, ...] on real sweeps.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ELIGIBLE_SWEEPS)
@pytest.mark.parametrize("mode", ["software", "hardware"])
def test_steady_grid_matches_steady_point(name, mode):
    variant = software_variant if mode == "software" else hardware_variant
    specs = [variant(spec) for spec in _eligible_grid(name)]
    assert all(steady_eligible(spec) for spec in specs)
    batched = steady_grid(specs, mode)
    for spec, est in zip(specs, batched):
        one = steady_point(spec, mode)
        # exact equality, field for field — byte-identical, not approx
        assert est == one


@needs_numpy
@pytest.mark.parametrize("name", ELIGIBLE_SWEEPS)
def test_steady_grid_fallback_is_the_per_point_loop(name, monkeypatch):
    specs = [software_variant(spec) for spec in _eligible_grid(name)]
    vectorized = steady_grid(specs, "software")
    monkeypatch.setattr(grid, "_np", None)
    assert not grid.have_numpy()
    fallback = steady_grid(specs, "software")
    assert fallback == [steady_point(spec, "software") for spec in specs]
    assert fallback == vectorized


def test_steady_grid_rejects_unknown_mode():
    specs = [software_variant(_eligible_grid("sweep-rack-kvs")[0])]
    with pytest.raises(ConfigurationError, match="fast path answers"):
        steady_grid(specs, "turbo")


def test_steady_grid_rejects_ineligible_spec():
    sweep = build_sweep_spec("sweep-rack-mixed")
    spec = software_variant(_materialize(sweep, sweep.points()[0]))
    assert not steady_eligible(spec)
    with pytest.raises(ConfigurationError, match="not steady-state eligible"):
        steady_grid([spec], "software")


def test_steady_grid_empty_input():
    assert steady_grid([], "software") == []


# ---------------------------------------------------------------------------
# The environment gate.
# ---------------------------------------------------------------------------


def test_have_numpy_tracks_module_state(monkeypatch):
    assert grid.have_numpy() == (grid._np is not None)
    monkeypatch.setattr(grid, "_np", None)
    assert grid.have_numpy() is False


def test_repro_pure_python_disables_numpy_at_import():
    import repro

    env = dict(os.environ)
    env["REPRO_PURE_PYTHON"] = "1"
    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(repro.__file__))
    out = subprocess.run(
        [
            sys.executable,
            "-c",
            "from repro.steady import grid; print(grid.have_numpy())",
        ],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    assert out.stdout.strip() == "False"
