"""Sweep harness."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.sweep import SweepPoint, linspace_rates, sweep_model, sweep_models
from repro.steady import kvs_models
from repro.steady.base import SteadyModel
from repro.units import kpps, mpps


def test_linspace_rates():
    rates = linspace_rates(mpps(1.0), steps=5)
    assert rates == [0.0, 250_000.0, 500_000.0, 750_000.0, 1_000_000.0]


def test_linspace_validation():
    with pytest.raises(ConfigurationError):
        linspace_rates(0.0)
    with pytest.raises(ConfigurationError):
        linspace_rates(100.0, steps=1)


def test_sweep_model_points():
    model = kvs_models()["memcached"]
    points = sweep_model(model, [0.0, kpps(100), mpps(2.0)])
    assert len(points) == 3
    assert points[0].power_w == pytest.approx(39.0)
    # beyond capacity: achieved saturates, offered recorded as offered
    assert points[2].offered_pps == mpps(2.0)
    assert points[2].achieved_pps == model.capacity_pps


def test_sweep_rejects_empty():
    with pytest.raises(ConfigurationError):
        sweep_model(kvs_models()["memcached"], [])


def test_sweep_models_shares_rates():
    models = kvs_models()
    swept = sweep_models(models, linspace_rates(mpps(1.0), steps=4))
    assert set(swept) == set(models)
    lengths = {len(points) for points in swept.values()}
    assert lengths == {4}


def test_ops_per_watt_computed():
    model = kvs_models()["lake"]
    (point,) = sweep_model(model, [mpps(10.0)])
    assert point.ops_per_watt == pytest.approx(
        point.achieved_pps / point.power_w
    )


class _BrokenModel(SteadyModel):
    """A misconfigured curve reporting non-positive power."""

    def __init__(self, power_w: float):
        super().__init__("broken", capacity_pps=1_000.0)
        self._power_w = power_w

    def power_at(self, offered_pps: float) -> float:
        return self._power_w

    def base_latency_us(self) -> float:
        return 1.0


def test_non_positive_power_under_load_raises():
    """Regression: zero/negative power at positive load used to chart as
    0 ops/W — 'infinitely bad efficiency' — instead of failing."""
    for power in (0.0, -5.0):
        with pytest.raises(ConfigurationError, match="non-positive power"):
            sweep_model(_BrokenModel(power), [kpps(10)])


def test_zero_rate_point_stays_well_defined():
    """The 0-pps sample keeps ops_per_watt = 0.0 even when power is 0."""
    (point,) = sweep_model(_BrokenModel(0.0), [0.0])
    assert point.ops_per_watt == 0.0
    assert point.achieved_pps == 0.0
