"""Sweep harness."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.sweep import SweepPoint, linspace_rates, sweep_model, sweep_models
from repro.steady import kvs_models
from repro.units import kpps, mpps


def test_linspace_rates():
    rates = linspace_rates(mpps(1.0), steps=5)
    assert rates == [0.0, 250_000.0, 500_000.0, 750_000.0, 1_000_000.0]


def test_linspace_validation():
    with pytest.raises(ConfigurationError):
        linspace_rates(0.0)
    with pytest.raises(ConfigurationError):
        linspace_rates(100.0, steps=1)


def test_sweep_model_points():
    model = kvs_models()["memcached"]
    points = sweep_model(model, [0.0, kpps(100), mpps(2.0)])
    assert len(points) == 3
    assert points[0].power_w == pytest.approx(39.0)
    # beyond capacity: achieved saturates, offered recorded as offered
    assert points[2].offered_pps == mpps(2.0)
    assert points[2].achieved_pps == model.capacity_pps


def test_sweep_rejects_empty():
    with pytest.raises(ConfigurationError):
        sweep_model(kvs_models()["memcached"], [])


def test_sweep_models_shares_rates():
    models = kvs_models()
    swept = sweep_models(models, linspace_rates(mpps(1.0), steps=4))
    assert set(swept) == set(models)
    lengths = {len(points) for points in swept.values()}
    assert lengths == {4}


def test_ops_per_watt_computed():
    model = kvs_models()["lake"]
    (point,) = sweep_model(model, [mpps(10.0)])
    assert point.ops_per_watt == pytest.approx(
        point.achieved_pps / point.power_w
    )
