"""Direct tests of the shared application machinery."""

import pytest

from repro.apps.common import HardwareService, SoftwareService, UtilizationTracker
from repro.errors import ConfigurationError
from repro.host import make_i7_server
from repro.hw.fpga import make_p4xos_fpga
from repro.net.packet import Packet, TrafficClass, make_packet
from repro.net.node import SinkNode
from repro.sim import Simulator
from repro.units import msec, sec


class EchoService(SoftwareService):
    """Replies with the request payload."""

    def handle_request(self, packet):
        return packet.payload


class NullHardware(HardwareService):
    def request_latency_us(self, packet):
        return 2.0

    def handle_request(self, packet):
        return packet.payload


class TestUtilizationTracker:
    def test_windowed_utilization(self):
        sim = Simulator()
        tracker = UtilizationTracker(sim, window_us=1000.0)
        tracker.add_busy(250.0)
        sim.run_until(1000.0)
        assert tracker.roll() == pytest.approx(0.25)

    def test_capped_at_one(self):
        sim = Simulator()
        tracker = UtilizationTracker(sim, window_us=1000.0)
        tracker.add_busy(5000.0)
        sim.run_until(1000.0)
        assert tracker.roll() == 1.0

    def test_roll_resets_window(self):
        sim = Simulator()
        tracker = UtilizationTracker(sim, window_us=1000.0)
        tracker.add_busy(500.0)
        sim.run_until(1000.0)
        tracker.roll()
        sim.run_until(2000.0)
        assert tracker.roll() == 0.0


def _software(extra_latency=0.0, capacity=100_000.0):
    sim = Simulator()
    server = make_i7_server(sim, name="srv")
    sink = SinkNode(sim, "client")
    server.attach_egress(sink.receive)
    service = EchoService(
        sim, server, "echo", capacity_pps=capacity, cores=1.0,
        extra_latency_us=extra_latency,
    )
    return sim, server, sink, service


class TestSoftwareService:
    def test_serves_and_replies(self):
        sim, server, sink, service = _software()
        service.offer(make_packet("client", "srv", TrafficClass.NORMAL,
                                  payload="hello", now=sim.now))
        sim.run_until(msec(10.0))
        assert service.served == 1
        assert len(sink.received) == 1
        assert sink.received[0].payload == "hello"

    def test_reply_addressed_to_requester(self):
        sim, server, sink, service = _software()
        service.offer(make_packet("client", "srv", TrafficClass.NORMAL,
                                  payload="x", now=sim.now))
        sim.run_until(msec(10.0))
        assert sink.received[0].dst == "client"
        assert sink.received[0].src == "srv"

    def test_stack_latency_delays_reply(self):
        sim, server, sink, service = _software(extra_latency=100.0)
        service.offer(make_packet("client", "srv", TrafficClass.NORMAL,
                                  payload="x", now=sim.now))
        sim.run_until(50.0)
        assert not sink.received  # service time (10us) done, stack not
        sim.run_until(200.0)
        assert len(sink.received) == 1

    def test_fifo_service_order(self):
        sim, server, sink, service = _software()
        for i in range(5):
            service.offer(make_packet("client", "srv", TrafficClass.NORMAL,
                                      payload=i, now=sim.now))
        sim.run_until(msec(10.0))
        assert [p.payload for p in sink.received] == list(range(5))

    def test_busy_time_feeds_cpu_account(self):
        sim, server, sink, service = _software(capacity=10_000.0)
        for _ in range(100):
            service.offer(make_packet("client", "srv", TrafficClass.NORMAL,
                                      payload="x", now=sim.now))
        sim.run_until(msec(100.0))
        assert server.cpu.app_utilization("echo") > 0.0

    def test_validation(self):
        sim = Simulator()
        server = make_i7_server(sim)
        with pytest.raises(ConfigurationError):
            EchoService(sim, server, "bad", capacity_pps=0.0, cores=1.0)
        with pytest.raises(ConfigurationError):
            EchoService(sim, server, "bad", capacity_pps=1.0, cores=0.0)
        with pytest.raises(ConfigurationError):
            EchoService(sim, server, "bad", capacity_pps=1.0, cores=1.0,
                        extra_latency_us=-1.0)


class TestHardwareService:
    def _hardware(self):
        sim = Simulator()
        card = make_p4xos_fpga()
        sink = SinkNode(sim, "client")
        node = SinkNode(sim, "hw")
        node.attach_egress(sink.receive)
        service = NullHardware(sim, card, node, "nullhw", capacity_pps=1000.0)
        return sim, card, sink, service

    def test_pipeline_latency(self):
        sim, card, sink, service = self._hardware()
        service.offer(make_packet("client", "hw", TrafficClass.NORMAL,
                                  payload="x", now=sim.now))
        sim.run_until(1.9)
        assert not sink.received
        sim.run_until(2.1)
        assert len(sink.received) == 1

    def test_overload_policing(self):
        sim, card, sink, service = self._hardware()
        # capacity 1000pps => 100 per 100ms window
        for _ in range(500):
            service.offer(make_packet("client", "hw", TrafficClass.NORMAL,
                                      payload="x", now=sim.now))
        sim.run_until(msec(50.0))
        assert service.dropped_overload == 400

    def test_utilization_drives_card_dynamic_power(self):
        sim, card, sink, service = self._hardware()
        idle = card.power_w()
        for _ in range(100):  # exactly one window's capacity
            service.offer(make_packet("client", "hw", TrafficClass.NORMAL,
                                      payload="x", now=sim.now))
        sim.run_until(msec(100.0))  # window rolls -> utilization = 1.0
        assert card.power_w() > idle

    def test_stop_zeroes_utilization(self):
        sim, card, sink, service = self._hardware()
        for _ in range(100):
            service.offer(make_packet("client", "hw", TrafficClass.NORMAL,
                                      payload="x", now=sim.now))
        sim.run_until(msec(100.0))
        service.stop()
        assert card.utilization == 0.0
