"""Switch forwarding and the §9.2 redirect rules."""

import pytest

from repro.errors import ConfigurationError
from repro.net import ForwardingRule, Link, Switch, TrafficClass
from repro.net.node import SinkNode
from repro.net.packet import make_packet
from repro.sim import Simulator


def _star():
    sim = Simulator()
    switch = Switch(sim)
    nodes = {}
    for name in ("a", "b", "c"):
        node = SinkNode(sim, name)
        switch.connect(node, Link(sim, node, name=f"sw->{name}"))
        nodes[name] = node
    return sim, switch, nodes


def test_destination_forwarding():
    sim, switch, nodes = _star()
    switch.receive(make_packet("a", "b", TrafficClass.NORMAL, now=sim.now))
    sim.run()
    assert len(nodes["b"].received) == 1
    assert len(nodes["c"].received) == 0


def test_unknown_destination_dropped():
    sim, switch, nodes = _star()
    switch.receive(make_packet("a", "nowhere", TrafficClass.NORMAL, now=sim.now))
    sim.run()
    assert switch.dropped_no_route == 1


def test_redirect_rule_rewrites_target():
    sim, switch, nodes = _star()
    switch.install_rule(ForwardingRule(TrafficClass.PAXOS, "paxos-leader", "c"))
    switch.receive(make_packet("a", "paxos-leader", TrafficClass.PAXOS, now=sim.now))
    sim.run()
    assert len(nodes["c"].received) == 1
    assert switch.redirected == 1


def test_rule_only_matches_its_class():
    sim, switch, nodes = _star()
    switch.install_rule(ForwardingRule(TrafficClass.PAXOS, "b", "c"))
    switch.receive(make_packet("a", "b", TrafficClass.NORMAL, now=sim.now))
    sim.run()
    assert len(nodes["b"].received) == 1
    assert len(nodes["c"].received) == 0


def test_rule_replacement_shifts_leader():
    """The §9.2 shift: replace the rule, traffic moves."""
    sim, switch, nodes = _star()
    switch.install_rule(ForwardingRule(TrafficClass.PAXOS, "paxos-leader", "b"))
    switch.receive(make_packet("x", "paxos-leader", TrafficClass.PAXOS, now=sim.now))
    switch.install_rule(ForwardingRule(TrafficClass.PAXOS, "paxos-leader", "c"))
    switch.receive(make_packet("x", "paxos-leader", TrafficClass.PAXOS, now=sim.now))
    sim.run()
    assert len(nodes["b"].received) == 1
    assert len(nodes["c"].received) == 1


def test_rule_to_unknown_port_rejected():
    sim, switch, nodes = _star()
    with pytest.raises(ConfigurationError):
        switch.install_rule(ForwardingRule(TrafficClass.PAXOS, "x", "nowhere"))


def test_remove_rule():
    sim, switch, nodes = _star()
    rule = ForwardingRule(TrafficClass.PAXOS, "x", "b")
    switch.install_rule(rule)
    assert switch.remove_rule(TrafficClass.PAXOS, "x") == rule
    assert switch.remove_rule(TrafficClass.PAXOS, "x") is None


def test_class_counters():
    sim, switch, nodes = _star()
    for _ in range(3):
        switch.receive(make_packet("a", "b", TrafficClass.DNS, now=sim.now))
    switch.receive(make_packet("a", "b", TrafficClass.NORMAL, now=sim.now))
    assert switch.class_counters[TrafficClass.DNS] == 3
    assert switch.class_counters[TrafficClass.NORMAL] == 1


def test_duplicate_port_rejected():
    sim, switch, nodes = _star()
    extra = SinkNode(sim, "a")
    with pytest.raises(ConfigurationError):
        switch.connect(extra, Link(sim, extra))


def test_dispatch_rule_chooses_per_packet():
    """A dispatch rule spreads one logical destination across ports."""
    sim, switch, nodes = _star()
    targets = iter(["b", "c", "b"])
    switch.install_dispatch(
        TrafficClass.MEMCACHED, "kvs-rack", lambda packet: next(targets)
    )
    for _ in range(3):
        switch.receive(
            make_packet("a", "kvs-rack", TrafficClass.MEMCACHED, now=sim.now)
        )
    sim.run()
    assert len(nodes["b"].received) == 2
    assert len(nodes["c"].received) == 1
    assert switch.dispatched == 3


def test_exact_rule_takes_precedence_over_dispatch():
    sim, switch, nodes = _star()
    switch.install_dispatch(
        TrafficClass.MEMCACHED, "kvs-rack", lambda packet: "b"
    )
    switch.install_rule(ForwardingRule(TrafficClass.MEMCACHED, "kvs-rack", "c"))
    switch.receive(make_packet("a", "kvs-rack", TrafficClass.MEMCACHED, now=sim.now))
    sim.run()
    assert len(nodes["c"].received) == 1
    assert len(nodes["b"].received) == 0


def test_remove_dispatch():
    sim, switch, nodes = _star()
    chooser = lambda packet: "b"
    switch.install_dispatch(TrafficClass.MEMCACHED, "kvs-rack", chooser)
    assert switch.remove_dispatch(TrafficClass.MEMCACHED, "kvs-rack") is chooser
    assert switch.remove_dispatch(TrafficClass.MEMCACHED, "kvs-rack") is None
    switch.receive(make_packet("a", "kvs-rack", TrafficClass.MEMCACHED, now=sim.now))
    sim.run()
    assert switch.dropped_no_route == 1
