"""The adaptive crossover search: exhaustive-equivalence of the tipping
rows on the three fastpath-eligible registered sweeps (with the DES
savings floor), anchors, replication bracket reuse, and the error paths.

The equivalence configs are trimmed (two-value outer axes, shortened
durations) to keep the DES cost down while still crossing a real
sw/hw tipping point on ``sweep-rack-kvs`` and ``sweep-rack-hetero``.
"""

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import build_sweep_spec, run_replicated, run_sweep
from repro.scenarios.sweep import (
    ReplicationSpec,
    _bracket_first_win,
    _linear_fill,
    _with_seed,
)

#: (sweep name, overrides) — each grid crosses (or provably never
#: crosses) the sw/hw tipping point within a ramp cheap enough to replay
#: exhaustively in-test.
EQUIVALENCE_CONFIGS = [
    (
        "sweep-rack-kvs",
        dict(
            hosts=(1, 2),
            rates_kpps=tuple(46.0 + 2.0 * i for i in range(14)),
            duration_s=0.15,
            keyspace=4_000,
        ),
    ),
    (
        "sweep-rack-hetero",
        dict(
            rates_kpps=tuple(6.0 + 4.0 * i for i in range(12)),
            duration_s=0.2,
            keyspace=4_000,
        ),
    ),
    (
        "sweep-fabric-scale",
        dict(
            racks=(1, 2),
            rates_kpps=tuple(6.0 + 4.0 * i for i in range(12)),
            duration_s=0.15,
            keyspace=4_000,
        ),
    ),
]


# ---------------------------------------------------------------------------
# The pure helpers.
# ---------------------------------------------------------------------------


class TestBracketFirstWin:
    def test_monotone_flags(self):
        assert _bracket_first_win([False, False, True, True]) == 2
        assert _bracket_first_win([True, True]) == 0
        assert _bracket_first_win([False, False]) is None
        assert _bracket_first_win([]) is None

    def test_non_monotone_falls_back_to_first_true(self):
        # bisection assumes monotone; a lone early win must still be found
        assert _bracket_first_win([False, True, False, False]) == 1


class TestLinearFill:
    def test_interpolates_between_samples(self):
        assert _linear_fill([0, 2], [0.0, 4.0], 3) == [0.0, 2.0, 4.0]

    def test_extrapolates_past_the_ends(self):
        assert _linear_fill([1, 2], [1.0, 2.0], 4) == [0.0, 1.0, 2.0, 3.0]

    def test_single_sample_is_flat(self):
        assert _linear_fill([1], [3.5], 3) == [3.5, 3.5, 3.5]


# ---------------------------------------------------------------------------
# Adaptive == exhaustive on the registered eligible sweeps.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "name,overrides",
    EQUIVALENCE_CONFIGS,
    ids=[name for name, _ in EQUIVALENCE_CONFIGS],
)
def test_adaptive_matches_exhaustive(name, overrides):
    exhaustive = run_sweep(name, **overrides)
    adaptive = run_sweep(name, search="adaptive", **overrides)

    assert exhaustive.search == "exhaustive"
    assert adaptive.search == "adaptive"
    total = adaptive.grid_points_total
    assert total == exhaustive.grid_points_total == len(exhaustive.points)

    # The contract: identical TippingPoint rows...
    assert adaptive.tipping_points() == exhaustive.tipping_points()
    # ...from at most a quarter of the DES replays (the ISSUE floor).
    assert exhaustive.des_points_run == total
    assert adaptive.des_points_run * 4 <= total

    # Probed points are byte-identical to the exhaustive replays; the
    # rest are flagged analytic estimates.
    assert sum(
        1 for pt in adaptive.points if not pt.estimated
    ) == adaptive.des_points_run
    for pt_ex, pt_ad in zip(exhaustive.points, adaptive.points):
        assert pt_ad.params == pt_ex.params
        assert not pt_ex.estimated
        if not pt_ad.estimated:
            assert pt_ad.software == pt_ex.software
            assert pt_ad.hardware == pt_ex.hardware
            assert pt_ad.ondemand == pt_ex.ondemand

    # The savings counter and the estimate footnote surface in render().
    text = adaptive.render()
    assert f"adaptive search: DES on {adaptive.des_points_run}/{total}" in text
    if adaptive.des_points_run < total:
        assert "~ analytic steady-state estimate" in text
    assert "adaptive search" not in exhaustive.render()

    if name in ("sweep-rack-kvs", "sweep-rack-hetero"):
        # these grids are chosen to cross for real — the equivalence is
        # only interesting if at least one row has a confirmed crossover
        assert any(
            row.crossover is not None for row in adaptive.tipping_points()
        )


# ---------------------------------------------------------------------------
# Anchors: user-pinned points always replay the DES.
# ---------------------------------------------------------------------------


def test_anchored_points_are_des_replayed():
    overrides = dict(
        hosts=(1,),
        rates_kpps=(8.0, 12.0, 16.0, 20.0, 24.0, 28.0),
        duration_s=0.05,
        keyspace=4_000,
    )
    anchor = {"rate_per_host_kpps": 16.0}
    plain = run_sweep("sweep-rack-kvs", search="adaptive", **overrides)
    anchored = run_sweep(
        "sweep-rack-kvs", search="adaptive", anchors=(anchor,), **overrides
    )
    assert anchored.point(n_hosts=1, rate_per_host_kpps=16.0).estimated is False
    assert anchored.des_points_run >= plain.des_points_run
    assert anchored.tipping_points() == plain.tipping_points()


# ---------------------------------------------------------------------------
# Replication: seed 0 brackets, later seeds start from its hints.
# ---------------------------------------------------------------------------


def test_replicated_adaptive_rows_match_standalone_runs():
    overrides = dict(
        hosts=(1, 2),
        rates_kpps=(46.0, 54.0, 62.0, 70.0),
        duration_s=0.12,
        keyspace=4_000,
    )
    result = run_replicated(
        "sweep-rack-kvs", seeds=3, search="adaptive", **overrides
    )
    assert len(result.runs) == len(result.seeds) == 3
    for seed, run in zip(result.seeds, result.runs):
        assert run.search == "adaptive"
        spec = _with_seed(build_sweep_spec("sweep-rack-kvs", **overrides), seed)
        standalone = run_sweep(spec, search="adaptive")
        # per-seed rows are that seed's own DES facts — identical to a
        # standalone adaptive run of the same seed (the shared hints only
        # move the walk's starting probe, never the confirmed rows)
        assert run.tipping_points() == standalone.tipping_points()
    # the reused bracket means later seeds never probe more than seed 0,
    # which pays for the endpoint calibration probes
    for run in result.runs[1:]:
        assert run.des_points_run <= result.runs[0].des_points_run


def test_replication_spec_validates_search():
    with pytest.raises(ConfigurationError, match="search"):
        ReplicationSpec(search="bogus").validate()
    with pytest.raises(ConfigurationError, match="adaptive"):
        ReplicationSpec(search="adaptive", fastpath=True).validate()


# ---------------------------------------------------------------------------
# Error paths.
# ---------------------------------------------------------------------------


class TestAdaptiveErrors:
    def test_unknown_search_mode(self):
        with pytest.raises(ConfigurationError, match="unknown search mode"):
            run_sweep("sweep-rack-kvs", search="dowsing")

    def test_adaptive_conflicts_with_fastpath(self):
        with pytest.raises(ConfigurationError, match="redundant"):
            run_sweep("sweep-rack-kvs", search="adaptive", fastpath=True)

    def test_anchors_require_adaptive(self):
        with pytest.raises(ConfigurationError, match="anchors"):
            run_sweep("sweep-rack-kvs", anchors=({"n_hosts": 1},))

    def test_adaptive_needs_an_eligible_point(self):
        with pytest.raises(
            ConfigurationError, match="no grid point is steady-state eligible"
        ):
            run_sweep("sweep-rack-mixed", search="adaptive")

    def test_empty_anchor_rejected(self):
        with pytest.raises(ConfigurationError, match="anchor"):
            run_sweep("sweep-rack-kvs", search="adaptive", anchors=({},))

    def test_unknown_anchor_key_rejected(self):
        with pytest.raises(ConfigurationError, match="anchor"):
            run_sweep(
                "sweep-rack-kvs",
                search="adaptive",
                anchors=({"warp_factor": 9},),
            )
