"""Time series, latency recorder and percentile math."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import LatencyRecorder, Simulator, TimeSeries, percentile
from repro.sim.recorder import PeriodicSampler, percentiles
from repro.units import sec


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50.0) == 2

    def test_p99_of_100(self):
        values = list(range(1, 101))
        assert percentile(values, 99.0) == 99

    def test_p0_is_min_p100_is_max(self):
        values = [5, 1, 9]
        assert percentile(values, 0.0) == 1
        assert percentile(values, 100.0) == 9

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_out_of_range_pct_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101.0)

    def test_presorted_skips_the_sort(self):
        # a deliberately unsorted list with presorted=True reads ranks
        # positionally — proving the sort really is skipped
        assert percentile([9, 1, 5], 50.0, presorted=True) == 1

    def test_percentiles_single_sort_matches_percentile(self):
        values = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0]
        assert percentiles(values, (0.0, 50.0, 99.0, 100.0)) == [
            percentile(values, 0.0),
            percentile(values, 50.0),
            percentile(values, 99.0),
            percentile(values, 100.0),
        ]


class TestTimeSeries:
    def test_record_and_query(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        ts.record(10.0, 3.0)
        assert ts.mean() == pytest.approx(2.0)
        assert ts.last().value == 3.0

    def test_out_of_order_rejected(self):
        ts = TimeSeries()
        ts.record(10.0, 1.0)
        with pytest.raises(ConfigurationError):
            ts.record(5.0, 2.0)

    def test_window_query(self):
        ts = TimeSeries()
        for t in range(10):
            ts.record(float(t), float(t))
        window = ts.window(3.0, 6.0)
        assert [s.value for s in window] == [3.0, 4.0, 5.0]

    def test_windowed_mean(self):
        ts = TimeSeries()
        for t in range(10):
            ts.record(float(t), float(t))
        assert ts.mean(5.0, 8.0) == pytest.approx(6.0)

    def test_mean_empty_window_raises(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        with pytest.raises(ValueError):
            ts.mean(100.0, 200.0)

    def test_integrate_constant_power(self):
        ts = TimeSeries()
        ts.record(0.0, 50.0)
        ts.record(sec(10.0), 50.0)
        # 50W for 10s = 500J
        assert ts.integrate_seconds() == pytest.approx(500.0)

    def test_integrate_ramp(self):
        ts = TimeSeries()
        ts.record(0.0, 0.0)
        ts.record(sec(10.0), 100.0)
        assert ts.integrate_seconds() == pytest.approx(500.0)

    def test_views_are_immutable_tuples(self):
        ts = TimeSeries()
        ts.record(1.0, 10.0)
        ts.record(2.0, 20.0)
        assert ts.times == (1.0, 2.0)
        assert ts.values == (10.0, 20.0)
        assert isinstance(ts.times, tuple)

    def test_views_cached_between_appends(self):
        ts = TimeSeries()
        ts.record(1.0, 10.0)
        first = ts.times
        assert ts.times is first  # repeated reads are O(1), no re-copy
        ts.record(2.0, 20.0)
        assert ts.times == (1.0, 2.0)  # refreshed after an append
        assert ts.values == (10.0, 20.0)


class TestLatencyRecorder:
    def test_statistics(self):
        rec = LatencyRecorder()
        rec.extend([1.0, 2.0, 3.0, 4.0, 100.0])
        assert rec.mean() == pytest.approx(22.0)
        assert rec.median() == 3.0
        assert len(rec) == 5

    def test_negative_rejected(self):
        rec = LatencyRecorder()
        with pytest.raises(ConfigurationError):
            rec.record(-1.0)

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            LatencyRecorder().mean()

    def test_reset(self):
        rec = LatencyRecorder()
        rec.record(5.0)
        rec.reset()
        assert len(rec) == 0


class TestPeriodicSampler:
    def test_samples_at_interval(self):
        sim = Simulator()
        value = {"power": 10.0}
        sampler = PeriodicSampler(sim, lambda: value["power"], 100.0)
        sim.run_until(250.0)
        # initial sample at t=0, then t=100, t=200
        assert len(sampler.series) == 3

    def test_stop_halts_sampling(self):
        sim = Simulator()
        sampler = PeriodicSampler(sim, lambda: 1.0, 100.0)
        sim.run_until(150.0)
        sampler.stop()
        sim.run_until(1000.0)
        assert len(sampler.series) == 2

    def test_bad_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            PeriodicSampler(Simulator(), lambda: 1.0, 0.0)


class TestIncrementalSortedCache:
    """sorted_samples() merges the sorted prefix with the new tail instead
    of re-sorting from scratch — and must stay coherent through every mix
    of record()/extend()/reset()."""

    def test_cache_coherent_across_record_extend_mix(self):
        import random

        rng = random.Random(11)
        rec = LatencyRecorder()
        shadow = []
        for round_ in range(8):
            batch = [rng.uniform(0.0, 1000.0) for _ in range(round_ * 3 + 1)]
            if round_ % 2:
                rec.extend(batch)
            else:
                for v in batch:
                    rec.record(v)
            shadow.extend(batch)
            # query mid-stream so the cache is built, then appended past
            assert rec.sorted_samples() == sorted(shadow)
        assert rec.median() == percentile(sorted(shadow), 50, presorted=True)

    def test_repeated_queries_without_new_samples(self):
        rec = LatencyRecorder()
        rec.extend([3.0, 1.0, 2.0])
        first = rec.sorted_samples()
        assert rec.sorted_samples() == first == [1.0, 2.0, 3.0]

    def test_reset_clears_the_cache(self):
        rec = LatencyRecorder()
        rec.extend([5.0, 4.0])
        assert rec.sorted_samples() == [4.0, 5.0]
        rec.reset()
        rec.extend([2.0, 1.0])
        assert rec.sorted_samples() == [1.0, 2.0]

    def test_extend_is_all_or_nothing(self):
        rec = LatencyRecorder()
        rec.extend([1.0, 2.0])
        with pytest.raises(ConfigurationError):
            rec.extend([3.0, -0.5, 4.0])
        # the valid prefix of the rejected batch must not have landed
        assert rec.samples == [1.0, 2.0]
        assert rec.sorted_samples() == [1.0, 2.0]


class TestVectorizedKernelsAgree:
    """Property test: the numpy kernels and the pure-python fallbacks are
    the same function.  The dispatch thresholds (32/64 samples) mean both
    paths run in production, so they must agree — to 1e-12 where float
    association could differ, exactly where it cannot."""

    def _skip_without_numpy(self):
        from repro.sim import recorder

        if recorder._np is None:
            pytest.skip("numpy unavailable (or REPRO_PURE_PYTHON=1)")
        return recorder

    def test_percentile_kernels_pick_identical_elements(self):
        import random

        recorder = self._skip_without_numpy()
        rng = random.Random(7)
        values = [rng.expovariate(1 / 50.0) for _ in range(501)]
        pcts = [0.0, 1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0]
        py = recorder._percentiles_python(values, pcts)
        np_ = recorder._percentiles_numpy(values, pcts)
        # nearest-rank selection returns an *element*, so identity is exact
        assert py == np_

    def test_bucket_rate_kernels_identical(self):
        import random

        recorder = self._skip_without_numpy()
        rng = random.Random(13)
        times = sorted(rng.uniform(0.0, 5e6) for _ in range(2000))
        py = recorder._bucket_rate_python(times, 1e5, 5e6)
        np_ = recorder._bucket_rate_numpy(times, 1e5, 5e6)
        assert py == np_  # integer counts scaled identically: exact

    def test_bucket_mean_kernels_agree_to_1e_12(self):
        import random

        recorder = self._skip_without_numpy()
        rng = random.Random(29)
        samples = [
            (rng.uniform(0.0, 2e6), rng.gauss(100.0, 37.0))
            for _ in range(1500)
        ]
        samples.sort()
        py = recorder._bucket_mean_python(samples, 5e4, 2e6)
        np_ = recorder._bucket_mean_numpy(samples, 5e4, 2e6)
        assert len(py) == len(np_)
        for (t_a, v_a), (t_b, v_b) in zip(py, np_):
            assert t_a == t_b
            if v_a is None or v_b is None:
                assert v_a is None and v_b is None
            else:
                assert v_b == pytest.approx(v_a, abs=1e-12, rel=1e-12)

    def test_public_apis_agree_across_dispatch_threshold(self):
        """percentiles()/bucket_rate_series() answers must not change when
        input size crosses the numpy dispatch thresholds (32/64)."""
        from repro.sim import recorder
        from repro.sim.recorder import bucket_rate_series

        values = [float((i * 37) % 101) for i in range(40)]  # >= 32: numpy
        assert percentiles(values, [50.0, 99.0]) == (
            recorder._percentiles_python(values, [50.0, 99.0])
        )
        times = sorted(float(i * 997 % 100_000) for i in range(80))  # >= 64
        assert bucket_rate_series(times, 1e4, 1e5) == (
            recorder._bucket_rate_python(times, 1e4, 1e5)
        )
