"""PEAS-inspired model-predictive controller (§9.1 future work)."""

import pytest

from repro.core.ondemand import OnDemandService
from repro.core.predictive_controller import (
    PredictiveController,
    PredictiveControllerConfig,
)
from repro.errors import ConfigurationError
from repro.net import ClassifierRule, PacketClassifier, TrafficClass
from repro.net.packet import make_packet
from repro.sim import Simulator
from repro.steady import kvs_models
from repro.units import SEC, kpps, msec, sec


def _setup(margin_w=2.0, window_s=0.5):
    sim = Simulator()
    classifier = PacketClassifier(sim)
    classifier.add_rule(
        ClassifierRule(TrafficClass.MEMCACHED, hardware=lambda p: None, host=lambda p: None)
    )
    service = OnDemandService(
        sim, "kvs", classifier=classifier, traffic_class=TrafficClass.MEMCACHED
    )
    models = kvs_models()
    controller = PredictiveController(
        sim,
        classifier,
        TrafficClass.MEMCACHED,
        service,
        software_model=models["memcached"],
        hardware_model=models["lake"],
        standby_card_w=17.9,
        config=PredictiveControllerConfig(
            margin_w=margin_w, window_us=sec(window_s), tick_us=msec(50.0)
        ),
    )
    return sim, classifier, service, controller


def _drive(sim, classifier, rate_pps):
    state = {"rate": rate_pps}

    def tick():
        for _ in range(int(state["rate"] * msec(10.0) / SEC)):
            classifier.classify(
                make_packet("c", "s", TrafficClass.MEMCACHED, now=sim.now)
            )

    sim.call_every(msec(10.0), tick)
    return state


def _dead_band_rate(controller, margin_w=2.0):
    """A rate whose predicted saving falls inside the hysteresis band."""
    for rate in range(0, 20_000, 200):
        saving = controller.predicted_saving_w(float(rate))
        if -margin_w * 0.8 < saving < margin_w * 0.8:
            return float(rate)
    raise AssertionError("no dead-band rate found; margin too narrow")


class TestDecision:
    def test_predicted_saving_sign(self):
        _, _, _, controller = _setup()
        # with the card present either way (standby 17.9W), hardware wins
        # even at modest rates; at true zero the gated card still loses
        assert controller.predicted_saving_w(kpps(100)) > 0.0
        assert controller.predicted_saving_w(0.0) < 0.0

    def test_margin_blocks_marginal_shifts(self):
        _, _, _, controller = _setup(margin_w=50.0)
        # saving exists but is below the huge margin -> stay in software
        assert not controller.decide(kpps(100))

    def test_hysteresis_from_asymmetric_costs(self):
        _, _, service, controller = _setup(margin_w=2.0)
        # find a rate whose saving sits inside the dead band: decide() must
        # then keep whatever the current placement is
        rate = _dead_band_rate(controller)
        assert not controller.decide(rate)          # software stays
        service.shift_to_hardware("force")
        assert controller.decide(rate)              # hardware stays too


class TestClosedLoop:
    def test_shifts_up_under_load(self):
        sim, classifier, service, controller = _setup()
        _drive(sim, classifier, kpps(150))
        sim.run_until(sec(2.0))
        assert service.in_hardware
        assert "predicted saving" in service.shifts[0].reason

    def test_shifts_back_at_idle(self):
        sim, classifier, service, controller = _setup()
        state = _drive(sim, classifier, kpps(150))
        sim.run_until(sec(2.0))
        assert service.in_hardware
        state["rate"] = 0.0
        sim.run_until(sec(5.0))
        assert not service.in_hardware

    def test_no_flapping_in_dead_band(self):
        sim, classifier, service, controller = _setup()
        _drive(sim, classifier, _dead_band_rate(controller))
        sim.run_until(sec(5.0))
        assert len(service.shifts) == 0

    def test_prediction_telemetry(self):
        sim, classifier, service, controller = _setup()
        _drive(sim, classifier, kpps(50))
        sim.run_until(sec(2.0))
        assert len(controller.prediction_series) > 0


def test_config_validation():
    with pytest.raises(ConfigurationError):
        PredictiveControllerConfig(margin_w=-1.0)
    with pytest.raises(ConfigurationError):
        PredictiveControllerConfig(expected_residence_s=0.0)
