"""Paxos role state machines (direct-call protocol tests)."""

import pytest

from repro.apps.paxos import (
    AcceptorState,
    ClientCommand,
    ClientRequest,
    GapRequest,
    LeaderState,
    LearnerState,
    NOOP,
    Phase1A,
    Phase2A,
    majority,
)
from repro.errors import ProtocolError


def _ready_leader(n_acceptors=3, leader_index=0, acceptors=None):
    leader = LeaderState(f"L{leader_index}", leader_index, n_acceptors)
    acceptors = acceptors or [AcceptorState(f"a{i}") for i in range(n_acceptors)]
    p1a = leader.start_phase1()
    for acceptor in acceptors:
        promise = acceptor.handle_phase1a(p1a)
        if promise is not None:
            leader.handle_phase1b(promise)
    return leader, acceptors


def test_majority():
    assert majority(1) == 1
    assert majority(3) == 2
    assert majority(5) == 3
    with pytest.raises(ProtocolError):
        majority(0)


class TestAcceptor:
    def test_promise_once_per_round(self):
        acceptor = AcceptorState("a")
        assert acceptor.handle_phase1a(Phase1A(16, "L")) is not None
        assert acceptor.handle_phase1a(Phase1A(16, "L")) is None  # duplicate
        assert acceptor.handle_phase1a(Phase1A(10, "L")) is None  # stale

    def test_vote_records_state(self):
        acceptor = AcceptorState("a")
        vote = acceptor.handle_phase2a(Phase2A(16, 1, "v"))
        assert vote is not None
        assert vote.last_voted_instance == 1
        assert acceptor.votes[1] == (16, "v")

    def test_vote_rejected_below_promise(self):
        acceptor = AcceptorState("a")
        acceptor.handle_phase1a(Phase1A(32, "L"))
        assert acceptor.handle_phase2a(Phase2A(16, 1, "v")) is None

    def test_last_voted_piggyback_is_max(self):
        """§9.2: acceptors piggyback the last-voted-upon sequence number."""
        acceptor = AcceptorState("a")
        acceptor.handle_phase2a(Phase2A(16, 5, "v"))
        vote = acceptor.handle_phase2a(Phase2A(16, 3, "w"))
        assert vote.last_voted_instance == 5

    def test_recovery_window_bounds_report(self):
        acceptor = AcceptorState("a", recovery_window=2)
        for instance in range(1, 6):
            acceptor.handle_phase2a(Phase2A(16, instance, f"v{instance}"))
        promise = acceptor.handle_phase1a(Phase1A(32, "L"))
        assert set(promise.votes) == {4, 5}
        assert promise.last_voted_instance == 5

    def test_recovery_window_validated(self):
        with pytest.raises(ProtocolError):
            AcceptorState("a", recovery_window=0)


class TestLeader:
    def test_not_ready_drops_proposals(self):
        """§9.2/Figure 7: 'the new leader fails to propose until it learns
        the latest Paxos instance from the acceptors'."""
        leader = LeaderState("L", 0, 3)
        leader.start_phase1()
        assert leader.propose("v") is None
        assert leader.dropped_not_ready == 1

    def test_ready_after_quorum(self):
        leader, _ = _ready_leader()
        assert leader.ready
        proposal = leader.propose("v")
        assert proposal == Phase2A(leader.round, 1, "v")

    def test_instances_monotonic(self):
        leader, _ = _ready_leader()
        instances = [leader.propose(f"v{i}").instance for i in range(5)]
        assert instances == [1, 2, 3, 4, 5]

    def test_takeover_learns_next_instance(self):
        """§9.2: the new leader learns the most recent not-yet-used
        sequence number from the acceptors."""
        leader1, acceptors = _ready_leader(leader_index=0)
        for i in range(7):
            proposal = leader1.propose(f"v{i}")
            for acceptor in acceptors:
                acceptor.handle_phase2a(proposal)
        leader2, _ = _ready_leader(leader_index=1, acceptors=acceptors)
        assert leader2.next_instance == 8

    def test_takeover_reproposes_highest_round_value(self):
        leader1, acceptors = _ready_leader(leader_index=0)
        proposal = leader1.propose("old-value")
        # only one acceptor voted (no decision)
        acceptors[0].handle_phase2a(proposal)
        leader2 = LeaderState("L1", 1, 3)
        p1a = leader2.start_phase1()
        reproposals = []
        for acceptor in acceptors:
            promise = acceptor.handle_phase1a(p1a)
            reproposals.extend(leader2.handle_phase1b(promise))
        assert any(
            p.instance == proposal.instance and p.value == "old-value"
            for p in reproposals
        )

    def test_rounds_unique_across_leaders(self):
        l0 = LeaderState("L0", 0, 3)
        l1 = LeaderState("L1", 1, 3)
        l0.start_phase1()
        l1.start_phase1()
        assert l0.round != l1.round
        assert l0.round % 16 == 0
        assert l1.round % 16 == 1

    def test_successive_rounds_increase(self):
        leader = LeaderState("L", 0, 3)
        r1 = leader.start_phase1().round
        r2 = leader.start_phase1().round
        assert r2 > r1

    def test_gap_request_fills_noop(self):
        """§9.2: unfilled instances get a no-op."""
        leader, acceptors = _ready_leader()
        leader.propose("a")
        leader.propose("b")
        fill = leader.handle_gap_request(GapRequest(1))
        assert fill is not None and fill.value == "a" or fill.value == NOOP

    def test_gap_request_beyond_assigned_ignored(self):
        leader, _ = _ready_leader()
        assert leader.handle_gap_request(GapRequest(99)) is None

    def test_gap_request_reproposes_recovered_value(self):
        leader1, acceptors = _ready_leader(leader_index=0)
        proposal = leader1.propose("recoverme")
        acceptors[0].handle_phase2a(proposal)
        leader2, _ = _ready_leader(leader_index=1, acceptors=acceptors)
        fill = leader2.handle_gap_request(GapRequest(proposal.instance))
        assert fill.value == "recoverme"

    def test_step_down(self):
        leader, _ = _ready_leader()
        leader.step_down()
        assert leader.propose("v") is None

    def test_leader_index_validated(self):
        with pytest.raises(ProtocolError):
            LeaderState("L", 16, 3)


class TestLearner:
    def test_quorum_decides(self):
        learner = LearnerState("l", 3)
        from repro.apps.paxos import Phase2B

        assert learner.handle_phase2b(Phase2B(16, 1, "a0", "v")) is None
        decision = learner.handle_phase2b(Phase2B(16, 1, "a1", "v"))
        assert decision is not None and decision.value == "v"

    def test_duplicate_votes_not_double_counted(self):
        from repro.apps.paxos import Phase2B

        learner = LearnerState("l", 3)
        assert learner.handle_phase2b(Phase2B(16, 1, "a0", "v")) is None
        assert learner.handle_phase2b(Phase2B(16, 1, "a0", "v")) is None

    def test_in_order_delivery(self):
        from repro.apps.paxos import Phase2B

        learner = LearnerState("l", 1)
        learner.handle_phase2b(Phase2B(16, 2, "a0", "v2"))
        assert learner.deliverable() == []  # waiting for instance 1
        learner.handle_phase2b(Phase2B(16, 1, "a0", "v1"))
        delivered = learner.deliverable()
        assert [d.instance for d in delivered] == [1, 2]

    def test_gap_detection_after_timeout(self):
        from repro.apps.paxos import Phase2B

        learner = LearnerState("l", 1)
        learner.handle_phase2b(Phase2B(16, 3, "a0", "v3"))
        assert learner.gaps(now=0.0, timeout=100.0) == []  # first sight
        gaps = learner.gaps(now=200.0, timeout=100.0)
        assert {g.instance for g in gaps} == {1, 2}

    def test_conflicting_round_values_detected(self):
        from repro.apps.paxos import Phase2B

        learner = LearnerState("l", 3)
        learner.handle_phase2b(Phase2B(16, 1, "a0", "v"))
        with pytest.raises(ProtocolError):
            learner.handle_phase2b(Phase2B(16, 1, "a1", "DIFFERENT"))
