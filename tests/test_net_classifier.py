"""Packet classifier: the hardware/host steering point (§3.1/§9.1)."""

import pytest

from repro.net import ClassifierRule, PacketClassifier, TrafficClass
from repro.net.packet import make_packet
from repro.sim import Simulator


def _classifier():
    sim = Simulator()
    hw, host, default = [], [], []
    clf = PacketClassifier(sim, default_host=default.append)
    clf.add_rule(
        ClassifierRule(TrafficClass.MEMCACHED, hardware=hw.append, host=host.append)
    )
    return sim, clf, hw, host, default


def test_offload_disabled_goes_to_host():
    sim, clf, hw, host, default = _classifier()
    clf.classify(make_packet("c", "s", TrafficClass.MEMCACHED, now=sim.now))
    assert len(host) == 1 and len(hw) == 0


def test_offload_enabled_goes_to_hardware():
    sim, clf, hw, host, default = _classifier()
    clf.set_offload(TrafficClass.MEMCACHED, True)
    clf.classify(make_packet("c", "s", TrafficClass.MEMCACHED, now=sim.now))
    assert len(hw) == 1 and len(host) == 0


def test_shift_mid_stream():
    sim, clf, hw, host, default = _classifier()
    clf.classify(make_packet("c", "s", TrafficClass.MEMCACHED, now=sim.now))
    clf.set_offload(TrafficClass.MEMCACHED, True)
    clf.classify(make_packet("c", "s", TrafficClass.MEMCACHED, now=sim.now))
    clf.set_offload(TrafficClass.MEMCACHED, False)
    clf.classify(make_packet("c", "s", TrafficClass.MEMCACHED, now=sim.now))
    assert len(host) == 2 and len(hw) == 1


def test_unmatched_class_uses_default_host():
    """Non-application traffic passes through as plain NIC traffic (§3.1)."""
    sim, clf, hw, host, default = _classifier()
    clf.classify(make_packet("c", "s", TrafficClass.NORMAL, now=sim.now))
    assert len(default) == 1


def test_counters_count_all_traffic():
    sim, clf, hw, host, default = _classifier()
    for _ in range(5):
        clf.classify(make_packet("c", "s", TrafficClass.MEMCACHED, now=sim.now))
    clf.classify(make_packet("c", "s", TrafficClass.NORMAL, now=sim.now))
    assert clf.counters[TrafficClass.MEMCACHED] == 5
    assert clf.counters[TrafficClass.NORMAL] == 1


def test_set_offload_unknown_class_raises():
    sim, clf, hw, host, default = _classifier()
    with pytest.raises(KeyError):
        clf.set_offload(TrafficClass.DNS, True)


def test_offload_enabled_query():
    sim, clf, hw, host, default = _classifier()
    assert not clf.offload_enabled(TrafficClass.MEMCACHED)
    clf.set_offload(TrafficClass.MEMCACHED, True)
    assert clf.offload_enabled(TrafficClass.MEMCACHED)
    assert not clf.offload_enabled(TrafficClass.DNS)


class TestKeyShardRouter:
    def _packet(self, sim, key):
        from repro.apps.kvs.protocol import KvsOp, KvsRequest

        return make_packet(
            "client", "kvs-rack", TrafficClass.MEMCACHED,
            payload=KvsRequest(KvsOp.GET, key), now=sim.now,
        )

    def test_routing_is_deterministic_and_agrees_with_key_shard(self):
        from repro.net import KeyShardRouter, key_shard

        sim = Simulator()
        hosts = [f"kvs{i}" for i in range(4)]
        router = KeyShardRouter(hosts)
        for i in range(64):
            key = f"key:{i:08d}"
            host = router.route(self._packet(sim, key))
            assert host == hosts[key_shard(key, 4)]
            assert host == router.host_for_key(key)
        assert sum(router.per_host.values()) == 64

    def test_all_shards_reachable(self):
        from repro.net import KeyShardRouter

        sim = Simulator()
        router = KeyShardRouter([f"kvs{i}" for i in range(8)])
        for i in range(512):
            router.route(self._packet(sim, f"key:{i:08d}"))
        assert all(count > 0 for count in router.per_host.values())

    def test_keyless_packet_falls_back_to_source_hash(self):
        from repro.net import KeyShardRouter

        sim = Simulator()
        router = KeyShardRouter(["kvs0", "kvs1"])
        packet = make_packet("client", "kvs-rack", TrafficClass.NORMAL, now=sim.now)
        first = router.route(packet)
        assert router.keyless == 1
        assert first == router.route(packet)  # deterministic fallback

    def test_empty_host_list_rejected(self):
        from repro.errors import ConfigurationError
        from repro.net import KeyShardRouter

        with pytest.raises(ConfigurationError):
            KeyShardRouter([])

    def test_key_shard_validates(self):
        from repro.errors import ConfigurationError
        from repro.net import key_shard

        with pytest.raises(ConfigurationError):
            key_shard("key", 0)

    def test_none_placeholder_marks_unowned_shards(self):
        """A sub-rack of a larger sharded rack lists ``None`` for shards
        its hosts do not own; traffic for those shards is a config bug."""
        from repro.errors import ConfigurationError
        from repro.net import KeyShardRouter, key_shard

        sim = Simulator()
        # a 4-shard space where only shard 2's host survives
        owners = [None, None, "kvs2", None]
        router = KeyShardRouter(owners)
        assert router.n_shards == 4
        assert router.per_host == {"kvs2": 0}
        owned = next(
            f"key:{i:08d}" for i in range(256)
            if key_shard(f"key:{i:08d}", 4) == 2
        )
        assert router.route(self._packet(sim, owned)) == "kvs2"
        orphan = next(
            f"key:{i:08d}" for i in range(256)
            if key_shard(f"key:{i:08d}", 4) != 2
        )
        with pytest.raises(ConfigurationError):
            router.route(self._packet(sim, orphan))
        with pytest.raises(ConfigurationError):
            router.host_for_key(orphan)

    def test_all_none_owner_list_rejected(self):
        from repro.errors import ConfigurationError
        from repro.net import KeyShardRouter

        with pytest.raises(ConfigurationError):
            KeyShardRouter([None, None])
