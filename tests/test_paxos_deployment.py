"""End-to-end Paxos on the DES: consensus over the switch, leader shift."""

import pytest

from repro import calibration as cal
from repro.apps.paxos import PaxosClient
from repro.apps.paxos.deployment import (
    LOGICAL_LEADER,
    HardwarePaxosRole,
    LearnerGapScanner,
    PaxosDeployment,
    SoftwarePaxosRole,
    _Directory,
)
from repro.apps.paxos.roles import AcceptorState, LeaderState, LearnerState
from repro.errors import ConfigurationError
from repro.host import make_i7_server
from repro.hw.fpga import make_p4xos_fpga
from repro.net.node import CallbackNode
from repro.net.switch import Switch
from repro.net.topology import Topology
from repro.sim import Simulator
from repro.units import msec, sec


def _build(n_acceptors=3, with_hw_leader=True):
    sim = Simulator()
    topo = Topology(sim)
    switch = Switch(sim, "tor")
    topo.add(switch)
    acceptor_names = [f"acceptor{i}" for i in range(n_acceptors)]
    directory = _Directory(acceptor_names, ["learner0"])

    sw_server = make_i7_server(sim, name="sw-leader")
    sw_leader = SoftwarePaxosRole(
        sim, sw_server, LeaderState("sw-leader", 0, n_acceptors), directory,
        capacity_pps=cal.LIBPAXOS_LEADER_CAPACITY_PPS,
        stack_latency_us=cal.LIBPAXOS_LEADER_STACK_US,
    )
    sw_server.set_packet_handler(sw_leader.offer)
    topo.add(sw_server)
    topo.connect_via_switch("tor", "sw-leader")

    hw_leader = None
    if with_hw_leader:
        card = make_p4xos_fpga()
        node = CallbackNode(sim, "hw-leader", on_packet=lambda p: hw_leader.offer(p))
        hw_leader = HardwarePaxosRole(
            sim, card, node, LeaderState("hw-leader", 1, n_acceptors), directory
        )
        topo.add(node)
        topo.connect_via_switch("tor", "hw-leader")

    for name in acceptor_names:
        server = make_i7_server(sim, name=name)
        role = SoftwarePaxosRole(
            sim, server, AcceptorState(name), directory,
            capacity_pps=cal.LIBPAXOS_ACCEPTOR_CAPACITY_PPS,
            stack_latency_us=cal.LIBPAXOS_ACCEPTOR_STACK_US,
        )
        server.set_packet_handler(role.offer)
        topo.add(server)
        topo.connect_via_switch("tor", name)

    learner_server = make_i7_server(sim, name="learner0")
    learner = SoftwarePaxosRole(
        sim, learner_server, LearnerState("learner0", n_acceptors), directory,
        capacity_pps=cal.LIBPAXOS_ACCEPTOR_CAPACITY_PPS,
        stack_latency_us=cal.LIBPAXOS_LEARNER_STACK_US,
    )
    learner_server.set_packet_handler(learner.offer)
    topo.add(learner_server)
    topo.connect_via_switch("tor", "learner0")

    deployment = PaxosDeployment(switch)
    deployment.register_leader("sw-leader", sw_leader)
    if hw_leader is not None:
        deployment.register_leader("hw-leader", hw_leader)
    deployment.activate_leader("sw-leader")

    client = PaxosClient(sim, "client0")
    topo.add(client)
    topo.connect_via_switch("tor", "client0")
    return sim, deployment, client, sw_leader, hw_leader, learner


def test_consensus_end_to_end():
    sim, deployment, client, sw_leader, _, learner = _build()
    sim.schedule_at(msec(10), lambda: client.set_rate(1000))
    sim.run_until(msec(500))
    assert client.decided > 300
    assert client.retries == 0
    # end-to-end latency ~400us with the software leader (Figure 7)
    assert client.latency.median() == pytest.approx(400.0, rel=0.25)


def test_leader_shift_end_to_end():
    sim, deployment, client, sw_leader, hw_leader, learner = _build()
    sim.schedule_at(msec(10), lambda: client.set_rate(2000))
    sim.schedule_at(msec(300), lambda: deployment.activate_leader("hw-leader"))
    sim.run_until(msec(800))
    assert deployment.active_leader_node == "hw-leader"
    assert deployment.shifts == 1
    assert hw_leader.state.ready
    assert not sw_leader.state.ready
    # decisions continued after the shift
    late = [t for t in client.decision_times_us if t > msec(450)]
    assert len(late) > 100


def test_hw_leader_latency_halved():
    sim, deployment, client, sw_leader, hw_leader, learner = _build()
    deployment.activate_leader("hw-leader")
    sim.schedule_at(msec(10), lambda: client.set_rate(1000))
    sim.run_until(msec(500))
    assert client.decided > 300
    # ~200us once the leader is in the data plane (Figure 7)
    assert client.latency.median() == pytest.approx(200.0, rel=0.3)


def test_new_leader_continues_sequence():
    sim, deployment, client, sw_leader, hw_leader, learner = _build()
    sim.schedule_at(msec(10), lambda: client.set_rate(1000))
    sim.run_until(msec(300))
    instances_before = sw_leader.state.next_instance
    deployment.activate_leader("hw-leader")
    sim.run_until(msec(600))
    assert hw_leader.state.next_instance >= instances_before


def test_learner_delivers_in_order():
    sim, deployment, client, sw_leader, hw_leader, learner = _build()
    sim.schedule_at(msec(10), lambda: client.set_rate(1000))
    sim.run_until(msec(400))
    state = learner.state
    assert state.delivered_upto > 0
    # everything up to delivered_upto is decided (no holes skipped)
    for instance in range(1, state.delivered_upto + 1):
        assert instance in state.decided


def test_activate_unknown_leader_rejected():
    sim, deployment, *_ = _build()
    with pytest.raises(ConfigurationError):
        deployment.activate_leader("nobody")


def test_activate_same_leader_is_noop():
    sim, deployment, *_ = _build()
    deployment.activate_leader("sw-leader")
    assert deployment.shifts == 0


def test_dpdk_role_pins_a_core():
    """§4.3: DPDK polls constantly — a full core regardless of load."""
    sim = Simulator()
    server = make_i7_server(sim, name="dpdk-host")
    directory = _Directory(["a0"], ["l0"])
    SoftwarePaxosRole(
        sim, server, AcceptorState("a0"), directory,
        capacity_pps=cal.DPDK_ACCEPTOR_CAPACITY_PPS,
        stack_latency_us=cal.DPDK_STACK_US,
        dpdk=True,
        app_name="dpdk-acceptor",
    )
    assert server.cpu.app_utilization("dpdk-acceptor") == pytest.approx(0.25)
    sim.run_until(sec(1.0))
    # still pinned after utilization windows rolled
    assert server.cpu.app_utilization("dpdk-acceptor") == pytest.approx(0.25)
