"""KVS protocol validation."""

import pytest

from repro.apps.kvs import KvsOp, KvsRequest, KvsResponse, KvsStatus
from repro.errors import ProtocolError


def test_get_request():
    r = KvsRequest(KvsOp.GET, "key1")
    assert r.value is None
    assert r.size_bytes > len("key1")


def test_set_requires_value():
    with pytest.raises(ProtocolError):
        KvsRequest(KvsOp.SET, "key1")


def test_get_must_not_carry_value():
    with pytest.raises(ProtocolError):
        KvsRequest(KvsOp.GET, "key1", value=b"x")


def test_empty_key_rejected():
    with pytest.raises(ProtocolError):
        KvsRequest(KvsOp.GET, "")


def test_key_length_limit():
    with pytest.raises(ProtocolError):
        KvsRequest(KvsOp.GET, "k" * 251)
    KvsRequest(KvsOp.GET, "k" * 250)  # at the limit is fine


def test_set_size_includes_value():
    small = KvsRequest(KvsOp.SET, "k", value=b"x")
    big = KvsRequest(KvsOp.SET, "k", value=b"x" * 100)
    assert big.size_bytes - small.size_bytes == 99


def test_hit_requires_value():
    with pytest.raises(ProtocolError):
        KvsResponse(KvsStatus.HIT, "k")


def test_miss_must_not_carry_value():
    with pytest.raises(ProtocolError):
        KvsResponse(KvsStatus.MISS, "k", value=b"x")


def test_valid_responses():
    KvsResponse(KvsStatus.HIT, "k", value=b"v")
    KvsResponse(KvsStatus.MISS, "k")
    KvsResponse(KvsStatus.STORED, "k")
    KvsResponse(KvsStatus.DELETED, "k")
    KvsResponse(KvsStatus.NOT_FOUND, "k")
