"""DNS query workloads: Zipf names, qname-hash split, deterministic streams."""

import pytest

from repro.errors import ConfigurationError
from repro.net.classifier import key_shard
from repro.workloads.dns import DnsNameWorkload, ShardedDnsWorkload


class TestDnsNameWorkload:
    def test_names_valid_and_within_zone(self):
        workload = DnsNameWorkload(n_names=50, seed=3)
        records = {r.name for r in workload.records()}
        assert len(records) == 50
        for _ in range(500):
            assert workload.name() in records

    def test_popularity_is_skewed(self):
        workload = DnsNameWorkload(n_names=1_000, zipf_s=0.99, seed=5)
        top = workload.name_of_rank(1)
        hits = sum(workload.name() == top for _ in range(2_000))
        assert hits > 60  # rank 1 gets far more than 1/1000 of traffic

    def test_miss_fraction_generates_out_of_zone_names(self):
        workload = DnsNameWorkload(n_names=20, seed=3, miss_fraction=0.5)
        in_zone = {r.name for r in workload.records()}
        misses = sum(workload.name() not in in_zone for _ in range(400))
        assert 100 < misses < 300

    def test_records_are_valid_a_records(self):
        for record in DnsNameWorkload(n_names=300, seed=1).records():
            octets = record.ipv4.split(".")
            assert len(octets) == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DnsNameWorkload(n_names=0)
        with pytest.raises(ConfigurationError):
            DnsNameWorkload(miss_fraction=1.0)


class TestShardedDnsWorkload:
    def test_streams_generate_only_their_shard(self):
        sharded = ShardedDnsWorkload(n_names=200, n_shards=3, seed=9)
        for shard in range(3):
            stream = sharded.stream(shard)
            for _ in range(100):
                assert key_shard(stream.name(), 3) == shard

    def test_weights_normalized_and_skew_ordered(self):
        sharded = ShardedDnsWorkload(n_names=500, n_shards=4, seed=9)
        weights = sharded.shard_weights()
        assert sum(weights) == pytest.approx(1.0)
        assert all(w > 0 for w in weights)
        # the shard owning rank 1 carries the most traffic
        top_shard = sharded.shard_of(sharded.name_of_rank(1))
        assert weights[top_shard] == max(weights)

    def test_streams_deterministic_and_independent(self):
        a = ShardedDnsWorkload(n_names=200, n_shards=2, seed=9)
        b = ShardedDnsWorkload(n_names=200, n_shards=2, seed=9)
        sa, sb = a.stream(0), b.stream(0)
        assert [sa.name() for _ in range(50)] == [sb.name() for _ in range(50)]
        # draining shard 1 does not perturb shard 0
        c = ShardedDnsWorkload(n_names=200, n_shards=2, seed=9)
        other = c.stream(1)
        for _ in range(100):
            other.name()
        sc, fresh = c.stream(0), a.stream(0)
        assert [sc.name() for _ in range(50)] == [fresh.name() for _ in range(50)]

    def test_miss_fraction_honored_per_shard(self):
        sharded = ShardedDnsWorkload(
            n_names=100, n_shards=2, seed=9, miss_fraction=0.4
        )
        in_zone = {r.name for r in sharded.records()}
        for shard in range(2):
            stream = sharded.stream(shard)
            names = [stream.name() for _ in range(400)]
            assert all(key_shard(n, 2) == shard for n in names)
            misses = sum(n not in in_zone for n in names)
            assert 80 < misses < 240  # ~40% of this shard's queries

    def test_empty_shard_rejected(self):
        # 1 name across 4 shards: three shards own nothing
        sharded = ShardedDnsWorkload(n_names=1, n_shards=4, seed=9)
        owner = sharded.shard_of(sharded.name_of_rank(1))
        empty = next(s for s in range(4) if s != owner)
        with pytest.raises(ConfigurationError, match="owns no names"):
            sharded.stream(empty)

    def test_out_of_range_shard_rejected(self):
        sharded = ShardedDnsWorkload(n_names=10, n_shards=2, seed=9)
        with pytest.raises(ConfigurationError):
            sharded.stream(2)
