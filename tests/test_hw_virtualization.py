"""Data-plane virtualization (§2 future work, P4Visor-style)."""

import pytest

from repro import calibration as cal
from repro.errors import ConfigurationError
from repro.hw.fpga import PlatformMode
from repro.hw.virtualization import (
    SHARED_CAPACITY_PPS,
    TENANT_LOGIC_BUDGET,
    TenantProgram,
    VirtualizedCard,
    emu_dns_tenant,
    lake_tenant,
    p4xos_tenant,
)


def test_co_residence_of_all_three_apps():
    """A 2-PE LaKe, P4xos, and Emu DNS fit on one card together."""
    card = VirtualizedCard()
    card.admit(lake_tenant(pe_count=2))
    card.admit(p4xos_tenant())
    card.admit(emu_dns_tenant())
    assert len(card.tenants) == 3
    assert card.logic_fraction_used < TENANT_LOGIC_BUDGET
    assert card.capacity_committed_pps <= SHARED_CAPACITY_PPS


def test_capacity_admission_control():
    """A full-line-rate LaKe leaves no interconnect headroom (§5.2)."""
    card = VirtualizedCard()
    card.admit(lake_tenant(pe_count=5))  # commits the 13Mpps line rate
    with pytest.raises(ConfigurationError):
        card.admit(p4xos_tenant())


def test_logic_budget_admission_control():
    card = VirtualizedCard()
    with pytest.raises(ConfigurationError):
        card.admit(
            TenantProgram("huge", logic_power_w=60.0, capacity_share_pps=1e6)
        )


def test_duplicate_tenant_rejected():
    card = VirtualizedCard()
    card.admit(p4xos_tenant())
    with pytest.raises(ConfigurationError):
        card.admit(p4xos_tenant())


def test_power_is_additive_over_shell():
    card = VirtualizedCard()
    shell_only = card.power_w()
    assert shell_only == pytest.approx(cal.NETFPGA_SHELL_W)
    card.admit(p4xos_tenant())
    assert card.power_w() == pytest.approx(
        cal.NETFPGA_SHELL_W + cal.P4XOS_LOGIC_W
    )


def test_memories_shared_and_gated():
    card = VirtualizedCard()
    card.admit(lake_tenant(pe_count=2))
    card.admit(emu_dns_tenant())
    with_mem = card.power_w()
    # deactivating LaKe puts the (now unneeded) memories into reset
    card.deactivate("lake")
    without = card.power_w()
    assert with_mem - without > cal.MEMORIES_TOTAL_W * cal.MEMORY_RESET_SAVING_FRACTION


def test_deactivated_tenant_keeps_residual_power():
    """Clock-gated region: same residual as §5.1."""
    card = VirtualizedCard()
    card.admit(p4xos_tenant())
    active = card.power_w()
    card.deactivate("p4xos")
    gated = card.power_w()
    assert 0.0 < active - gated < cal.P4XOS_LOGIC_W


def test_marginal_power_of_extra_tenant_is_small():
    """The §6 insight carried to the FPGA: adding a program to an
    already-deployed card costs only its logic watts."""
    card = VirtualizedCard()
    card.admit(lake_tenant(pe_count=2))
    marginal = card.marginal_power_w(emu_dns_tenant())
    assert marginal == pytest.approx(cal.EMU_DNS_LOGIC_W)
    assert marginal < 0.1 * card.power_w()


def test_evict_returns_and_removes():
    card = VirtualizedCard()
    card.admit(p4xos_tenant())
    tenant = card.evict("p4xos")
    assert tenant.name == "p4xos"
    with pytest.raises(ConfigurationError):
        card.evict("p4xos")


def test_standalone_mode_adds_psu():
    in_server = VirtualizedCard().power_w()
    standalone = VirtualizedCard(mode=PlatformMode.STANDALONE).power_w()
    assert standalone - in_server == pytest.approx(cal.STANDALONE_PSU_OVERHEAD_W)


def test_tenant_validation():
    with pytest.raises(ConfigurationError):
        TenantProgram("bad", logic_power_w=-1.0, capacity_share_pps=1.0)
    with pytest.raises(ConfigurationError):
        TenantProgram("bad", logic_power_w=1.0, capacity_share_pps=0.0)
