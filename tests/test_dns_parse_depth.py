"""§9.2: DNS names deeper than the data-plane parser supports."""

import pytest

from repro.apps.dns import ARecord, DnsQuery, DnsRcode, EmuDns, SoftwareNsd
from repro.apps.dns.emu import MAX_PARSE_LABELS
from repro.host import make_i7_server
from repro.hw.fpga import make_emu_dns_fpga
from repro.net.packet import TrafficClass, make_packet
from repro.sim import Simulator

DEEP_NAME = ".".join(["x"] * (MAX_PARSE_LABELS + 2))
SHALLOW_NAME = "web.rack.corp"


def _setup(with_fallback=True):
    sim = Simulator()
    server = make_i7_server(sim, nic=None)
    nsd = SoftwareNsd(sim, server) if with_fallback else None
    emu = EmuDns(
        sim, make_emu_dns_fpga(), server, fallback=nsd
    )
    zones = [emu.zone] + ([nsd.zone] if nsd else [])
    for zone in zones:
        zone.add(ARecord(SHALLOW_NAME, "10.0.0.1"))
        zone.add(ARecord(DEEP_NAME, "10.0.0.2"))
    return sim, emu, nsd


def _query(name):
    return make_packet(
        "c", "s", TrafficClass.DNS, payload=DnsQuery(name), now=0.0
    )


def test_shallow_names_served_in_hardware():
    _, emu, _ = _setup()
    response = emu.handle_request(_query(SHALLOW_NAME))
    assert response.rcode is DnsRcode.NOERROR
    assert emu.deep_query_fallbacks == 0


def test_deep_names_fall_back_to_software():
    """§9.2: 'in the worst case scenario, those queries could be treated as
    iterative requests' — here: punted to the host server."""
    _, emu, nsd = _setup()
    response = emu.handle_request(_query(DEEP_NAME))
    assert response.rcode is DnsRcode.NOERROR
    assert response.record.ipv4 == "10.0.0.2"
    assert emu.deep_query_fallbacks == 1


def test_deep_names_charge_software_cpu():
    _, emu, nsd = _setup()
    before = nsd.util._busy_us
    emu.handle_request(_query(DEEP_NAME))
    assert nsd.util._busy_us > before


def test_deep_names_pay_software_latency():
    _, emu, _ = _setup()
    shallow = emu.request_latency_us(_query(SHALLOW_NAME))
    deep = emu.request_latency_us(_query(DEEP_NAME))
    assert deep > 10 * shallow


def test_without_fallback_deep_names_answer_notimp():
    _, emu, _ = _setup(with_fallback=False)
    response = emu.handle_request(_query(DEEP_NAME))
    assert response.rcode is DnsRcode.NOTIMP


def test_boundary_depth_served_in_hardware():
    _, emu, _ = _setup()
    at_limit = ".".join(["y"] * MAX_PARSE_LABELS)
    emu.zone.add(ARecord(at_limit, "10.0.0.3"))
    response = emu.handle_request(_query(at_limit))
    assert response.rcode is DnsRcode.NOERROR
    assert emu.deep_query_fallbacks == 0
