"""Network- and host-controlled on-demand controllers (§9.1)."""

import pytest

from repro import calibration as cal
from repro.core import (
    HostController,
    HostControllerConfig,
    NetworkController,
    NetworkControllerConfig,
    OnDemandService,
    Placement,
)
from repro.errors import ConfigurationError
from repro.host import make_i7_server
from repro.net import ClassifierRule, PacketClassifier, TrafficClass
from repro.net.packet import make_packet
from repro.sim import Simulator
from repro.units import SEC, kpps, msec, sec
from repro.workloads.colocated import ChainerMNWorkload


def _classifier(sim):
    classifier = PacketClassifier(sim)
    classifier.add_rule(
        ClassifierRule(
            TrafficClass.MEMCACHED, hardware=lambda p: None, host=lambda p: None
        )
    )
    return classifier


class TrafficDriver:
    """Feeds the classifier synthetic traffic at a controllable rate."""

    def __init__(self, sim, classifier, tick_us=msec(10.0)):
        self.sim = sim
        self.classifier = classifier
        self.rate_pps = 0.0
        self._tick_us = tick_us
        sim.call_every(tick_us, self._tick)

    def _tick(self):
        count = int(self.rate_pps * self._tick_us / SEC)
        for _ in range(count):
            self.classifier.classify(
                make_packet("c", "s", TrafficClass.MEMCACHED, now=self.sim.now)
            )


def _network_setup(up=kpps(80), down=kpps(50), window_s=0.5):
    sim = Simulator()
    classifier = _classifier(sim)
    service = OnDemandService(
        sim, "kvs", classifier=classifier, traffic_class=TrafficClass.MEMCACHED
    )
    config = NetworkControllerConfig(
        up_rate_pps=up,
        down_rate_pps=down,
        up_window_us=sec(window_s),
        down_window_us=sec(window_s),
        tick_us=msec(50.0),
    )
    controller = NetworkController(
        sim, classifier, TrafficClass.MEMCACHED, service, config
    )
    driver = TrafficDriver(sim, classifier)
    return sim, classifier, service, controller, driver


class TestNetworkController:
    def test_shift_up_on_sustained_high_rate(self):
        sim, classifier, service, controller, driver = _network_setup()
        driver.rate_pps = kpps(120)
        sim.run_until(sec(2.0))
        assert service.in_hardware
        assert classifier.offload_enabled(TrafficClass.MEMCACHED)

    def test_no_shift_below_threshold(self):
        sim, classifier, service, controller, driver = _network_setup()
        driver.rate_pps = kpps(40)
        sim.run_until(sec(3.0))
        assert not service.in_hardware

    def test_requires_sustained_load(self):
        """A burst shorter than the averaging period must not trigger."""
        sim, classifier, service, controller, driver = _network_setup(window_s=1.0)
        driver.rate_pps = kpps(200)
        sim.schedule_at(msec(200.0), lambda: setattr(driver, "rate_pps", kpps(10)))
        sim.run_until(sec(3.0))
        assert not service.in_hardware

    def test_shift_back_on_low_rate(self):
        sim, classifier, service, controller, driver = _network_setup()
        driver.rate_pps = kpps(120)
        sim.run_until(sec(2.0))
        assert service.in_hardware
        driver.rate_pps = kpps(10)
        sim.run_until(sec(5.0))
        assert not service.in_hardware
        assert len(service.shifts) == 2

    def test_hysteresis_band_holds_state(self):
        """Rates between down and up thresholds hold the current placement."""
        sim, classifier, service, controller, driver = _network_setup()
        driver.rate_pps = kpps(120)
        sim.run_until(sec(2.0))
        driver.rate_pps = kpps(65)  # inside the 50..80 band
        sim.run_until(sec(6.0))
        assert service.in_hardware
        assert len(service.shifts) == 1

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkControllerConfig(up_rate_pps=10.0, down_rate_pps=20.0)

    def test_rate_telemetry_recorded(self):
        sim, classifier, service, controller, driver = _network_setup()
        driver.rate_pps = kpps(30)
        sim.run_until(sec(1.0))
        assert len(controller.rate_series) > 0


def _host_setup():
    sim = Simulator()
    server = make_i7_server(sim)
    classifier = _classifier(sim)
    service = OnDemandService(
        sim, "kvs", classifier=classifier, traffic_class=TrafficClass.MEMCACHED
    )
    server.start_rapl(update_interval_us=msec(10.0))
    config = HostControllerConfig(
        window_us=sec(0.5), tick_us=msec(50.0), rate_down_pps=kpps(50)
    )
    controller = HostController(
        sim, server, service, config=config,
        classifier=classifier, traffic_class=TrafficClass.MEMCACHED,
    )
    return sim, server, classifier, service, controller


class TestHostController:
    def test_shift_up_needs_power_and_cpu(self):
        sim, server, classifier, service, controller = _host_setup()
        job = ChainerMNWorkload(sim, server, cores=3.0, utilization=0.95)
        job.start()
        sim.run_until(sec(2.0))
        assert service.in_hardware

    def test_power_alone_insufficient(self):
        """§9.1: 'Monitoring the power consumption alone is not sufficient'
        — our config also requires CPU utilization above the threshold."""
        sim, server, classifier, service, controller = _host_setup()
        # high power threshold crossed artificially is impossible without
        # CPU in this model; instead verify low CPU keeps placement
        server.cpu.set_load("light", 1.0, 0.3)
        sim.run_until(sec(2.0))
        assert not service.in_hardware

    def test_shift_back_needs_network_feedback(self):
        """§9.1: shifting back requires the packet rate from the network."""
        sim, server, classifier, service, controller = _host_setup()
        job = ChainerMNWorkload(sim, server, cores=3.0, utilization=0.95)
        job.start()
        sim.run_until(sec(2.0))
        assert service.in_hardware
        # traffic too high to shift back even though the host calmed down
        driver = TrafficDriver(sim, classifier)
        driver.rate_pps = kpps(120)
        job.stop()
        sim.run_until(sec(4.0))
        assert service.in_hardware
        # once traffic drops below the rate threshold, it shifts back
        driver.rate_pps = kpps(5)
        sim.run_until(sec(7.0))
        assert not service.in_hardware

    def test_controller_overhead_registered(self):
        """§9.1: the controller itself costs ~0.3% CPU."""
        sim, server, classifier, service, controller = _host_setup()
        assert server.cpu.app_utilization("hostctl") == pytest.approx(
            cal.HOSTCTL_CPU_OVERHEAD_FRACTION / server.cpu.total_cores
        )

    def test_stop_clears_overhead(self):
        sim, server, classifier, service, controller = _host_setup()
        controller.stop()
        assert "hostctl" not in server.cpu.apps

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            HostControllerConfig(power_up_w=10.0, power_down_w=20.0)
        with pytest.raises(ConfigurationError):
            HostControllerConfig(cpu_up=0.1, cpu_down=0.2)


class TestOnDemandService:
    def test_shift_records_and_flips_classifier(self):
        sim = Simulator()
        classifier = _classifier(sim)
        calls = []
        service = OnDemandService(
            sim, "kvs", classifier=classifier, traffic_class=TrafficClass.MEMCACHED,
            to_hardware=lambda: calls.append("hw"),
            to_software=lambda: calls.append("sw"),
        )
        assert service.shift_to_hardware("test")
        assert not service.shift_to_hardware("again")  # idempotent
        assert service.shift_to_software("test")
        assert calls == ["hw", "sw"]
        assert [s.to for s in service.shifts] == [Placement.HARDWARE, Placement.SOFTWARE]
        assert len(service.shift_times_us()) == 2

    def test_initial_placement(self):
        sim = Simulator()
        service = OnDemandService(sim, "x", initial=Placement.HARDWARE)
        assert service.in_hardware
        assert not service.shift_to_hardware()
