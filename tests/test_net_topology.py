"""Topology wiring."""

import pytest

from repro.errors import ConfigurationError
from repro.net import Switch, Topology, TrafficClass
from repro.net.node import SinkNode
from repro.net.packet import make_packet
from repro.net.topology import star_topology
from repro.sim import Simulator


def test_duplicate_node_rejected():
    sim = Simulator()
    topo = Topology(sim)
    topo.add(SinkNode(sim, "a"))
    with pytest.raises(ConfigurationError):
        topo.add(SinkNode(sim, "a"))


def test_unknown_node_lookup_raises():
    topo = Topology(Simulator())
    with pytest.raises(ConfigurationError):
        topo.node("missing")


def test_bidirectional_star_delivery():
    sim = Simulator()
    switch = Switch(sim, "tor")
    a, b = SinkNode(sim, "a"), SinkNode(sim, "b")
    star_topology(sim, switch, [a, b])
    a.send(make_packet("a", "b", TrafficClass.NORMAL, now=sim.now))
    sim.run()
    assert len(b.received) == 1
    b.send(make_packet("b", "a", TrafficClass.NORMAL, now=sim.now))
    sim.run()
    assert len(a.received) == 1


def test_contains():
    sim = Simulator()
    topo = Topology(sim)
    topo.add(SinkNode(sim, "x"))
    assert "x" in topo
    assert "y" not in topo


def test_link_from_plain_node_sets_egress():
    sim = Simulator()
    topo = Topology(sim)
    a, b = SinkNode(sim, "a"), SinkNode(sim, "b")
    topo.add(a)
    topo.add(b)
    topo.link("a", "b")
    a.send(make_packet("a", "b", TrafficClass.NORMAL, now=sim.now))
    sim.run()
    assert len(b.received) == 1
