"""Deterministic RNG streams."""

from repro.sim import RngStreams


def test_same_name_same_stream_object():
    streams = RngStreams(seed=1)
    assert streams.get("a") is streams.get("a")


def test_deterministic_across_instances():
    a = RngStreams(seed=42).get("arrivals")
    b = RngStreams(seed=42).get("arrivals")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_streams_are_independent():
    streams = RngStreams(seed=42)
    keys = streams.get("keys")
    _ = [keys.random() for _ in range(100)]  # consuming one stream...
    arrivals = RngStreams(seed=42).get("arrivals")
    arrivals_after = streams.get("arrivals")
    # ...does not perturb the other
    assert [arrivals.random() for _ in range(10)] == [
        arrivals_after.random() for _ in range(10)
    ]


def test_different_seeds_differ():
    a = RngStreams(seed=1).get("x")
    b = RngStreams(seed=2).get("x")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_fork_is_deterministic_and_distinct():
    parent = RngStreams(seed=5)
    f1 = parent.fork("worker")
    f2 = RngStreams(seed=5).fork("worker")
    assert f1.seed == f2.seed
    assert f1.seed != parent.seed
