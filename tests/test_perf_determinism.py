"""Byte-identity of recorded experiments under the performance kernel.

The fixtures in ``tests/goldens/`` were captured from the revision
*before* the fast-kernel changes (tuple-entry heap, pooled packets,
memoized samplers, parallel sweep executor).  These tests re-run the
exact same reduced experiments and require byte-for-byte identical
rendered output — the strongest statement that the optimizations
preserved event ordering and RNG draw sequences — and that the parallel
sweep executor reproduces the serial renders exactly.
"""

import importlib.util
import pathlib

import pytest

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"

_spec = importlib.util.spec_from_file_location(
    "golden_params", GOLDEN_DIR / "params.py"
)
golden_params = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(golden_params)


@pytest.mark.parametrize("fixture", sorted(golden_params.GOLDENS))
def test_golden_byte_identity(fixture):
    """fig6/fig7 and the sweep tables render byte-identically to the
    pre-optimization captures."""
    kind, params = golden_params.GOLDENS[fixture]
    want = (GOLDEN_DIR / fixture).read_text()
    assert golden_params.generate(kind, params) == want


@pytest.mark.parametrize(
    "fixture,name,params",
    [
        (
            "sweep_rack_kvs.txt",
            "sweep-rack-kvs",
            golden_params.SWEEP_KVS_PARAMS,
        ),
        (
            "sweep_rack_hetero.txt",
            "sweep-rack-hetero",
            golden_params.SWEEP_HETERO_PARAMS,
        ),
    ],
)
def test_parallel_sweep_matches_serial_golden(fixture, name, params):
    """The multiprocessing executor (workers=2) must render byte-identically
    to the serial golden: per-point seeded RNGs make each grid point
    self-contained, and the reduction preserves grid order."""
    from repro.scenarios import build_sweep_spec, run_sweep

    rendered = run_sweep(build_sweep_spec(name, **params), workers=2).render()
    assert rendered == (GOLDEN_DIR / fixture).read_text()


def test_replicated_base_run_matches_serial_golden():
    """run_replicated's seed-0 run is the unreplicated sweep: even through
    the packed cross-process transport (K=2, workers=2), the base run must
    render byte-identically to the committed serial golden."""
    from repro.scenarios import build_sweep_spec, run_replicated

    spec = build_sweep_spec(
        "sweep-rack-kvs", **golden_params.SWEEP_KVS_PARAMS
    )
    replicated = run_replicated(spec, seeds=2, workers=2)
    want = (GOLDEN_DIR / "sweep_rack_kvs.txt").read_text()
    assert replicated.base_run.render() == want
