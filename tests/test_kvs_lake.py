"""LaKe: layered caching, miss path, on-demand hooks."""

import random

import pytest

from repro import calibration as cal
from repro.apps.kvs import KvsOp, KvsRequest, KvsStatus, LakeKvs, SoftwareMemcached
from repro.apps.kvs.lake import sample_latency
from repro.host import make_i7_server
from repro.hw.fpga import make_lake_fpga
from repro.hw.memory import MemoryState
from repro.net.packet import TrafficClass, make_packet
from repro.sim import Simulator


def _lake(l1_entries=4):
    sim = Simulator()
    server = make_i7_server(sim, name="srv", nic=None)
    card = make_lake_fpga()
    server.install_card(card.power_w)
    software = SoftwareMemcached(sim, server)
    lake = LakeKvs(sim, card, server, software, l1_entries=l1_entries)
    return sim, server, card, software, lake


def _get(key):
    return make_packet("client", "srv", TrafficClass.MEMCACHED,
                       payload=KvsRequest(KvsOp.GET, key))


def _set(key, value=b"v"):
    return make_packet("client", "srv", TrafficClass.MEMCACHED,
                       payload=KvsRequest(KvsOp.SET, key, value=value))


class TestDefaultRngIndependence:
    """Regression: two hosts built *without* an explicit rng must draw
    independent latency streams — a shared ``random.Random(0x1A4E)`` gave
    every rack host perfectly correlated jitter, skewing aggregates."""

    @staticmethod
    def _lake_on(name):
        sim = Simulator()
        server = make_i7_server(sim, name=name, nic=None)
        card = make_lake_fpga()
        server.install_card(card.power_w)
        software = SoftwareMemcached(sim, server)
        return LakeKvs(sim, card, server, software)

    def test_two_hosts_draw_different_streams(self):
        a, b = self._lake_on("host-a"), self._lake_on("host-b")
        packet = _get("missing")  # miss path: lognormal, consumes the rng
        draws_a = [a.request_latency_us(packet) for _ in range(8)]
        draws_b = [b.request_latency_us(packet) for _ in range(8)]
        assert draws_a != draws_b

    def test_same_host_name_is_deterministic(self):
        a, b = self._lake_on("host-a"), self._lake_on("host-a")
        packet = _get("missing")
        assert [a.request_latency_us(packet) for _ in range(8)] == [
            b.request_latency_us(packet) for _ in range(8)
        ]

    def test_explicit_rng_still_wins(self):
        sim = Simulator()
        server = make_i7_server(sim, name="srv", nic=None)
        card = make_lake_fpga()
        server.install_card(card.power_w)
        software = SoftwareMemcached(sim, server)
        rng = random.Random(7)
        lake = LakeKvs(sim, card, server, software, rng=rng)
        assert lake._rng is rng


class TestCacheHierarchy:
    def test_set_populates_both_levels_and_software(self):
        sim, server, card, software, lake = _lake()
        response = lake.handle_request(_set("k"))
        assert response.status is KvsStatus.STORED
        assert "k" in lake.l1 and "k" in lake.l2
        assert software.store.get("k") == b"v"

    def test_miss_fills_caches(self):
        sim, server, card, software, lake = _lake()
        software.store.set("cold", b"x")
        response = lake.handle_request(_get("cold"))
        assert response.status is KvsStatus.HIT
        assert response.served_by == "software"
        assert lake.miss_forwards == 1
        # second access is an L1 hit
        response2 = lake.handle_request(_get("cold"))
        assert response2.served_by == "l1"

    def test_l1_eviction_falls_back_to_l2(self):
        sim, server, card, software, lake = _lake(l1_entries=2)
        for key in ("a", "b", "c"):
            lake.handle_request(_set(key))
        # "a" was evicted from the 2-entry L1 but lives in L2
        assert "a" not in lake.l1
        response = lake.handle_request(_get("a"))
        assert response.served_by == "l2"
        # L2 hit promotes back into L1
        assert "a" in lake.l1

    def test_delete_clears_all_levels(self):
        sim, server, card, software, lake = _lake()
        lake.handle_request(_set("k"))
        lake.handle_request(
            make_packet("c", "srv", TrafficClass.MEMCACHED,
                        payload=KvsRequest(KvsOp.DELETE, "k"))
        )
        assert "k" not in lake.l1 and "k" not in lake.l2
        assert software.store.get("k") is None

    def test_true_miss_returns_miss(self):
        sim, server, card, software, lake = _lake()
        response = lake.handle_request(_get("absent"))
        assert response.status is KvsStatus.MISS

    def test_miss_charges_software_cpu(self):
        sim, server, card, software, lake = _lake()
        software.store.set("cold", b"x")
        before = software.util._busy_us
        lake.handle_request(_get("cold"))
        assert software.util._busy_us > before


class TestLatencyModel:
    def test_l1_hit_latency(self):
        sim, server, card, software, lake = _lake()
        lake.handle_request(_set("k"))
        latency = lake.request_latency_us(_get("k"))
        assert cal.LAKE_L1_HIT_US <= latency <= cal.LAKE_L1_HIT_US + 0.2

    def test_miss_latency_around_13_5us(self):
        sim, server, card, software, lake = _lake()
        values = [lake.request_latency_us(_get("absent")) for _ in range(500)]
        values.sort()
        median = values[len(values) // 2]
        assert median == pytest.approx(cal.LAKE_MISS_MEDIAN_US, rel=0.1)

    def test_l2_latency_between_l1_and_miss(self):
        sim, server, card, software, lake = _lake(l1_entries=1)
        lake.handle_request(_set("a"))
        lake.handle_request(_set("b"))  # evicts a from L1; a in L2
        latency = lake.request_latency_us(_get("a"))
        assert cal.LAKE_L1_HIT_US < latency < cal.LAKE_MISS_MEDIAN_US


class TestOnDemandHooks:
    def test_enable_starts_cold(self):
        """§9.2: after a shift 'at first all memory accesses will be a miss'."""
        sim, server, card, software, lake = _lake()
        lake.handle_request(_set("k"))
        lake.disable(power_save=True)
        lake.enable()
        assert "k" not in lake.l1 and "k" not in lake.l2

    def test_disable_power_save_resets_memories_and_gates_clock(self):
        sim, server, card, software, lake = _lake()
        full = card.power_w()
        lake.disable(power_save=True)
        assert card.dram.state is MemoryState.RESET
        assert card.power_w() < full

    def test_disable_without_power_save_keeps_power(self):
        """Figure 6 runs without gating."""
        sim, server, card, software, lake = _lake()
        full = card.power_w()
        lake.disable(power_save=False)
        assert card.power_w() == pytest.approx(full)

    def test_enable_restores_memory_state(self):
        sim, server, card, software, lake = _lake()
        lake.disable(power_save=True)
        lake.enable()
        assert card.dram.state is MemoryState.ACTIVE
        assert lake.enabled


class TestCapacity:
    def test_capacity_from_pe_count(self):
        sim = Simulator()
        server = make_i7_server(sim, nic=None)
        card = make_lake_fpga(pe_count=2)
        software = SoftwareMemcached(sim, server)
        lake = LakeKvs(sim, card, server, software)
        assert lake.capacity_pps == pytest.approx(2 * cal.LAKE_PE_CAPACITY_PPS)

    def test_five_pes_reach_line_rate(self):
        """§3.1: 5 PEs are sufficient for 10GE line rate (~13Mpps)."""
        sim, server, card, software, lake = _lake()
        assert lake.capacity_pps == pytest.approx(cal.LAKE_LINE_RATE_PPS)


def test_sample_latency_percentiles():
    rng = random.Random(3)
    values = sorted(sample_latency(rng, 10.0, 20.0) for _ in range(20_000))
    median = values[len(values) // 2]
    p99 = values[int(len(values) * 0.99)]
    assert median == pytest.approx(10.0, rel=0.05)
    assert p99 == pytest.approx(20.0, rel=0.15)


def test_sample_latency_validates():
    with pytest.raises(Exception):
        sample_latency(random.Random(0), 10.0, 5.0)
