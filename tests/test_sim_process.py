"""Generator-based process helper."""

import pytest

from repro.errors import SimulationError
from repro.sim import Process, Simulator
from repro.sim.process import sleep_until


def test_process_runs_with_delays():
    sim = Simulator()
    trace = []

    def worker():
        trace.append(sim.now)
        yield 10.0
        trace.append(sim.now)
        yield 5.0
        trace.append(sim.now)

    proc = Process(sim, worker())
    sim.run()
    assert trace == [0.0, 10.0, 15.0]
    assert proc.finished


def test_process_stop_cancels_pending():
    sim = Simulator()
    trace = []

    def worker():
        while True:
            trace.append(sim.now)
            yield 10.0

    proc = Process(sim, worker())
    sim.run_until(35.0)
    proc.stop()
    sim.run_until(100.0)
    assert trace == [0.0, 10.0, 20.0, 30.0]
    assert proc.stopped


def test_process_stop_is_idempotent():
    sim = Simulator()

    def worker():
        yield 10.0

    proc = Process(sim, worker())
    proc.stop()
    proc.stop()
    assert proc.stopped


def test_invalid_yield_raises():
    sim = Simulator()

    def worker():
        yield -5.0

    with pytest.raises(SimulationError):
        Process(sim, worker())


def test_sleep_until_computes_remaining():
    sim = Simulator()
    sim.run_until(40.0)
    assert sleep_until(sim, 100.0) == 60.0


def test_sleep_until_past_raises():
    sim = Simulator()
    sim.run_until(40.0)
    with pytest.raises(SimulationError):
        sleep_until(sim, 10.0)
