"""Figure/table runners: each must reproduce its paper claims."""

import pytest

from repro import calibration as cal
from repro.experiments import figures
from repro.units import kpps


class TestFigure3:
    def test_figure3a_crossover_and_render(self):
        result = figures.figure3a(steps=11)
        assert result.crossover_pps == pytest.approx(kpps(80), rel=0.15)
        text = result.render()
        assert "crossover" in text
        assert "memcached" in text

    def test_figure3a_lake_flat(self):
        result = figures.figure3a(steps=11)
        lake = result.series["lake"]
        assert lake[-1].power_w - lake[0].power_w < 1.0

    def test_figure3b_series_and_crossover(self):
        result = figures.figure3b(steps=11)
        assert set(result.series) == {"libpaxos", "dpdk", "p4xos", "p4xos-standalone"}
        assert result.crossover_pps == pytest.approx(kpps(150), rel=0.1)

    def test_figure3b_dpdk_flat_high(self):
        result = figures.figure3b(steps=11)
        dpdk = result.series["dpdk"]
        assert dpdk[0].power_w > 60.0
        assert dpdk[-1].power_w - dpdk[0].power_w < 8.0

    def test_figure3c_crossover(self):
        result = figures.figure3c(steps=11)
        assert kpps(100) < result.crossover_pps < kpps(200)

    def test_figure3c_software_peaks_at_2x_emu(self):
        result = figures.figure3c(steps=11)
        nsd_peak = max(p.power_w for p in result.series["nsd"])
        emu_peak = max(p.power_w for p in result.series["emu"])
        assert nsd_peak / emu_peak == pytest.approx(2.0, rel=0.05)


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return figures.figure4()

    def test_all_nine_bars(self, result):
        assert len(result.bars) == 9

    def test_lake_is_highest_card_config(self, result):
        lake = result.bar("LaKe")
        for name, value in result.bars:
            if name not in ("LaKe", "Server no cards"):
                assert value <= lake

    def test_memories_dominate(self, result):
        """§5.1: 'The biggest contributor to power consumption is the
        external memories — no less than 10W.'"""
        assert result.bar("LaKe") - result.bar("No mem") >= 10.0

    def test_reset_saves_40pct_of_memories(self, result):
        saving = result.bar("LaKe") - result.bar("Reset mem")
        assert saving == pytest.approx(cal.MEMORIES_TOTAL_W * 0.4, rel=0.01)

    def test_clock_gating_saves_under_1w(self, result):
        saving = result.bar("LaKe") - result.bar("Clk gating")
        assert 0.0 < saving < 1.0

    def test_pe_cost(self, result):
        saving = result.bar("No mem") - result.bar("1 PE & no mem")
        assert saving == pytest.approx(4 * cal.LAKE_PE_W, rel=0.01)

    def test_server_roughly_equivalent_to_lake_standalone(self, result):
        """§5.1: idle no-card server ≈ standalone idle LaKe (within ~30%
        in our calibration; see EXPERIMENTS.md)."""
        ratio = result.bar("Server no cards") / result.bar("LaKe")
        assert 0.7 < ratio < 1.4

    def test_render(self, result):
        text = result.render()
        assert "Reset mem & clk gating" in text


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return figures.figure5(steps=13)

    def test_six_series(self, result):
        assert len(result.series) == 6

    def test_ondemand_saves_at_high_load(self, result):
        for app in ("kvs", "dns"):
            ondemand = result.series[f"{app} (On demand)"]
            software = result.series[f"{app} (SW)"]
            assert ondemand[-1].power_w < software[-1].power_w

    def test_kvs_saving_about_half(self, result):
        assert result.savings_at_peak["kvs"] == pytest.approx(0.49, abs=0.05)

    def test_render(self, result):
        assert "On demand" in result.render()


class TestSection5:
    def test_latency_table_matches_calibration(self):
        result = figures.section5_memories(samples=5000)
        rows = {row[0]: row for row in result.latency_rows}
        l2 = rows["L2 hit (DRAM)"]
        assert l2[1] == pytest.approx(cal.LAKE_L2_HIT_MEDIAN_US, rel=0.1)
        miss = rows["miss (software)"]
        assert miss[1] == pytest.approx(cal.LAKE_MISS_MEDIAN_US, rel=0.1)

    def test_miss_is_10x_onchip(self):
        """§5.3: a hardware miss is ×10 an on-chip hit."""
        result = figures.section5_memories(samples=5000)
        rows = {row[0]: row for row in result.latency_rows}
        assert rows["miss (software)"][1] / rows["L1 hit (on-chip)"][1] > 8.0

    def test_render(self):
        assert "DRAM" in figures.section5_memories(samples=100).render()


class TestSection6:
    @pytest.fixture(scope="class")
    def result(self):
        return figures.section6_asic()

    def test_p4xos_overhead(self, result):
        assert result.p4xos_overhead_full_load <= 0.02 + 1e-9

    def test_diag_over_twice_p4xos(self, result):
        """§6: diag.p4 takes more than twice P4xos's overhead."""
        assert result.diag_overhead_full_load > 2 * result.p4xos_overhead_full_load

    def test_span_under_20pct(self, result):
        assert result.power_span_fraction < 0.20

    def test_ops_per_watt_orders(self, result):
        assert 1e4 <= result.ops_per_watt["software"] < 1e5
        assert 1e5 <= result.ops_per_watt["fpga"] < 1e6
        assert result.ops_per_watt["asic"] >= 1e7

    def test_dynamic_ratio_about_one_third(self, result):
        """§6: ASIC dynamic power at 10% util ≈ 1/3 of the server's at
        180Kpps."""
        assert result.dynamic_ratio_vs_server == pytest.approx(1 / 3, rel=0.35)

    def test_render(self, result):
        assert "Tofino" in result.render()


class TestSection7:
    @pytest.fixture(scope="class")
    def result(self):
        return figures.section7_server()

    def test_paper_anchors(self, result):
        assert result.total("idle") == pytest.approx(56.0)
        assert result.total("1 core @10%") == pytest.approx(86.0)
        assert result.total("1 core @100%") == pytest.approx(91.0)
        assert result.total("28 cores @100%") == pytest.approx(134.0)

    def test_socket_breakdown_sums(self, result):
        for row in result.rows:
            assert row[1] == pytest.approx(row[2] + row[3], rel=0.01)

    def test_render(self, result):
        assert "RAPL" in result.render()


class TestSection8:
    def test_all_three_apps_have_crossovers(self):
        result = figures.section8_tipping()
        assert len(result.tipping_points) == 3
        for tp in result.tipping_points:
            assert tp.hardware_ever_wins
            assert kpps(50) < tp.crossover_pps < kpps(350)

    def test_tor_switch_crossover_near_zero(self):
        """§9.4: on a ToR switch the tipping point is at R ≈ 0."""
        result = figures.section8_tipping()
        assert result.tor.switch_always_wins

    def test_render(self):
        assert "crossover" in figures.section8_tipping().render()


class TestSection93:
    @pytest.fixture(scope="class")
    def result(self):
        return figures.section93_traces(trace_seconds=800)

    def test_dynamo_rows(self, result):
        assert len(result.dynamo_rows) == 3
        classes = [row[0] for row in result.dynamo_rows]
        assert classes == ["rack", "caching", "web"]

    def test_google_candidate_cores(self, result):
        rows = {row[0]: row for row in result.google_rows}
        synthesized = rows["candidate cores per node"][1]
        assert synthesized == pytest.approx(7.7, rel=0.35)

    def test_render(self, result):
        assert "Dynamo" in result.render()


class TestSection10:
    def test_smartnic_rows(self):
        result = figures.section10_platforms()
        assert len(result.smartnic_rows) == 4

    def test_rankings_follow_paper_logic(self):
        result = figures.section10_platforms()
        # very high rate Paxos: the switch ASIC should rank first (§10)
        paxos_ranking = [p for p, _ in result.recommendations["Paxos @ 100Mpps"]]
        assert paxos_ranking[0] == "switch-asic"
        # low-rate DNS: the server should rank highly
        dns_ranking = [p for p, _ in result.recommendations["DNS @ 50Kpps"]]
        assert dns_ranking[0] == "server"

    def test_render(self):
        assert "platform" in figures.section10_platforms().render()
