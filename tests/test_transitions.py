"""Integration: the Figure 6 and Figure 7 DES experiments (scaled down)."""

import pytest

from repro.experiments import run_figure6, run_figure7
from repro.units import msec, sec


@pytest.fixture(scope="module")
def fig6():
    # compressed trace: ChainerMN from 1.0s to 4.5s, 10s total
    return run_figure6(
        duration_s=10.0,
        rate_kpps=12.0,
        chainer_start_s=1.0,
        chainer_stop_s=4.5,
        keyspace=20_000,
        seed=1,
    )


class TestFigure6(object):
    def test_two_transitions(self, fig6):
        """Figure 6 shows a shift to hardware and a shift back."""
        assert len(fig6.shift_times_us) == 2

    def test_shift_after_sustained_load(self, fig6):
        """§9.1/Figure 6: the shift happens ~3s (the window) after the
        co-located job raises power, not immediately."""
        first = fig6.shift_times_us[0]
        assert sec(3.0) < first < sec(6.0)

    def test_throughput_unaffected_by_shift(self, fig6):
        """Figure 6: 'the transition from software to hardware had no
        effect on KVS throughput, not even momentarily.'"""
        shift = fig6.shift_times_us[0]
        before = fig6.mean_throughput_pps(shift - sec(1.0), shift)
        after = fig6.mean_throughput_pps(shift, shift + sec(1.0))
        assert after == pytest.approx(before, rel=0.1)
        assert after == pytest.approx(fig6.offered_pps, rel=0.15)

    def test_latency_improves_after_warmup(self, fig6):
        """Figure 6: hit latency improves roughly ten-fold once the cache
        warms (mean improves several-fold as the miss tail drains)."""
        shift = fig6.shift_times_us[0]
        software = fig6.mean_latency_us(shift - sec(1.0), shift)
        hardware = fig6.mean_latency_us(shift + sec(1.0), shift + sec(3.0))
        assert software / hardware > 2.0

    def test_power_drops_after_chainer_stops(self, fig6):
        high = [v for t, v in fig6.power_series if sec(2.0) < t < sec(4.0)]
        low = [v for t, v in fig6.power_series if t > sec(6.5)]
        assert sum(high) / len(high) > sum(low) / len(low) + 30.0

    def test_hardware_served_requests(self, fig6):
        assert fig6.hw_hits > 0
        assert fig6.hw_miss_forwards > 0  # cold-start misses (§9.2)

    def test_render(self, fig6):
        text = fig6.render()
        assert "transition" in text
        assert "throughput" in text


@pytest.fixture(scope="module")
def fig7():
    return run_figure7(duration_s=2.5, shift_to_hw_s=0.8, shift_to_sw_s=1.8)


class TestFigure7(object):
    def test_two_shifts(self, fig7):
        assert len(fig7.shift_times_us) == 2

    def test_throughput_higher_in_hardware(self, fig7):
        """Figure 7: throughput increases with the hardware leader."""
        sw = fig7.mean_throughput_pps(sec(0.3), sec(0.8))
        hw = fig7.mean_throughput_pps(sec(1.1), sec(1.8))
        assert hw > 1.5 * sw

    def test_latency_halved_in_hardware(self, fig7):
        """Figure 7: 'the latency is halved when the leader is implemented
        in hardware.'"""
        sw = fig7.mean_latency_us(sec(0.3), sec(0.8))
        hw = fig7.mean_latency_us(sec(1.1), sec(1.8))
        assert hw == pytest.approx(sw / 2.0, rel=0.25)

    def test_stall_matches_client_timeout(self, fig7):
        """Figure 7: 'the throughput drops to zero for about 100 msec. This
        corresponds to the value of the client timeout.'"""
        assert len(fig7.stall_us) == 2
        for stall in fig7.stall_us:
            assert stall == pytest.approx(msec(100.0), rel=0.25)

    def test_progress_resumes_after_both_shifts(self, fig7):
        late = fig7.mean_throughput_pps(sec(2.2), sec(2.5))
        assert late > 1000.0

    def test_retries_occurred(self, fig7):
        assert fig7.retries > 0

    def test_render(self, fig7):
        assert "Paxos leader" in fig7.render()
