"""Cross-cutting property-based invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import ClassifierRule, PacketClassifier, TrafficClass
from repro.net.packet import make_packet
from repro.power import NiccoliniEnergyModel
from repro.sim import Simulator, TimeSeries, percentile
from repro.steady.base import SoftwareCurveModel
from repro.units import sec


class TestSimulatorProperties:
    @given(delays=st.lists(st.floats(0.0, 1e6), min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_execution_times_nondecreasing(self, delays):
        sim = Simulator()
        seen = []
        for delay in delays:
            sim.schedule(delay, lambda: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
        assert len(seen) == len(delays)

    @given(delays=st.lists(st.floats(0.0, 1e3), min_size=2, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_cancellation_removes_exactly_the_cancelled(self, delays):
        sim = Simulator()
        fired = []
        events = [
            sim.schedule(d, lambda i=i: fired.append(i))
            for i, d in enumerate(delays)
        ]
        events[0].cancel()
        sim.run()
        assert 0 not in fired
        assert len(fired) == len(delays) - 1


class TestNumericAgreementWithNumpy:
    @given(
        values=st.lists(
            st.floats(0.0, 1e6, allow_nan=False), min_size=1, max_size=200
        ),
        pct=st.floats(1.0, 100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_percentile_is_inverted_cdf(self, values, pct):
        ours = percentile(values, pct)
        numpy_result = float(
            np.percentile(np.array(values), pct, method="inverted_cdf")
        )
        assert ours == pytest.approx(numpy_result)

    @given(
        samples=st.lists(
            st.tuples(st.floats(0.0, 100.0), st.floats(0.0, 500.0)),
            min_size=2,
            max_size=100,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_integrate_matches_numpy_trapezoid(self, samples):
        times = sorted(sec(t) for t, _ in samples)
        values = [v for _, v in samples]
        ts = TimeSeries()
        last = -1.0
        kept_t, kept_v = [], []
        for t, v in zip(times, values):
            if t > last:  # TimeSeries requires strictly usable ordering
                ts.record(t, v)
                kept_t.append(t / 1e6)
                kept_v.append(v)
                last = t
        if len(kept_t) < 2:
            return
        ours = ts.integrate_seconds()
        reference = float(np.trapezoid(kept_v, kept_t))
        assert ours == pytest.approx(reference, rel=1e-9, abs=1e-9)


class TestPowerModelProperties:
    @given(
        idle=st.floats(1.0, 100.0),
        span=st.floats(0.0, 200.0),
        alpha=st.floats(0.2, 3.0),
        rates=st.lists(st.floats(0.0, 2e6), min_size=2, max_size=30),
    )
    @settings(max_examples=80, deadline=None)
    def test_software_curve_monotone_and_bounded(self, idle, span, alpha, rates):
        model = SoftwareCurveModel(
            "m", capacity_pps=1e6, idle_w=idle, peak_w=idle + span, alpha=alpha
        )
        ordered = sorted(rates)
        powers = [model.power_at(r) for r in ordered]
        assert powers == sorted(powers)
        for p in powers:
            assert idle - 1e-9 <= p <= idle + span + 1e-9

    @given(
        packets=st.floats(0.0, 1e9),
        rate=st.floats(1.0, 1e7),
        idle_s=st.floats(0.0, 1e4),
    )
    @settings(max_examples=80, deadline=None)
    def test_energy_nonnegative_and_additive(self, packets, rate, idle_s):
        model = NiccoliniEnergyModel(
            active_power_w=lambda r: 40.0 + r / 1e5, idle_power_w=40.0
        )
        e = model.energy(packets, rate, idle_s=idle_s)
        assert e.total_j >= 0.0
        half = model.energy(packets / 2, rate, idle_s=idle_s / 2)
        assert 2 * half.total_j == pytest.approx(e.total_j, rel=1e-6, abs=1e-6)


class TestClassifierConservation:
    @given(
        classes=st.lists(
            st.sampled_from(list(TrafficClass)), min_size=1, max_size=200
        ),
        offload=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_packet_goes_somewhere_exactly_once(self, classes, offload):
        sim = Simulator()
        hw, host, default = [], [], []
        clf = PacketClassifier(sim, default_host=default.append)
        clf.add_rule(
            ClassifierRule(
                TrafficClass.MEMCACHED, hardware=hw.append, host=host.append
            )
        )
        clf.set_offload(TrafficClass.MEMCACHED, offload)
        for tc in classes:
            clf.classify(make_packet("c", "s", tc, now=sim.now))
        delivered = len(hw) + len(host) + len(default)
        assert delivered == len(classes)
        assert sum(clf.counters.values()) == len(classes)
        if offload:
            assert not host
        else:
            assert not hw


def test_des_determinism_same_seed():
    """Two identical Figure 7 runs produce identical results."""
    from repro.experiments import run_figure7

    a = run_figure7(duration_s=0.8, shift_to_hw_s=0.3, shift_to_sw_s=0.6, seed=9)
    b = run_figure7(duration_s=0.8, shift_to_hw_s=0.3, shift_to_sw_s=0.6, seed=9)
    assert a.decided == b.decided
    assert a.retries == b.retries
    assert a.throughput_series == b.throughput_series


def test_des_seed_sensitivity_open_loop():
    """Seeds drive the open-loop arrival jitter (closed-loop Figure 7 runs
    are seed-free by design: submissions are decision-driven)."""
    from repro.experiments import run_figure6

    a = run_figure6(duration_s=1.0, chainer_start_s=0.2, chainer_stop_s=0.6,
                    keyspace=2_000, seed=1)
    b = run_figure6(duration_s=1.0, chainer_start_s=0.2, chainer_stop_s=0.6,
                    keyspace=2_000, seed=2)
    assert a.client_responses != b.client_responses or (
        a.throughput_series != b.throughput_series
    )
