"""Unit-conversion helpers."""

import pytest

from repro import units


def test_time_constants_relate():
    assert units.sec(1) == units.msec(1000) == units.usec(1_000_000)


def test_round_trips():
    assert units.to_seconds(units.sec(2.5)) == pytest.approx(2.5)
    assert units.to_msec(units.msec(7)) == pytest.approx(7.0)


def test_rates():
    assert units.kpps(80) == 80_000
    assert units.mpps(1.5) == 1_500_000
    assert units.to_kpps(150_000) == pytest.approx(150.0)


def test_interarrival():
    assert units.interarrival_us(1_000_000) == pytest.approx(1.0)
    assert units.interarrival_us(1_000) == pytest.approx(1000.0)


def test_interarrival_rejects_nonpositive():
    with pytest.raises(ValueError):
        units.interarrival_us(0.0)
    with pytest.raises(ValueError):
        units.interarrival_us(-5.0)


def test_line_rate_10ge_small_frames():
    # 64B frames on 10GE: the canonical 14.88Mpps
    rate = units.line_rate_pps(units.gbit_per_s(10.0), 64)
    assert rate == pytest.approx(14.88e6, rel=0.01)


def test_line_rate_lake_frame_matches_paper():
    # ~70B memcached queries: LaKe's ~13Mpps line rate (§4.2)
    rate = units.line_rate_pps(units.gbit_per_s(10.0), 70)
    assert rate == pytest.approx(13.0e6, rel=0.08)


def test_line_rate_rejects_bad_frame():
    with pytest.raises(ValueError):
        units.line_rate_pps(1e9, 0)
