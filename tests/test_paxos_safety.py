"""Property-based Paxos safety: agreement holds under message loss,
duplication, reordering, and arbitrary leader changes.

The oracle is a LearnerState fed every delivered Phase2B: it raises
ProtocolError if any instance ever chooses two different values, and we
additionally track every (instance, value) decision and assert uniqueness.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.paxos import (
    AcceptorState,
    LeaderState,
    LearnerState,
    Phase1A,
    Phase1B,
    Phase2A,
    Phase2B,
)

N_LEADERS = 3
MAX_STEPS = 120


@given(data=st.data())
@settings(max_examples=80, deadline=None)
def test_agreement_under_loss_duplication_reordering(data):
    n_acceptors = data.draw(st.integers(3, 5), label="n_acceptors")
    acceptors = [AcceptorState(f"a{i}") for i in range(n_acceptors)]
    leaders = [LeaderState(f"L{i}", i, n_acceptors) for i in range(N_LEADERS)]
    oracle = LearnerState("oracle", n_acceptors)
    decided = {}  # instance -> value
    network = []  # in-flight messages: ("acceptor"|"leader", index, message)
    value_counter = [0]

    def broadcast_to_acceptors(msg):
        for i in range(n_acceptors):
            network.append(("acceptor", i, msg))

    def record_decision(decision):
        if decision is None:
            return
        previous = decided.setdefault(decision.instance, decision.value)
        assert previous == decision.value, (
            f"instance {decision.instance} decided {previous!r} "
            f"and {decision.value!r}"
        )

    def deliver(entry):
        kind, idx, msg = entry
        if kind == "acceptor":
            acceptor = acceptors[idx]
            if isinstance(msg, Phase1A):
                reply = acceptor.handle_phase1a(msg)
                if reply is not None:
                    # 1B routes to the leader owning that round
                    network.append(("leader", msg.round % 16, reply))
            elif isinstance(msg, Phase2A):
                vote = acceptor.handle_phase2a(msg)
                if vote is not None:
                    record_decision(oracle.handle_phase2b(vote))
        else:  # leader
            leader = leaders[idx]
            if isinstance(msg, Phase1B):
                for proposal in leader.handle_phase1b(msg):
                    broadcast_to_acceptors(proposal)

    steps = data.draw(st.integers(20, MAX_STEPS), label="steps")
    for _ in range(steps):
        action = data.draw(
            st.sampled_from(
                ["takeover", "propose", "deliver", "drop", "duplicate"]
            ),
            label="action",
        )
        if action == "takeover":
            leader = leaders[data.draw(st.integers(0, N_LEADERS - 1))]
            broadcast_to_acceptors(leader.start_phase1())
        elif action == "propose":
            leader = leaders[data.draw(st.integers(0, N_LEADERS - 1))]
            value_counter[0] += 1
            proposal = leader.propose(f"v{value_counter[0]}")
            if proposal is not None:
                broadcast_to_acceptors(proposal)
        elif network:
            idx = data.draw(st.integers(0, len(network) - 1), label="msg")
            if action == "deliver":
                deliver(network.pop(idx))
            elif action == "drop":
                network.pop(idx)
            else:  # duplicate
                network.append(network[idx])

    # Drain the network in arbitrary (but deterministic) order: safety must
    # still hold at quiescence.
    while network:
        deliver(network.pop(0))

    # Re-assert agreement from the oracle's own record.
    for instance, value in oracle.decided.items():
        assert decided.get(instance) == value


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_decisions_survive_leader_takeover(data):
    """Any value decided before a takeover is re-proposed (not replaced) by
    the new leader."""
    n_acceptors = 3
    acceptors = [AcceptorState(f"a{i}") for i in range(n_acceptors)]
    oracle = LearnerState("oracle", n_acceptors)

    # Leader 0 decides a few instances fully.
    leader0 = LeaderState("L0", 0, n_acceptors)
    p1a = leader0.start_phase1()
    for acceptor in acceptors:
        leader0.handle_phase1b(acceptor.handle_phase1a(p1a))
    n_decided = data.draw(st.integers(1, 5), label="n_decided")
    for i in range(n_decided):
        proposal = leader0.propose(f"committed{i}")
        for acceptor in acceptors:
            oracle.handle_phase2b(acceptor.handle_phase2a(proposal))
    before = dict(oracle.decided)
    assert len(before) == n_decided

    # Leader 1 takes over with only a quorum subset responding.
    leader1 = LeaderState("L1", 1, n_acceptors)
    p1a = leader1.start_phase1()
    quorum = data.draw(
        st.lists(st.integers(0, 2), min_size=2, max_size=3, unique=True),
        label="quorum",
    )
    reproposals = []
    for idx in quorum:
        promise = acceptors[idx].handle_phase1a(p1a)
        if promise is not None:
            reproposals.extend(leader1.handle_phase1b(promise))
    for proposal in reproposals:
        for acceptor in acceptors:
            vote = acceptor.handle_phase2a(proposal)
            if vote is not None:
                oracle.handle_phase2b(vote)

    # nothing previously decided changed
    for instance, value in before.items():
        assert oracle.decided[instance] == value
    # and the new leader proposes beyond the old log
    assert leader1.next_instance == n_decided + 1
