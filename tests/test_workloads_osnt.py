"""OSNT-style rate schedules."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import Simulator
from repro.units import sec
from repro.workloads import RampSchedule, RateSchedule, StepSchedule


def test_rate_at_steps():
    sched = RateSchedule([(0.0, 100.0), (10.0, 200.0)])
    assert sched.rate_at(0.0) == 100.0
    assert sched.rate_at(9.9) == 100.0
    assert sched.rate_at(10.0) == 200.0
    assert sched.rate_at(1e9) == 200.0


def test_implicit_zero_start():
    sched = RateSchedule([(10.0, 500.0)])
    assert sched.rate_at(5.0) == 0.0


def test_unordered_steps_rejected():
    with pytest.raises(ConfigurationError):
        RateSchedule([(10.0, 1.0), (5.0, 2.0)])


def test_negative_rate_rejected():
    with pytest.raises(ConfigurationError):
        RateSchedule([(0.0, -1.0)])


def test_ramp_monotone():
    ramp = RampSchedule(0.0, 1000.0, duration_us=sec(1.0), steps=10)
    rates = [rate for _, rate in ramp.steps]
    assert rates == sorted(rates)
    assert rates[0] == 0.0
    assert rates[-1] == 1000.0


def test_step_schedule_durations():
    sched = StepSchedule([(100.0, 10.0), (200.0, 20.0), (50.0, 5.0)])
    assert sched.rate_at(50.0) == 10.0
    assert sched.rate_at(150.0) == 20.0
    assert sched.rate_at(320.0) == 5.0


def test_apply_drives_set_rate():
    sim = Simulator()
    seen = []
    sched = StepSchedule([(100.0, 10.0), (100.0, 20.0)])
    sched.apply(sim, lambda r: seen.append((sim.now, r)))
    sim.run()
    assert seen == [(0.0, 10.0), (100.0, 20.0)]


def test_apply_immediate_for_past_steps():
    sim = Simulator()
    sim.run_until(50.0)
    seen = []
    RateSchedule([(0.0, 5.0), (100.0, 7.0)]).apply(sim, lambda r: seen.append(r))
    assert seen == [5.0]
    sim.run()
    assert seen == [5.0, 7.0]
