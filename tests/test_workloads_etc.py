"""Facebook ETC workload model."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.workloads import EtcWorkload
from repro.workloads.etc import ZipfSampler


class TestZipf:
    def test_ranks_in_range(self):
        sampler = ZipfSampler(1000, 0.99, random.Random(1))
        for _ in range(2000):
            assert 1 <= sampler.sample() <= 1000

    def test_skew_head_dominates(self):
        sampler = ZipfSampler(100_000, 0.99, random.Random(2))
        counts = Counter(sampler.sample() for _ in range(20_000))
        top10 = sum(counts[r] for r in range(1, 11))
        # Zipf(0.99): the top 10 of 100k ranks carry a large share
        assert top10 / 20_000 > 0.15

    def test_rank1_most_popular(self):
        sampler = ZipfSampler(1000, 1.2, random.Random(3))
        counts = Counter(sampler.sample() for _ in range(30_000))
        assert counts[1] == max(counts.values())

    def test_degenerate_n1(self):
        sampler = ZipfSampler(1, 0.99, random.Random(4))
        assert sampler.sample() == 1

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            ZipfSampler(0, 0.99, random.Random(0))

    @given(s=st.floats(0.3, 2.5), n=st.integers(1, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_always_valid_rank(self, s, n):
        sampler = ZipfSampler(n, s, random.Random(7))
        for _ in range(50):
            assert 1 <= sampler.sample() <= n


class TestEtcWorkload:
    def test_keys_formatted(self):
        etc = EtcWorkload(keyspace=100)
        key = etc.key()
        assert key.startswith("key:")
        assert 1 <= int(key.split(":")[1]) <= 100

    def test_values_follow_size_cdf(self):
        etc = EtcWorkload()
        sizes = [len(etc.value()) for _ in range(5000)]
        # ETC is dominated by small values: most under 320B
        small = sum(1 for s in sizes if s <= 320)
        assert small / len(sizes) > 0.80
        assert max(sizes) <= 4096

    def test_read_dominated(self):
        etc = EtcWorkload()
        assert etc.set_fraction == pytest.approx(0.03, abs=0.001)

    def test_hot_keys_are_top_ranks(self):
        etc = EtcWorkload(keyspace=50)
        assert etc.hot_keys(3) == ["key:00000001", "key:00000002", "key:00000003"]
        assert len(etc.hot_keys(100)) == 50  # clamped to keyspace

    def test_preload(self):
        etc = EtcWorkload(keyspace=100)
        store = {}
        etc.preload(store.__setitem__, count=10)
        assert len(store) == 10

    def test_deterministic_for_seed(self):
        a = EtcWorkload(seed=9)
        b = EtcWorkload(seed=9)
        assert [a.key() for _ in range(20)] == [b.key() for _ in range(20)]

    def test_invalid_keyspace(self):
        with pytest.raises(ConfigurationError):
            EtcWorkload(keyspace=0)


class TestShardedEtcWorkload:
    def test_stream_keys_stay_in_shard(self):
        from repro.workloads import ShardedEtcWorkload

        sharded = ShardedEtcWorkload(keyspace=2_000, n_shards=4, seed=3)
        for shard in range(4):
            stream = sharded.stream(shard)
            for _ in range(50):
                assert sharded.shard_of(stream.key()) == shard

    def test_streams_are_independent_and_deterministic(self):
        from repro.workloads import ShardedEtcWorkload

        a = ShardedEtcWorkload(keyspace=2_000, n_shards=4, seed=3)
        b = ShardedEtcWorkload(keyspace=2_000, n_shards=4, seed=3)
        keys_a = [a.stream(1).key() for _ in range(1)]
        # draw from shard 0 first on b: shard 1's stream must be unaffected
        b0 = b.stream(0)
        [b0.key() for _ in range(25)]
        assert a.stream(1).key() == b.stream(1).key()
        assert keys_a  # sanity

    def test_shard_keys_partition_the_keyspace(self):
        from repro.workloads import ShardedEtcWorkload

        sharded = ShardedEtcWorkload(keyspace=500, n_shards=3)
        all_keys = []
        for shard in range(3):
            keys = sharded.shard_keys(shard, 500)
            assert all(sharded.shard_of(k) == shard for k in keys)
            all_keys.extend(keys)
        assert len(all_keys) == 500
        assert len(set(all_keys)) == 500

    def test_shard_weights_sum_to_one_and_follow_zipf(self):
        from repro.workloads import ShardedEtcWorkload

        sharded = ShardedEtcWorkload(keyspace=10_000, n_shards=8)
        weights = sharded.shard_weights()
        assert sum(weights) == pytest.approx(1.0)
        assert all(w > 0 for w in weights)
        # the shard owning rank-1 (the hottest key) gets extra mass
        hot_shard = sharded.shard_of("key:00000001")
        assert weights[hot_shard] > 1.0 / 8.0

    def test_preload_populates_only_shard_keys(self):
        from repro.workloads import ShardedEtcWorkload

        sharded = ShardedEtcWorkload(keyspace=300, n_shards=4)
        store = {}
        sharded.stream(2).preload(store.__setitem__)
        assert store
        assert all(sharded.shard_of(k) == 2 for k in store)

    def test_validation(self):
        from repro.workloads import ShardedEtcWorkload

        with pytest.raises(ConfigurationError):
            ShardedEtcWorkload(keyspace=0)
        with pytest.raises(ConfigurationError):
            ShardedEtcWorkload(n_shards=0)
        with pytest.raises(ConfigurationError):
            ShardedEtcWorkload(n_shards=2).stream(5)

    def test_empty_shard_rejected_instead_of_hanging(self):
        """A shard owning zero keys must fail fast at stream() — the
        rejection sampler would otherwise spin forever."""
        from repro.net.classifier import key_shard
        from repro.workloads import ShardedEtcWorkload

        # keyspace=1: the single key lands in exactly one of two shards
        sharded = ShardedEtcWorkload(keyspace=1, n_shards=2)
        owner = key_shard("key:00000001", 2)
        assert sharded.stream(owner).key() == "key:00000001"
        with pytest.raises(ConfigurationError, match="owns no keys"):
            sharded.stream(1 - owner)
