"""Facebook ETC workload model."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.workloads import EtcWorkload
from repro.workloads.etc import ZipfSampler


class TestZipf:
    def test_ranks_in_range(self):
        sampler = ZipfSampler(1000, 0.99, random.Random(1))
        for _ in range(2000):
            assert 1 <= sampler.sample() <= 1000

    def test_skew_head_dominates(self):
        sampler = ZipfSampler(100_000, 0.99, random.Random(2))
        counts = Counter(sampler.sample() for _ in range(20_000))
        top10 = sum(counts[r] for r in range(1, 11))
        # Zipf(0.99): the top 10 of 100k ranks carry a large share
        assert top10 / 20_000 > 0.15

    def test_rank1_most_popular(self):
        sampler = ZipfSampler(1000, 1.2, random.Random(3))
        counts = Counter(sampler.sample() for _ in range(30_000))
        assert counts[1] == max(counts.values())

    def test_degenerate_n1(self):
        sampler = ZipfSampler(1, 0.99, random.Random(4))
        assert sampler.sample() == 1

    def test_invalid_n(self):
        with pytest.raises(ConfigurationError):
            ZipfSampler(0, 0.99, random.Random(0))

    @given(s=st.floats(0.3, 2.5), n=st.integers(1, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_always_valid_rank(self, s, n):
        sampler = ZipfSampler(n, s, random.Random(7))
        for _ in range(50):
            assert 1 <= sampler.sample() <= n


class TestEtcWorkload:
    def test_keys_formatted(self):
        etc = EtcWorkload(keyspace=100)
        key = etc.key()
        assert key.startswith("key:")
        assert 1 <= int(key.split(":")[1]) <= 100

    def test_values_follow_size_cdf(self):
        etc = EtcWorkload()
        sizes = [len(etc.value()) for _ in range(5000)]
        # ETC is dominated by small values: most under 320B
        small = sum(1 for s in sizes if s <= 320)
        assert small / len(sizes) > 0.80
        assert max(sizes) <= 4096

    def test_read_dominated(self):
        etc = EtcWorkload()
        assert etc.set_fraction == pytest.approx(0.03, abs=0.001)

    def test_hot_keys_are_top_ranks(self):
        etc = EtcWorkload(keyspace=50)
        assert etc.hot_keys(3) == ["key:00000001", "key:00000002", "key:00000003"]
        assert len(etc.hot_keys(100)) == 50  # clamped to keyspace

    def test_preload(self):
        etc = EtcWorkload(keyspace=100)
        store = {}
        etc.preload(store.__setitem__, count=10)
        assert len(store) == 10

    def test_deterministic_for_seed(self):
        a = EtcWorkload(seed=9)
        b = EtcWorkload(seed=9)
        assert [a.key() for _ in range(20)] == [b.key() for _ in range(20)]

    def test_invalid_keyspace(self):
        with pytest.raises(ConfigurationError):
            EtcWorkload(keyspace=0)
