"""The unified controller plane: every ControllerSpec kind builds, runs,
and shifts on an appropriate trigger, for every application family.

The matrix is the tentpole contract of the scenario engine: *who decides*
to shift (§9) is a pluggable policy, so host-driven, network-driven and
predictive controllers must all be reachable from a spec and actually
drive transitions — plus the validation error paths for the new specs.
"""

import pytest

from repro.core import (
    CONTROLLER_KINDS,
    PAXOS_CONTROLLER_KINDS,
    HostController,
    NetworkController,
    PredictiveController,
    ShiftController,
)
from repro.core.paxos_controller import PaxosShiftController
from repro.errors import ConfigurationError
from repro.scenarios import (
    NO_CONTROLLER,
    ColocatedJobSpec,
    ControllerSpec,
    DnsHostSpec,
    DnsWorkloadSpec,
    KvsHostSpec,
    KvsWorkloadSpec,
    PaxosSpec,
    SamplingSpec,
    ScenarioBuilder,
    ScenarioSpec,
)
from repro.units import msec, sec


def test_kind_registries_cover_the_paper_controllers():
    assert set(CONTROLLER_KINDS) == {"host", "network", "predictive", "none"}
    assert set(PAXOS_CONTROLLER_KINDS) == {"schedule", "rate"}


def test_every_concrete_controller_implements_the_protocol():
    for cls in (HostController, NetworkController, PredictiveController,
                PaxosShiftController):
        assert issubclass(cls, ShiftController)


# ---------------------------------------------------------------------------
# The KVS matrix: one host per kind, each shifting on its natural trigger.
# ---------------------------------------------------------------------------

_FAST_WINDOWS = dict(window_us=sec(0.5), tick_us=msec(50.0))

#: kind -> (ControllerSpec, colocated jobs, workload phases)
_KVS_MATRIX = {
    "host": (
        ControllerSpec(kind="host", params=_FAST_WINDOWS),
        (ColocatedJobSpec(start_s=0.5, stop_s=3.5),),
        (),
    ),
    "network": (
        ControllerSpec(
            kind="network",
            params=dict(
                up_rate_pps=6_000.0,
                down_rate_pps=2_000.0,
                up_window_us=sec(0.5),
                down_window_us=sec(0.5),
                tick_us=msec(50.0),
            ),
        ),
        (),
        ((0.5, 12.0),),  # load ramp: 2 -> 12 kpps
    ),
    "predictive": (
        ControllerSpec(kind="predictive", params=dict(window_us=sec(0.5))),
        (),
        ((0.5, 12.0),),
    ),
}


def _kvs_spec(kind: str, duration_s: float = 3.0) -> ScenarioSpec:
    controller, jobs, phases = _KVS_MATRIX[kind]
    return ScenarioSpec(
        name=f"matrix-{kind}",
        duration_s=duration_s,
        kvs_hosts=(
            KvsHostSpec(name="h0", controller=controller, colocated=jobs),
        ),
        kvs_workload=KvsWorkloadSpec(
            keyspace=3_000,
            rate_kpps=8.0 if kind == "host" else 2.0,
            phases=phases,
        ),
        sampling=SamplingSpec(power_interval_ms=50.0, bucket_ms=250.0),
    )


@pytest.mark.parametrize("kind", sorted(_KVS_MATRIX))
def test_kvs_controller_kind_builds_runs_and_shifts(kind):
    run = ScenarioBuilder(_kvs_spec(kind)).build()
    host = run.kvs_hosts[0]
    assert isinstance(host.controller, ShiftController)
    assert host.controller.kind == kind
    result = run.execute()
    assert result.hosts[0].responses > 0
    assert result.hosts[0].shift_times_us, f"{kind} controller never shifted"
    assert result.hosts[0].controller_kind == kind
    # the controller's own record agrees with the host timeline
    assert host.controller.shift_times_us() == result.hosts[0].shift_times_us


def test_kind_none_builds_no_controller_and_never_shifts():
    spec = ScenarioSpec(
        name="matrix-none",
        duration_s=1.0,
        kvs_hosts=(KvsHostSpec(name="h0", controller=NO_CONTROLLER),),
        kvs_workload=KvsWorkloadSpec(keyspace=2_000, rate_kpps=4.0),
    )
    run = ScenarioBuilder(spec).build()
    assert run.kvs_hosts[0].controller is None
    result = run.execute()
    assert result.hosts[0].shift_times_us == []
    assert result.hosts[0].controller_kind == "none"


# ---------------------------------------------------------------------------
# DNS: the network-controlled query storm, and the host kind on DNS.
# ---------------------------------------------------------------------------


def _dns_spec(controller: ControllerSpec, duration_s: float = 3.0) -> ScenarioSpec:
    return ScenarioSpec(
        name="matrix-dns",
        duration_s=duration_s,
        dns_hosts=(DnsHostSpec(name="ns0", controller=controller),),
        dns_workload=DnsWorkloadSpec(
            n_names=400, rate_kpps=2.0, phases=((0.5, 12.0),)
        ),
        sampling=SamplingSpec(power_interval_ms=50.0, bucket_ms=250.0),
    )


def test_dns_network_controller_shifts_on_query_storm():
    spec = _dns_spec(
        ControllerSpec(
            kind="network",
            params=dict(
                up_rate_pps=6_000.0,
                down_rate_pps=2_000.0,
                up_window_us=sec(0.5),
                down_window_us=sec(0.5),
                tick_us=msec(50.0),
            ),
        )
    )
    result = ScenarioBuilder(spec).run()
    host = result.dns_hosts[0]
    assert host.app == "dns"
    assert host.responses > 0
    assert host.shift_times_us, "query storm never triggered the shift"
    # after the shift Emu serves queries in hardware
    assert host.hw_hits > 0


def test_dns_predictive_controller_shifts_on_query_storm():
    spec = _dns_spec(
        ControllerSpec(kind="predictive", params=dict(window_us=sec(0.5)))
    )
    result = ScenarioBuilder(spec).run()
    assert result.dns_hosts[0].shift_times_us


# ---------------------------------------------------------------------------
# Paxos: the rate-driven centralized controller (§9.2) on a closed loop.
# ---------------------------------------------------------------------------


def test_paxos_rate_controller_shifts_autonomously():
    spec = ScenarioSpec(
        name="matrix-paxos-rate",
        duration_s=1.5,
        paxos_groups=(
            PaxosSpec(
                name="grp",
                controller=ControllerSpec(
                    kind="rate",
                    params=dict(
                        up_rate_pps=3_000.0,
                        down_rate_pps=1_000.0,
                        window_us=sec(0.3),
                        tick_us=msec(50.0),
                    ),
                ),
            ),
        ),
        sampling=SamplingSpec(power_interval_ms=50.0, bucket_ms=50.0),
    )
    run = ScenarioBuilder(spec).build()
    assert run.paxos_groups[0].controller.kind == "rate"
    result = run.execute()
    group = result.paxos_groups[0]
    assert group.decided > 0
    assert group.shift_times_us, "sustained decision rate never shifted the leader"
    # the shift moved the leader to the hardware candidate
    assert (
        run.paxos_groups[0].deployment.active_leader_node == "grp-hw-leader"
    )


# ---------------------------------------------------------------------------
# Validation error paths for the new specs.
# ---------------------------------------------------------------------------


class TestControllerSpecValidation:
    def test_unknown_kind_rejected(self):
        spec = ScenarioSpec(
            name="x",
            kvs_hosts=(
                KvsHostSpec(name="h0", controller=ControllerSpec(kind="psychic")),
            ),
            kvs_workload=KvsWorkloadSpec(),
        )
        with pytest.raises(ConfigurationError, match="psychic"):
            spec.validate()

    def test_paxos_kind_rejected_on_kvs_host(self):
        spec = ScenarioSpec(
            name="x",
            kvs_hosts=(
                KvsHostSpec(name="h0", controller=ControllerSpec(kind="schedule")),
            ),
            kvs_workload=KvsWorkloadSpec(),
        )
        with pytest.raises(ConfigurationError, match="schedule"):
            spec.validate()

    def test_host_kind_rejected_on_paxos_group(self):
        spec = ScenarioSpec(
            name="x",
            paxos_groups=(
                PaxosSpec(name="g", controller=ControllerSpec(kind="host")),
            ),
        )
        with pytest.raises(ConfigurationError, match="host"):
            spec.validate()

    def test_misspelled_param_rejected_at_validate_time(self):
        spec = ScenarioSpec(
            name="x",
            kvs_hosts=(
                KvsHostSpec(
                    name="h0",
                    controller=ControllerSpec(
                        kind="network", params=dict(up_rate_ppss=6_000.0)
                    ),
                ),
            ),
            kvs_workload=KvsWorkloadSpec(),
        )
        with pytest.raises(ConfigurationError, match="up_rate_ppss"):
            spec.validate()

    def test_params_rejected_on_kind_none(self):
        spec = ScenarioSpec(
            name="x",
            kvs_hosts=(
                KvsHostSpec(
                    name="h0",
                    controller=ControllerSpec(
                        kind="none", params=dict(window_us=1.0)
                    ),
                ),
            ),
            kvs_workload=KvsWorkloadSpec(),
        )
        with pytest.raises(ConfigurationError, match="window_us"):
            spec.validate()

    def test_predictive_accepts_standby_card_override(self):
        spec = ScenarioSpec(
            name="x",
            kvs_hosts=(
                KvsHostSpec(
                    name="h0",
                    controller=ControllerSpec(
                        kind="predictive", params=dict(standby_card_w=5.0)
                    ),
                ),
            ),
            kvs_workload=KvsWorkloadSpec(),
        )
        spec.validate()

    def test_params_normalized_to_hashable_pairs(self):
        spec = ControllerSpec(kind="network", params=dict(b=2.0, a=1.0))
        assert spec.params == (("a", 1.0), ("b", 2.0))
        assert spec.as_dict() == {"a": 1.0, "b": 2.0}
        hash(spec)  # usable in sets / as dataclass default


class TestSamplingValidation:
    def test_nonpositive_scenario_interval_rejected(self):
        spec = ScenarioSpec(
            name="x",
            kvs_hosts=(KvsHostSpec(name="h0"),),
            kvs_workload=KvsWorkloadSpec(),
            sampling=SamplingSpec(power_interval_ms=0.0),
        )
        with pytest.raises(ConfigurationError, match="power_interval_ms"):
            spec.validate()

    def test_nonpositive_per_host_bucket_rejected(self):
        spec = ScenarioSpec(
            name="x",
            kvs_hosts=(
                KvsHostSpec(name="h0", sampling=SamplingSpec(bucket_ms=-1.0)),
            ),
            kvs_workload=KvsWorkloadSpec(),
        )
        with pytest.raises(ConfigurationError, match="bucket_ms"):
            spec.validate()

    def test_nonpositive_dns_host_interval_rejected(self):
        spec = ScenarioSpec(
            name="x",
            dns_hosts=(
                DnsHostSpec(
                    name="ns0", sampling=SamplingSpec(power_interval_ms=-5.0)
                ),
            ),
            dns_workload=DnsWorkloadSpec(),
        )
        with pytest.raises(ConfigurationError, match="power_interval_ms"):
            spec.validate()


class TestCrossAppValidation:
    def test_kvs_host_colliding_with_paxos_node_rejected(self):
        spec = ScenarioSpec(
            name="x",
            kvs_hosts=(KvsHostSpec(name="grp-acceptor0"),),
            kvs_workload=KvsWorkloadSpec(),
            paxos_groups=(PaxosSpec(name="grp"),),
        )
        with pytest.raises(ConfigurationError, match="grp-acceptor0"):
            spec.validate()

    def test_dns_host_colliding_with_kvs_client_rejected(self):
        spec = ScenarioSpec(
            name="x",
            kvs_hosts=(KvsHostSpec(name="h0", client_name="gen"),),
            kvs_workload=KvsWorkloadSpec(),
            dns_hosts=(DnsHostSpec(name="gen"),),
            dns_workload=DnsWorkloadSpec(),
        )
        with pytest.raises(ConfigurationError, match="gen"):
            spec.validate()

    def test_node_colliding_with_logical_leader_address_rejected(self):
        spec = ScenarioSpec(
            name="x",
            kvs_hosts=(KvsHostSpec(name="grp-leader"),),
            kvs_workload=KvsWorkloadSpec(),
            paxos_groups=(PaxosSpec(name="grp"),),
        )
        with pytest.raises(ConfigurationError, match="grp-leader"):
            spec.validate()

    def test_duplicate_paxos_group_names_rejected(self):
        spec = ScenarioSpec(
            name="x",
            paxos_groups=(PaxosSpec(name="g"), PaxosSpec(name="g")),
        )
        with pytest.raises(ConfigurationError, match="duplicate"):
            spec.validate()

    def test_switch_name_collision_rejected(self):
        spec = ScenarioSpec(
            name="x",
            kvs_hosts=(KvsHostSpec(name="tor"),),
            kvs_workload=KvsWorkloadSpec(),
        )
        with pytest.raises(ConfigurationError, match="tor"):
            spec.validate()


class TestWorkloadValidation:
    def test_dns_hosts_without_workload_rejected(self):
        spec = ScenarioSpec(name="x", dns_hosts=(DnsHostSpec(name="ns0"),))
        with pytest.raises(ConfigurationError, match="no workload"):
            spec.validate()

    def test_dns_workload_without_hosts_rejected(self):
        spec = ScenarioSpec(name="x", dns_workload=DnsWorkloadSpec())
        with pytest.raises(ConfigurationError):
            spec.validate()

    def test_dns_zone_beyond_emu_capacity_rejected_at_validate(self):
        from repro.apps.dns.emu import EMU_ZONE_CAPACITY

        spec = ScenarioSpec(
            name="x",
            dns_hosts=(DnsHostSpec(name="ns0"),),
            dns_workload=DnsWorkloadSpec(n_names=EMU_ZONE_CAPACITY + 1),
        )
        with pytest.raises(ConfigurationError, match="capacity"):
            spec.validate()

    def test_dns_miss_fraction_out_of_range_rejected(self):
        spec = ScenarioSpec(
            name="x",
            dns_hosts=(DnsHostSpec(name="ns0"),),
            dns_workload=DnsWorkloadSpec(miss_fraction=1.0),
        )
        with pytest.raises(ConfigurationError, match="miss_fraction"):
            spec.validate()

    def test_phases_must_increase(self):
        spec = ScenarioSpec(
            name="x",
            kvs_hosts=(KvsHostSpec(name="h0"),),
            kvs_workload=KvsWorkloadSpec(phases=((1.0, 4.0), (0.5, 8.0))),
        )
        with pytest.raises(ConfigurationError, match="increasing"):
            spec.validate()

    def test_negative_phase_rate_rejected(self):
        spec = ScenarioSpec(
            name="x",
            kvs_hosts=(KvsHostSpec(name="h0"),),
            kvs_workload=KvsWorkloadSpec(phases=((1.0, -4.0),)),
        )
        with pytest.raises(ConfigurationError, match="rate"):
            spec.validate()

    def test_paxos_group_without_clients_rejected(self):
        spec = ScenarioSpec(
            name="x", paxos_groups=(PaxosSpec(name="g", n_clients=0),)
        )
        with pytest.raises(ConfigurationError, match="client"):
            spec.validate()
