"""Dual-threshold hysteresis (§9.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HysteresisSwitch, Thresholds
from repro.errors import ConfigurationError


def test_thresholds_validated():
    with pytest.raises(ConfigurationError):
        Thresholds(up=10.0, down=10.0)
    with pytest.raises(ConfigurationError):
        Thresholds(up=5.0, down=10.0)


def test_basic_transitions():
    switch = HysteresisSwitch(Thresholds(up=100.0, down=50.0))
    assert not switch.update(60.0)     # in the band, stays low
    assert switch.update(100.0)        # crosses up
    assert switch.state
    assert not switch.update(60.0)     # in the band, stays high
    assert switch.update(50.0)         # crosses down
    assert not switch.state


def test_band_prevents_flapping():
    """A signal oscillating inside the band causes zero transitions."""
    switch = HysteresisSwitch(Thresholds(up=100.0, down=50.0))
    switch.update(120.0)  # go high
    for value in (70.0, 90.0, 60.0, 99.0, 51.0) * 10:
        switch.update(value)
    assert switch.transitions == 1


def test_transition_counters():
    switch = HysteresisSwitch(Thresholds(up=10.0, down=5.0))
    for value in (20.0, 1.0, 20.0, 1.0):
        switch.update(value)
    assert switch.ups == 2
    assert switch.downs == 2


@given(
    signal=st.lists(st.floats(0.0, 200.0), min_size=1, max_size=200),
    up=st.floats(60.0, 150.0),
    down=st.floats(10.0, 59.0),
)
@settings(max_examples=100, deadline=None)
def test_transitions_bounded_by_band_crossings(signal, up, down):
    """Transitions can never exceed the number of times the signal actually
    crosses the full band width — the anti-flapping guarantee."""
    switch = HysteresisSwitch(Thresholds(up=up, down=down))
    for value in signal:
        switch.update(value)
    # count band crossings of the raw signal
    crossings = 0
    state = False
    for value in signal:
        if not state and value >= up:
            state = True
            crossings += 1
        elif state and value <= down:
            state = False
            crossings += 1
    assert switch.transitions == crossings
