"""Steady-state curves: paper anchors, crossovers, and shapes."""

import pytest

from repro import calibration as cal
from repro.errors import CapacityError, ConfigurationError
from repro.host.nic import NIC_INTEL_X520, NIC_MELLANOX_CX311A
from repro.steady import (
    SoftwareCurveModel,
    dns_models,
    find_crossover,
    kvs_models,
    paxos_models,
)
from repro.steady.ondemand import make_ondemand_model, ondemand_models
from repro.steady.paxos import PaxosRole
from repro.units import kpps, mpps


class TestKvsCurves:
    def test_memcached_idle_39w(self):
        assert kvs_models()["memcached"].power_at(0.0) == pytest.approx(39.0)

    def test_memcached_peak_115w_at_1mpps(self):
        model = kvs_models()["memcached"]
        assert model.power_at(mpps(1.0)) == pytest.approx(115.0)
        assert model.capacity_pps == mpps(1.0)

    def test_lake_59w_idle_flat_to_line_rate(self):
        """§4.2: LaKe idles at 59W and stays nearly flat to 13Mpps."""
        lake = kvs_models()["lake"]
        assert lake.power_at(0.0) == pytest.approx(59.0)
        assert lake.power_at(mpps(13.0)) - lake.power_at(0.0) <= 1.5

    def test_crossover_near_80kpps_mellanox(self):
        models = kvs_models()
        crossover = find_crossover(models["memcached"], models["lake"])
        assert crossover == pytest.approx(kpps(80), rel=0.15)

    def test_crossover_over_300kpps_intel(self):
        """§4.2: with the Intel NIC the crossing moved to over 300Kpps."""
        models = kvs_models(nic=NIC_INTEL_X520)
        crossover = find_crossover(models["memcached"], models["lake"])
        assert crossover == pytest.approx(kpps(300), rel=0.1)

    def test_standalone_lake_cheaper_than_in_server(self):
        models = kvs_models()
        assert models["lake-standalone"].power_at(0.0) < models["lake"].power_at(0.0)

    def test_miss_ratio_adds_host_power(self):
        """§9.2: misses in hardware consume server power."""
        all_hit = kvs_models(miss_ratio=0.0)["lake"]
        half_miss = kvs_models(miss_ratio=0.5)["lake"]
        assert half_miss.power_at(kpps(500)) > all_hit.power_at(kpps(500))
        assert half_miss.power_at(0.0) == pytest.approx(all_hit.power_at(0.0))

    def test_lake_latency_flat(self):
        lake = kvs_models()["lake"]
        assert lake.latency_at(kpps(10)) == lake.latency_at(mpps(10))


class TestPaxosCurves:
    def test_libpaxos_capacity_178k(self):
        model = paxos_models(PaxosRole.ACCEPTOR)["libpaxos"]
        assert model.capacity_pps == 178_000.0

    def test_crossover_near_150kpps(self):
        models = paxos_models(PaxosRole.ACCEPTOR)
        crossover = find_crossover(models["libpaxos"], models["p4xos"])
        assert crossover == pytest.approx(kpps(150), rel=0.1)

    def test_dpdk_high_and_flat(self):
        """§4.3: DPDK power is high even idle and almost constant."""
        dpdk = paxos_models(PaxosRole.ACCEPTOR)["dpdk"]
        libpaxos = paxos_models(PaxosRole.ACCEPTOR)["libpaxos"]
        assert dpdk.power_at(0.0) > libpaxos.power_at(0.0) + 20.0
        span = dpdk.power_at(dpdk.capacity_pps) - dpdk.power_at(0.0)
        assert span < 8.0

    def test_p4xos_standalone_anchors(self):
        model = paxos_models(PaxosRole.ACCEPTOR)["p4xos-standalone"]
        assert model.power_at(0.0) == pytest.approx(18.2)
        assert model.power_at(model.capacity_pps) <= 18.2 + 1.2 + 1e-9

    def test_p4xos_capacity_10m(self):
        assert paxos_models()["p4xos"].capacity_pps == mpps(10.0)

    def test_ops_per_watt_orders(self):
        """§6: software 10K's, FPGA 100K's msgs/W."""
        models = paxos_models(PaxosRole.ACCEPTOR)
        sw = models["libpaxos"]
        sw_ops = sw.capacity_pps / sw.dynamic_power_w(sw.capacity_pps)
        assert 1e4 <= sw_ops < 1e5
        fpga = models["p4xos-standalone"]
        fpga_ops = fpga.capacity_pps / fpga.power_at(fpga.capacity_pps)
        assert 1e5 <= fpga_ops < 1e6


class TestDnsCurves:
    def test_nsd_capacity_and_peak(self):
        """§4.4: 956K req/s at ~2x Emu's power."""
        nsd = dns_models()["nsd"]
        emu = dns_models()["emu"]
        assert nsd.capacity_pps == 956_000.0
        ratio = nsd.power_at(nsd.capacity_pps) / emu.power_at(nsd.capacity_pps)
        assert ratio == pytest.approx(2.0, rel=0.05)

    def test_emu_about_48w_flat(self):
        emu = dns_models()["emu"]
        assert emu.power_at(0.0) == pytest.approx(48.0)
        assert emu.power_at(emu.capacity_pps) < 48.6

    def test_crossover_below_200kpps(self):
        models = dns_models()
        crossover = find_crossover(models["nsd"], models["emu"])
        assert crossover < kpps(200)
        assert crossover > kpps(100)


class TestOnDemand:
    @pytest.mark.parametrize("app", ["kvs", "paxos", "dns"])
    def test_tracks_software_low_hardware_high(self, app):
        model = make_ondemand_model(app)
        low = kpps(10)
        high = model.shift_threshold_pps * 2
        assert not model.in_hardware(low)
        assert model.in_hardware(high)
        assert model.power_at(high) == pytest.approx(model.hardware.power_at(high))

    def test_kvs_saves_about_half_at_high_load(self):
        """§1: on demand 'saves up to 50% of the power compared with
        software-based solutions'."""
        model = make_ondemand_model("kvs")
        saving = model.saving_vs_software_w(kpps(1000))
        fraction = saving / model.software.power_at(kpps(1000))
        assert fraction == pytest.approx(0.49, abs=0.05)

    def test_standby_card_cost_applied_below_threshold(self):
        model = make_ondemand_model("kvs")
        sw_only = model.software.power_at(kpps(10))
        ondemand = model.power_at(kpps(10))
        # on-demand pays the gated card instead of the NIC at low load
        assert ondemand > sw_only
        assert ondemand - sw_only < 20.0

    def test_latency_follows_placement(self):
        model = make_ondemand_model("dns")
        assert model.latency_at(kpps(10)) > model.latency_at(kpps(500))

    def test_all_three_apps_build(self):
        models = ondemand_models()
        assert set(models) == {"kvs", "paxos", "dns"}

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigurationError):
            make_ondemand_model("webserver")


class TestModelBasics:
    def test_achieved_saturates(self):
        model = SoftwareCurveModel("m", capacity_pps=100.0, idle_w=1.0, peak_w=2.0)
        assert model.achieved_pps(50.0) == 50.0
        assert model.achieved_pps(500.0) == 100.0

    def test_negative_rate_rejected(self):
        model = SoftwareCurveModel("m", capacity_pps=100.0, idle_w=1.0, peak_w=2.0)
        with pytest.raises(ConfigurationError):
            model.power_at(-1.0)

    def test_latency_inflates_toward_saturation(self):
        model = SoftwareCurveModel(
            "m", capacity_pps=1000.0, idle_w=1.0, peak_w=2.0, latency_us=10.0
        )
        assert model.latency_at(10.0) < model.latency_at(990.0)

    def test_crossover_none_when_hw_never_wins(self):
        sw = SoftwareCurveModel("sw", capacity_pps=100.0, idle_w=10.0, peak_w=20.0)
        hw = SoftwareCurveModel("hw", capacity_pps=100.0, idle_w=50.0, peak_w=60.0)
        assert find_crossover(sw, hw) is None

    def test_crossover_zero_when_hw_always_wins(self):
        sw = SoftwareCurveModel("sw", capacity_pps=100.0, idle_w=50.0, peak_w=60.0)
        hw = SoftwareCurveModel("hw", capacity_pps=100.0, idle_w=10.0, peak_w=20.0)
        assert find_crossover(sw, hw) == 0.0
