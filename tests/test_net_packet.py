"""Packet model."""

from repro.net import Packet, TrafficClass
from repro.net.packet import (
    DEFAULT_PACKET_SIZES,
    make_packet,
    pool_size,
    release_packet,
)


def test_packet_ids_unique():
    a = make_packet("a", "b", TrafficClass.NORMAL)
    b = make_packet("a", "b", TrafficClass.NORMAL)
    assert a.packet_id != b.packet_id


def test_copy_gets_fresh_identity():
    p = make_packet("a", "b", TrafficClass.PAXOS, payload={"k": 1})
    c = p.copy()
    assert c.packet_id != p.packet_id
    assert c.payload is p.payload
    assert c.dst == p.dst


def test_default_sizes_applied_per_class():
    for tc, size in DEFAULT_PACKET_SIZES.items():
        assert make_packet("a", "b", tc).size_bytes == size


def test_explicit_size_overrides_default():
    p = make_packet("a", "b", TrafficClass.DNS, size_bytes=999)
    assert p.size_bytes == 999


def test_age():
    p = make_packet("a", "b", TrafficClass.NORMAL, now=100.0)
    assert p.age_us(150.0) == 50.0


def test_memcached_packets_small_enough_for_line_rate():
    # LaKe's 13Mpps line-rate claim requires ~70B queries (§4.2)
    assert DEFAULT_PACKET_SIZES[TrafficClass.MEMCACHED] <= 80


# -- the free-list ----------------------------------------------------------


def test_released_shell_is_reused_with_fresh_identity():
    p = make_packet("a", "b", TrafficClass.NORMAL, payload={"k": 1})
    old_id = p.packet_id
    release_packet(p)
    assert p.payload is None  # the pool must not keep payloads alive
    q = make_packet("c", "d", TrafficClass.DNS)
    assert q is p  # LIFO free-list: the shell was recycled...
    assert q.packet_id != old_id  # ...but identity stays unique
    assert (q.src, q.dst, q.traffic_class) == ("c", "d", TrafficClass.DNS)
    assert q.hops == 0 and q.payload is None


def test_double_release_is_a_noop():
    p = make_packet("a", "b", TrafficClass.NORMAL)
    release_packet(p)
    occupancy = pool_size()
    release_packet(p)  # guarded: must not enter the pool twice
    assert pool_size() == occupancy
    # drain what we added so other tests see a clean pool
    assert make_packet("x", "y", TrafficClass.NORMAL) is p


def test_copy_draws_from_the_pool():
    donor = make_packet("a", "b", TrafficClass.NORMAL)
    release_packet(donor)
    original = make_packet("c", "d", TrafficClass.PAXOS, payload=object())
    assert original is donor  # LIFO: the last-released shell comes back first
    dup = original.copy()
    assert dup is not original
    assert dup.payload is original.payload
    assert dup.packet_id != original.packet_id


def test_direct_constructor_still_works():
    p = Packet("a", "b", TrafficClass.NORMAL)
    assert p.size_bytes == 128
    assert p.packet_id > 0
