"""Packet model."""

from repro.net import Packet, TrafficClass
from repro.net.packet import DEFAULT_PACKET_SIZES, make_packet


def test_packet_ids_unique():
    a = make_packet("a", "b", TrafficClass.NORMAL)
    b = make_packet("a", "b", TrafficClass.NORMAL)
    assert a.packet_id != b.packet_id


def test_copy_gets_fresh_identity():
    p = make_packet("a", "b", TrafficClass.PAXOS, payload={"k": 1})
    c = p.copy()
    assert c.packet_id != p.packet_id
    assert c.payload is p.payload
    assert c.dst == p.dst


def test_default_sizes_applied_per_class():
    for tc, size in DEFAULT_PACKET_SIZES.items():
        assert make_packet("a", "b", tc).size_bytes == size


def test_explicit_size_overrides_default():
    p = make_packet("a", "b", TrafficClass.DNS, size_bytes=999)
    assert p.size_bytes == 999


def test_age():
    p = make_packet("a", "b", TrafficClass.NORMAL, now=100.0)
    assert p.age_us(150.0) == 50.0


def test_memcached_packets_small_enough_for_line_rate():
    # LaKe's 13Mpps line-rate claim requires ~70B queries (§4.2)
    assert DEFAULT_PACKET_SIZES[TrafficClass.MEMCACHED] <= 80
