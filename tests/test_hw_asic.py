"""Tofino ASIC model (§6)."""

import pytest

from repro import calibration as cal
from repro.errors import ConfigurationError
from repro.hw.asic import TofinoProgram, TofinoSwitch, snake_connectivity


def test_idle_power_identical_across_programs():
    """§6: idle power is the same with and without P4xos."""
    l2 = TofinoSwitch(TofinoProgram.L2_FORWARDING)
    p4 = TofinoSwitch(TofinoProgram.L2_PLUS_P4XOS)
    assert l2.power_normalized(0.0) == p4.power_normalized(0.0)


def test_p4xos_overhead_at_most_2_percent():
    """§6: running P4xos adds no more than 2%."""
    l2 = TofinoSwitch(TofinoProgram.L2_FORWARDING)
    p4 = TofinoSwitch(TofinoProgram.L2_PLUS_P4XOS)
    for u in (0.1, 0.5, 1.0):
        overhead = p4.power_normalized(u) / l2.power_normalized(u) - 1.0
        assert overhead <= 0.02 + 1e-9


def test_diag_overhead_4_8_percent_at_full_load():
    """§6: diag.p4 takes 4.8% more than L2 forwarding, over twice P4xos."""
    l2 = TofinoSwitch(TofinoProgram.L2_FORWARDING)
    diag = TofinoSwitch(TofinoProgram.DIAG)
    p4 = TofinoSwitch(TofinoProgram.L2_PLUS_P4XOS)
    diag_overhead = diag.power_normalized(1.0) / l2.power_normalized(1.0) - 1.0
    p4_overhead = p4.power_normalized(1.0) / l2.power_normalized(1.0) - 1.0
    assert diag_overhead == pytest.approx(0.048, abs=0.002)
    assert diag_overhead > 2 * p4_overhead


def test_min_max_span_under_20_percent():
    """§6: min<->max consumption differs by less than 20%."""
    p4 = TofinoSwitch(TofinoProgram.L2_PLUS_P4XOS)
    span = p4.power_normalized(1.0) / p4.power_normalized(0.0) - 1.0
    assert span < 0.20


def test_power_monotone_in_utilization():
    p4 = TofinoSwitch(TofinoProgram.L2_PLUS_P4XOS)
    values = [p4.power_normalized(u / 10) for u in range(11)]
    assert values == sorted(values)


def test_capacity_2_5b_messages():
    """§3.2: over 2.5B consensus messages/second."""
    p4 = TofinoSwitch(TofinoProgram.L2_PLUS_P4XOS)
    assert p4.p4xos_capacity_pps >= 2.5e9


def test_ops_per_watt_order_of_magnitude():
    """§6: the ASIC easily achieves 10M's of messages per watt."""
    p4 = TofinoSwitch(TofinoProgram.L2_PLUS_P4XOS)
    assert p4.ops_per_watt(1.0) >= 1e7


def test_ops_per_watt_requires_p4xos_program():
    l2 = TofinoSwitch(TofinoProgram.L2_FORWARDING)
    with pytest.raises(ConfigurationError):
        l2.ops_per_watt()


def test_bandwidth_config():
    """§6: 1.28Tbps as 32x40G."""
    switch = TofinoSwitch()
    assert switch.bandwidth_tbps == pytest.approx(1.28)


def test_snake_exercises_all_ports():
    pairs = snake_connectivity(32)
    assert len(pairs) == 32
    outputs = {a for a, _ in pairs}
    inputs = {b for _, b in pairs}
    assert outputs == inputs == set(range(32))


def test_reprogram_does_not_change_idle():
    switch = TofinoSwitch(TofinoProgram.L2_FORWARDING)
    idle_before = switch.power_w(0.0)
    switch.load_program(TofinoProgram.L2_PLUS_P4XOS)
    assert switch.power_w(0.0) == idle_before


def test_utilization_validated():
    switch = TofinoSwitch()
    with pytest.raises(ConfigurationError):
        switch.set_utilization(-0.1)
    with pytest.raises(ConfigurationError):
        switch.power_normalized(1.5)
