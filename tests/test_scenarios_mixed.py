"""Heterogeneous racks: Paxos multi-group, anycast DNS, mixed apps, and
per-host sampling overrides."""

import dataclasses

import pytest

from repro.net.packet import TrafficClass
from repro.scenarios import (
    ControllerSpec,
    DnsHostSpec,
    DnsWorkloadSpec,
    PaxosSpec,
    SamplingSpec,
    ScenarioBuilder,
    ScenarioSpec,
    build_spec,
    run_scenario,
)
from repro.units import msec, sec


# ---------------------------------------------------------------------------
# Paxos multi-group.
# ---------------------------------------------------------------------------


def _two_group_spec(duration_s=1.5):
    return ScenarioSpec(
        name="two-groups",
        duration_s=duration_s,
        paxos_groups=(
            PaxosSpec(name="g0", shifts=((0.4, True),)),
            PaxosSpec(name="g1", shifts=((0.9, True),)),
        ),
        sampling=SamplingSpec(power_interval_ms=50.0, bucket_ms=50.0),
    )


class TestPaxosMultiGroup:
    def test_groups_decide_and_shift_independently(self):
        result = ScenarioBuilder(_two_group_spec()).run()
        assert len(result.paxos_groups) == 2
        for group in result.paxos_groups:
            assert group.decided > 0
            assert len(group.shift_times_us) == 1
        firsts = result.paxos_distinct_first_shift_times()
        assert len(firsts) == 2  # distinct moments: independent schedules
        assert firsts == [sec(0.4), sec(0.9)]

    def test_groups_have_distinct_logical_leaders(self):
        run = ScenarioBuilder(_two_group_spec()).build()
        addresses = {g.deployment.logical_leader for g in run.paxos_groups}
        assert addresses == {"g0-leader", "g1-leader"}
        # each group's switch rule routes its own address
        for group in run.paxos_groups:
            rule = run.switch.rule_for(
                TrafficClass.PAXOS, group.deployment.logical_leader
            )
            assert rule is not None
            assert rule.next_hop == f"{group.spec.name}-sw-leader"

    def test_one_group_shifting_leaves_the_other_in_software(self):
        spec = dataclasses.replace(
            _two_group_spec(),
            paxos_groups=(
                PaxosSpec(name="g0", shifts=((0.4, True),)),
                PaxosSpec(name="g1"),  # no schedule: stays in software
            ),
        )
        run = ScenarioBuilder(spec).build()
        result = run.execute()
        assert result.paxos_group("g0").shift_times_us == [sec(0.4)]
        assert result.paxos_group("g1").shift_times_us == []
        leaders = {
            g.spec.name: g.deployment.active_leader_node for g in run.paxos_groups
        }
        assert leaders == {"g0": "g0-hw-leader", "g1": "g1-sw-leader"}


# ---------------------------------------------------------------------------
# Anycast DNS.
# ---------------------------------------------------------------------------


def _dns_rack_spec(n_hosts=2, duration_s=1.0, rate_kqps=6.0, n_names=300):
    return ScenarioSpec(
        name="dns-rack",
        duration_s=duration_s,
        dns_hosts=tuple(
            DnsHostSpec(name=f"ns{i}", controller=ControllerSpec(kind="none"))
            for i in range(n_hosts)
        ),
        dns_workload=DnsWorkloadSpec(n_names=n_names, rate_kpps=rate_kqps),
        sampling=SamplingSpec(power_interval_ms=100.0, bucket_ms=250.0),
    )


class TestAnycastDns:
    def test_queries_steered_by_qname_hash_across_hosts(self):
        result = ScenarioBuilder(_dns_rack_spec()).run()
        assert len(result.dns_hosts) == 2
        routed = result.dns_routed_per_host
        assert set(routed) == {"ns0", "ns1"}
        assert all(count > 0 for count in routed.values())
        for host in result.dns_hosts:
            assert host.responses > 0

    def test_every_query_lands_on_its_qname_shard(self):
        run = ScenarioBuilder(_dns_rack_spec()).build()
        run.execute()
        # the router's per-host counts must equal what each host received:
        # the per-shard client streams only generate names the qname hash
        # routes to their host, so nothing is cross-routed
        for index, host in enumerate(run.dns_hosts):
            assert host.nsd.rx + host.emu.rx > 0
        assert run.dns_router.keyless == 0

    def test_replicas_answer_authoritatively_for_the_whole_zone(self):
        run = ScenarioBuilder(_dns_rack_spec()).build()
        for host in run.dns_hosts:
            assert len(host.nsd.zone) == 300
            assert len(host.emu.zone) == 300
        result = run.execute()
        for host in result.dns_hosts:
            assert host.responses > 0
        # every response resolved (no NXDOMAIN: the zone covers all names)
        for built in run.dns_hosts:
            assert built.client.nxdomain == 0
            assert built.client.resolved == built.client.responses

    def test_single_dns_host_addresses_host_directly(self):
        result = ScenarioBuilder(_dns_rack_spec(n_hosts=1)).run()
        assert result.dns_routed_per_host == {}
        assert result.dns_hosts[0].responses > 0


# ---------------------------------------------------------------------------
# The registry's mixed rack, end to end.
# ---------------------------------------------------------------------------


class TestRackMixed:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(
            "rack-mixed",
            duration_s=3.0,
            kvs_rate_kpps=10.0,
            dns_rate_kqps=6.0,
            dns_storm_kqps=14.0,
            keyspace=6_000,
            n_names=400,
        )

    def test_all_three_apps_serve(self, result):
        assert len(result.hosts) == 2
        assert len(result.dns_hosts) == 2
        assert len(result.paxos_groups) == 2
        assert all(h.responses > 0 for h in result.all_hosts)
        assert all(g.decided > 0 for g in result.paxos_groups)

    def test_paxos_groups_shift_independently(self, result):
        firsts = result.paxos_distinct_first_shift_times()
        assert len(firsts) >= 2

    def test_dns_steered_across_replicas(self, result):
        assert len([c for c in result.dns_routed_per_host.values() if c > 0]) >= 2

    def test_mixed_controller_kinds_materialized(self, result):
        kinds = {h.name: h.controller_kind for h in result.all_hosts}
        assert kinds["kvs0"] == "host"
        assert kinds["kvs1"] == "network"
        assert kinds["dns0"] == kinds["dns1"] == "network"

    def test_aggregate_series_covers_kvs_and_dns(self, result):
        agg = result.aggregate_mean_throughput_pps(0.0, result.duration_us)
        kvs = sum(h.offered_pps for h in result.hosts)
        dns = sum(h.offered_pps for h in result.dns_hosts)
        assert agg > kvs  # more than KVS alone: DNS rides along
        assert agg <= (kvs + dns) * 1.8  # sanity (storm raises DNS rate)

    def test_short_horizon_drops_the_unfittable_colocated_job(self):
        # duration <= job start: the spec must still validate and run
        spec = build_spec("rack-mixed", duration_s=0.6)
        assert spec.kvs_hosts[0].colocated == ()
        spec.validate()

    def test_render_mentions_every_app(self, result):
        text = result.render()
        assert "KVS host(s)" in text
        assert "anycast DNS" in text
        assert "paxos[px0]" in text and "paxos[px1]" in text
        assert "qname-hash routing" in text


# ---------------------------------------------------------------------------
# Per-host sampling overrides.
# ---------------------------------------------------------------------------


class TestSamplingOverrides:
    def test_per_host_bucket_overrides_host_series_only(self):
        spec = build_spec(
            "fig6-kvs-transition", duration_s=1.0, rate_kpps=4.0, keyspace=2_000
        )
        fine = dataclasses.replace(
            spec,
            kvs_hosts=(
                dataclasses.replace(
                    spec.kvs_hosts[0],
                    sampling=SamplingSpec(power_interval_ms=25.0, bucket_ms=125.0),
                ),
            ),
        )
        result = ScenarioBuilder(fine).run()
        host = result.hosts[0]
        # host series bucketed at the override (125ms -> ~8 buckets over 1s)
        host_buckets = [t for t, _ in host.throughput_series]
        assert host_buckets[1] - host_buckets[0] == pytest.approx(msec(125.0))
        # aggregates stay on the scenario bucket (250ms) so racks mixing
        # overrides still sum onto aligned buckets
        agg_buckets = [t for t, _ in result.aggregate_throughput_series]
        assert agg_buckets[1] - agg_buckets[0] == pytest.approx(msec(250.0))

    def test_default_falls_back_to_scenario_sampling(self):
        result = run_scenario(
            "fig6-kvs-transition", duration_s=1.0, rate_kpps=4.0, keyspace=2_000
        )
        host_buckets = [t for t, _ in result.hosts[0].throughput_series]
        assert host_buckets[1] - host_buckets[0] == pytest.approx(msec(250.0))
