"""FIFO queue semantics and statistics."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import FifoQueue, Simulator


def test_fifo_order():
    sim = Simulator()
    q = FifoQueue(sim)
    for i in range(5):
        assert q.push(i)
    assert [q.pop() for _ in range(5)] == [0, 1, 2, 3, 4]


def test_pop_empty_returns_none():
    q = FifoQueue(Simulator())
    assert q.pop() is None


def test_drop_tail_when_full():
    sim = Simulator()
    q = FifoQueue(sim, capacity=2)
    assert q.push("a")
    assert q.push("b")
    assert not q.push("c")
    assert q.stats.dropped == 1
    assert len(q) == 2


def test_unbounded_never_full():
    q = FifoQueue(Simulator())
    for i in range(10_000):
        assert q.push(i)
    assert not q.full


def test_capacity_must_be_positive():
    with pytest.raises(ConfigurationError):
        FifoQueue(Simulator(), capacity=0)


def test_peek_does_not_remove():
    q = FifoQueue(Simulator())
    q.push("x")
    assert q.peek() == "x"
    assert len(q) == 1


def test_clear_counts_drops():
    q = FifoQueue(Simulator())
    for i in range(7):
        q.push(i)
    assert q.clear() == 7
    assert q.stats.dropped == 7
    assert len(q) == 0


def test_peak_depth_tracked():
    q = FifoQueue(Simulator())
    for i in range(4):
        q.push(i)
    q.pop()
    q.push(99)
    assert q.stats.peak_depth == 4


def test_time_weighted_mean_depth():
    sim = Simulator()
    q = FifoQueue(sim, name="depth-test")
    q.push("a")  # depth 0 before, becomes 1 at t=0
    sim.run_until(10.0)
    q.push("b")  # depth 1 held for 10us
    sim.run_until(20.0)
    q.pop()  # depth 2 held for 10us
    # integral = 0*0 + 1*10 + 2*10 = 30 over 20us -> mean 1.5
    assert q.stats.mean_depth(20.0) == pytest.approx(1.5)


def test_mean_depth_zero_elapsed():
    q = FifoQueue(Simulator())
    assert q.stats.mean_depth(0.0) == 0.0
