"""Link delays and fault injection."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.net import Link, LinkFaults, TrafficClass
from repro.net.node import SinkNode
from repro.net.packet import make_packet
from repro.sim import Simulator
from repro.units import gbit_per_s


def _setup(latency_us=1.0, bandwidth=gbit_per_s(10.0), faults=None, rng=None):
    sim = Simulator()
    sink = SinkNode(sim)
    link = Link(sim, sink, latency_us=latency_us, bandwidth_bps=bandwidth,
                faults=faults, rng=rng)
    return sim, sink, link


def test_delivery_after_propagation_and_serialization():
    sim, sink, link = _setup(latency_us=2.0)
    p = make_packet("a", "sink", TrafficClass.NORMAL, size_bytes=1250, now=sim.now)
    link.send(p)
    # serialization: 1250B * 8 / 10G = 1us; total 3us
    sim.run_until(2.9)
    assert sink.received == []
    sim.run_until(3.1)
    assert len(sink.received) == 1


def test_fifo_delivery_without_jitter():
    sim, sink, link = _setup()
    for i in range(10):
        link.send(make_packet("a", "sink", TrafficClass.NORMAL, payload=i, now=sim.now))
    sim.run()
    assert [p.payload for p in sink.received] == list(range(10))


def test_loss_fault():
    rng = random.Random(1)
    sim, sink, link = _setup(faults=LinkFaults(loss=1.0), rng=rng)
    link.send(make_packet("a", "sink", TrafficClass.NORMAL, now=sim.now))
    sim.run()
    assert sink.received == []
    assert link.lost == 1


def test_duplicate_fault():
    rng = random.Random(1)
    sim, sink, link = _setup(faults=LinkFaults(duplicate=1.0), rng=rng)
    link.send(make_packet("a", "sink", TrafficClass.NORMAL, now=sim.now))
    sim.run()
    assert len(sink.received) == 2
    assert sink.received[0].packet_id != sink.received[1].packet_id


def test_partial_loss_statistics():
    rng = random.Random(7)
    sim, sink, link = _setup(faults=LinkFaults(loss=0.5), rng=rng)
    for _ in range(1000):
        link.send(make_packet("a", "sink", TrafficClass.NORMAL, now=sim.now))
    sim.run()
    assert 350 < len(sink.received) < 650
    assert link.lost + link.delivered == 1000


def test_faults_require_rng():
    with pytest.raises(ConfigurationError):
        _setup(faults=LinkFaults(loss=0.1), rng=None)


def test_invalid_fault_probability():
    with pytest.raises(ConfigurationError):
        _setup(faults=LinkFaults(loss=1.5), rng=random.Random(0))


def test_negative_latency_rejected():
    with pytest.raises(ConfigurationError):
        _setup(latency_us=-1.0)


def test_hop_count_increments():
    sim, sink, link = _setup()
    p = make_packet("a", "sink", TrafficClass.NORMAL, now=sim.now)
    link.send(p)
    sim.run()
    assert sink.received[0].hops == 1
