"""The offload-device abstraction layer: profiles, the registry, and the
per-device analytic crossovers."""

import pytest

from repro import calibration as cal
from repro.errors import ConfigurationError
from repro.hw.device import (
    DEFAULT_DEVICE_KIND,
    SmartNicCard,
    closest_device,
    device_names,
    device_profiles,
    get_device,
    register_device,
)
from repro.hw.fpga import NetFpgaSume
from repro.hw.smartnic import SMARTNIC_ARCHETYPES
from repro.steady.ondemand import device_crossover_pps, make_ondemand_model


# ---------------------------------------------------------------------------
# The registry.
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_catalogue(self):
        assert DEFAULT_DEVICE_KIND in device_names()
        assert {"accelnet-fpga", "asic-nic", "soc-nic", "none"} <= set(
            device_names()
        )

    def test_exact_case_insensitive_kinds_resolve(self):
        """Mirrors the scenario registry: exact spellings in any case hit."""
        assert get_device("NETFPGA-SUME").kind == DEFAULT_DEVICE_KIND
        assert get_device("Asic-Nic").kind == "asic-nic"

    def test_unknown_kind_suggests_closest(self):
        with pytest.raises(ConfigurationError, match="did you mean 'netfpga-sume'"):
            get_device("netfga-sume")
        with pytest.raises(ConfigurationError, match="did you mean 'asic-nic'"):
            get_device("ASIC-NICC")

    def test_unknown_kind_lists_catalogue(self):
        with pytest.raises(ConfigurationError, match="known: "):
            get_device("zzzzzz")

    def test_closest_device(self):
        assert closest_device("ACCELNET-FPGA") == "accelnet-fpga"
        assert closest_device("acelnet-fpga") == "accelnet-fpga"
        assert closest_device("zzzzzz") is None

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            register_device(get_device(DEFAULT_DEVICE_KIND))


# ---------------------------------------------------------------------------
# Profiles.
# ---------------------------------------------------------------------------


class TestNetFpgaProfile:
    def test_cards_are_the_paper_designs(self):
        device = get_device(DEFAULT_DEVICE_KIND)
        assert isinstance(device.make_card("kvs"), NetFpgaSume)
        assert device.make_card("kvs").design == "lake"
        assert device.make_card("dns").design == "emu-dns"
        assert device.make_card("paxos").design == "p4xos"

    def test_thresholds_are_the_calibrated_crossovers(self):
        device = get_device(DEFAULT_DEVICE_KIND)
        assert device.netctl_thresholds_pps("kvs") == (
            cal.NETCTL_KVS_UP_PPS,
            cal.NETCTL_KVS_DOWN_PPS,
        )
        assert device.netctl_thresholds_pps("dns") == (
            cal.NETCTL_DNS_UP_PPS,
            cal.NETCTL_DNS_DOWN_PPS,
        )

    def test_capacity_defers_to_the_app_models(self):
        device = get_device(DEFAULT_DEVICE_KIND)
        assert device.capacity_pps("kvs") is None

    def test_standby_below_active(self):
        device = get_device(DEFAULT_DEVICE_KIND)
        for app in ("kvs", "dns", "paxos"):
            assert device.standby_power_w(app) < device.active_idle_w(app)

    def test_kvs_accepts_pe_count(self):
        device = get_device(DEFAULT_DEVICE_KIND)
        assert "pe_count" in device.accepted_params("kvs")
        assert device.accepted_params("dns") == frozenset()
        card = device.make_card("kvs", pe_count=2)
        assert sum(1 for m in card.modules if m.startswith("pe")) == 2


class TestSmartNicProfiles:
    @pytest.mark.parametrize("kind", ["accelnet-fpga", "asic-nic", "soc-nic"])
    def test_standby_below_active_idle(self, kind):
        device = get_device(kind)
        assert 0 < device.standby_power_w("kvs") < device.active_idle_w("kvs")

    def test_asic_cannot_host_paxos(self):
        with pytest.raises(ConfigurationError, match="cannot host paxos"):
            get_device("asic-nic").validate_app("paxos", "px0")

    def test_card_power_states(self):
        card = get_device("asic-nic").make_card("kvs")
        nic = SMARTNIC_ARCHETYPES["asic-smartnic"]
        assert card.power_w() == nic.idle_w
        card.set_utilization(1.0)
        assert card.power_w() == nic.peak_w
        card.clock_gate_all_logic()
        assert card.power_w() == pytest.approx(
            nic.idle_w * cal.SMARTNIC_ASIC_STANDBY_FRACTION
        )
        card.activate_all_logic()
        assert card.power_w() == nic.peak_w  # utilization survived standby

    def test_card_rejects_bad_inputs(self):
        card = get_device("soc-nic").make_card("dns")
        with pytest.raises(ConfigurationError):
            card.set_utilization(1.5)
        with pytest.raises(ConfigurationError):
            SmartNicCard(SMARTNIC_ARCHETYPES["soc-smartnic"], 0.0, "x")


class TestNoneProfile:
    def test_is_not_an_offload(self):
        device = get_device("none")
        assert not device.is_offload
        assert device.make_card("kvs") is None
        assert device.standby_power_w("kvs") == 0.0

    def test_cannot_host_paxos(self):
        """A consensus group always deploys a hardware leader candidate, so
        a NIC-only 'device' cannot back one."""
        with pytest.raises(ConfigurationError, match="cannot host paxos"):
            get_device("none").validate_app("paxos", "px0")

    def test_has_no_thresholds(self):
        with pytest.raises(ConfigurationError, match="no shift thresholds"):
            get_device("none").netctl_thresholds_pps("kvs")


# ---------------------------------------------------------------------------
# Per-device analytic crossovers (the tentpole's steady-state leg).
# ---------------------------------------------------------------------------


class TestDeviceCrossovers:
    def test_cheaper_cards_cross_earlier(self):
        """The §8 story per device: the ASIC NIC's fixed draw is repaid at
        a lower rate than the FPGA SmartNIC's, which beats the NetFPGA's."""
        asic = device_crossover_pps("kvs", "asic-nic")
        accelnet = device_crossover_pps("kvs", "accelnet-fpga")
        netfpga = device_crossover_pps("kvs", DEFAULT_DEVICE_KIND)
        assert asic < accelnet < netfpga

    def test_smartnic_thresholds_follow_their_crossover(self):
        device = get_device("asic-nic")
        up, down = device.netctl_thresholds_pps("kvs")
        assert up == pytest.approx(device_crossover_pps("kvs", "asic-nic"))
        assert 0 < down < up

    def test_ondemand_model_parameterizes_on_device(self):
        default = make_ondemand_model("kvs")
        asic = make_ondemand_model("kvs", device="asic-nic")
        assert default.shift_threshold_pps == cal.NETCTL_KVS_UP_PPS
        assert asic.shift_threshold_pps < default.shift_threshold_pps
        assert asic.standby_card_w < default.standby_card_w
        # beyond both thresholds the cheaper card draws less at the wall
        rate = 200_000.0
        assert asic.power_at(rate) < default.power_at(rate)

    def test_ondemand_model_rejects_nic_only(self):
        with pytest.raises(ConfigurationError, match="NIC-only"):
            make_ondemand_model("kvs", device="none")


# ---------------------------------------------------------------------------
# The doc table.
# ---------------------------------------------------------------------------


def test_device_profiles_table():
    rows = device_profiles()
    assert set(rows) == set(device_names())
    for kind, row in rows.items():
        assert {"idle_w", "active_w", "peak_pps", "warmup_us", "source", "apps"} <= set(row)
        if kind != "none":
            assert row["active_w"] > row["idle_w"] > 0
            assert row["peak_pps"] > 0
