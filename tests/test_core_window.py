"""Sliding-window estimators, including property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SlidingWindowMean, SlidingWindowRate
from repro.errors import ConfigurationError
from repro.units import sec


class TestRateWindow:
    def test_rate_over_window(self):
        window = SlidingWindowRate(sec(1.0))
        for ms in range(0, 1000, 10):
            window.observe(ms * 1000.0, 5)  # 5 events every 10ms = 500/s
        assert window.rate_pps(sec(1.0)) == pytest.approx(500.0, rel=0.05)

    def test_old_events_evicted(self):
        window = SlidingWindowRate(sec(1.0))
        window.observe(0.0, 1000)
        assert window.rate_pps(sec(0.5)) == pytest.approx(1000.0)
        assert window.rate_pps(sec(2.0)) == 0.0

    def test_burst_decays(self):
        window = SlidingWindowRate(sec(1.0))
        window.observe(0.0, 100)
        window.observe(sec(0.9), 100)
        assert window.rate_pps(sec(0.95)) == pytest.approx(200.0)
        assert window.rate_pps(sec(1.5)) == pytest.approx(100.0)

    def test_out_of_order_rejected(self):
        window = SlidingWindowRate(sec(1.0))
        window.observe(100.0)
        with pytest.raises(ConfigurationError):
            window.observe(50.0)

    def test_reset(self):
        window = SlidingWindowRate(sec(1.0))
        window.observe(0.0, 10)
        window.reset()
        assert window.rate_pps(1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowRate(0.0)
        window = SlidingWindowRate(1.0)
        with pytest.raises(ConfigurationError):
            window.observe(0.0, -1)

    @given(
        counts=st.lists(st.integers(0, 100), min_size=1, max_size=50),
        window_us=st.floats(10.0, 1e6),
    )
    @settings(max_examples=60, deadline=None)
    def test_rate_never_negative_and_bounded(self, counts, window_us):
        window = SlidingWindowRate(window_us)
        t = 0.0
        total = 0
        for count in counts:
            window.observe(t, count)
            total += count
            rate = window.rate_pps(t)
            assert rate >= 0.0
            # never more events in the window than ever observed
            assert window.count(t) <= total
            t += 1.0


class TestMeanWindow:
    def test_mean(self):
        window = SlidingWindowMean(sec(1.0))
        window.observe(0.0, 10.0)
        window.observe(sec(0.5), 20.0)
        assert window.mean(sec(0.6)) == pytest.approx(15.0)

    def test_eviction(self):
        window = SlidingWindowMean(sec(1.0))
        window.observe(0.0, 100.0)
        window.observe(sec(1.5), 10.0)
        assert window.mean(sec(1.5)) == pytest.approx(10.0)

    def test_empty_mean_zero(self):
        window = SlidingWindowMean(sec(1.0))
        assert window.mean(0.0) == 0.0

    def test_full_requires_span(self):
        """Controllers wait for a full window — the §9.1 'sustained' rule."""
        window = SlidingWindowMean(sec(3.0))
        window.observe(0.0, 1.0)
        assert not window.full(sec(1.0))
        window.observe(sec(2.8), 1.0)
        assert window.full(sec(2.8))

    def test_full_after_eviction(self):
        window = SlidingWindowMean(sec(1.0))
        window.observe(0.0, 1.0)
        assert not window.full(sec(5.0))  # the old sample was evicted
