"""Failure injection: Paxos on the DES over lossy/duplicating links.

The client retry timeout and the learner gap fill (§9.2) are exactly the
mechanisms that must mask loss; these tests drive them with the link-level
fault injection of :class:`repro.net.link.LinkFaults`.
"""

import pytest

from repro import calibration as cal
from repro.apps.paxos import PaxosClient
from repro.apps.paxos.deployment import (
    HardwarePaxosRole,
    LearnerGapScanner,
    PaxosDeployment,
    SoftwarePaxosRole,
    _Directory,
)
from repro.apps.paxos.roles import AcceptorState, LeaderState, LearnerState
from repro.host import make_i7_server
from repro.net.link import LinkFaults
from repro.net.switch import Switch
from repro.net.topology import Topology
from repro.sim import RngStreams, Simulator
from repro.units import msec, sec


def _build(loss=0.0, duplicate=0.0, n_acceptors=3, seed=5):
    sim = Simulator()
    streams = RngStreams(seed)
    topo = Topology(sim)
    switch = Switch(sim, "tor")
    topo.add(switch)
    faults = LinkFaults(loss=loss, duplicate=duplicate)
    acceptor_names = [f"acceptor{i}" for i in range(n_acceptors)]
    directory = _Directory(acceptor_names, ["learner0"])

    def connect(name):
        topo.connect_via_switch(
            "tor", name, faults=faults, rng=streams.get(f"link.{name}")
        )

    sw_server = make_i7_server(sim, name="sw-leader")
    leader = SoftwarePaxosRole(
        sim, sw_server, LeaderState("sw-leader", 0, n_acceptors), directory,
        capacity_pps=cal.LIBPAXOS_LEADER_CAPACITY_PPS,
        stack_latency_us=cal.LIBPAXOS_LEADER_STACK_US,
    )
    sw_server.set_packet_handler(leader.offer)
    topo.add(sw_server)
    connect("sw-leader")

    for name in acceptor_names:
        server = make_i7_server(sim, name=name)
        role = SoftwarePaxosRole(
            sim, server, AcceptorState(name), directory,
            capacity_pps=cal.LIBPAXOS_ACCEPTOR_CAPACITY_PPS,
            stack_latency_us=cal.LIBPAXOS_ACCEPTOR_STACK_US,
            app_name=f"acc.{name}",
        )
        server.set_packet_handler(role.offer)
        topo.add(server)
        connect(name)

    learner_server = make_i7_server(sim, name="learner0")
    learner = SoftwarePaxosRole(
        sim, learner_server, LearnerState("learner0", n_acceptors), directory,
        capacity_pps=cal.LIBPAXOS_ACCEPTOR_CAPACITY_PPS,
        stack_latency_us=cal.LIBPAXOS_LEARNER_STACK_US,
        app_name="learner",
    )
    learner_server.set_packet_handler(learner.offer)
    topo.add(learner_server)
    connect("learner0")
    scanner = LearnerGapScanner(sim, learner)

    deployment = PaxosDeployment(switch)
    deployment.register_leader("sw-leader", leader)
    deployment.activate_leader("sw-leader")

    client = PaxosClient(sim, "client0", rng=streams.get("client"))
    topo.add(client)
    connect("client0")
    return sim, client, learner, deployment


def test_progress_under_5pct_loss():
    sim, client, learner, deployment = _build(loss=0.05)
    sim.schedule_at(msec(20), lambda: client.set_rate(1000))
    sim.run_until(sec(2.0))
    # most commands decided; retries masked the loss
    assert client.decided > 1200
    assert client.retries > 0


def test_progress_under_duplication():
    sim, client, learner, deployment = _build(duplicate=0.2)
    sim.schedule_at(msec(20), lambda: client.set_rate(1000))
    sim.run_until(sec(1.0))
    assert client.decided > 700
    # duplicates never produce double-acknowledgement
    assert client.decided <= client.tx_packets


def test_delivery_remains_gap_free_under_loss():
    """The learner's in-order delivery + gap fill keeps the prefix dense."""
    sim, client, learner, deployment = _build(loss=0.08)
    sim.schedule_at(msec(20), lambda: client.set_rate(800))
    client_stop = sec(1.2)
    sim.schedule_at(client_stop, client.stop)
    sim.run_until(sec(2.5))
    state = learner.state
    assert state.delivered_upto > 500
    for instance in range(1, state.delivered_upto + 1):
        assert instance in state.decided


def test_loss_free_baseline_has_no_retries():
    sim, client, learner, deployment = _build(loss=0.0)
    sim.schedule_at(msec(20), lambda: client.set_rate(1000))
    sim.run_until(sec(1.0))
    assert client.retries == 0
