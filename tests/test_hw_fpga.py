"""NetFPGA platform model: Figure 4 semantics and §5.1 anchors."""

import pytest

from repro import calibration as cal
from repro.errors import ConfigurationError
from repro.hw.fpga import (
    FpgaModule,
    ModuleState,
    PlatformMode,
    make_emu_dns_fpga,
    make_lake_fpga,
    make_p4xos_fpga,
    make_reference_nic,
)


class TestCardAnchors:
    def test_lake_card_23w(self):
        assert make_lake_fpga().power_w() == pytest.approx(cal.LAKE_CARD_W)

    def test_p4xos_10w_below_lake(self):
        """§4.3: P4xos base power is 10W lower than LaKe."""
        lake = make_lake_fpga().power_w()
        p4xos = make_p4xos_fpga().power_w()
        assert lake - p4xos == pytest.approx(10.0)

    def test_p4xos_standalone_18_2w(self):
        """§4.3: standalone P4xos idles at 18.2W."""
        card = make_p4xos_fpga(mode=PlatformMode.STANDALONE)
        assert card.power_w() == pytest.approx(18.2)

    def test_p4xos_standalone_dynamic_at_most_1_2w(self):
        """§4.3: dynamic power at max load is no more than 1.2W."""
        card = make_p4xos_fpga(mode=PlatformMode.STANDALONE)
        idle = card.power_w()
        card.set_utilization(1.0)
        assert card.power_w() - idle <= 1.2 + 1e-9

    def test_lake_logic_overhead_2_2w(self):
        """§5.2: LaKe's logic adds 2.2W over the reference NIC."""
        lake_no_mem = make_lake_fpga(with_external_memories=False)
        ref = make_reference_nic()
        assert lake_no_mem.power_w() - ref.power_w() == pytest.approx(2.2)

    def test_memories_cost_10_8w(self):
        """§5.3: DRAM 4.8W + SRAM 6W ('no less than 10W', §5.1)."""
        full = make_lake_fpga()
        assert full.memory_power_w() == pytest.approx(10.8)
        assert full.memory_power_w() >= 10.0


class TestPowerSaving:
    def test_memory_reset_saves_40_percent(self):
        card = make_lake_fpga()
        before = card.memory_power_w()
        card.reset_memories()
        assert card.memory_power_w() == pytest.approx(before * 0.6)

    def test_clock_gating_saves_under_1w(self):
        """§5.1: clock gating LaKe logic earns <1W."""
        card = make_lake_fpga()
        before = card.power_w()
        card.clock_gate_all_logic()
        saving = before - card.power_w()
        assert 0.0 < saving < 1.0
        assert saving == pytest.approx(cal.CLOCK_GATING_SAVING_W, abs=0.05)

    def test_pe_removal_saves_quarter_watt(self):
        """§5.1: each PE contributes about 0.25W."""
        card = make_lake_fpga()
        before = card.power_w()
        card.remove_module("pe0")
        assert before - card.power_w() == pytest.approx(cal.LAKE_PE_W)

    def test_power_gating_unsupported_on_virtex7(self):
        card = make_lake_fpga()
        with pytest.raises(ConfigurationError):
            card.power_gate_module("pe0")

    def test_memory_clock_gating_unsupported(self):
        """§5.1: clock/power gating of the memory interfaces unsupported."""
        card = make_lake_fpga()
        with pytest.raises(ConfigurationError):
            card.dram.clock_gate()
        with pytest.raises(ConfigurationError):
            card.sram.power_gate()

    def test_gated_standby_configuration(self):
        """§9.2: memories in reset + logic clock-gated; the gap over a plain
        NIC is the standby cost of keeping LaKe programmed."""
        card = make_lake_fpga()
        card.reset_memories()
        card.clock_gate_all_logic()
        gap = card.power_w() - make_reference_nic().power_w()
        # our component arithmetic yields ~7.9W (paper quotes ~5W; the
        # deviation is documented in calibration.py / EXPERIMENTS.md)
        assert 4.0 < gap < 9.0

    def test_reactivation_restores_power(self):
        card = make_lake_fpga()
        before = card.power_w()
        card.reset_memories()
        card.clock_gate_all_logic()
        card.activate_memories()
        card.activate_all_logic()
        assert card.power_w() == pytest.approx(before)

    def test_removed_module_cannot_reactivate(self):
        card = make_lake_fpga()
        card.remove_module("pe0")
        with pytest.raises(ConfigurationError):
            card.activate_module("pe0")


class TestConstruction:
    def test_pe_count_configurable(self):
        """§3.1: 'The number of PEs is scalable and configurable.'"""
        one = make_lake_fpga(pe_count=1)
        five = make_lake_fpga(pe_count=5)
        assert five.power_w() - one.power_w() == pytest.approx(4 * cal.LAKE_PE_W)

    def test_pe_count_validated(self):
        with pytest.raises(ConfigurationError):
            make_lake_fpga(pe_count=-1)

    def test_duplicate_module_rejected(self):
        card = make_p4xos_fpga()
        with pytest.raises(ConfigurationError):
            card.add_module(FpgaModule("p4xos-core", 1.0))

    def test_emu_dns_in_server_power(self):
        """§4.4: Emu DNS system draws ~48W => card = 12W."""
        assert make_emu_dns_fpga().power_w() == pytest.approx(cal.EMU_DNS_CARD_W)

    def test_standalone_adds_psu_overhead(self):
        in_server = make_lake_fpga().power_w()
        standalone = make_lake_fpga(mode=PlatformMode.STANDALONE).power_w()
        assert standalone - in_server == pytest.approx(cal.STANDALONE_PSU_OVERHEAD_W)

    def test_utilization_validation(self):
        card = make_lake_fpga()
        with pytest.raises(ConfigurationError):
            card.set_utilization(2.0)
