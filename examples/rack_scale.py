#!/usr/bin/env python3
"""A rack of eight on-demand KVS hosts behind one ToR switch.

Eight memcached hosts share one ETC key space, sharded by the ToR
switch's key-hash dispatcher (each host's store holds only its shard).
Co-located training jobs land on the hosts at staggered times, so each
host's RAPL-fed controller shifts *its* KVS into the LaKe card on its own
schedule — the paper's "in-network computing on demand", scaled out.

Run:  python examples/rack_scale.py
"""

from repro.scenarios import run_scenario


def main() -> None:
    print("Running the rack8-kvs-sharded scenario (8s simulated)...\n")
    result = run_scenario("rack8-kvs-sharded")
    print(result.render())

    print("\nInterpretation:")
    shifted = result.hosts_with_shifts()
    print(
        f"  - {len(shifted)}/{len(result.hosts)} hosts shifted to hardware, "
        f"at {len(result.distinct_first_shift_times())} distinct times "
        "(each host's controller acts on its own co-located load)"
    )
    agg = result.aggregate_mean_throughput_pps(1.0e6, result.duration_us)
    print(
        f"  - aggregate served throughput {agg / 1e3:.1f} kpps "
        f"(offered {result.offered_pps / 1e3:.1f} kpps across the rack)"
    )
    busiest = max(result.routed_per_host, key=result.routed_per_host.get)
    print(
        f"  - ToR key-shard routing kept every store authoritative for its "
        f"shard; busiest shard: {busiest} "
        f"({result.routed_per_host[busiest]} packets)"
    )
    total_hits = sum(h.hw_hits for h in result.hosts)
    total_miss = sum(h.hw_miss_forwards for h in result.hosts)
    print(
        f"  - LaKe cards served {total_hits} hits rack-wide; "
        f"{total_miss} cold misses warmed the caches (§9.2)"
    )


if __name__ == "__main__":
    main()
