#!/usr/bin/env python3
"""Capacity planning with the §8/§9.3/§10 analyses.

You operate a rack and consider in-network computing for three services.
This example walks the paper's decision process:

1. tipping points per service (§8);
2. is the workload's power variation low enough for on-demand shifts
   (Dynamo analysis, §9.3)?
3. which platform should host the offload (§10 advisor)?
4. what does a ToR-switch deployment change (§9.4)?
"""

from repro.core import tipping_point, tor_switch_analysis
from repro.core.placement import ApplicationProfile, PlacementAdvisor
from repro.steady import dns_models, kvs_models, paxos_models
from repro.steady.paxos import PaxosRole
from repro.units import kpps, mpps
from repro.workloads import DynamoTraceSynthesizer, analyze_power_variation
from repro.workloads.dynamo import shift_safety


def main() -> None:
    print("=" * 72)
    print("Rack capacity planning with in-network computing on demand")
    print("=" * 72)

    # ---- 1. tipping points -------------------------------------------------
    kvs = kvs_models()
    paxos = paxos_models(PaxosRole.ACCEPTOR)
    dns = dns_models()
    services = {
        "kvs": (kvs["memcached"], kvs["lake"], mpps(0.4)),
        "paxos": (paxos["libpaxos"], paxos["p4xos"], kpps(120)),
        "dns": (dns["nsd"], dns["emu"], kpps(60)),
    }
    print("\n1. Tipping points vs expected peak load:")
    for name, (software, hardware, expected_peak) in services.items():
        analysis = tipping_point(software, hardware)
        worth_it = expected_peak >= analysis.crossover_pps
        print(
            f"  {name:6s} crossover {analysis.crossover_pps / 1e3:6.0f} Kpps, "
            f"expected peak {expected_peak / 1e3:6.0f} Kpps -> "
            f"{'offload pays off' if worth_it else 'stay in software'}"
        )

    # ---- 2. power-variation safety (§9.3) ---------------------------------
    print("\n2. Power-variation safety over the scheduling period:")
    for cls in ("caching", "web"):
        synth = DynamoTraceSynthesizer(cls, seed=1)
        trace = synth.generate(1800)
        analysis = analyze_power_variation(trace, synth.paper_statistics()["window_s"])
        verdict = "safe for on-demand" if shift_safety(analysis) else "too volatile"
        print(
            f"  {cls:8s} median {analysis.median:5.1%}, p99 {analysis.p99:5.1%} "
            f"-> {verdict}"
        )

    # ---- 3. platform choice (§10) ------------------------------------------
    print("\n3. Platform recommendations:")
    advisor = PlacementAdvisor()
    profiles = [
        ApplicationProfile("kvs", peak_rate_pps=mpps(0.4), latency_sensitive=True,
                           state_bytes=2 << 30),
        ApplicationProfile("paxos", peak_rate_pps=kpps(120), latency_sensitive=True,
                           state_bytes=1 << 20),
        ApplicationProfile("dns", peak_rate_pps=kpps(60), state_bytes=1 << 20),
    ]
    for profile in profiles:
        ranked = advisor.recommend(profile)
        best = ranked[0]
        print(f"  {profile.name:6s} -> {best.platform}")
        for reason in best.reasons[:2]:
            print(f"           - {reason}")

    # ---- 4. the ToR switch case (§9.4) --------------------------------------
    print("\n4. If the rack's ToR switch is programmable:")
    tor = tor_switch_analysis(kvs["memcached"], nodes_served=32)
    print(
        f"  switch marginal cost {tor.switch_w_per_mqps:.1f} W/Mqps vs server "
        f"{tor.server_dynamic_w_per_mqps:.0f} W/Mqps at low load"
    )
    print(
        f"  tipping point {tor.crossover_pps:.0f} pps -> "
        f"{'offload whenever the program fits' if tor.switch_always_wins else 'evaluate per workload'}"
    )


if __name__ == "__main__":
    main()
