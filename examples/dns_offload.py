#!/usr/bin/env python3
"""DNS offload with the network-controlled controller (§9.1, §9.2).

An authoritative DNS server for a rack's service names: NSD in software,
Emu DNS on the NetFPGA.  The *network-controlled* on-demand controller —
the 40-lines-in-the-classifier design — watches the DNS query rate and
shifts resolution into the card during a query storm, then back when the
storm passes.

Run:  python examples/dns_offload.py
"""

from repro.apps.dns import ARecord, DnsClient, EmuDns, SoftwareNsd, ZoneTable
from repro.core import NetworkController, NetworkControllerConfig, OnDemandService
from repro.host import make_i7_server
from repro.hw.fpga import make_emu_dns_fpga
from repro.net import ClassifierRule, PacketClassifier, Switch, Topology, TrafficClass
from repro.sim import RngStreams, Simulator
from repro.units import kpps, msec, sec


def main() -> None:
    sim = Simulator()
    streams = RngStreams(2024)

    # -- server: NSD in software + Emu DNS on the card
    server = make_i7_server(sim, name="dns-server", nic=None)
    card = make_emu_dns_fpga()
    server.install_card(card.power_w)
    records = [
        ARecord(f"svc{i}.rack42.dc.example", f"10.42.{i // 250}.{i % 250 + 1}")
        for i in range(500)
    ]
    zone = ZoneTable()
    zone.add_many(records)
    nsd = SoftwareNsd(sim, server, zone=zone)
    emu = EmuDns(sim, card, server)
    emu.zone.add_many(records)
    emu.disable(power_save=True)

    classifier = PacketClassifier(sim)
    classifier.add_rule(
        ClassifierRule(TrafficClass.DNS, hardware=emu.offer, host=nsd.offer)
    )
    server.set_packet_handler(classifier.classify)

    # -- topology + client
    topo = Topology(sim)
    topo.add(Switch(sim, "tor"))
    topo.add(server)
    rng = streams.get("names")
    client = DnsClient(
        sim, "resolver", "dns-server",
        name_sampler=lambda: f"svc{rng.randrange(520)}.rack42.dc.example",
        rng=streams.get("arrivals"),
    )
    topo.add(client)
    topo.connect_via_switch("tor", "dns-server")
    topo.connect_via_switch("tor", "resolver")

    # -- on-demand wiring: network controller at the §4.4 crossover
    service = OnDemandService(
        sim, "dns", classifier=classifier, traffic_class=TrafficClass.DNS,
        to_hardware=emu.enable,
        to_software=lambda: emu.disable(power_save=True),
    )
    controller = NetworkController(
        sim, classifier, TrafficClass.DNS, service,
        NetworkControllerConfig(
            up_rate_pps=kpps(150), down_rate_pps=kpps(100),
            up_window_us=sec(0.5), down_window_us=sec(0.5), tick_us=msec(50.0),
        ),
    )

    # -- scenario: quiet, storm, quiet
    print("phase 1: 20 Kqps background load (software serves)")
    client.set_rate(kpps(20))
    sim.run_until(sec(1.0))
    print(f"  placement={service.placement.value}  wall={server.wall_power_w():.1f}W"
          f"  median latency={client.latency.median():.1f}us")

    print("phase 2: 300 Kqps query storm (controller shifts to Emu DNS)")
    client.latency.reset()
    client.set_rate(kpps(300))
    sim.run_until(sec(3.0))
    print(f"  placement={service.placement.value}  wall={server.wall_power_w():.1f}W"
          f"  median latency={client.latency.median():.1f}us")

    print("phase 3: storm over, 20 Kqps (controller shifts back)")
    client.latency.reset()
    client.set_rate(kpps(20))
    sim.run_until(sec(6.0))
    print(f"  placement={service.placement.value}  wall={server.wall_power_w():.1f}W"
          f"  median latency={client.latency.median():.1f}us")

    print(f"\nshifts: {[f'{t / 1e6:.2f}s' for t in service.shift_times_us()]}")
    print(f"resolved={client.resolved}  nxdomain={client.nxdomain} "
          f"(names beyond the zone answer NXDOMAIN, §3.3)")


if __name__ == "__main__":
    main()
