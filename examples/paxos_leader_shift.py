#!/usr/bin/env python3
"""Live Paxos leader shift (the Figure 7 scenario).

A full Paxos deployment — closed-loop clients, a software (libpaxos-style)
leader, a hardware (P4xos-style) leader candidate, three acceptors, a
learner — on a simulated rack.  The centralized controller rewrites the
ToR forwarding rule to move the leader into the data plane and back.  The
new leader recovers the sequence number from the acceptors' piggybacked
last-voted instances; clients ride over the ~100ms stall with their retry
timeout.

Run:  python examples/paxos_leader_shift.py
"""

from repro.experiments import run_figure7
from repro.units import sec


def main() -> None:
    print("Running the Figure 7 scenario (5s, shifts at 1.5s and 3.5s)...\n")
    result = run_figure7(duration_s=5.0, shift_to_hw_s=1.5, shift_to_sw_s=3.5)
    print(result.render())

    sw_thr = result.mean_throughput_pps(sec(0.5), sec(1.5))
    hw_thr = result.mean_throughput_pps(sec(2.0), sec(3.5))
    sw_lat = result.mean_latency_us(sec(0.5), sec(1.5))
    hw_lat = result.mean_latency_us(sec(2.0), sec(3.5))
    print("\nInterpretation:")
    print(
        f"  - software leader: {sw_thr / 1e3:.1f} kpps at {sw_lat:.0f}us; "
        f"hardware leader: {hw_thr / 1e3:.1f} kpps at {hw_lat:.0f}us "
        "(latency halved, throughput up — Figure 7)"
    )
    print(
        "  - post-shift stalls: "
        + ", ".join(f"{s / 1e3:.0f}ms" for s in result.stall_us)
        + " — the client retry timeout, exactly as the paper reports"
    )
    print(f"  - total decisions: {result.decided}, client retries: {result.retries}")


if __name__ == "__main__":
    main()
