#!/usr/bin/env python3
"""Live KVS transition (the Figure 6 scenario).

A memcached server handles ETC traffic; a ChainerMN training job lands on
the same host, driving RAPL power up; the host-controlled on-demand
controller shifts the KVS into the LaKe card; when the training job ends,
it shifts back.  Prints the throughput/latency/power timeline and the
transition moments.

Run:  python examples/kvs_on_demand.py
"""

from repro.experiments import run_figure6


def main() -> None:
    print("Running the Figure 6 scenario (compressed to 12s)...\n")
    result = run_figure6(
        duration_s=12.0,
        rate_kpps=16.0,
        chainer_start_s=2.0,
        chainer_stop_s=7.0,
        keyspace=30_000,
    )
    print(result.render())

    print("\nInterpretation:")
    if len(result.shift_times_us) >= 1:
        shift = result.shift_times_us[0]
        sw_latency = result.mean_latency_us(shift - 1e6, shift)
        hw_latency = result.mean_latency_us(shift + 1.5e6, shift + 3.5e6)
        print(
            f"  - shift to hardware at {shift / 1e6:.1f}s "
            "(~3s of sustained high load, as in the paper)"
        )
        print(
            f"  - mean latency {sw_latency:.1f}us -> {hw_latency:.1f}us "
            "as the LaKe caches warm"
        )
        thr_before = result.mean_throughput_pps(shift - 1e6, shift)
        thr_after = result.mean_throughput_pps(shift, shift + 1e6)
        print(
            f"  - throughput unchanged across the shift: "
            f"{thr_before / 1e3:.1f} -> {thr_after / 1e3:.1f} kpps"
        )
    if len(result.shift_times_us) >= 2:
        print(
            f"  - shift back to software at {result.shift_times_us[1] / 1e6:.1f}s "
            "after the co-located job ends"
        )
    print(
        f"  - hardware served {result.hw_hits} hits; "
        f"{result.hw_miss_forwards} cold misses went to software (§9.2 warm-up)"
    )


if __name__ == "__main__":
    main()
