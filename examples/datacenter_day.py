#!/usr/bin/env python3
"""A day in the rack: on-demand placement over a diurnal load curve.

Replays 24-hour Dynamo-like diurnal loads against three deployments and
integrates the energy (§8 model):

* **software-only** — plain NIC, no programmable card (the status quo);
* **always hardware** — the card serves at all hours;
* **on demand** — the card is installed; the model-predictive policy picks
  the cheaper placement each hour, paying the §9.2 gated-standby cost
  (memories in reset, logic clock-gated) while in software.

Two racks are replayed: a *quiet* rack whose load rarely crosses the §4
crossover, and a *busy* cache tier.  The result reproduces the paper's
nuance: on demand always beats the always-hardware deployment, and beats
the card-less status quo exactly when the duty cycle spends real time above
the crossover — §9.3's point that the benefit depends on the workload.
"""

from repro.core.shift_strategy import ShiftStrategy, ShiftStrategyModel
from repro.steady import kvs_models
from repro.units import kpps

#: hourly offered load, Kpps
QUIET_RACK = [4, 3, 2, 2, 2, 3, 8, 20, 60, 110, 150, 170,
              180, 170, 160, 150, 140, 130, 120, 90, 60, 30, 15, 8]
BUSY_CACHE_TIER = [30, 20, 15, 15, 20, 40, 120, 300, 500, 650, 750, 800,
                   820, 800, 780, 750, 700, 650, 600, 450, 300, 160, 80, 45]


def replay(profile_kpps):
    """Returns (software_only_MJ, always_hw_MJ, on_demand_MJ, shifts)."""
    models = kvs_models()
    software = models["memcached"]
    hardware = models["lake"]
    standby_w = ShiftStrategyModel().standby_power_w(ShiftStrategy.RESET_AND_GATE)

    def software_only_w(rate):
        return software.power_at(min(rate, software.capacity_pps))

    def software_with_card_w(rate):
        # NIC replaced by the gated card (§4.2 / §9.2)
        return software_only_w(rate) - 3.0 + standby_w

    def hardware_w(rate):
        return hardware.power_at(min(rate, hardware.capacity_pps))

    software_only = always_hw = on_demand = 0.0
    placement_hw = False
    shifts = 0
    for load_kpps in profile_kpps:
        rate = kpps(load_kpps)
        want_hw = hardware_w(rate) + 2.0 < software_with_card_w(rate)
        if want_hw != placement_hw:
            placement_hw = want_hw
            shifts += 1
        chosen = hardware_w(rate) if placement_hw else software_with_card_w(rate)
        software_only += software_only_w(rate) * 3600.0
        always_hw += hardware_w(rate) * 3600.0
        on_demand += chosen * 3600.0
    return software_only / 1e6, always_hw / 1e6, on_demand / 1e6, shifts


def report(name, profile):
    sw, hw, ondemand, shifts = replay(profile)
    print(f"\n{name} (peak {max(profile)} Kpps):")
    print(f"  software-only (no card) : {sw:7.2f} MJ/day")
    print(f"  always hardware         : {hw:7.2f} MJ/day")
    print(f"  on demand               : {ondemand:7.2f} MJ/day  ({shifts} shifts)")
    print(f"  on demand vs always-hw  : {1 - ondemand / hw:+.1%}")
    print(f"  on demand vs sw-only    : {1 - ondemand / sw:+.1%}")
    return sw, hw, ondemand


def main() -> None:
    print("=" * 72)
    print("Daily energy by deployment policy (§8 energy model)")
    print("=" * 72)

    quiet = report("Quiet rack", QUIET_RACK)
    busy = report("Busy cache tier", BUSY_CACHE_TIER)

    print("\nConclusions (the paper's nuance, §9.3):")
    print("  - on demand never loses to the always-hardware deployment;")
    if quiet[2] > quiet[0]:
        print(
            "  - on the quiet rack the gated card's standby cost exceeds the "
            "daytime savings: the status-quo server stays cheapest — "
            "'not all applications ... the gain won't be the same for all' (§9.5);"
        )
    if busy[2] < busy[0] and busy[2] <= busy[1]:
        print(
            "  - on the busy cache tier, on demand saves ~26% vs the "
            "status quo and never does worse than always-hardware — the "
            "Figure 5 behaviour, 'always benefiting from the best power "
            "efficiency' (§12)."
        )


if __name__ == "__main__":
    main()
