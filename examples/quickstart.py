#!/usr/bin/env python3
"""Quickstart: the paper's headline numbers in five minutes.

1. Build the calibrated steady-state models for all three applications.
2. Find the software→network tipping points (§8).
3. Run a small live simulation: memcached on an i7 behind a ToR switch,
   served by LaKe once the load crosses the threshold.

Run:  python examples/quickstart.py
"""

from repro.core import tipping_point
from repro.experiments import figures
from repro.steady import dns_models, kvs_models, paxos_models
from repro.steady.paxos import PaxosRole
from repro.units import kpps, to_kpps


def main() -> None:
    print("=" * 72)
    print("In-network computing on demand — quickstart")
    print("=" * 72)

    # ---- 1. power curves at a glance ------------------------------------
    kvs = kvs_models()
    paxos = paxos_models(PaxosRole.ACCEPTOR)
    dns = dns_models()
    print("\nIdle vs peak power [W]:")
    for name, model in {**kvs, **paxos, **dns}.items():
        print(
            f"  {model.name:35s} idle={model.power_at(0):6.1f}  "
            f"peak={model.power_at(model.capacity_pps):6.1f}  "
            f"capacity={to_kpps(model.capacity_pps):10.0f} Kpps"
        )

    # ---- 2. tipping points (§8) -----------------------------------------
    print("\nTipping points (shift to the network above):")
    for software, hardware in [
        (kvs["memcached"], kvs["lake"]),
        (paxos["libpaxos"], paxos["p4xos"]),
        (dns["nsd"], dns["emu"]),
    ]:
        print(f"  {tipping_point(software, hardware).describe()}")

    # ---- 3. ops per watt (§6) --------------------------------------------
    section6 = figures.section6_asic()
    print("\nPaxos messages per watt (§6):")
    for platform, ops in section6.ops_per_watt.items():
        print(f"  {platform:10s} {ops:>14,.0f} msgs/W")

    # ---- 4. on-demand saving (Figure 5) -----------------------------------
    fig5 = figures.figure5(steps=7)
    print("\nOn-demand saving vs software-only at high load (Figure 5):")
    for app, saving in fig5.savings_at_peak.items():
        print(f"  {app:6s} {saving:.0%}")

    print("\nDone.  See examples/kvs_on_demand.py for a live transition.")


if __name__ == "__main__":
    main()
