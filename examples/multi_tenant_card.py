#!/usr/bin/env python3
"""Two services, one card: on-demand offload with data-plane virtualization.

§2 leaves multi-program deployment as future work; this example runs it:
a KVS-sized tenant and a DNS-sized tenant co-resident on one virtualized
NetFPGA (P4Visor-style), each with its own on-demand controller.  During a
KVS storm only the KVS tenant activates; during a DNS storm only the DNS
tenant; the marginal power of the second service is just its logic watts.

Run:  python examples/multi_tenant_card.py
"""

from repro import calibration as cal
from repro.hw.virtualization import (
    VirtualizedCard,
    emu_dns_tenant,
    lake_tenant,
)
from repro.steady import dns_models, kvs_models


def main() -> None:
    card = VirtualizedCard()
    kvs = lake_tenant(pe_count=2)
    dns = emu_dns_tenant()
    card.admit(kvs)
    card.admit(dns)

    print("Admitted tenants:")
    for tenant in card.tenants:
        print(
            f"  {tenant.name:8s} logic {tenant.logic_power_w:4.2f}W "
            f"({tenant.logic_fraction:.1%} of fabric), "
            f"capacity {tenant.capacity_share_pps / 1e6:.1f} Mpps"
        )
    print(
        f"fabric used: {card.logic_fraction_used:.1%}, pipeline committed: "
        f"{card.capacity_committed_pps / 1e6:.1f}/{13.0:.1f} Mpps"
    )

    dedicated = cal.LAKE_CARD_W + cal.EMU_DNS_CARD_W
    print(f"\nTwo dedicated cards would draw {dedicated:.1f}W; "
          f"this card (both tenants active) draws {card.power_w():.1f}W.")

    print("\nScenario walk (tenant activation follows each service's load):")

    def show(label):
        states = ", ".join(
            f"{t.name}={'on' if t.active else 'gated'}" for t in card.tenants
        )
        print(f"  {label:28s} {states:28s} card={card.power_w():5.1f}W")

    card.deactivate("lake")
    card.deactivate("emu-dns")
    show("night: both in software")

    card.activate("lake")
    show("KVS storm: KVS offloaded")

    card.activate("emu-dns")
    show("both storms: both offloaded")

    card.deactivate("lake")
    show("DNS storm only")

    # what would each service's software placement cost at storm load?
    kvs_sw = kvs_models()["memcached"].power_at(400_000)
    dns_sw = dns_models()["nsd"].power_at(400_000)
    print(
        f"\nAt 400Kpps each, software placements would draw "
        f"{kvs_sw:.0f}W (KVS) and {dns_sw:.0f}W (DNS) on their hosts; "
        "the shared card serves both for its ~25W."
    )


if __name__ == "__main__":
    main()
