# Repro tooling. `make test` is the tier-1 verification command.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-smoke sweep-smoke hetero-smoke fabric-smoke bench-perf bench-fabric-perf bench-grid-perf bench-replication bench examples

test:
	$(PYTHON) -m pytest -x -q

# One fast benchmark per application (KVS / Paxos / DNS): the analytic
# Figure 3 sweeps, which regenerate their panels in seconds.
bench-smoke:
	$(PYTHON) -m pytest -q \
		benchmarks/bench_fig3a_kvs.py \
		benchmarks/bench_fig3b_paxos.py \
		benchmarks/bench_fig3c_dns.py

# The §9.4 scenario sweep on a reduced 2-point rate ramp: asserts the
# software->hardware ops/W crossover and writes the tipping-point table
# to benchmarks/results/sweep_rack_kvs_tipping.txt (a CI artifact).
sweep-smoke:
	$(PYTHON) -m pytest -q benchmarks/bench_sweep_tipping.py

# The heterogeneous-device rack: asserts the SmartNIC host tips before the
# NetFPGA host on one shared ramp (NIC-only host never shifts) and that
# the per-device-kind sweep orders the crossovers the same way.  Tables
# land in benchmarks/results/ (CI artifacts).
hetero-smoke:
	$(PYTHON) -m pytest -q benchmarks/bench_rack_hetero.py

# The multi-rack leaf-spine fabric: asserts the centralized controller's
# same-rack steer lands before the cross-rack one, that oversubscribed
# uplinks raise the cross-rack client p99, and that per-placement power
# attribution sums to the scenario totals within 1e-6.  Tables land in
# benchmarks/results/ (CI artifacts).
fabric-smoke:
	$(PYTHON) -m pytest -q benchmarks/bench_fabric_scale.py

# The perf trajectory: DES events/sec + wall seconds per scenario, the
# serial-vs-parallel sweep wall time, and the K=4 replicated-sweep leg
# (serial vs pooled wall + points/sec), written to
# benchmarks/results/BENCH_perf.json (a CI artifact) and gated against the
# committed benchmarks/BENCH_perf_baseline.json (>30% drop in events/sec
# or replication points/sec fails).
bench-perf:
	$(PYTHON) -m pytest -q benchmarks/bench_perf.py

# The fabric fast-path criteria: sweep-fabric-scale with fastpath=True
# must be >=3x faster wall-clock than the full DES at n_racks=4 while
# staying inside the validate_fastpath tolerance gate (achieved pps,
# total wall W, ops/W), plus the fabric events/sec regression gate.
# Artifact: benchmarks/results/fabric_fastpath.txt.
bench-fabric-perf:
	$(PYTHON) -m pytest -q benchmarks/bench_fabric_perf.py

# The grid/adaptive criteria (ISSUE 10): the adaptive crossover search
# must be >=5x faster wall-clock than the exhaustive DES sweep on the
# reduced sweep-fabric-scale grid while reporting identical tipping rows
# from <=25% of the DES replays, plus the vectorized steady-grid kernel's
# points/sec regression gate.  Artifact: benchmarks/results/grid_adaptive.txt.
bench-grid-perf:
	$(PYTHON) -m pytest -q benchmarks/bench_grid_perf.py

# The replication acceptance benchmark: K=8 seeds of the reduced
# sweep-rack-kvs, per-seed byte-identity vs serial run_sweep everywhere,
# and the >=3x workers=4 speedup criterion on machines with >=4 cores.
bench-replication:
	$(PYTHON) -m pytest -q benchmarks/bench_replication.py

# The full paper-vs-measured record (slow: includes the DES transitions
# and the rack-scale scenario).  Explicit file list: bench_*.py does not
# match pytest's default test-file pattern, keeping benchmarks out of
# `make test`.
bench:
	$(PYTHON) -m pytest -q benchmarks/bench_*.py

examples:
	for script in examples/*.py; do $(PYTHON) $$script || exit 1; done
