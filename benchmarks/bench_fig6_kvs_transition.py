"""Figure 6: transitioning the KVS between software and hardware.

Paper result: host-controlled shift triggered after ~3s of sustained high
load (a co-located ChainerMN job); throughput is unaffected by the shift,
"not even momentarily"; query-hit latency improves ~ten-fold within tens
of microseconds as the caches warm; RAPL power falls when the co-located
job ends and the workload shifts back.

This is a full DES run (protocols + controllers + RAPL), so the benchmark
runs a single round.
"""

import pytest

from repro.experiments import run_figure6
from repro.units import sec


def _run():
    return run_figure6(
        duration_s=10.0,
        rate_kpps=16.0,
        chainer_start_s=1.0,
        chainer_stop_s=4.5,
        keyspace=30_000,
    )


def test_figure6(benchmark, save_result):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_result("figure6", result.render())

    # two transitions, the first ~3s after the load arrives (controller window)
    assert len(result.shift_times_us) == 2
    first = result.shift_times_us[0]
    assert sec(3.0) < first < sec(6.0)

    # throughput unaffected across the shift
    before = result.mean_throughput_pps(first - sec(1.0), first)
    after = result.mean_throughput_pps(first, first + sec(1.0))
    assert after == pytest.approx(before, rel=0.1)

    # latency improves as the caches warm (mean over a window that still
    # contains cold misses: several-fold; per-hit: 15µs -> 1.4-1.7µs)
    sw_latency = result.mean_latency_us(first - sec(1.0), first)
    hw_latency = result.mean_latency_us(first + sec(1.5), first + sec(3.0))
    assert sw_latency / hw_latency > 2.0

    # power falls back once the co-located job ends and the shift reverses
    high = [v for t, v in result.power_series if sec(2.0) < t < sec(4.0)]
    low = [v for t, v in result.power_series if t > sec(8.0)]
    assert sum(high) / len(high) - sum(low) / len(low) > 30.0
