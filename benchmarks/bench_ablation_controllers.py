"""Ablation: controller design choices (§9.1).

* Reaction time: the network-controlled design "typically reacts faster,
  but must make its choices based on fewer parameters" — measured here as
  time from load-step to shift for both controllers under the same stimulus.
* Hysteresis: shrinking the threshold band below the workload's oscillation
  amplitude causes flapping; the paper's dual-threshold design prevents it.
"""

import pytest

from repro.core import (
    HysteresisSwitch,
    NetworkController,
    NetworkControllerConfig,
    OnDemandService,
    Thresholds,
)
from repro.experiments.reporting import format_table
from repro.net import ClassifierRule, PacketClassifier, TrafficClass
from repro.net.packet import make_packet
from repro.sim import Simulator
from repro.units import SEC, kpps, msec, sec


def _drive(sim, classifier, rate_of_time):
    """Feed classifier traffic at rate_of_time(now) pps, 10ms granularity."""

    def tick():
        rate = rate_of_time(sim.now)
        for _ in range(int(rate * msec(10.0) / SEC)):
            classifier.classify(
                make_packet("c", "s", TrafficClass.MEMCACHED, now=sim.now)
            )

    sim.call_every(msec(10.0), tick)


def _network_shift_delay(window_s):
    """Time from load step to shift for the network controller."""
    sim = Simulator()
    classifier = PacketClassifier(sim)
    classifier.add_rule(
        ClassifierRule(TrafficClass.MEMCACHED, hardware=lambda p: None, host=lambda p: None)
    )
    service = OnDemandService(
        sim, "kvs", classifier=classifier, traffic_class=TrafficClass.MEMCACHED
    )
    NetworkController(
        sim, classifier, TrafficClass.MEMCACHED, service,
        NetworkControllerConfig(
            up_rate_pps=kpps(80), down_rate_pps=kpps(50),
            up_window_us=sec(window_s), down_window_us=sec(window_s),
            tick_us=msec(50.0),
        ),
    )
    step_at = sec(0.2)
    _drive(sim, classifier, lambda now: kpps(150) if now >= step_at else kpps(10))
    sim.run_until(sec(window_s * 4 + 2.0))
    if not service.shifts:
        return None
    return service.shifts[0].time_us - step_at


def test_ablation_reaction_time(benchmark, save_result):
    """Shift delay scales with the averaging window — the §9.1 trade-off
    between responsiveness and stability."""

    def run():
        return [(w, _network_shift_delay(w)) for w in (0.5, 1.0, 2.0)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_reaction_time",
        format_table(
            ["window [s]", "shift delay [us]"],
            [(w, d if d is not None else "never") for w, d in rows],
        ),
    )
    delays = [d for _, d in rows]
    assert all(d is not None for d in delays)
    assert delays == sorted(delays)
    # delay is on the order of the window: the sliding average needs ~half
    # a window of post-step samples to cross the threshold, plus tick lag
    for window, delay in rows:
        assert sec(window) * 0.4 <= delay <= sec(window) * 1.5


def test_ablation_hysteresis_band(benchmark, save_result):
    """A single threshold (zero band) flaps on an oscillating signal; the
    paper's dual-threshold design does not."""

    def run():
        import random

        results = []
        for band in (1.0, 20.0, 50.0):
            rng = random.Random(17)
            switch = HysteresisSwitch(
                Thresholds(up=80.0 + band / 2, down=80.0 - band / 2)
            )
            # noisy load hovering right at the 80 threshold
            for _ in range(2000):
                switch.update(rng.gauss(80.0, 12.0))
            results.append((band, switch.transitions))
        return results

    rows = benchmark(run)
    save_result(
        "ablation_hysteresis",
        format_table(["band width", "transitions"], rows),
    )
    transitions = {band: t for band, t in rows}
    assert transitions[1.0] > 200       # near-single threshold flaps wildly
    assert transitions[20.0] < transitions[1.0] / 2
    assert transitions[50.0] < transitions[20.0]
