"""Benchmark harness support.

Every benchmark regenerates one paper table/figure and writes its rendered
text to ``benchmarks/results/<name>.txt`` so the paper-vs-measured record
in EXPERIMENTS.md can be reproduced from a clean checkout with::

    pytest benchmarks/ --benchmark-only
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_result():
    """Persist a figure's rendered text under benchmarks/results/."""

    def _save(name: str, text: str) -> pathlib.Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _save
