"""Rack scale: 8 key-sharded KVS hosts behind one ToR switch.

The paper argues in-network computing on demand pays off at datacenter
scale: many hosts behind a ToR, each shifting between software and
hardware as *its own* load moves (§9.1's per-host controller, §9.4's
rack-level energy argument).  This benchmark runs the
``rack8-kvs-sharded`` scenario — one ETC key space sharded across eight
memcached hosts by the ToR's key-shard dispatcher, with staggered
co-located jobs so every host's controller acts on its own schedule —
and checks two rack-scale claims:

* aggregate served throughput scales at least 6x a single host offered
  the same per-host share (the rack serves its full offered load);
* hosts shift independently: at least two hosts transition to hardware
  at distinct times.

This is a full DES run, so the benchmark runs a single round.
"""

import pytest

from repro.scenarios import run_scenario

DURATION_S = 8.0
TOTAL_RATE_KPPS = 96.0
N_HOSTS = 8


def _run_rack():
    return run_scenario(
        "rack8-kvs-sharded",
        duration_s=DURATION_S,
        total_rate_kpps=TOTAL_RATE_KPPS,
        keyspace=24_000,
    )


def _run_single_host():
    # One host offered the rack's per-host share: the scaling baseline.
    return run_scenario(
        "fig6-kvs-transition",
        duration_s=DURATION_S,
        rate_kpps=TOTAL_RATE_KPPS / N_HOSTS,
        keyspace=24_000,
        chainer_start_s=1.0,
        chainer_stop_s=4.5,
    )


def test_rack_scale(benchmark, save_result):
    rack = benchmark.pedantic(_run_rack, rounds=1, iterations=1)
    single = _run_single_host()
    save_result(
        "rack_scale", rack.render() + "\n\nbaseline:\n" + single.render()
    )

    # every host served traffic, and the ToR sharded by key across all 8
    assert len(rack.hosts) == N_HOSTS
    assert all(h.responses > 0 for h in rack.hosts)
    assert all(count > 0 for count in rack.routed_per_host.values())

    # aggregate throughput scales >= 6x a single host at the same share
    window = (1.0e6, DURATION_S * 1e6)
    aggregate = rack.aggregate_mean_throughput_pps(*window)
    baseline = single.hosts[0].mean_throughput_pps(*window)
    assert aggregate > 6.0 * baseline

    # per-host on-demand shifting: at least two hosts shift, at distinct
    # times (the staggered co-located jobs trigger them independently)
    shifted = rack.hosts_with_shifts()
    assert len(shifted) >= 2
    assert len(rack.distinct_first_shift_times()) >= 2

    # the hardware path actually served requests after the shifts
    assert sum(h.hw_hits for h in shifted) > 0
