"""Placement matrix: which Paxos roles live in the data plane?

§3.2/§4.3 evaluate both the leader and the acceptor roles in hardware.
This benchmark runs the full DES consensus pipeline under four placements
and reports end-to-end latency and closed-loop throughput — the *shape*
claims: every role moved into the data plane removes its software stack
latency from the critical path, and the leader is the most valuable single
move (it sits on the path once, but so does each acceptor's quorum wait).
"""

import pytest

from repro import calibration as cal
from repro.apps.paxos import PaxosClient
from repro.apps.paxos.deployment import (
    HardwarePaxosRole,
    PaxosDeployment,
    SoftwarePaxosRole,
    _Directory,
)
from repro.apps.paxos.roles import AcceptorState, LeaderState, LearnerState
from repro.experiments.reporting import format_table
from repro.host import make_i7_server
from repro.hw.fpga import make_p4xos_fpga
from repro.net.node import CallbackNode
from repro.net.switch import Switch
from repro.net.topology import Topology
from repro.sim import Simulator
from repro.units import msec, sec


def _run_placement(hw_leader: bool, hw_acceptors: bool, duration_s=1.0):
    sim = Simulator()
    topo = Topology(sim)
    switch = Switch(sim, "tor")
    topo.add(switch)
    n_acceptors = 3
    acceptor_names = [f"acceptor{i}" for i in range(n_acceptors)]
    directory = _Directory(acceptor_names, ["learner0"])

    # -- leader
    if hw_leader:
        card = make_p4xos_fpga()
        node = CallbackNode(sim, "leader", on_packet=lambda p: leader.offer(p))
        leader = HardwarePaxosRole(
            sim, card, node, LeaderState("leader", 0, n_acceptors), directory
        )
        topo.add(node)
    else:
        server = make_i7_server(sim, name="leader")
        leader = SoftwarePaxosRole(
            sim, server, LeaderState("leader", 0, n_acceptors), directory,
            capacity_pps=cal.LIBPAXOS_LEADER_CAPACITY_PPS,
            stack_latency_us=cal.LIBPAXOS_LEADER_STACK_US,
        )
        server.set_packet_handler(leader.offer)
        topo.add(server)
    topo.connect_via_switch("tor", "leader")

    # -- acceptors
    acceptor_roles = []
    for name in acceptor_names:
        if hw_acceptors:
            card = make_p4xos_fpga()
            node = CallbackNode(
                sim, name,
                on_packet=lambda p, idx=len(acceptor_roles): acceptor_roles[idx].offer(p),
            )
            role = HardwarePaxosRole(
                sim, card, node, AcceptorState(name), directory
            )
            topo.add(node)
        else:
            server = make_i7_server(sim, name=name)
            role = SoftwarePaxosRole(
                sim, server, AcceptorState(name), directory,
                capacity_pps=cal.LIBPAXOS_ACCEPTOR_CAPACITY_PPS,
                stack_latency_us=cal.LIBPAXOS_ACCEPTOR_STACK_US,
                app_name=f"acc.{name}",
            )
            server.set_packet_handler(role.offer)
            topo.add(server)
        topo.connect_via_switch("tor", name)
        acceptor_roles.append(role)

    # -- learner (always software, as in the paper's deployments)
    learner_server = make_i7_server(sim, name="learner0")
    learner = SoftwarePaxosRole(
        sim, learner_server, LearnerState("learner0", n_acceptors), directory,
        capacity_pps=cal.LIBPAXOS_ACCEPTOR_CAPACITY_PPS,
        stack_latency_us=cal.LIBPAXOS_LEARNER_STACK_US,
        app_name="learner",
    )
    learner_server.set_packet_handler(learner.offer)
    topo.add(learner_server)
    topo.connect_via_switch("tor", "learner0")

    deployment = PaxosDeployment(switch)
    deployment.register_leader("leader", leader)
    deployment.activate_leader("leader")

    clients = []
    for i in range(3):
        client = PaxosClient(sim, f"client{i}")
        topo.add(client)
        topo.connect_via_switch("tor", client.name)
        clients.append(client)
        sim.schedule_at(msec(20.0), lambda c=client: c.start_closed_loop(1))

    sim.run_until(sec(duration_s))
    latencies = [c.latency.median() for c in clients if len(c.latency)]
    decided = sum(c.decided for c in clients)
    return sum(latencies) / len(latencies), decided / (duration_s - 0.02)


def _matrix():
    rows = []
    for hw_leader, hw_acceptors, label in (
        (False, False, "all software"),
        (True, False, "hardware leader"),
        (False, True, "hardware acceptors"),
        (True, True, "leader + acceptors in hardware"),
    ):
        latency, throughput = _run_placement(hw_leader, hw_acceptors)
        rows.append((label, latency, throughput / 1e3))
    return rows


def test_paxos_placement_matrix(benchmark, save_result):
    rows = benchmark.pedantic(_matrix, rounds=1, iterations=1)
    save_result(
        "paxos_placements",
        format_table(["placement", "median latency [us]", "throughput [kpps]"], rows),
    )
    by_label = {label: (lat, thr) for label, lat, thr in rows}

    all_sw = by_label["all software"]
    hw_leader = by_label["hardware leader"]
    hw_acc = by_label["hardware acceptors"]
    all_hw = by_label["leader + acceptors in hardware"]

    # each hardware role removes its stack latency from the path
    assert hw_leader[0] < all_sw[0]
    assert hw_acc[0] < all_sw[0]
    assert all_hw[0] < min(hw_leader[0], hw_acc[0])
    # the leader's 200µs stack is the largest single contribution
    assert (all_sw[0] - hw_leader[0]) > (all_sw[0] - hw_acc[0]) - 20.0
    # closed-loop throughput is inverse to latency
    assert all_hw[1] > all_sw[1]
