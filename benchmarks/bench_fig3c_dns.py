"""Figure 3(c): DNS power vs throughput.

Paper result: NSD peaks at 956K req/s drawing twice Emu DNS's power; Emu
stays at ~48W (47.5W idle to <48W full); software power exceeds the
hardware's below 200Kpps.
"""

import pytest

from repro.experiments import figures
from repro.units import kpps


def test_figure3c(benchmark, save_result):
    result = benchmark(figures.figure3c)
    save_result("figure3c", result.render())
    assert kpps(100) < result.crossover_pps < kpps(200)


def test_figure3c_emu_band(benchmark):
    """§4.4: Emu moves from 47.5W to just under 48W... our calibration
    pins the in-server system at 48W idle +0.5W dynamic."""
    result = benchmark(lambda: figures.figure3c(steps=31))
    emu = [p.power_w for p in result.series["emu"]]
    assert max(emu) - min(emu) <= 0.5 + 1e-9


def test_figure3c_peak_ratio(benchmark):
    """§4.4: 'At peak throughput, the server draws twice the power of Emu
    DNS.'"""
    result = benchmark(figures.figure3c)
    nsd_peak = max(p.power_w for p in result.series["nsd"])
    emu_at_same = result.series["emu"][-1].power_w
    assert nsd_peak / emu_at_same == pytest.approx(2.0, rel=0.05)
