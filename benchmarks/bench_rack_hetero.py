"""Heterogeneous offload racks: mixed device kinds behind one ToR (§9.4).

Two legs, doubling as the ``make hetero-smoke`` CI gate:

* the registered ``rack-hetero`` scenario — a NetFPGA host, an ASIC
  SmartNIC host and a NIC-only host sharing one key-sharded load ramp.
  Each card's network controller runs at *its own device's* crossover
  thresholds, so the SmartNIC host must tip before the NetFPGA host on the
  same ramp, and the NIC-only host must never shift (it has nothing to
  shift to) — the paper's claim that the software-vs-hardware decision is
  a property of the device, reproduced inside a single rack.
* a reduced ``sweep-rack-hetero`` grid — homogeneous racks per device
  kind × a rate ramp — asserting the per-device-kind tipping points order
  the same way (ASIC crossover ≤ NetFPGA crossover; the NIC-only row has
  none), with the on-demand pin bracketed by the two static pins.
"""

import pytest

from repro.scenarios import build_sweep_spec, run_scenario, run_sweep


def _run_mixed():
    return run_scenario("rack-hetero")


def test_rack_hetero(benchmark, save_result):
    result = benchmark.pedantic(_run_mixed, rounds=1, iterations=1)
    save_result("rack_hetero", result.render())

    hosts = {h.name: h for h in result.hosts}
    netfpga, smartnic, nic_only = hosts["kvs0"], hosts["kvs1"], hosts["kvs2"]
    assert netfpga.device_kind == "netfpga-sume"
    assert smartnic.device_kind == "asic-nic"
    assert nic_only.device_kind == "none"

    # every host serves throughout, NIC-only included
    assert all(h.responses > 0 for h in result.hosts)

    # the SmartNIC's crossover sits far below the NetFPGA's, so on one
    # shared ramp it tips strictly earlier
    assert smartnic.shift_times_us, "SmartNIC host never shifted"
    assert netfpga.shift_times_us, "NetFPGA host never shifted"
    assert smartnic.shift_times_us[0] < netfpga.shift_times_us[0]

    # the NIC-only host can never shift
    assert nic_only.shift_times_us == []
    assert nic_only.hw_hits == 0


def test_sweep_rack_hetero_tipping(save_result):
    spec = build_sweep_spec(
        "sweep-rack-hetero",
        device_kinds=("netfpga-sume", "asic-nic", "none"),
        rates_kpps=(8.0, 32.0),
        duration_s=0.5,
        keyspace=4_000,
    )
    result = run_sweep(spec)
    save_result("sweep_rack_hetero_tipping", result.render())

    tips = {t.fixed["device_kind"]: t for t in result.tipping_points()}
    assert set(tips) == {"netfpga-sume", "asic-nic", "none"}

    # per-device-kind crossovers: the cheaper ASIC card tips no later than
    # the NetFPGA; the NIC-only rack never tips at all
    assert tips["asic-nic"].crossover is not None
    assert tips["netfpga-sume"].crossover is not None
    assert tips["asic-nic"].crossover <= tips["netfpga-sume"].crossover
    assert tips["none"].crossover is None

    for pt in result.points:
        # the on-demand run is bracketed by the two static pins (within
        # measurement noise of the shift transient)
        assert pt.ondemand is not None
        lo = min(pt.software.ops_per_watt, pt.hardware.ops_per_watt)
        hi = max(pt.software.ops_per_watt, pt.hardware.ops_per_watt)
        assert lo * 0.95 <= pt.ondemand.ops_per_watt <= hi * 1.05
        if pt.params["device_kind"] == "none":
            # nothing to pin: both brackets are the same software rack
            assert pt.hardware.ops_per_watt == pytest.approx(
                pt.software.ops_per_watt
            )
