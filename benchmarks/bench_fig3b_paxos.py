"""Figure 3(b): Paxos power vs throughput (leader + acceptor roles).

Paper result: libpaxos crosses P4xos around 150K msgs/s; DPDK is high and
flat at every rate; standalone P4xos is 18.2W idle with ≤1.2W dynamic.
"""

import pytest

from repro.experiments import figures
from repro.steady.paxos import PaxosRole
from repro.units import kpps


def test_figure3b_acceptor(benchmark, save_result):
    result = benchmark(lambda: figures.figure3b(PaxosRole.ACCEPTOR))
    save_result("figure3b_acceptor", result.render())
    assert result.crossover_pps == pytest.approx(kpps(150), rel=0.1)


def test_figure3b_leader(benchmark, save_result):
    result = benchmark(lambda: figures.figure3b(PaxosRole.LEADER))
    save_result("figure3b_leader", result.render())
    assert kpps(100) < result.crossover_pps < kpps(180)


def test_figure3b_dpdk_shape(benchmark):
    """§4.3: DPDK 'power consumption ... is high even under low load, and
    remains almost constant under an increasing load.'"""
    result = benchmark(lambda: figures.figure3b(PaxosRole.ACCEPTOR, steps=31))
    dpdk = [p.power_w for p in result.series["dpdk"]]
    libpaxos_idle = result.series["libpaxos"][0].power_w
    assert dpdk[0] > libpaxos_idle + 25.0
    assert max(dpdk) - min(dpdk) < 8.0


def test_figure3b_standalone_anchors(benchmark):
    result = benchmark(lambda: figures.figure3b(PaxosRole.ACCEPTOR))
    standalone = result.series["p4xos-standalone"]
    assert standalone[0].power_w == pytest.approx(18.2)
    assert max(p.power_w for p in standalone) <= 18.2 + 1.2 + 1e-9
