"""The perf trajectory benchmark — emits ``BENCH_perf.json``.

Run via ``make bench-perf`` (or the CI ``perf-smoke`` leg).  Measures DES
events/sec and wall seconds for the registered perf scenarios plus the
reduced sweep's serial-vs-parallel wall time, writes the record to
``benchmarks/results/BENCH_perf.json``, and fails when events/sec drops
more than :data:`perf_harness.REGRESSION_TOLERANCE` below the committed
``benchmarks/BENCH_perf_baseline.json``.

The baseline is a *slow-container* measurement; the gate only fires on a
>30% drop, so faster CI runners never trip it spuriously — only a real
kernel regression does.
"""

import json

from perf_harness import (
    BASELINE_PATH,
    PERF_SCENARIOS,
    check_regression,
    collect,
    write_results,
)


def test_perf_trajectory():
    record = collect()
    path = write_results(record)
    assert path.exists()

    # every registered perf scenario produced a real measurement
    assert set(record["scenarios"]) == {name for name, _ in PERF_SCENARIOS}
    for name, row in record["scenarios"].items():
        assert row["events"] > 0, f"{name} executed no events"
        assert row["events_per_sec"] > 0, f"{name} has no throughput figure"

    # the serial-vs-parallel sweep comparison is part of the record
    sweep = record["sweep"]
    assert sweep["serial"]["wall_s"] > 0
    assert sweep["parallel"]["wall_s"] > 0
    assert sweep["parallel"]["workers"] >= 2

    # the committed-baseline regression gate (>30% events/sec drop fails)
    assert BASELINE_PATH.exists(), (
        "no committed perf baseline; regenerate with "
        "`python benchmarks/perf_harness.py` and copy "
        "results/BENCH_perf.json to BENCH_perf_baseline.json"
    )
    baseline = json.loads(BASELINE_PATH.read_text())
    failures = check_regression(record, baseline)
    assert not failures, "; ".join(failures)
