"""The perf trajectory benchmark — emits ``BENCH_perf.json``.

Run via ``make bench-perf`` (or the CI ``perf-smoke`` leg).  Measures DES
events/sec and wall seconds for the registered perf scenarios, the
reduced sweep's serial-vs-parallel wall time, the K-seed replication
leg (serial vs pooled wall + points/sec), the fabric leg, and the grid
leg (vectorized steady-grid points/sec + the adaptive-vs-exhaustive
search wall clock), writes the record to
``benchmarks/results/BENCH_perf.json``, and fails when events/sec or
replication points/sec drops more than
:data:`perf_harness.REGRESSION_TOLERANCE` below the committed
``benchmarks/BENCH_perf_baseline.json``.

The baseline is a *slow-container* measurement; the gate only fires on a
>30% drop, so faster CI runners never trip it spuriously — only a real
kernel regression does.
"""

import json

from perf_harness import (
    BASELINE_PATH,
    PERF_SCENARIOS,
    PERF_SWEEP,
    check_regression,
    collect,
    write_results,
)


def test_perf_trajectory():
    record = collect()
    path = write_results(record)
    assert path.exists()

    # every registered perf scenario produced a real measurement
    assert set(record["scenarios"]) == {name for name, _ in PERF_SCENARIOS}
    for name, row in record["scenarios"].items():
        assert row["events"] > 0, f"{name} executed no events"
        assert row["events_per_sec"] > 0, f"{name} has no throughput figure"

    # the serial-vs-parallel sweep comparison is part of the record
    sweep = record["sweep"]
    assert sweep["serial"]["wall_s"] > 0
    assert sweep["parallel"]["wall_s"] > 0
    assert sweep["parallel"]["workers"] >= 2

    # the K-seed replication leg records both wall clocks and the gated
    # throughput figure (completed seed×point tasks per second)
    rep = record["replication"]
    assert rep["seeds"] >= 2
    assert rep["workers"] >= 2
    assert rep["serial_wall_s"] > 0
    assert rep["wall_s"] > 0
    from repro.scenarios import build_sweep_spec

    spec = build_sweep_spec(PERF_SWEEP["name"], **PERF_SWEEP["overrides"])
    assert rep["tasks"] == rep["seeds"] * len(spec.points())
    assert rep["points_per_sec"] > 0

    # the fabric leg (ISSUE 9): gated DES throughput on fabric-kvs, the
    # fastpath-vs-DES wall comparison, and the replicated speedups
    fabric = record["fabric"]
    assert fabric["scenario"]["events"] > 0
    assert fabric["scenario"]["events_per_sec"] > 0
    fast = fabric["sweep_fastpath"]
    assert fast["des_wall_s"] > 0 and fast["fastpath_wall_s"] > 0
    assert fast["speedup"] > 0
    frep = fabric["replication"]
    assert frep["serial_wall_s"] > 0
    for key in ("workers2", "workers4"):
        assert frep[key]["wall_s"] > 0
        assert frep[key]["speedup"] > 0

    # the grid leg (ISSUE 10): gated vectorized-kernel points/sec plus
    # the adaptive-vs-exhaustive wall comparison and savings counters
    grid = record["grid"]
    assert grid["kernel"]["points"] > 0
    assert grid["kernel"]["points_per_sec"] > 0
    search = grid["search"]
    assert search["exhaustive_wall_s"] > 0 and search["adaptive_wall_s"] > 0
    assert search["speedup"] > 0
    assert search["des_points_run"] + search["des_points_saved"] == \
        search["points"]
    assert search["rows_match"] is True

    # the committed-baseline regression gate (>30% events/sec drop fails)
    assert BASELINE_PATH.exists(), (
        "no committed perf baseline; regenerate with "
        "`python benchmarks/perf_harness.py` and copy "
        "results/BENCH_perf.json to BENCH_perf_baseline.json"
    )
    baseline = json.loads(BASELINE_PATH.read_text())
    failures = check_regression(record, baseline)
    assert not failures, "; ".join(failures)
