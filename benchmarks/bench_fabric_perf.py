"""Fabric fast-path benchmark — the ISSUE 9 acceptance criteria.

``sweep-fabric-scale`` (reduced grid) with ``fastpath=True`` must beat the
full DES by >= 3x wall-clock at ``n_racks=4``, *and* stay inside the
``validate_fastpath`` tolerance gate on achieved pps, total wall power and
ops/W at the same grid point — speed that drifts from the DES is a model
bug, not a win.  The gated trend figure (fabric-kvs events/sec against the
committed baseline) rides in ``BENCH_perf.json``'s ``fabric`` section via
``bench_perf.py``; this module re-checks just the fabric gate so ``make
bench-fabric-perf`` fails standalone when the fabric kernel regresses.

Artifact: ``benchmarks/results/fabric_fastpath.txt``.
"""

import json
import pathlib
import time

from perf_harness import (
    BASELINE_PATH,
    PERF_FABRIC_SWEEP,
    check_regression,
    measure_fabric,
)
from repro.scenarios import (
    build_spec,
    build_sweep_spec,
    run_sweep,
    software_variant,
    validate_fastpath,
)

RESULTS = pathlib.Path(__file__).parent / "results"

SPEEDUP_FLOOR = 3.0


def test_fabric_fastpath_speedup_and_gate():
    """fastpath >= 3x faster than DES at 4 racks, within the tolerance
    gate on achieved pps, total wall W and ops/W."""
    spec = build_sweep_spec(
        PERF_FABRIC_SWEEP["name"], **PERF_FABRIC_SWEEP["overrides"]
    )
    n_racks = max(PERF_FABRIC_SWEEP["overrides"]["racks"])

    start = time.perf_counter()
    des = run_sweep(spec)
    des_wall_s = time.perf_counter() - start
    start = time.perf_counter()
    fast = run_sweep(spec, fastpath=True)
    fastpath_wall_s = time.perf_counter() - start
    speedup = des_wall_s / fastpath_wall_s if fastpath_wall_s > 0 else 0.0

    # the tolerance gate at the largest, highest-rate grid point: the
    # analytic uplink model must stay within DEFAULT_REL_TOL of the DES
    point_overrides = {
        k: v for k, v in PERF_FABRIC_SWEEP["overrides"].items()
        if k not in ("racks", "rates_kpps")
    }
    point_spec = build_spec(
        spec.base,
        n_racks=n_racks,
        rate_per_host_kpps=max(PERF_FABRIC_SWEEP["overrides"]["rates_kpps"]),
        **point_overrides,
    )
    gates = validate_fastpath(software_variant(point_spec))

    RESULTS.mkdir(exist_ok=True)
    lines = [
        f"{spec.name} fastpath vs DES @ n_racks={n_racks} "
        f"({len(spec.points())} grid points)",
        f"des      {des_wall_s:.2f}s",
        f"fastpath {fastpath_wall_s:.3f}s",
        f"speedup  {speedup:.1f}x (floor {SPEEDUP_FLOOR:.0f}x)",
    ]
    for gate in gates:
        lines.append(
            f"gate {gate.mode}: achieved {gate.achieved_rel_err:.3%} "
            f"power {gate.power_rel_err:.3%} "
            f"ops/W {gate.ops_per_watt_rel_err:.3%} "
            f"(tol {gate.rel_tol:.0%}) -> {'ok' if gate.ok else 'FAIL'}"
        )
    (RESULTS / "fabric_fastpath.txt").write_text("\n".join(lines) + "\n")

    assert len(des.points) == len(fast.points)
    assert speedup >= SPEEDUP_FLOOR, (
        f"fabric fastpath speedup {speedup:.1f}x < {SPEEDUP_FLOOR:.0f}x "
        f"(DES {des_wall_s:.2f}s, fastpath {fastpath_wall_s:.3f}s)"
    )
    for gate in gates:
        assert gate.ok, (
            f"fabric fastpath drifted from DES in mode {gate.mode!r}: "
            f"achieved {gate.achieved_rel_err:.1%}, "
            f"power {gate.power_rel_err:.1%}, "
            f"ops/W {gate.ops_per_watt_rel_err:.1%} "
            f"(tolerance {gate.rel_tol:.0%})"
        )


def test_fabric_perf_section_gate():
    """The fabric record section measures real work and holds the >30%
    events/sec regression gate against the committed baseline."""
    fabric = measure_fabric()
    assert fabric["scenario"]["events"] > 0
    assert fabric["sweep_fastpath"]["speedup"] > 0
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        failures = check_regression({"scenarios": {}, "fabric": fabric},
                                    baseline)
        assert not failures, "; ".join(failures)
