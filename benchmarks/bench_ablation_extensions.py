"""Ablations for the paper's future-work extensions implemented here.

* §9.2 shift strategies: reset+gate vs keep-warm vs partial reconfiguration
  over a realistic duty cycle — reproduces the paper's choice.
* §9.1 PEAS-style predictive control vs the naive threshold controller:
  energy over a diurnal load day.
* §2 virtualization: marginal power of co-locating programs on one card.
"""

import pytest

from repro import calibration as cal
from repro.core.shift_strategy import ShiftStrategy, ShiftStrategyModel
from repro.experiments.reporting import format_table
from repro.hw.virtualization import (
    VirtualizedCard,
    emu_dns_tenant,
    lake_tenant,
    p4xos_tenant,
)
from repro.steady import kvs_models
from repro.units import kpps


def test_ablation_shift_strategy(benchmark, save_result):
    """§9.2: the chosen strategy is the cheapest that never halts traffic."""

    def run():
        model = ShiftStrategyModel()
        # duty cycle: 10 minutes in software standby, then a shift at 100Kpps
        return model.assess_all(standby_s=600.0, rate_at_shift_pps=kpps(100))

    assessments = benchmark(run)
    rows = [
        (a.strategy.value, a.standby_power_w, a.standby_energy_j, a.warmup_s, a.traffic_halt_s)
        for a in assessments
    ]
    save_result(
        "ablation_shift_strategy",
        format_table(
            ["strategy", "standby [W]", "energy [J]", "warmup [s]", "halt [s]"], rows
        ),
    )
    model = ShiftStrategyModel()
    assert (
        model.paper_choice(600.0, kpps(100)) is ShiftStrategy.RESET_AND_GATE
    )
    by_strategy = {a.strategy: a for a in assessments}
    # keep-warm wastes the §5 memory+logic watts all standby long
    waste = (
        by_strategy[ShiftStrategy.KEEP_WARM].standby_energy_j
        - by_strategy[ShiftStrategy.RESET_AND_GATE].standby_energy_j
    )
    assert waste > 600.0 * 4.0  # > 4W for 10 minutes


def _diurnal_rates():
    """24 hourly rates (pps): quiet night, busy day — a Dynamo-like diurnal."""
    profile = [4, 3, 2, 2, 2, 3, 8, 20, 60, 110, 150, 170,
               180, 170, 160, 150, 140, 130, 120, 90, 60, 30, 15, 8]
    return [kpps(v) for v in profile]


def test_ablation_predictive_vs_threshold_energy(benchmark, save_result):
    """Daily energy: naive 80Kpps threshold vs model-predictive placement.

    The predictive controller also offloads in the 10–80Kpps band where the
    §7-style low-load power jump already makes hardware cheaper, recovering
    extra energy the naive crossover threshold leaves on the table.
    """

    def run():
        models = kvs_models()
        software = models["memcached"]
        hardware = models["lake"]
        standby_w = 17.88  # gated LaKe (§5 arithmetic)

        def hourly_power(rate, in_hardware):
            if in_hardware:
                return hardware.power_at(min(rate, hardware.capacity_pps))
            return software.power_at(min(rate, software.capacity_pps)) - 3.0 + standby_w

        threshold_j = 0.0
        predictive_j = 0.0
        always_sw_j = 0.0
        for rate in _diurnal_rates():
            threshold_j += hourly_power(rate, rate >= kpps(80)) * 3600.0
            saving = (
                software.power_at(min(rate, software.capacity_pps)) - 3.0 + standby_w
            ) - hardware.power_at(min(rate, hardware.capacity_pps))
            predictive_j += hourly_power(rate, saving > 2.0) * 3600.0
            always_sw_j += hourly_power(rate, False) * 3600.0
        return threshold_j, predictive_j, always_sw_j

    threshold_j, predictive_j, always_sw_j = benchmark(run)
    save_result(
        "ablation_controller_energy",
        format_table(
            ["policy", "daily energy [MJ]", "vs always-software"],
            [
                ("always software", always_sw_j / 1e6, "-"),
                ("threshold @80Kpps", threshold_j / 1e6,
                 f"{1 - threshold_j / always_sw_j:.1%}"),
                ("model-predictive", predictive_j / 1e6,
                 f"{1 - predictive_j / always_sw_j:.1%}"),
            ],
        ),
    )
    assert predictive_j <= threshold_j < always_sw_j


def test_ablation_virtualization_marginal_power(benchmark, save_result):
    """§2/§6: once a card is deployed, each extra program costs only its
    logic watts — the consolidation argument."""

    def run():
        card = VirtualizedCard()
        rows = []
        for make, label in (
            (lambda: lake_tenant(pe_count=2), "LaKe (2 PEs)"),
            (p4xos_tenant, "P4xos"),
            (emu_dns_tenant, "Emu DNS"),
        ):
            tenant = make()
            marginal = card.marginal_power_w(tenant)
            card.admit(tenant)
            rows.append((label, marginal, card.power_w()))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "ablation_virtualization",
        format_table(["tenant added", "marginal [W]", "card total [W]"], rows),
    )
    # first tenant pays its logic + the shared memories; the rest only logic
    assert rows[0][1] > 10.0   # LaKe brings up DRAM+SRAM
    assert rows[1][1] == pytest.approx(cal.P4XOS_LOGIC_W)
    assert rows[2][1] == pytest.approx(cal.EMU_DNS_LOGIC_W)
    # three services on one card cost far less than three cards
    three_cards = cal.LAKE_CARD_W + cal.P4XOS_CARD_W + cal.EMU_DNS_CARD_W
    assert rows[2][2] < 0.6 * three_cards
