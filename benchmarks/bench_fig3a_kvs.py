"""Figure 3(a): KVS power vs throughput.

Paper result: memcached rises from 39W toward ~115W by 1Mpps; LaKe sits
near 59W flat up to 13Mpps line rate; the power-efficiency crossover is
around 80Kpps with the Mellanox NIC and over 300Kpps with the Intel X520.
"""

import pytest

from repro.experiments import figures
from repro.host.nic import NIC_INTEL_X520
from repro.units import kpps


def test_figure3a_mellanox(benchmark, save_result):
    result = benchmark(figures.figure3a)
    save_result("figure3a_mellanox", result.render())
    assert result.crossover_pps == pytest.approx(kpps(80), rel=0.15)
    lake = result.series["lake"]
    memcached = result.series["memcached"]
    # who wins where: software below the crossover, LaKe above
    assert memcached[0].power_w < lake[0].power_w
    assert memcached[-1].power_w > lake[-1].power_w


def test_figure3a_intel_nic(benchmark, save_result):
    result = benchmark(lambda: figures.figure3a(nic=NIC_INTEL_X520))
    save_result("figure3a_intel", result.render())
    assert result.crossover_pps == pytest.approx(kpps(300), rel=0.1)


def test_figure3a_lake_line_rate_same_power(benchmark):
    """§4.2: LaKe sustains 13Mpps 'for the same power consumption'."""
    result = benchmark(lambda: figures.figure3a(steps=41))
    lake = result.series["lake"]
    assert max(p.power_w for p in lake) - min(p.power_w for p in lake) < 1.5
