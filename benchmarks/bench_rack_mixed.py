"""The heterogeneous rack: 2 KVS shards + 2 Paxos groups + 2 anycast DNS
replicas behind one ToR, per-host controller kinds (§9.4 at rack scale).

Checks the mixed-rack acceptance end to end: both consensus groups shift
independently (own logical leader addresses, distinct shift times), DNS
queries are steered across replicas by qname hash, and every placement
serves throughout.  A full DES run, so the benchmark runs a single round.
"""

import pytest

from repro.__main__ import main
from repro.scenarios import run_scenario


def _run():
    return run_scenario("rack-mixed")


def test_rack_mixed(benchmark, save_result):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_result("rack_mixed", result.render())

    # every app serves
    assert len(result.hosts) == 2
    assert len(result.dns_hosts) == 2
    assert len(result.paxos_groups) == 2
    assert all(h.responses > 0 for h in result.all_hosts)
    assert all(g.decided > 0 for g in result.paxos_groups)

    # >=2 Paxos groups shift independently: distinct first-shift moments
    firsts = result.paxos_distinct_first_shift_times()
    assert len(firsts) >= 2

    # DNS queries steered by qname hash across >=2 replicas
    steered = [c for c in result.dns_routed_per_host.values() if c > 0]
    assert len(steered) >= 2

    # mixed controller kinds all shifted on their own triggers
    shifted = {h.name for h in result.hosts_with_shifts()}
    assert {"kvs0", "kvs1"} <= shifted


def test_rack_mixed_runs_from_cli(capsys):
    assert main(["rack-mixed", "--duration", "2.5"]) == 0
    out = capsys.readouterr().out
    assert "paxos[px0]" in out and "paxos[px1]" in out
    assert "qname-hash routing" in out
