"""Multi-rack fabric acceptance: the ``make fabric-smoke`` CI gate.

Three claims, each an assertion over the leaf-spine scenarios:

* **steering asymmetry** — the centralized controller commits a same-rack
  steer after the shorter sustain, so giving the hot rack a cold neighbor
  makes the steer land strictly earlier than the cross-rack fallback;
* **oversubscription shows up in the tail** — the same fabric-kvs grid
  with its uplinks oversubscribed queues on the spine path and raises the
  client p99 versus the 1:1 fabric;
* **attribution stays airtight at fabric scale** — per-placement wall
  power sums to the scenario total within 1e-6, racks or not.

Rendered tables land in ``benchmarks/results/`` (CI artifacts).
"""

import dataclasses

from repro.scenarios import (
    NO_CONTROLLER,
    KvsHostSpec,
    ScenarioBuilder,
    UplinkSpec,
    build_spec,
    build_sweep_spec,
    run_scenario,
    run_sweep,
)


def _p99(values):
    ordered = sorted(values)
    assert ordered, "no latency samples"
    return ordered[int(0.99 * (len(ordered) - 1))]


def _client_p99_us(spec):
    run = ScenarioBuilder(spec).build()
    result = run.execute()
    samples = []
    for host in run.kvs_hosts:
        samples.extend(
            v for v in host.client.latency_series.values if v is not None
        )
    return _p99(samples), result


def test_same_rack_steer_lands_before_cross_rack(save_result):
    """fabric-kvs-crossrack's hot host has no cold neighbor, so its steer
    waits out the longer cross-rack sustain; adding a cold host to rack0
    turns the same decision into the earlier same-rack move."""
    cross = run_scenario("fabric-kvs-crossrack", duration_s=2.0, rate_kpps=20.0)
    save_result("fabric_kvs_crossrack", cross.render())
    assert len(cross.cross_rack_steers()) >= 1
    assert cross.same_rack_steers() == []
    cross_steer = cross.cross_rack_steers()[0]
    assert cross_steer.from_rack == "rack0" and cross_steer.to_rack == "rack1"

    spec = build_spec("fabric-kvs-crossrack", duration_s=2.0, rate_kpps=20.0)
    spec = dataclasses.replace(
        spec,
        name="fabric-kvs-samerack",
        kvs_hosts=(
            *spec.kvs_hosts,
            KvsHostSpec(name="kvs3", rack="rack0", controller=NO_CONTROLLER),
        ),
    )
    same = ScenarioBuilder(spec).run()
    save_result("fabric_kvs_samerack", same.render())
    assert len(same.same_rack_steers()) >= 1
    same_steer = same.same_rack_steers()[0]
    assert same_steer.from_rack == same_steer.to_rack == "rack0"
    assert same_steer.time_us < cross_steer.time_us

    # the hot host also got its centralized placement shift in both runs
    for result in (cross, same):
        host = {h.name: h for h in result.hosts}["rack0/kvs0"]
        assert host.shift_times_us, "centralized placement shift missing"


def test_oversubscribed_uplink_raises_cross_rack_p99(save_result):
    """fabric-kvs routes every request and response over the spine, so
    oversubscribing the uplinks queues the cross-rack path and lifts the
    client p99 above the 1:1 fabric's."""

    def fabric_at(oversubscription):
        spec = build_spec(
            "fabric-kvs",
            n_racks=2,
            hosts_per_rack=2,
            rate_per_host_kpps=24.0,
            duration_s=1.0,
        )
        return dataclasses.replace(
            spec,
            fabric=dataclasses.replace(
                spec.fabric,
                uplink=UplinkSpec(
                    bandwidth_gbps=1.0, oversubscription=oversubscription
                ),
            ),
        )

    flat_p99, flat = _client_p99_us(fabric_at(1.0))
    oversub_p99, oversub = _client_p99_us(fabric_at(8.0))
    save_result(
        "fabric_oversubscription_p99",
        "\n".join(
            [
                "fabric-kvs client p99 vs uplink oversubscription",
                f"  1:1  p99 {flat_p99:8.2f} us  "
                f"(uplink queueing {flat.uplink_queued_us / 1e3:.2f} ms)",
                f"  8:1  p99 {oversub_p99:8.2f} us  "
                f"(uplink queueing {oversub.uplink_queued_us / 1e3:.2f} ms)",
            ]
        ),
    )
    assert flat.spine_crossrack_packets > 0
    assert oversub.uplink_queued_us > flat.uplink_queued_us
    assert oversub_p99 > flat_p99


def test_fabric_power_attribution_sums_to_totals(save_result):
    """Per-placement wall power must account for every watt the fabric
    scenario reports — the §9.4 attribution invariant at rack count > 1."""
    lines = ["scenario                 placements      sum [W]    total [W]"]
    for name, overrides in (
        ("fabric-kvs", dict(duration_s=0.5)),
        ("fabric-kvs-crossrack", dict(duration_s=1.0)),
        ("fabric-paxos-split", dict(duration_s=1.0)),
    ):
        result = run_scenario(name, **overrides)
        attributed = sum(result.power_by_placement.values())
        assert result.total_wall_power_w > 0.0
        assert abs(attributed - result.total_wall_power_w) <= 1e-6, (
            f"{name}: attributed {attributed!r} != "
            f"total {result.total_wall_power_w!r}"
        )
        lines.append(
            f"{name:<24} {len(result.power_by_placement):>10} "
            f"{attributed:>12.6f} {result.total_wall_power_w:>12.6f}"
        )
    save_result("fabric_power_attribution", "\n".join(lines))


def test_sweep_fabric_scale_reduced(save_result):
    """A reduced sweep-fabric-scale grid: per-rack-count tipping rows
    exist and every rack count reaches its crossover."""
    spec = build_sweep_spec(
        "sweep-fabric-scale",
        racks=(1, 2),
        rates_kpps=(8.0, 32.0),
        duration_s=0.3,
        keyspace=4_000,
    )
    result = run_sweep(spec)
    save_result("sweep_fabric_scale", result.render())
    tips = {t.fixed["n_racks"]: t for t in result.tipping_points()}
    assert set(tips) == {1, 2}
    assert all(t.crossover is not None for t in tips.values())
