"""§9.4 rack-scale tipping points: the scenario sweep engine.

A reduced ``sweep-rack-kvs`` grid (1-2 hosts × a 2-point per-host rate
ramp) is enough to pin the paper's claim at rack scale: at low per-host
load the software-pinned rack wins on ops/W (the card's active draw cannot
pay for itself), beyond the crossover the hardware-pinned rack wins, and
the win is monotone along the ramp.  The same runs exercise the per-
placement wall-power attribution, whose decomposition must sum to the
independently-reduced total rack power.

This module doubles as the ``make sweep-smoke`` CI leg: the rendered
tipping-point table lands in ``benchmarks/results/`` with the other
paper-vs-measured artifacts.
"""

import pytest

from repro.scenarios import build_sweep_spec, run_sweep

#: Low end well under the §8 crossover, high end well over it.
RATE_RAMP_KPPS = (8.0, 32.0)


@pytest.fixture(scope="module")
def sweep_result():
    spec = build_sweep_spec(
        "sweep-rack-kvs",
        hosts=(1, 2),
        rates_kpps=RATE_RAMP_KPPS,
        duration_s=0.5,
        keyspace=4_000,
    )
    return run_sweep(spec)


def test_crossover_exists_for_every_host_count(sweep_result):
    """Each host-count row tips from software to hardware on the ramp."""
    tips = sweep_result.tipping_points()
    assert len(tips) == 2  # one row per host count
    for tip in tips:
        assert tip.crossover is not None, f"no crossover at {tip.fixed}"
        assert tip.hw_ops_per_watt > tip.sw_ops_per_watt


def test_crossover_is_monotone(sweep_result):
    """Once the hardware rack wins on ops/W it keeps winning: software
    below the tip, hardware at and above it."""
    for tip in sweep_result.tipping_points():
        assert tip.monotone
    for pt in sweep_result.points:
        rate = pt.params["rate_per_host_kpps"]
        if rate < min(RATE_RAMP_KPPS) + 1e-9:
            assert not pt.hardware_wins, f"hardware won below the tip: {pt.params}"
        if rate >= max(RATE_RAMP_KPPS) - 1e-9:
            assert pt.hardware_wins, f"software won above the tip: {pt.params}"


def test_power_attribution_sums_to_total(sweep_result):
    """Per-placement wall-power attribution decomposes the rack total."""
    for pt in sweep_result.points:
        for agg in (pt.software, pt.hardware):
            assert agg.power_by_placement
            assert agg.attributed_power_w == pytest.approx(
                agg.total_power_w, abs=1e-6
            )


def test_hardware_keeps_latency_flat(sweep_result):
    """§9.5: the pipelined card's p99 does not inflate with load the way
    the software stack's does."""
    low = sweep_result.point(n_hosts=1, rate_per_host_kpps=min(RATE_RAMP_KPPS))
    high = sweep_result.point(n_hosts=1, rate_per_host_kpps=max(RATE_RAMP_KPPS))
    assert high.hardware.p99_latency_us < high.software.p99_latency_us
    # the hardware p99 moves little across a 4x rate step
    assert high.hardware.p99_latency_us < low.hardware.p99_latency_us * 2.0


def test_saves_tipping_table(sweep_result, save_result):
    path = save_result("sweep_rack_kvs_tipping", sweep_result.render())
    assert path.exists()
