"""Ablation: the LaKe design choices DESIGN.md calls out (§5).

Sweeps the knobs the paper's Figure 4 varies one at a time and quantifies
each design decision's cost/benefit:

* PE count (throughput per watt as cores scale);
* external memories on/off (the order-of-magnitude capacity vs ~11W);
* clock gating / reset (the §9.2 standby configuration).
"""

import pytest

from repro import calibration as cal
from repro.experiments.reporting import format_table
from repro.hw.fpga import make_lake_fpga
from repro.steady.kvs import lake_in_server_model


def _pe_sweep():
    rows = []
    for pes in (1, 2, 3, 4, 5):
        model = lake_in_server_model(pe_count=pes)
        capacity = model.capacity_pps
        power = model.power_at(capacity)
        rows.append((pes, capacity / 1e6, power, capacity / power))
    return rows


def test_ablation_pe_count(benchmark, save_result):
    rows = benchmark(_pe_sweep)
    save_result(
        "ablation_pe_count",
        format_table(["PEs", "capacity [Mpps]", "power [W]", "ops/W"], rows),
    )
    # throughput scales with PEs until the 13Mpps line rate (§3.1, §5.2)
    capacities = [row[1] for row in rows]
    assert capacities == sorted(capacities)
    assert capacities[3] == pytest.approx(13.0, rel=0.02)  # 4 PEs: 13.2 -> capped
    # each PE adds only ~0.25W, so ops/W *improves* with more PEs
    assert rows[-1][3] > rows[0][3]


def test_ablation_memories(benchmark, save_result):
    """§5.3: the memory trade-off — ~11W buys ×65k capacity."""

    def run():
        with_mem = make_lake_fpga(with_external_memories=True)
        without = make_lake_fpga(with_external_memories=False)
        return with_mem.power_w() - without.power_w()

    extra_power = benchmark(run)
    save_result(
        "ablation_memories",
        format_table(
            ["configuration", "power delta [W]", "value entries"],
            [
                ("on-chip only", 0.0, cal.ONCHIP_VALUE_ENTRIES),
                ("with DRAM+SRAM", extra_power, cal.DRAM_VALUE_ENTRIES),
            ],
        ),
    )
    assert extra_power == pytest.approx(cal.MEMORIES_TOTAL_W)
    assert cal.DRAM_VALUE_ENTRIES / cal.ONCHIP_VALUE_ENTRIES >= 60_000


def test_ablation_standby_ladder(benchmark, save_result):
    """Power ladder of the §9.2 standby configurations."""

    def run():
        ladder = []
        card = make_lake_fpga()
        ladder.append(("active", card.power_w()))
        card.clock_gate_all_logic()
        ladder.append(("clock gated", card.power_w()))
        card.reset_memories()
        ladder.append(("clock gated + mem reset", card.power_w()))
        card.remove_memories()
        ladder.append(("memories removed", card.power_w()))
        return ladder

    ladder = benchmark(run)
    save_result("ablation_standby", format_table(["state", "power [W]"], ladder))
    powers = [p for _, p in ladder]
    assert powers == sorted(powers, reverse=True)
    # full standby saving is meaningful but bounded
    assert 4.0 < powers[0] - powers[2] < 7.0
