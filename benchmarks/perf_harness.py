"""Shared measurement core for the perf trajectory (``BENCH_perf.json``).

Measures what the bench-perf make target and the CI perf-smoke leg track:

* DES throughput (executed events per wall-clock second) and wall seconds
  per registered scenario;
* sweep wall time, serial vs parallel executor.

Kept separate from ``bench_perf.py`` so a plain ``python
benchmarks/perf_harness.py`` run (no pytest) can emit the JSON too.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time
from typing import Dict, List, Optional

#: Scenario grid: (scenario name, factory overrides).  Durations are cut
#: far below the registry defaults so the whole suite stays CI-sized; the
#: events/sec figure is duration-independent enough for trend tracking.
PERF_SCENARIOS = [
    ("rack8-kvs-sharded", dict(duration_s=0.3)),
    ("rack-kvs", dict(duration_s=0.3)),
    ("rack-mixed", dict(duration_s=0.3)),
    ("fig7-paxos-transition", dict(duration_s=1.0)),
]

#: Reduced sweep used for the serial-vs-parallel wall-time comparison.
PERF_SWEEP = dict(
    name="sweep-rack-kvs",
    overrides=dict(hosts=(1, 2), rates_kpps=(8.0, 32.0), duration_s=0.2,
                   keyspace=4_000),
)

#: Replication leg: K seeds of the reduced sweep through run_replicated,
#: serial vs a small worker pool (ISSUE 7's replication-scale executor).
PERF_REPLICATION = dict(seeds=4, workers=2)

#: Fabric leg (ISSUE 9): DES throughput on the leaf-spine scenario, the
#: fastpath-vs-DES wall clock of a reduced ``sweep-fabric-scale`` at its
#: largest rack count, and the replicated executor's speedup at 2/4
#: workers on a small fabric grid.
PERF_FABRIC_SCENARIO = ("fabric-kvs", dict(n_racks=2, duration_s=0.3,
                                           keyspace=4_000))
PERF_FABRIC_SWEEP = dict(
    name="sweep-fabric-scale",
    overrides=dict(racks=(4,), rates_kpps=(8.0, 24.0), hosts_per_rack=2,
                   duration_s=0.2, keyspace=4_000),
)
PERF_FABRIC_REPLICATION = dict(
    overrides=dict(racks=(2,), rates_kpps=(8.0, 16.0), hosts_per_rack=2,
                   duration_s=0.1, keyspace=4_000),
    seeds=2,
    workers=(2, 4),
)

#: Grid leg (ISSUE 10): the vectorized steady-grid kernel's points/sec
#: (the gated trend figure) and the adaptive-vs-exhaustive wall clock of
#: a reduced ``sweep-fabric-scale`` ramp — long enough (16 rate steps x
#: 2 rack counts) that the bracketed search's handful of DES probes pays
#: for itself well past the >=5x acceptance floor in
#: ``bench_grid_perf.py``.
PERF_GRID = dict(
    name="sweep-fabric-scale",
    overrides=dict(
        racks=(1, 2),
        rates_kpps=tuple(6.0 + 3.0 * i for i in range(16)),
        hosts_per_rack=2,
        duration_s=0.15,
        keyspace=4_000,
    ),
)

RESULTS_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_perf.json"
BASELINE_PATH = pathlib.Path(__file__).parent / "BENCH_perf_baseline.json"

#: CI regression gate: fail when events/sec drops more than this fraction
#: below the committed baseline (ISSUE: >30%).
REGRESSION_TOLERANCE = 0.30


def measure_scenario(name: str, overrides: dict) -> Dict[str, float]:
    """One scenario run -> events executed, wall seconds, events/sec."""
    from repro.scenarios.builder import ScenarioBuilder
    from repro.scenarios.registry import build_spec

    run = ScenarioBuilder(build_spec(name, **overrides)).build()
    start = time.perf_counter()
    run.execute()
    wall_s = time.perf_counter() - start
    events = run.sim.events_executed
    return {
        "events": events,
        "wall_s": round(wall_s, 4),
        "events_per_sec": round(events / wall_s, 1) if wall_s > 0 else 0.0,
    }


def measure_sweep(workers: Optional[int] = None) -> Dict[str, float]:
    """One reduced sweep run -> wall seconds (serial or parallel)."""
    from repro.scenarios import build_sweep_spec, run_sweep

    spec = build_sweep_spec(PERF_SWEEP["name"], **PERF_SWEEP["overrides"])
    start = time.perf_counter()
    kwargs = {} if workers is None else {"workers": workers}
    run_sweep(spec, **kwargs)
    return {"wall_s": round(time.perf_counter() - start, 4)}


def measure_replication(
    seeds: int = 4, workers: int = 2
) -> Dict[str, object]:
    """K-seed replicated sweep -> serial and pooled wall seconds.

    ``points_per_sec`` (completed seedxgrid-point tasks per wall second,
    pooled) is the gated trend figure; ``speedup`` is informational — it
    tracks the machine's core count as much as the code.
    """
    from repro.scenarios import build_sweep_spec, run_replicated

    spec = build_sweep_spec(PERF_SWEEP["name"], **PERF_SWEEP["overrides"])
    n_tasks = seeds * len(spec.points())
    start = time.perf_counter()
    run_replicated(spec, seeds=seeds, workers=1)
    serial_wall_s = time.perf_counter() - start
    start = time.perf_counter()
    run_replicated(spec, seeds=seeds, workers=workers)
    wall_s = time.perf_counter() - start
    return {
        "seeds": seeds,
        "workers": workers,
        "tasks": n_tasks,
        "serial_wall_s": round(serial_wall_s, 4),
        "wall_s": round(wall_s, 4),
        "speedup": round(serial_wall_s / wall_s, 3) if wall_s > 0 else 0.0,
        "points_per_sec": round(n_tasks / wall_s, 3) if wall_s > 0 else 0.0,
    }


def measure_fabric() -> Dict[str, object]:
    """The ``fabric`` record section (ISSUE 9).

    ``scenario`` is the gated trend figure (DES events/sec on the
    leaf-spine ``fabric-kvs``); ``sweep_fastpath`` compares the full-DES
    and analytic-fastpath wall clock of the reduced ``sweep-fabric-scale``
    at 4 racks (the >= 3x acceptance criterion lives in
    ``bench_fabric_perf.py``); ``replication`` reports the replicated
    executor's speedup at 2 and 4 workers on a small fabric grid —
    informational, like the single-rack replication speedup, because it
    tracks the machine's core count as much as the code.
    """
    from repro.scenarios import build_sweep_spec, run_replicated, run_sweep

    name, overrides = PERF_FABRIC_SCENARIO
    scenario = {"name": name, **measure_scenario(name, overrides)}

    sweep_spec = build_sweep_spec(
        PERF_FABRIC_SWEEP["name"], **PERF_FABRIC_SWEEP["overrides"]
    )
    start = time.perf_counter()
    run_sweep(sweep_spec)
    des_wall_s = time.perf_counter() - start
    start = time.perf_counter()
    run_sweep(sweep_spec, fastpath=True)
    fastpath_wall_s = time.perf_counter() - start
    sweep_fastpath = {
        "name": PERF_FABRIC_SWEEP["name"],
        "n_racks": max(PERF_FABRIC_SWEEP["overrides"]["racks"]),
        "points": len(sweep_spec.points()),
        "des_wall_s": round(des_wall_s, 4),
        "fastpath_wall_s": round(fastpath_wall_s, 4),
        "speedup": (
            round(des_wall_s / fastpath_wall_s, 1)
            if fastpath_wall_s > 0 else 0.0
        ),
    }

    rep_cfg = PERF_FABRIC_REPLICATION
    rep_spec = build_sweep_spec(
        PERF_FABRIC_SWEEP["name"], **rep_cfg["overrides"]
    )
    seeds = rep_cfg["seeds"]
    n_tasks = seeds * len(rep_spec.points())
    start = time.perf_counter()
    run_replicated(rep_spec, seeds=seeds, workers=1)
    serial_wall_s = time.perf_counter() - start
    replication: Dict[str, object] = {
        "name": PERF_FABRIC_SWEEP["name"],
        "seeds": seeds,
        "tasks": n_tasks,
        "serial_wall_s": round(serial_wall_s, 4),
    }
    for workers in rep_cfg["workers"]:
        start = time.perf_counter()
        run_replicated(rep_spec, seeds=seeds, workers=workers)
        wall_s = time.perf_counter() - start
        replication[f"workers{workers}"] = {
            "wall_s": round(wall_s, 4),
            "speedup": round(serial_wall_s / wall_s, 3) if wall_s > 0 else 0.0,
        }
    return {
        "scenario": scenario,
        "sweep_fastpath": sweep_fastpath,
        "replication": replication,
    }


def measure_grid() -> Dict[str, object]:
    """The ``grid`` record section (ISSUE 10).

    ``kernel`` is the gated trend figure: grid points answered per wall
    second by one vectorized :func:`steady_grid` pass over the reduced
    ``sweep-fabric-scale`` grid (repeated until the wall clock is
    measurable).  ``search`` compares the exhaustive and adaptive sweep
    wall clock on the same grid and reports the DES savings counters;
    ``rows_match`` records whether the two searches produced identical
    tipping rows (asserted, with the >=5x speedup floor, in
    ``bench_grid_perf.py``).
    """
    from repro.scenarios import (
        build_sweep_spec,
        run_sweep,
        software_variant,
        steady_grid,
    )
    from repro.scenarios.sweep import _materialize
    from repro.steady import grid as grid_kernels

    spec = build_sweep_spec(PERF_GRID["name"], **PERF_GRID["overrides"])
    specs = [
        software_variant(_materialize(spec, params))
        for params in spec.points()
    ]
    steady_grid(specs, "software")  # warm the memoized model constants
    passes = 0
    start = time.perf_counter()
    while True:
        steady_grid(specs, "software")
        passes += 1
        kernel_wall_s = time.perf_counter() - start
        if kernel_wall_s >= 0.2 and passes >= 3:
            break
    kernel = {
        "numpy": grid_kernels.have_numpy(),
        "points": len(specs),
        "passes": passes,
        "wall_s": round(kernel_wall_s, 4),
        "points_per_sec": (
            round(len(specs) * passes / kernel_wall_s, 1)
            if kernel_wall_s > 0 else 0.0
        ),
    }

    start = time.perf_counter()
    exhaustive = run_sweep(spec)
    exhaustive_wall_s = time.perf_counter() - start
    start = time.perf_counter()
    adaptive = run_sweep(spec, search="adaptive")
    adaptive_wall_s = time.perf_counter() - start
    search = {
        "name": PERF_GRID["name"],
        "points": adaptive.grid_points_total,
        "exhaustive_wall_s": round(exhaustive_wall_s, 4),
        "adaptive_wall_s": round(adaptive_wall_s, 4),
        "speedup": (
            round(exhaustive_wall_s / adaptive_wall_s, 2)
            if adaptive_wall_s > 0 else 0.0
        ),
        "des_points_run": adaptive.des_points_run,
        "des_points_saved": (
            adaptive.grid_points_total - adaptive.des_points_run
        ),
        "rows_match": (
            adaptive.tipping_points() == exhaustive.tipping_points()
        ),
    }
    return {"kernel": kernel, "search": search}


def collect(parallel_workers: int = 2, include_sweep: bool = True,
            include_fabric: bool = True, include_grid: bool = True) -> dict:
    """The full perf record written to ``BENCH_perf.json``."""
    scenarios = {}
    for name, overrides in PERF_SCENARIOS:
        scenarios[name] = measure_scenario(name, overrides)
    record = {
        "schema": 1,
        "python": platform.python_version(),
        "scenarios": scenarios,
    }
    if include_sweep:
        record["sweep"] = {
            "name": PERF_SWEEP["name"],
            "serial": measure_sweep(),
            "parallel": {
                "workers": parallel_workers,
                **measure_sweep(workers=parallel_workers),
            },
        }
        record["replication"] = {
            "name": PERF_SWEEP["name"],
            **measure_replication(**PERF_REPLICATION),
        }
    if include_fabric:
        record["fabric"] = measure_fabric()
    if include_grid:
        record["grid"] = measure_grid()
    return record


def write_results(record: dict, path: pathlib.Path = RESULTS_PATH) -> pathlib.Path:
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def check_regression(record: dict, baseline: dict) -> List[str]:
    """Events/sec regressions beyond the tolerance, as human messages.

    Only scenarios present in both records are compared, so adding or
    retiring a perf scenario does not break the gate mid-transition.
    """
    failures = []
    base_scenarios = baseline.get("scenarios", {})
    for name, measured in record["scenarios"].items():
        base = base_scenarios.get(name)
        if not base:
            continue
        floor = base["events_per_sec"] * (1.0 - REGRESSION_TOLERANCE)
        if measured["events_per_sec"] < floor:
            failures.append(
                f"{name}: {measured['events_per_sec']:.0f} events/sec is "
                f">{REGRESSION_TOLERANCE:.0%} below the baseline "
                f"{base['events_per_sec']:.0f}"
            )
    base_rep = baseline.get("replication")
    rep = record.get("replication")
    if base_rep and rep and rep.get("seeds") == base_rep.get("seeds"):
        floor = base_rep["points_per_sec"] * (1.0 - REGRESSION_TOLERANCE)
        if rep["points_per_sec"] < floor:
            failures.append(
                f"replication: {rep['points_per_sec']:.2f} points/sec is "
                f">{REGRESSION_TOLERANCE:.0%} below the baseline "
                f"{base_rep['points_per_sec']:.2f}"
            )
    base_kernel = (baseline.get("grid") or {}).get("kernel")
    kernel = (record.get("grid") or {}).get("kernel")
    if (
        base_kernel
        and kernel
        and kernel.get("points") == base_kernel.get("points")
        and kernel.get("numpy") == base_kernel.get("numpy")
    ):
        floor = base_kernel["points_per_sec"] * (1.0 - REGRESSION_TOLERANCE)
        if kernel["points_per_sec"] < floor:
            failures.append(
                f"grid kernel: {kernel['points_per_sec']:.0f} points/sec is "
                f">{REGRESSION_TOLERANCE:.0%} below the baseline "
                f"{base_kernel['points_per_sec']:.0f}"
            )
    base_fabric = (baseline.get("fabric") or {}).get("scenario")
    fabric = (record.get("fabric") or {}).get("scenario")
    if base_fabric and fabric and fabric.get("name") == base_fabric.get("name"):
        floor = base_fabric["events_per_sec"] * (1.0 - REGRESSION_TOLERANCE)
        if fabric["events_per_sec"] < floor:
            failures.append(
                f"fabric {fabric['name']}: {fabric['events_per_sec']:.0f} "
                f"events/sec is >{REGRESSION_TOLERANCE:.0%} below the "
                f"baseline {base_fabric['events_per_sec']:.0f}"
            )
    return failures


def main(argv=None) -> int:
    record = collect()
    path = write_results(record)
    print(f"wrote {path}")
    for name, row in record["scenarios"].items():
        print(f"  {name}: {row['events_per_sec']:.0f} events/sec "
              f"({row['events']} events in {row['wall_s']:.2f}s)")
    if "sweep" in record:
        sweep = record["sweep"]
        print(f"  {sweep['name']}: serial {sweep['serial']['wall_s']:.2f}s, "
              f"parallel(x{sweep['parallel']['workers']}) "
              f"{sweep['parallel']['wall_s']:.2f}s")
    if "replication" in record:
        rep = record["replication"]
        print(f"  replication K={rep['seeds']}: serial "
              f"{rep['serial_wall_s']:.2f}s, pooled(x{rep['workers']}) "
              f"{rep['wall_s']:.2f}s (speedup {rep['speedup']:.2f}x, "
              f"{rep['points_per_sec']:.2f} points/sec)")
    if "fabric" in record:
        fabric = record["fabric"]
        scen = fabric["scenario"]
        fast = fabric["sweep_fastpath"]
        print(f"  fabric {scen['name']}: {scen['events_per_sec']:.0f} "
              f"events/sec ({scen['events']} events in {scen['wall_s']:.2f}s)")
        print(f"  fabric {fast['name']} @ {fast['n_racks']} racks: DES "
              f"{fast['des_wall_s']:.2f}s vs fastpath "
              f"{fast['fastpath_wall_s']:.3f}s ({fast['speedup']:.0f}x)")
        rep = fabric["replication"]
        pooled = ", ".join(
            f"x{w[len('workers'):]} {rep[w]['speedup']:.2f}x"
            for w in sorted(rep) if w.startswith("workers")
        )
        print(f"  fabric replication K={rep['seeds']} ({rep['tasks']} tasks):"
              f" serial {rep['serial_wall_s']:.2f}s, speedup {pooled}")
    if "grid" in record:
        kernel = record["grid"]["kernel"]
        search = record["grid"]["search"]
        print(f"  grid kernel: {kernel['points_per_sec']:.0f} points/sec "
              f"({kernel['points']} points x {kernel['passes']} passes, "
              f"numpy={kernel['numpy']})")
        print(f"  grid {search['name']}: exhaustive "
              f"{search['exhaustive_wall_s']:.2f}s vs adaptive "
              f"{search['adaptive_wall_s']:.2f}s ({search['speedup']:.1f}x, "
              f"DES {search['des_points_run']}/{search['points']}, "
              f"{search['des_points_saved']} saved, rows_match="
              f"{search['rows_match']})")
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        failures = check_regression(record, baseline)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
