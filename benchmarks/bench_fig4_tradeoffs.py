"""Figure 4: the effects of LaKe's design trade-offs on power.

Paper result (bar chart, standalone card): external memories are the
biggest contributor (≥10W); holding them in reset saves 40% of their
power; clock gating the logic saves <1W; each PE costs ~0.25W; the idle
no-card server is roughly comparable to standalone idle LaKe.
"""

import pytest

from repro import calibration as cal
from repro.experiments import figures


def test_figure4_bars(benchmark, save_result):
    result = benchmark(figures.figure4)
    save_result("figure4", result.render())
    assert len(result.bars) == 9


def test_figure4_ordering(benchmark):
    """The qualitative bar ordering of Figure 4."""
    result = benchmark(figures.figure4)
    assert (
        result.bar("Ref. NIC")
        < result.bar("1 PE & no mem")
        < result.bar("No mem")
        <= result.bar("Max load & no mem")
        < result.bar("Reset mem & clk gating")
        < result.bar("Reset mem")
        < result.bar("Clk gating")
        < result.bar("LaKe")
    )


def test_figure4_component_claims(benchmark):
    result = benchmark(figures.figure4)
    # memories >= 10W (§5.1)
    assert result.bar("LaKe") - result.bar("No mem") >= 10.0
    # reset saves 40% of memory power (§5.1)
    assert result.bar("LaKe") - result.bar("Reset mem") == pytest.approx(
        cal.MEMORIES_TOTAL_W * cal.MEMORY_RESET_SAVING_FRACTION, rel=0.01
    )
    # clock gating < 1W (§5.1)
    assert result.bar("LaKe") - result.bar("Clk gating") < 1.0
