"""§8 + §9.4: when to use in-network computing.

Paper result: the tipping point Pd_N(R) = Pd_S(R) sits at the §4 crossover
for NIC-class devices (80–150Kpps range across the three apps), and at
R ≈ 0 for a ToR switch that already forwards the traffic (<1W per Mqps).
"""

import pytest

from repro.experiments import figures
from repro.units import kpps


def test_section8(benchmark, save_result):
    result = benchmark(figures.section8_tipping)
    save_result("section8_tipping", result.render())
    assert len(result.tipping_points) == 3
    crossovers = {t.software: t.crossover_pps for t in result.tipping_points}
    assert crossovers["memcached (Mellanox MCX311A-XCCT)"] == pytest.approx(
        kpps(80), rel=0.15
    )
    assert crossovers["libpaxos acceptor"] == pytest.approx(kpps(150), rel=0.1)
    assert kpps(100) < crossovers["NSD (SW)"] < kpps(200)


def test_section8_tor_switch(benchmark):
    result = benchmark(figures.section8_tipping)
    assert result.tor.switch_always_wins
    assert result.tor.switch_w_per_mqps <= 1.0
