"""§9.5: latency discussion.

Paper result: "where latency is the target, there is no need for
in-network computing on demand, as in-network computing will provide lower
latency" — fully-pipelined designs have almost-constant latency (±100ns on
NetFPGA SUME) independent of load and of power state, while software
latency grows toward saturation; external-memory access adds hundreds of
nanoseconds but still beats the PCIe trip to the host.
"""

import random

import pytest

from repro import calibration as cal
from repro.apps.kvs.lake import sample_latency
from repro.experiments.reporting import format_table
from repro.steady import dns_models, kvs_models
from repro.units import kpps


def _latency_sweep():
    kvs = kvs_models()
    rows = []
    for rate in (kpps(10), kpps(200), kpps(500), kpps(900)):
        rows.append(
            (
                rate / 1e3,
                kvs["memcached"].latency_at(rate),
                kvs["lake"].latency_at(rate),
            )
        )
    return rows


def test_section95_hardware_latency_flat(benchmark, save_result):
    rows = benchmark(_latency_sweep)
    save_result(
        "section95_latency",
        format_table(["kpps", "memcached [us]", "LaKe [us]"], rows),
    )
    software = [row[1] for row in rows]
    hardware = [row[2] for row in rows]
    # software latency inflates toward saturation; hardware stays flat
    assert software[-1] > 2 * software[0]
    assert max(hardware) == min(hardware)


def test_section95_hardware_always_faster(benchmark):
    rows = benchmark(_latency_sweep)
    for _, software_us, hardware_us in rows:
        assert hardware_us < software_us


def test_section95_pipeline_jitter_100ns(benchmark):
    """§9.5: fully pipelined designs vary by ±100ns."""

    def spread():
        rng = random.Random(1)
        # L1-hit path: constant + uniform pipeline jitter
        values = [
            cal.LAKE_L1_HIT_US + rng.uniform(0.0, cal.FPGA_PIPELINE_JITTER_US)
            for _ in range(5000)
        ]
        return max(values) - min(values)

    value = benchmark(spread)
    assert value <= 2 * cal.FPGA_PIPELINE_JITTER_US


def test_section95_external_memory_adds_hundreds_of_ns(benchmark):
    """§9.5/§5.3: off-chip access adds ~0.3µs over on-chip but stays far
    below the software path."""

    def deltas():
        rng = random.Random(2)
        l2 = sorted(
            sample_latency(
                rng, cal.LAKE_L2_HIT_MEDIAN_US, cal.LAKE_L2_HIT_P99_LOW_LOAD_US
            )
            for _ in range(10_000)
        )
        return l2[len(l2) // 2]

    l2_median = benchmark(deltas)
    over_onchip = l2_median - cal.LAKE_L1_HIT_US
    assert 0.1 < over_onchip < 1.0                     # hundreds of ns
    assert l2_median < cal.MEMCACHED_SW_MEDIAN_US / 5  # still ≫ faster than host
