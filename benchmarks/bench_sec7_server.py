"""§7: lessons from a server (dual Xeon E5-2660 v4, RAPL).

Paper result: idle 56W split evenly between sockets; a single active core
jumps the system to 91W (86W at just 10% core load); each additional core
costs only 1–2W; full load is 134W; both sockets rise almost equally on
activation.
"""

import pytest

from repro.experiments import figures


def test_section7(benchmark, save_result):
    result = benchmark(figures.section7_server)
    save_result("section7_server", result.render())
    assert result.total("idle") == pytest.approx(56.0)
    assert result.total("1 core @10%") == pytest.approx(86.0)
    assert result.total("1 core @100%") == pytest.approx(91.0)
    assert result.total("28 cores @100%") == pytest.approx(134.0)


def test_section7_extra_core_cost(benchmark):
    result = benchmark(figures.section7_server)
    one = result.total("1 core @100%")
    two = result.total("2 cores @100%")
    assert 1.0 <= two - one <= 2.0


def test_section7_low_load_insight(benchmark):
    """§7: 'even at a low CPU core load, e.g., 10%, the power consumption
    of the server reaches 86W' — more than half the idle-to-full span."""
    result = benchmark(figures.section7_server)
    idle, low, full = (
        result.total("idle"),
        result.total("1 core @10%"),
        result.total("28 cores @100%"),
    )
    assert (low - idle) / (full - idle) > 0.3
