"""§6: lessons from an ASIC (Tofino).

Paper result: idle power identical with/without P4xos; P4xos adds ≤2% under
load, diag.p4 adds 4.8% (more than twice P4xos); min↔max span <20%; at 10%
utilization the ASIC delivers ×1000 a server's Paxos throughput while its
dynamic power is ~1/3 of the server's at 180Kpps; ops/W: software 10K's,
FPGA 100K's, ASIC 10M's.
"""

import pytest

from repro import calibration as cal
from repro.experiments import figures
from repro.hw.asic import TofinoProgram, TofinoSwitch
from repro.steady.paxos import PaxosRole, libpaxos_model
from repro.units import kpps


def test_section6(benchmark, save_result):
    result = benchmark(figures.section6_asic)
    save_result("section6_asic", result.render())
    assert result.p4xos_overhead_full_load <= 0.02 + 1e-9
    assert result.diag_overhead_full_load == pytest.approx(0.048, abs=0.002)
    assert result.power_span_fraction < 0.20
    assert result.dynamic_ratio_vs_server == pytest.approx(1 / 3, rel=0.35)


def test_section6_ops_per_watt_orders(benchmark):
    result = benchmark(figures.section6_asic)
    assert 1e4 <= result.ops_per_watt["software"] < 1e5
    assert 1e5 <= result.ops_per_watt["fpga"] < 1e6
    assert result.ops_per_watt["asic"] >= 1e7


def test_section6_x1000_throughput_at_10pct(benchmark):
    """§6: at 10% utilization the ASIC achieves ×1000 a server's Paxos
    throughput."""

    def ratio():
        asic = TofinoSwitch(TofinoProgram.L2_PLUS_P4XOS)
        asic.set_utilization(cal.TOFINO_X1000_UTILIZATION)
        server = libpaxos_model(PaxosRole.ACCEPTOR)
        return asic.throughput_pps() / server.capacity_pps

    value = benchmark(ratio)
    assert value == pytest.approx(1000.0, rel=0.5)
