"""§10: FPGA, SmartNIC or switch?

Paper result: switch ASIC wins raw performance and perf/W but costs ×10
and raises topology/failure questions; SmartNICs stay within the 25W PCIe
envelope at millions of ops/W (AccelNet: 17–19W, ~4Mpps/W); FPGAs are the
most flexible but the weakest perf/W; SoCs are easiest to program but hit
the resource wall first.
"""

import pytest

from repro.experiments import figures
from repro.hw.smartnic import SMARTNIC_ARCHETYPES


def test_section10(benchmark, save_result):
    result = benchmark(figures.section10_platforms)
    save_result("section10_platforms", result.render())
    assert len(result.smartnic_rows) == 4


def test_section10_rankings(benchmark):
    result = benchmark(figures.section10_platforms)
    paxos = [p for p, _ in result.recommendations["Paxos @ 100Mpps"]]
    assert paxos[0] == "switch-asic"
    dns = [p for p, _ in result.recommendations["DNS @ 50Kpps"]]
    assert dns[0] == "server"


def test_section10_asic_smartnic_best_perf_per_watt(benchmark):
    """§10: ASIC-based SmartNICs give the best power trade-off."""

    def best():
        return max(
            SMARTNIC_ARCHETYPES.values(), key=lambda nic: nic.ops_per_watt(1.0)
        )

    nic = benchmark(best)
    assert nic.architecture.value == "asic"
