"""Grid-kernel / adaptive-search benchmark — the ISSUE 10 acceptance
criteria.

``sweep-fabric-scale`` on a 32-point grid (16 rate steps x 2 rack
counts): the adaptive crossover search must beat the exhaustive DES
sweep by >= 5x wall-clock while reporting the *identical*
``TippingPoint`` rows and replaying at most a quarter of the grid —
speed bought by changing the answer is a search bug, not a win.  The
gated trend figure (vectorized steady-grid points/sec against the
committed baseline) rides in ``BENCH_perf.json``'s ``grid`` section via
``bench_perf.py``; this module re-checks just the grid gate so ``make
bench-grid-perf`` fails standalone when the kernel or the search
regresses.

Artifact: ``benchmarks/results/grid_adaptive.txt``.
"""

import json
import pathlib

import pytest

from perf_harness import (
    BASELINE_PATH,
    PERF_GRID,
    check_regression,
    measure_grid,
)

RESULTS = pathlib.Path(__file__).parent / "results"

SPEEDUP_FLOOR = 5.0

#: The adaptive search must answer at least this fraction of the grid
#: analytically (DES on <= 1/4 of the points — the ISSUE acceptance bar).
MAX_DES_FRACTION = 0.25


@pytest.fixture(scope="module")
def grid_record():
    """One shared measurement: the exhaustive leg alone replays the full
    32-point DES grid, so both tests read the same record."""
    return measure_grid()


def test_adaptive_speedup_floor_and_row_identity(grid_record):
    """adaptive >= 5x faster than exhaustive on sweep-fabric-scale, with
    byte-identical tipping rows and DES on <= 25% of the grid."""
    kernel = grid_record["kernel"]
    search = grid_record["search"]

    RESULTS.mkdir(exist_ok=True)
    lines = [
        f"{search['name']} adaptive vs exhaustive "
        f"({search['points']} grid points)",
        f"kernel     {kernel['points_per_sec']:.0f} points/sec "
        f"({kernel['points']} points x {kernel['passes']} passes, "
        f"numpy={kernel['numpy']})",
        f"exhaustive {search['exhaustive_wall_s']:.2f}s",
        f"adaptive   {search['adaptive_wall_s']:.2f}s",
        f"speedup    {search['speedup']:.1f}x (floor {SPEEDUP_FLOOR:.0f}x)",
        f"DES points {search['des_points_run']}/{search['points']} "
        f"({search['des_points_saved']} answered analytically)",
        f"rows_match {search['rows_match']}",
    ]
    (RESULTS / "grid_adaptive.txt").write_text("\n".join(lines) + "\n")

    assert search["name"] == PERF_GRID["name"] == "sweep-fabric-scale"
    assert kernel["points_per_sec"] > 0
    assert search["rows_match"], (
        "adaptive search reported different tipping rows than the "
        "exhaustive sweep — the savings are not free"
    )
    assert search["des_points_run"] <= MAX_DES_FRACTION * search["points"], (
        f"adaptive replayed {search['des_points_run']}/{search['points']} "
        f"grid points; the acceptance bar is {MAX_DES_FRACTION:.0%}"
    )
    assert search["speedup"] >= SPEEDUP_FLOOR, (
        f"adaptive speedup {search['speedup']:.1f}x < "
        f"{SPEEDUP_FLOOR:.0f}x (exhaustive "
        f"{search['exhaustive_wall_s']:.2f}s, adaptive "
        f"{search['adaptive_wall_s']:.2f}s)"
    )


def test_grid_perf_section_gate(grid_record):
    """The grid record section measures real work and holds the >30%
    kernel points/sec regression gate against the committed baseline."""
    assert grid_record["kernel"]["points_per_sec"] > 0
    assert grid_record["search"]["speedup"] > 0
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        failures = check_regression(
            {"scenarios": {}, "grid": grid_record}, baseline
        )
        assert not failures, "; ".join(failures)
