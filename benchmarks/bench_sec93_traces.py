"""§9.3: real workloads (Dynamo power variation, Google cluster trace).

Paper result: Dynamo rack-level power variation is small over scheduling
periods (median <5%, p99 12.8% @3s / 26.6% @30s); caching varies 9.2%/26.2%
over 60s; web serving 37.2%/62.2% (too volatile for on-demand).  The Google
trace yields 1.39M offload-candidate tasks (≥10% core for ≥5min) but ~7.7
candidate cores per node, motivating the load-diminishing usage model.
"""

import pytest

from repro import calibration as cal
from repro.experiments import figures


def test_section93(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: figures.section93_traces(trace_seconds=2000), rounds=1, iterations=1
    )
    save_result("section93_traces", result.render())

    rows = {row[0]: row for row in result.dynamo_rows}
    # ordering: web varies most, rack least (per-window medians)
    assert rows["web"][2] > rows["caching"][2]
    # synthesized medians within 3x of the published values
    for cls in ("rack", "caching", "web"):
        measured, target = rows[cls][2], rows[cls][4]
        assert target / 3 < measured < target * 3

    google = {row[0]: row for row in result.google_rows}
    assert google["candidate cores per node"][1] == pytest.approx(
        cal.GOOGLE_AVG_CANDIDATE_CORES_PER_NODE, rel=0.35
    )
    assert google["long-job utilization fraction"][1] > 0.7
    assert google["long-job count fraction"][1] < 0.15
