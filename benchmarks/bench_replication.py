"""Replication executor benchmark — the ISSUE 7 acceptance criterion.

``run_replicated`` on the reduced ``sweep-rack-kvs`` with K=8 seeds must
(a) produce per-seed sweep results byte-identical to running each seed
serially through ``run_sweep``, and (b) on a machine with >= 4 cores,
finish at workers=4 at least 3x faster than the K-serial loop.  The
speedup half is skipped on small containers (this repo's CI floor is a
single core, where a process pool can only add overhead); the
byte-identity half runs everywhere — it is the correctness contract.

Artifact: ``benchmarks/results/replication_speedup.txt``.
"""

import os
import pathlib
import time

import pytest

from repro.scenarios import (
    build_sweep_spec,
    replication_seeds,
    run_replicated,
    run_sweep,
)

RESULTS = pathlib.Path(__file__).parent / "results"

#: Reduced sweep-rack-kvs grid (same shape as perf_harness.PERF_SWEEP but
#: a little shorter per point: 8 seeds x 4 points is 32 DES runs).
SWEEP = dict(hosts=(1, 2), rates_kpps=(8.0, 32.0), duration_s=0.1,
             keyspace=4_000)
SEEDS = 8
WORKERS = 4


def test_replicated_matches_serial_per_seed():
    """Every one of the K replicated runs renders byte-identically to the
    equivalent serial ``run_sweep`` with that seed pinned."""
    spec = build_sweep_spec("sweep-rack-kvs", **SWEEP)
    replicated = run_replicated(spec, seeds=SEEDS, workers=2)
    seeds = replicated.seeds
    assert len(seeds) == SEEDS
    assert seeds == replication_seeds(seeds[0], SEEDS)
    for seed, run in zip(seeds, replicated.runs):
        serial = run_sweep(build_sweep_spec("sweep-rack-kvs", seed=seed,
                                            **SWEEP))
        assert run.render() == serial.render(), (
            f"seed {seed}: replicated run diverges from serial run_sweep"
        )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < WORKERS,
    reason=f"speedup criterion needs >= {WORKERS} cores "
    f"(have {os.cpu_count()})",
)
def test_replicated_speedup():
    """workers=4 beats the K-serial loop by >= 3x on K=8 (>= 4 cores)."""
    spec = build_sweep_spec("sweep-rack-kvs", **SWEEP)
    start = time.perf_counter()
    run_replicated(spec, seeds=SEEDS, workers=1)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    run_replicated(spec, seeds=SEEDS, workers=WORKERS)
    pooled_s = time.perf_counter() - start
    speedup = serial_s / pooled_s
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / "replication_speedup.txt").write_text(
        f"sweep-rack-kvs K={SEEDS} workers={WORKERS}\n"
        f"serial  {serial_s:.2f}s\n"
        f"pooled  {pooled_s:.2f}s\n"
        f"speedup {speedup:.2f}x\n"
    )
    assert speedup >= 3.0, (
        f"replicated sweep speedup {speedup:.2f}x < 3x "
        f"(serial {serial_s:.2f}s, pooled {pooled_s:.2f}s)"
    )
