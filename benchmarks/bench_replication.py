"""Replication executor benchmark — the ISSUE 7 acceptance criterion.

``run_replicated`` on the reduced ``sweep-rack-kvs`` with K=8 seeds must
(a) produce per-seed sweep results byte-identical to running each seed
serially through ``run_sweep``, (b) on a machine with >= 2 cores, beat
the K-serial loop at workers=2 at all (speedup > 1.0 on the 32-task
case — the ISSUE 9 criterion: chunked dispatch through the persistent
pool must make fan-out pay for itself, where per-task dispatch used to
lose to serial), and (c) on a machine with >= 4 cores, finish at
workers=4 at least 3x faster.  The speedup halves are skipped on small
containers (this repo's CI floor is a single core, where a process pool
can only add overhead); the byte-identity half runs everywhere — it is
the correctness contract.

Artifacts: ``benchmarks/results/replication_speedup.txt`` and
``replication_speedup_2w.txt``.
"""

import os
import pathlib
import time

import pytest

from repro.scenarios import (
    build_sweep_spec,
    replication_seeds,
    run_replicated,
    run_sweep,
)

RESULTS = pathlib.Path(__file__).parent / "results"

#: Reduced sweep-rack-kvs grid (same shape as perf_harness.PERF_SWEEP but
#: a little shorter per point: 8 seeds x 4 points is 32 DES runs).
SWEEP = dict(hosts=(1, 2), rates_kpps=(8.0, 32.0), duration_s=0.1,
             keyspace=4_000)
SEEDS = 8
WORKERS = 4


def test_replicated_matches_serial_per_seed():
    """Every one of the K replicated runs renders byte-identically to the
    equivalent serial ``run_sweep`` with that seed pinned."""
    spec = build_sweep_spec("sweep-rack-kvs", **SWEEP)
    replicated = run_replicated(spec, seeds=SEEDS, workers=2)
    seeds = replicated.seeds
    assert len(seeds) == SEEDS
    assert seeds == replication_seeds(seeds[0], SEEDS)
    for seed, run in zip(seeds, replicated.runs):
        serial = run_sweep(build_sweep_spec("sweep-rack-kvs", seed=seed,
                                            **SWEEP))
        assert run.render() == serial.render(), (
            f"seed {seed}: replicated run diverges from serial run_sweep"
        )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason=f"speedup > 1.0 criterion needs >= 2 cores (have {os.cpu_count()})",
)
def test_replicated_speedup_two_workers():
    """workers=2 must beat the K-serial loop at all (speedup > 1.0) on
    the >= 16-task case: K=8 seeds x 4 grid points = 32 tasks through
    chunked dispatch on the persistent pool."""
    spec = build_sweep_spec("sweep-rack-kvs", **SWEEP)
    n_tasks = SEEDS * len(spec.points())
    assert n_tasks >= 16, "benchmark must exercise the >=16-task case"
    start = time.perf_counter()
    run_replicated(spec, seeds=SEEDS, workers=1)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    run_replicated(spec, seeds=SEEDS, workers=2)
    pooled_s = time.perf_counter() - start
    speedup = serial_s / pooled_s
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / "replication_speedup_2w.txt").write_text(
        f"sweep-rack-kvs K={SEEDS} workers=2 tasks={n_tasks}\n"
        f"serial  {serial_s:.2f}s\n"
        f"pooled  {pooled_s:.2f}s\n"
        f"speedup {speedup:.2f}x\n"
    )
    assert speedup > 1.0, (
        f"replicated sweep at 2 workers is not faster than serial "
        f"({speedup:.2f}x; serial {serial_s:.2f}s, pooled {pooled_s:.2f}s)"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < WORKERS,
    reason=f"speedup criterion needs >= {WORKERS} cores "
    f"(have {os.cpu_count()})",
)
def test_replicated_speedup():
    """workers=4 beats the K-serial loop by >= 3x on K=8 (>= 4 cores)."""
    spec = build_sweep_spec("sweep-rack-kvs", **SWEEP)
    start = time.perf_counter()
    run_replicated(spec, seeds=SEEDS, workers=1)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    run_replicated(spec, seeds=SEEDS, workers=WORKERS)
    pooled_s = time.perf_counter() - start
    speedup = serial_s / pooled_s
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / "replication_speedup.txt").write_text(
        f"sweep-rack-kvs K={SEEDS} workers={WORKERS}\n"
        f"serial  {serial_s:.2f}s\n"
        f"pooled  {pooled_s:.2f}s\n"
        f"speedup {speedup:.2f}x\n"
    )
    assert speedup >= 3.0, (
        f"replicated sweep speedup {speedup:.2f}x < 3x "
        f"(serial {serial_s:.2f}s, pooled {pooled_s:.2f}s)"
    )
