"""Cross-layer validation: the DES substrate vs the analytic steady layer.

The Figure 3–5 sweeps come from the analytic models; the Figure 6–7
timelines from the packet-level DES.  This benchmark pins the two layers
to each other at overlapping operating points: a live memcached DES run at
several rates must land on the analytic power and latency curves.
"""

import pytest

from repro.apps.kvs import KvsClient, SoftwareMemcached
from repro.experiments.reporting import format_table
from repro.host import make_i7_server
from repro.net import Switch, Topology
from repro.sim import RngStreams, Simulator
from repro.steady import kvs_models
from repro.units import kpps, sec


def _des_point(rate_pps, duration_s=0.6, seed=3):
    sim = Simulator()
    streams = RngStreams(seed)
    server = make_i7_server(sim, name="srv")
    memcached = SoftwareMemcached(sim, server)
    memcached.store.set("hot", b"value")
    server.set_packet_handler(memcached.offer)
    topo = Topology(sim)
    topo.add(Switch(sim, "tor"))
    topo.add(server)
    client = KvsClient(
        sim, "client", "srv",
        key_sampler=lambda: "hot", value_sampler=lambda: b"v",
        rng=streams.get("arrivals"),
    )
    topo.add(client)
    topo.connect_via_switch("tor", "srv")
    topo.connect_via_switch("tor", "client")
    client.set_rate(rate_pps)
    sim.run_until(sec(duration_s))
    return server.wall_power_w(), client.latency.median()


def _validation_table():
    analytic = kvs_models()["memcached"]
    rows = []
    for rate in (kpps(10), kpps(40), kpps(100), kpps(200)):
        des_power, des_latency = _des_point(rate)
        rows.append(
            (
                rate / 1e3,
                des_power,
                analytic.power_at(rate),
                des_latency,
                analytic.latency_at(rate),
            )
        )
    return rows


def test_des_matches_steady_layer(benchmark, save_result):
    rows = benchmark.pedantic(_validation_table, rounds=1, iterations=1)
    save_result(
        "validation_des_vs_steady",
        format_table(
            ["kpps", "DES power [W]", "analytic [W]", "DES latency [us]",
             "analytic [us]"],
            rows,
        ),
    )
    for rate_kpps, des_power, analytic_power, des_latency, analytic_latency in rows:
        # power within 10%: the DES host charges real busy time into the
        # same calibrated curve the analytic layer evaluates
        assert des_power == pytest.approx(analytic_power, rel=0.10)
        # latency within 50% at these low utilizations (different queueing
        # approximations: per-packet FIFO vs M/M/1 inflation)
        assert des_latency == pytest.approx(analytic_latency, rel=0.5)
