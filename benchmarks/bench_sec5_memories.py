"""§5.3: memory power/capacity and LaKe latency distributions.

Paper result: 4GB DRAM = 4.8W (33M values), 18MB SRAM = 6W (4.7M freelist
entries); on-chip-only holds ×65k/×32k less; on-chip hit ≤1.4µs, L2 hit
1.67µs median / 1.9µs p99 at low load, hardware miss 13.5µs median /
14.3µs p99 (×10 an on-chip hit).
"""

import pytest

from repro import calibration as cal
from repro.experiments import figures


def test_section5(benchmark, save_result):
    result = benchmark(lambda: figures.section5_memories(samples=20_000))
    save_result("section5_memories", result.render())
    rows = {row[0]: row for row in result.latency_rows}

    l2 = rows["L2 hit (DRAM)"]
    assert l2[1] == pytest.approx(cal.LAKE_L2_HIT_MEDIAN_US, rel=0.05)
    assert l2[2] == pytest.approx(cal.LAKE_L2_HIT_P99_LOW_LOAD_US, rel=0.1)

    miss = rows["miss (software)"]
    assert miss[1] == pytest.approx(cal.LAKE_MISS_MEDIAN_US, rel=0.05)
    assert miss[1] / rows["L1 hit (on-chip)"][1] > 8.0  # ×10 claim


def test_section5_memory_rows(benchmark):
    result = benchmark(lambda: figures.section5_memories(samples=100))
    rows = {row[0]: row for row in result.rows}
    assert rows["DRAM 4GB"][1] == pytest.approx(4.8)
    assert rows["SRAM 18MB"][1] == pytest.approx(6.0)
    assert rows["DRAM 4GB"][2] == 33_000_000
