"""Figure 5: power with in-network computing on demand.

Paper result: at low utilization the on-demand curve follows the software
system; above the shift threshold it follows the (flat) hardware curve;
at high load the saving vs software-only reaches ~50% (abstract/§1).
"""

import pytest

from repro.experiments import figures
from repro.units import kpps


def test_figure5(benchmark, save_result):
    result = benchmark(figures.figure5)
    save_result("figure5", result.render())
    assert len(result.series) == 6


def test_figure5_kvs_saving_half(benchmark):
    result = benchmark(figures.figure5)
    assert result.savings_at_peak["kvs"] == pytest.approx(0.49, abs=0.06)


def test_figure5_flat_above_threshold(benchmark):
    """'processing is shifted to the network, and the power consumption
    changes little with utilization.'"""
    result = benchmark(lambda: figures.figure5(steps=25))
    for app in ("kvs", "dns"):
        points = result.series[f"{app} (On demand)"]
        high = [p.power_w for p in points if p.offered_pps >= kpps(300)]
        assert max(high) - min(high) < 2.0


def test_figure5_follows_software_at_low_load(benchmark):
    result = benchmark(lambda: figures.figure5(steps=25))
    for app in ("kvs", "paxos", "dns"):
        ondemand = result.series[f"{app} (On demand)"][1]  # first nonzero rate
        software = result.series[f"{app} (SW)"][1]
        # within the standby-card adder of the software curve
        assert abs(ondemand.power_w - software.power_w) < 20.0
