"""Figure 7: transitioning the Paxos leader between software and hardware.

Paper result: after the forwarding rule flips, throughput drops to zero
for ~100ms (the client timeout) while the new leader recovers the sequence
number from the acceptors; with the hardware leader, throughput rises and
latency halves.
"""

import pytest

from repro.experiments import run_figure7
from repro.units import msec, sec


def _run():
    return run_figure7(duration_s=5.0, shift_to_hw_s=1.5, shift_to_sw_s=3.5)


def test_figure7(benchmark, save_result):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    save_result("figure7", result.render())

    assert len(result.shift_times_us) == 2

    # latency halved with the hardware leader
    sw_latency = result.mean_latency_us(sec(0.5), sec(1.5))
    hw_latency = result.mean_latency_us(sec(2.0), sec(3.5))
    assert hw_latency == pytest.approx(sw_latency / 2.0, rel=0.25)

    # closed-loop throughput roughly doubles
    sw_thr = result.mean_throughput_pps(sec(0.5), sec(1.5))
    hw_thr = result.mean_throughput_pps(sec(2.0), sec(3.5))
    assert hw_thr > 1.5 * sw_thr

    # ~100ms stall after each shift (client retry timeout)
    assert len(result.stall_us) == 2
    for stall in result.stall_us:
        assert stall == pytest.approx(msec(100.0), rel=0.25)

    # consensus kept making progress overall
    assert result.decided > 20_000
