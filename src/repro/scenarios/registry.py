"""Named scenarios: the catalogue of reproducible cluster compositions.

Each entry is a factory returning a :class:`ScenarioSpec`; factories take
keyword overrides so experiments can compress horizons or rescale racks
without re-declaring the scenario.  The paper's DES figures and the
rack-scale extensions all live here:

=====================  =====================================================
``fig6-kvs-transition``  Figure 6 — host-controlled KVS shift under a
                         co-located ChainerMN job (single host).
``fig7-paxos-transition``  Figure 7 — centralized Paxos leader shift via
                         switch-rule rewrite.
``rack4-kvs-sharded``    4 sharded memcached hosts behind one ToR.
``rack8-kvs-sharded``    The rack-scale flagship: 8 sharded memcached
                         hosts, staggered co-located jobs, every host
                         shifting on its own schedule.
=====================  =====================================================
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import ConfigurationError
from .builder import ScenarioBuilder, ScenarioResult
from .spec import (
    ColocatedJobSpec,
    KvsHostSpec,
    KvsWorkloadSpec,
    PaxosSpec,
    SamplingSpec,
    ScenarioSpec,
)

SpecFactory = Callable[..., ScenarioSpec]

_REGISTRY: Dict[str, SpecFactory] = {}


def register(name: str) -> Callable[[SpecFactory], SpecFactory]:
    """Decorator: add a spec factory to the catalogue under ``name``."""

    def wrap(factory: SpecFactory) -> SpecFactory:
        if name in _REGISTRY:
            raise ConfigurationError(f"duplicate scenario name {name!r}")
        _REGISTRY[name] = factory
        return factory

    return wrap


def scenario_names() -> List[str]:
    return sorted(_REGISTRY)


def build_spec(name: str, **overrides) -> ScenarioSpec:
    """Instantiate a named scenario's spec (factory overrides applied)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}"
        ) from None
    return factory(**overrides)


def run_scenario(name: str, **overrides) -> ScenarioResult:
    """Build and execute a named scenario."""
    return ScenarioBuilder(build_spec(name, **overrides)).run()


# ---------------------------------------------------------------------------
# The paper's transition figures.
# ---------------------------------------------------------------------------


@register("fig6-kvs-transition")
def figure6_spec(
    duration_s: float = 12.0,
    rate_kpps: float = 16.0,
    chainer_start_s: float = 2.0,
    chainer_stop_s: float = 7.5,
    keyspace: int = 50_000,
    seed: int = 42,
    power_save: bool = False,
    bucket_ms: float = 250.0,
) -> ScenarioSpec:
    """Figure 6: one memcached host (LaKe card), ETC load, ChainerMN
    co-location driving the RAPL-fed host controller (§9.1/§9.2).

    ``power_save=False`` matches the paper ("Clock gating and memories
    reset are not enabled in this experiment").
    """
    chainer_stop_s = min(chainer_stop_s, duration_s)
    return ScenarioSpec(
        name="fig6-kvs-transition",
        description="Figure 6: host-controlled KVS software<->hardware shift",
        duration_s=duration_s,
        seed=seed,
        kvs_hosts=(
            KvsHostSpec(
                name="kvs-server",
                client_name="client",
                power_save=power_save,
                colocated=(
                    ColocatedJobSpec(start_s=chainer_start_s, stop_s=chainer_stop_s),
                )
                if chainer_stop_s > chainer_start_s
                else (),
            ),
        ),
        kvs_workload=KvsWorkloadSpec(keyspace=keyspace, rate_kpps=rate_kpps),
        sampling=SamplingSpec(power_interval_ms=50.0, bucket_ms=bucket_ms),
    )


@register("fig7-paxos-transition")
def figure7_spec(
    duration_s: float = 5.0,
    shift_to_hw_s: float = 1.5,
    shift_to_sw_s: float = 3.5,
    n_clients: int = 3,
    client_window: int = 1,
    n_acceptors: int = 3,
    recovery_window: int = 512,
    seed: int = 7,
    bucket_ms: float = 50.0,
) -> ScenarioSpec:
    """Figure 7: Paxos leader shift via forwarding-rule rewrite (§9.2)."""
    return ScenarioSpec(
        name="fig7-paxos-transition",
        description="Figure 7: Paxos leader software<->hardware shift",
        duration_s=duration_s,
        seed=seed,
        paxos=PaxosSpec(
            n_clients=n_clients,
            client_window=client_window,
            n_acceptors=n_acceptors,
            recovery_window=recovery_window,
            shifts=((shift_to_hw_s, True), (shift_to_sw_s, False)),
        ),
        sampling=SamplingSpec(power_interval_ms=50.0, bucket_ms=bucket_ms),
    )


# ---------------------------------------------------------------------------
# Rack-scale scenarios (the ROADMAP north-star direction).
# ---------------------------------------------------------------------------


def _rack_spec(
    name: str,
    n_hosts: int,
    duration_s: float,
    total_rate_kpps: float,
    keyspace: int,
    seed: int,
    stagger_s: float,
    first_job_s: float,
    job_length_s: float,
) -> ScenarioSpec:
    """N sharded memcached hosts behind one ToR with staggered co-located
    jobs, so each host's controller shifts on its own schedule."""
    hosts = []
    for i in range(n_hosts):
        start_s = first_job_s + stagger_s * i
        stop_s = min(start_s + job_length_s, duration_s)
        hosts.append(
            KvsHostSpec(
                name=f"kvs{i}",
                colocated=(ColocatedJobSpec(start_s=start_s, stop_s=stop_s),)
                if stop_s > start_s
                else (),
            )
        )
    return ScenarioSpec(
        name=name,
        description=(
            f"{n_hosts} key-sharded memcached hosts behind one ToR switch, "
            "per-host on-demand shifting"
        ),
        duration_s=duration_s,
        seed=seed,
        kvs_hosts=tuple(hosts),
        kvs_workload=KvsWorkloadSpec(
            keyspace=keyspace, rate_kpps=total_rate_kpps
        ),
        sampling=SamplingSpec(power_interval_ms=100.0, bucket_ms=250.0),
    )


@register("rack4-kvs-sharded")
def rack4_spec(
    duration_s: float = 8.0,
    total_rate_kpps: float = 48.0,
    keyspace: int = 30_000,
    seed: int = 11,
) -> ScenarioSpec:
    return _rack_spec(
        "rack4-kvs-sharded",
        n_hosts=4,
        duration_s=duration_s,
        total_rate_kpps=total_rate_kpps,
        keyspace=keyspace,
        seed=seed,
        stagger_s=0.6,
        first_job_s=0.8,
        job_length_s=3.0,
    )


@register("rack8-kvs-sharded")
def rack8_spec(
    duration_s: float = 8.0,
    total_rate_kpps: float = 96.0,
    keyspace: int = 30_000,
    seed: int = 11,
) -> ScenarioSpec:
    return _rack_spec(
        "rack8-kvs-sharded",
        n_hosts=8,
        duration_s=duration_s,
        total_rate_kpps=total_rate_kpps,
        keyspace=keyspace,
        seed=seed,
        stagger_s=0.5,
        first_job_s=0.8,
        job_length_s=3.5,
    )
