"""Named scenarios: the catalogue of reproducible cluster compositions.

Each entry is a factory returning a :class:`ScenarioSpec`; factories take
keyword overrides so experiments can compress horizons or rescale racks
without re-declaring the scenario.  The paper's DES figures and the
rack-scale extensions all live here:

=====================  =====================================================
``fig6-kvs-transition``  Figure 6 — host-controlled KVS shift under a
                         co-located ChainerMN job (single host).
``fig6-kvs-netctl``      Figure 6 rerun with the *network-controlled*
                         design (§9.1): a load ramp instead of a
                         co-located job drives the shift.
``fig7-paxos-transition``  Figure 7 — centralized Paxos leader shift via
                         switch-rule rewrite.
``rack4-kvs-sharded``    4 sharded memcached hosts behind one ToR.
``rack8-kvs-sharded``    The rack-scale flagship: 8 sharded memcached
                         hosts, staggered co-located jobs, every host
                         shifting on its own schedule.
``rack-mixed``           A heterogeneous rack: 2 KVS shards, 2 independent
                         Paxos groups and 2 anycast DNS replicas sharing
                         one ToR, with per-host controller kinds.
``rack-hetero``          Heterogeneous *hardware*: a key-sharded KVS rack
                         mixing a NetFPGA host, an ASIC SmartNIC host and
                         a NIC-only host behind one ToR, driven up a load
                         ramp so each card tips at its own crossover.
``rack-paxos-shared``    Two Paxos groups whose acceptors share the same
                         three server boxes (the §9.4 shared-host power
                         split, proportional to busy time).
``fabric-kvs``           Leaf-spine sweep base: ``n_racks`` racks ×
                         ``hosts_per_rack`` sharded KVS hosts under one
                         spine, oversubscribed uplinks, host names reused
                         across racks.
``fabric-kvs-crossrack``  The §9.1 centralized controller at fabric
                         scale: a consolidated 2-rack fleet whose hot host
                         is shifted to hardware and whose donated shard is
                         steered *across racks*.
``fabric-paxos-split``   Figure 7's leader shift with the acceptor quorum
                         split across two racks (one rack-qualified
                         ``acceptor_hosts`` entry behind the spine).
=====================  =====================================================
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import ConfigurationError
# shared with the sweep and device registries and the CLI suggestions;
# re-exported here because this was its historical home
from ..naming import closest_name
from ..units import sec
from .builder import ScenarioBuilder, ScenarioResult
from .spec import (
    NO_CONTROLLER,
    ColocatedJobSpec,
    ControllerSpec,
    DeviceSpec,
    DnsHostSpec,
    DnsWorkloadSpec,
    FabricSpec,
    KvsHostSpec,
    KvsWorkloadSpec,
    PaxosSpec,
    SamplingSpec,
    ScenarioSpec,
    UplinkSpec,
)

SpecFactory = Callable[..., ScenarioSpec]

_REGISTRY: Dict[str, SpecFactory] = {}


def register(name: str) -> Callable[[SpecFactory], SpecFactory]:
    """Decorator: add a spec factory to the catalogue under ``name``."""

    def wrap(factory: SpecFactory) -> SpecFactory:
        if name in _REGISTRY:
            raise ConfigurationError(f"duplicate scenario name {name!r}")
        _REGISTRY[name] = factory
        return factory

    return wrap


def scenario_names() -> List[str]:
    return sorted(_REGISTRY)


def scenario_descriptions() -> Dict[str, str]:
    """Name → one-line description for every registered scenario."""
    return {name: _REGISTRY[name]().description for name in scenario_names()}




def closest_scenario(name: str) -> Optional[str]:
    """The registered scenario most similar to ``name``, if any is close."""
    return closest_name(name, scenario_names())


def resolve_factory(registry: Dict[str, Callable], name: str, kind: str):
    """Look ``name`` up in a factory registry: exact case-insensitive
    spellings resolve directly, anything else raises with a did-you-mean
    suggestion.  Shared by the scenario and sweep registries."""
    factory = registry.get(name)
    if factory is not None:
        return factory
    suggestion = closest_name(name, sorted(registry))
    if suggestion is not None and suggestion.lower() == name.lower():
        return registry[suggestion]
    hint = f"; did you mean {suggestion!r}?" if suggestion else ""
    raise ConfigurationError(
        f"unknown {kind} {name!r}{hint} (known: {', '.join(sorted(registry))})"
    )


def build_spec(name: str, **overrides) -> ScenarioSpec:
    """Instantiate a named scenario's spec (factory overrides applied).

    Exact case-insensitive spellings (``RACK-MIXED``) resolve directly;
    anything else raises with a did-you-mean suggestion.
    """
    return resolve_factory(_REGISTRY, name, "scenario")(**overrides)


def run_scenario(name: str, **overrides) -> ScenarioResult:
    """Build and execute a named scenario."""
    return ScenarioBuilder(build_spec(name, **overrides)).run()


# ---------------------------------------------------------------------------
# The paper's transition figures.
# ---------------------------------------------------------------------------


@register("fig6-kvs-transition")
def figure6_spec(
    duration_s: float = 12.0,
    rate_kpps: float = 16.0,
    chainer_start_s: float = 2.0,
    chainer_stop_s: float = 7.5,
    keyspace: int = 50_000,
    seed: int = 42,
    power_save: bool = False,
    bucket_ms: float = 250.0,
) -> ScenarioSpec:
    """Figure 6: one memcached host (LaKe card), ETC load, ChainerMN
    co-location driving the RAPL-fed host controller (§9.1/§9.2).

    ``power_save=False`` matches the paper ("Clock gating and memories
    reset are not enabled in this experiment").
    """
    chainer_stop_s = min(chainer_stop_s, duration_s)
    return ScenarioSpec(
        name="fig6-kvs-transition",
        description="Figure 6: host-controlled KVS software<->hardware shift",
        duration_s=duration_s,
        seed=seed,
        kvs_hosts=(
            KvsHostSpec(
                name="kvs-server",
                client_name="client",
                power_save=power_save,
                colocated=(
                    ColocatedJobSpec(start_s=chainer_start_s, stop_s=chainer_stop_s),
                )
                if chainer_stop_s > chainer_start_s
                else (),
            ),
        ),
        kvs_workload=KvsWorkloadSpec(keyspace=keyspace, rate_kpps=rate_kpps),
        sampling=SamplingSpec(power_interval_ms=50.0, bucket_ms=bucket_ms),
    )


@register("fig6-kvs-netctl")
def figure6_netctl_spec(
    duration_s: float = 12.0,
    base_rate_kpps: float = 2.0,
    peak_rate_kpps: float = 16.0,
    ramp_up_s: float = 2.0,
    ramp_down_s: float = 8.0,
    keyspace: int = 50_000,
    seed: int = 42,
    bucket_ms: float = 250.0,
) -> ScenarioSpec:
    """Figure 6 driven by the *network-controlled* design (§9.1): the same
    single LaKe host, but the decision lives in the device's classifier —
    a sustained offered-rate ramp (not a co-located job) triggers the
    shift, and the rate falling back triggers the return."""
    ramp_down_s = min(ramp_down_s, duration_s)
    return ScenarioSpec(
        name="fig6-kvs-netctl",
        description=(
            "Figure 6 variant: network-controlled KVS shift on a load ramp"
        ),
        duration_s=duration_s,
        seed=seed,
        kvs_hosts=(
            KvsHostSpec(
                name="kvs-server",
                client_name="client",
                controller=ControllerSpec(
                    kind="network",
                    params=dict(
                        up_rate_pps=(base_rate_kpps + peak_rate_kpps) * 1e3 / 2.0,
                        down_rate_pps=base_rate_kpps * 1e3 * 1.5,
                        up_window_us=sec(1.5),
                        down_window_us=sec(1.5),
                    ),
                ),
            ),
        ),
        kvs_workload=KvsWorkloadSpec(
            keyspace=keyspace,
            rate_kpps=base_rate_kpps,
            phases=(
                (ramp_up_s, peak_rate_kpps),
                (ramp_down_s, base_rate_kpps),
            )
            if ramp_down_s > ramp_up_s
            else ((ramp_up_s, peak_rate_kpps),),
        ),
        sampling=SamplingSpec(power_interval_ms=50.0, bucket_ms=bucket_ms),
    )


@register("fig7-paxos-transition")
def figure7_spec(
    duration_s: float = 5.0,
    shift_to_hw_s: float = 1.5,
    shift_to_sw_s: float = 3.5,
    n_clients: int = 3,
    client_window: int = 1,
    n_acceptors: int = 3,
    recovery_window: int = 512,
    seed: int = 7,
    bucket_ms: float = 50.0,
) -> ScenarioSpec:
    """Figure 7: Paxos leader shift via forwarding-rule rewrite (§9.2)."""
    return ScenarioSpec(
        name="fig7-paxos-transition",
        description="Figure 7: Paxos leader software<->hardware shift",
        duration_s=duration_s,
        seed=seed,
        paxos_groups=(
            PaxosSpec(
                name="paxos",
                n_clients=n_clients,
                client_window=client_window,
                n_acceptors=n_acceptors,
                recovery_window=recovery_window,
                shifts=((shift_to_hw_s, True), (shift_to_sw_s, False)),
            ),
        ),
        sampling=SamplingSpec(power_interval_ms=50.0, bucket_ms=bucket_ms),
    )


# ---------------------------------------------------------------------------
# Rack-scale scenarios (the ROADMAP north-star direction).
# ---------------------------------------------------------------------------


def _rack_spec(
    name: str,
    n_hosts: int,
    duration_s: float,
    total_rate_kpps: float,
    keyspace: int,
    seed: int,
    stagger_s: float,
    first_job_s: float,
    job_length_s: float,
) -> ScenarioSpec:
    """N sharded memcached hosts behind one ToR with staggered co-located
    jobs, so each host's controller shifts on its own schedule."""
    hosts = []
    for i in range(n_hosts):
        start_s = first_job_s + stagger_s * i
        stop_s = min(start_s + job_length_s, duration_s)
        hosts.append(
            KvsHostSpec(
                name=f"kvs{i}",
                colocated=(ColocatedJobSpec(start_s=start_s, stop_s=stop_s),)
                if stop_s > start_s
                else (),
            )
        )
    return ScenarioSpec(
        name=name,
        description=(
            f"{n_hosts} key-sharded memcached hosts behind one ToR switch, "
            "per-host on-demand shifting"
        ),
        duration_s=duration_s,
        seed=seed,
        kvs_hosts=tuple(hosts),
        kvs_workload=KvsWorkloadSpec(
            keyspace=keyspace, rate_kpps=total_rate_kpps
        ),
        sampling=SamplingSpec(power_interval_ms=100.0, bucket_ms=250.0),
    )


@register("rack-kvs")
def rack_kvs_spec(
    n_hosts: int = 4,
    rate_per_host_kpps: float = 12.0,
    duration_s: float = 4.0,
    keyspace: int = 20_000,
    seed: int = 11,
) -> ScenarioSpec:
    """The parameterized rack the §9.4 sweeps iterate: N key-sharded
    memcached hosts at a nominal per-host offered rate (the total is split
    by each shard's Zipf traffic weight).  No co-located jobs — sweep
    points are pinned to a placement, so nothing needs a trigger."""
    if n_hosts < 1:
        raise ConfigurationError("rack-kvs needs n_hosts >= 1")
    return ScenarioSpec(
        name="rack-kvs",
        description=(
            "parameterized key-sharded rack (sweep base): N hosts × "
            "per-host offered rate"
        ),
        duration_s=duration_s,
        seed=seed,
        kvs_hosts=tuple(KvsHostSpec(name=f"kvs{i}") for i in range(n_hosts)),
        kvs_workload=KvsWorkloadSpec(
            keyspace=keyspace, rate_kpps=rate_per_host_kpps * n_hosts
        ),
        sampling=SamplingSpec(power_interval_ms=50.0, bucket_ms=250.0),
    )


@register("rack4-kvs-sharded")
def rack4_spec(
    duration_s: float = 8.0,
    total_rate_kpps: float = 48.0,
    keyspace: int = 30_000,
    seed: int = 11,
) -> ScenarioSpec:
    return _rack_spec(
        "rack4-kvs-sharded",
        n_hosts=4,
        duration_s=duration_s,
        total_rate_kpps=total_rate_kpps,
        keyspace=keyspace,
        seed=seed,
        stagger_s=0.6,
        first_job_s=0.8,
        job_length_s=3.0,
    )


@register("rack8-kvs-sharded")
def rack8_spec(
    duration_s: float = 8.0,
    total_rate_kpps: float = 96.0,
    keyspace: int = 30_000,
    seed: int = 11,
) -> ScenarioSpec:
    return _rack_spec(
        "rack8-kvs-sharded",
        n_hosts=8,
        duration_s=duration_s,
        total_rate_kpps=total_rate_kpps,
        keyspace=keyspace,
        seed=seed,
        stagger_s=0.5,
        first_job_s=0.8,
        job_length_s=3.5,
    )


# ---------------------------------------------------------------------------
# Heterogeneous hardware: mixed offload devices behind one ToR.
# ---------------------------------------------------------------------------


@register("rack-hetero")
def rack_hetero_spec(
    device_kinds: tuple = ("netfpga-sume", "asic-nic", "none"),
    device_kind: str = None,
    rate_per_host_kpps: float = 4.0,
    mid_rate_per_host_kpps: float = 30.0,
    peak_rate_per_host_kpps: float = 110.0,
    ramp: bool = True,
    ctl_window_s: float = 0.8,
    duration_s: float = 3.6,
    keyspace: int = 12_000,
    seed: int = 31,
) -> ScenarioSpec:
    """The heterogeneous *hardware* rack: one key-sharded KVS host per
    entry of ``device_kinds`` — by default a NetFPGA SUME host, an ASIC
    SmartNIC host and a NIC-only host — behind one ToR.

    Every host with a card runs the network-driven controller at **its own
    device's** thresholds (the §4 crossover for the NetFPGA, the device's
    analytic crossover otherwise); the NIC-only host has no controller
    because it has nothing to shift to.  With ``ramp`` the offered rate
    climbs base → mid → peak, placed so the SmartNIC's crossover is passed
    at mid load and the NetFPGA's only at peak: the SmartNIC host tips
    first, the NetFPGA host later, the NIC-only host never — the §9.4
    answer to "which hosts in a mixed rack should even have a card".

    ``device_kind`` (scalar) overrides every host to one kind — the
    homogeneous grid points ``sweep-rack-hetero`` iterates.
    """
    kinds = (device_kind,) * len(device_kinds) if device_kind else tuple(device_kinds)
    if not kinds:
        raise ConfigurationError("rack-hetero needs at least one device kind")
    hosts = []
    for i, kind in enumerate(kinds):
        device = DeviceSpec(kind=kind)
        if device.is_offload:
            controller = ControllerSpec(
                kind="network",
                params=dict(
                    up_window_us=sec(ctl_window_s),
                    down_window_us=sec(ctl_window_s),
                ),
            )
        else:
            controller = NO_CONTROLLER
        hosts.append(
            KvsHostSpec(name=f"kvs{i}", device=device, controller=controller)
        )
    n_hosts = len(hosts)
    t_mid = min(1.0, duration_s / 3.0)
    t_peak = min(2.5, duration_s / 1.8)
    phases = (
        (
            (t_mid, mid_rate_per_host_kpps * n_hosts),
            (t_peak, peak_rate_per_host_kpps * n_hosts),
        )
        if ramp and t_peak > t_mid
        else ()
    )
    return ScenarioSpec(
        name="rack-hetero",
        description=(
            "heterogeneous offload rack: "
            + " + ".join(kinds)
            + " KVS hosts, per-device crossover controllers"
        ),
        duration_s=duration_s,
        seed=seed,
        kvs_hosts=tuple(hosts),
        kvs_workload=KvsWorkloadSpec(
            keyspace=keyspace,
            rate_kpps=rate_per_host_kpps * n_hosts,
            phases=phases,
        ),
        sampling=SamplingSpec(power_interval_ms=100.0, bucket_ms=250.0),
    )


@register("rack-paxos-shared")
def rack_paxos_shared_spec(
    duration_s: float = 4.0,
    n_acceptors: int = 3,
    heavy_clients: int = 3,
    light_clients: int = 1,
    seed: int = 17,
) -> ScenarioSpec:
    """Two Paxos consensus groups whose acceptors run on the *same* three
    server boxes: the builder installs one acceptor role per group on each
    shared box (dispatched by sending leader), and the §9.4 wall-power
    attribution splits each box between the groups in proportion to their
    busy time — px0 drives more clients than px1, so it owns the larger
    share."""
    shared = tuple(f"acceptor-shared{i}" for i in range(n_acceptors))
    return ScenarioSpec(
        name="rack-paxos-shared",
        description=(
            "2 Paxos groups sharing acceptor boxes (proportional-to-busy-"
            "time power split)"
        ),
        duration_s=duration_s,
        seed=seed,
        paxos_groups=(
            PaxosSpec(
                name="px0",
                n_clients=heavy_clients,
                n_acceptors=n_acceptors,
                acceptor_hosts=shared,
                shifts=((min(1.2, duration_s / 2.0), True),),
            ),
            PaxosSpec(
                name="px1",
                n_clients=light_clients,
                n_acceptors=n_acceptors,
                acceptor_hosts=shared,
                shifts=((min(2.2, duration_s * 0.7), True),),
            ),
        ),
        sampling=SamplingSpec(power_interval_ms=100.0, bucket_ms=250.0),
    )


# ---------------------------------------------------------------------------
# Multi-rack fabrics: leaf-spine scenarios and the centralized controller.
# ---------------------------------------------------------------------------


@register("fabric-kvs")
def fabric_kvs_spec(
    n_racks: int = 2,
    hosts_per_rack: int = 2,
    rate_per_host_kpps: float = 12.0,
    oversubscription: float = 4.0,
    uplink_latency_us: float = 5.0,
    duration_s: float = 2.0,
    keyspace: int = 20_000,
    seed: int = 11,
) -> ScenarioSpec:
    """The parameterized leaf-spine rack grid the fabric sweeps iterate:
    ``n_racks`` racks × ``hosts_per_rack`` key-sharded memcached hosts
    under one spine.  Every rack reuses the same host spellings
    (``kvs0``, ``kvs1``, …) — the rack-qualified namespace keeps them
    apart — and each host's client enters the fabric at the *next* rack's
    ToR, so with two or more racks the offered load and its responses all
    cross the oversubscribed uplinks (at one rack everything stays under
    the single ToR).  No controllers: sweep points are pinned to a
    placement."""
    if n_racks < 1:
        raise ConfigurationError("fabric-kvs needs n_racks >= 1")
    if hosts_per_rack < 1:
        raise ConfigurationError("fabric-kvs needs hosts_per_rack >= 1")
    hosts = tuple(
        KvsHostSpec(
            name=f"kvs{j}",
            rack=f"rack{i}",
            client_name=f"rack{(i + 1) % n_racks}/kvs{j}-client",
            controller=NO_CONTROLLER,
        )
        for i in range(n_racks)
        for j in range(hosts_per_rack)
    )
    return ScenarioSpec(
        name="fabric-kvs",
        description=(
            f"leaf-spine KVS fabric (sweep base): {n_racks} rack(s) × "
            f"{hosts_per_rack} sharded hosts under one spine"
        ),
        duration_s=duration_s,
        seed=seed,
        fabric=FabricSpec(
            racks=n_racks,
            hosts_per_rack=hosts_per_rack,
            uplink=UplinkSpec(
                latency_us=uplink_latency_us,
                oversubscription=oversubscription,
            ),
        ),
        kvs_hosts=hosts,
        kvs_workload=KvsWorkloadSpec(
            keyspace=keyspace, rate_kpps=rate_per_host_kpps * len(hosts)
        ),
        sampling=SamplingSpec(power_interval_ms=50.0, bucket_ms=250.0),
    )


@register("fabric-kvs-crossrack")
def fabric_kvs_crossrack_spec(
    duration_s: float = 3.0,
    rate_kpps: float = 16.0,
    hot_host_kpps: float = 10.0,
    cold_host_kpps: float = 6.0,
    shift_up_kpps: float = 8.0,
    shift_down_kpps: float = 4.0,
    oversubscription: float = 4.0,
    keyspace: int = 20_000,
    seed: int = 19,
) -> ScenarioSpec:
    """The §9.1 centralized controller's cross-rack showcase.

    Two racks under one spine.  The rack-wide keyspace starts
    *consolidated*: ``rack1/kvs1``'s shard is initially served by
    ``rack0/kvs0`` (``served_by``), so kvs0 serves two shards' traffic and
    runs sustained-hot while kvs1 serves nothing.  The centralized fabric
    controller reads every ToR's counters via the spine, shifts kvs0 into
    hardware (its served rate crosses ``shift_up_kpps``), and — because
    rack0 has no cold host to spread onto — steers the donated shard
    **across racks** back to kvs1 once the overload outlasts the
    deliberately longer ``cross_rack_sustain_us``.  Per-host controllers
    are off: every decision here is the central one."""
    return ScenarioSpec(
        name="fabric-kvs-crossrack",
        description=(
            "centralized fabric controller: consolidated 2-rack KVS fleet, "
            "hot host shifted to hardware and its shard steered cross-rack"
        ),
        duration_s=duration_s,
        seed=seed,
        fabric=FabricSpec(
            racks=2,
            uplink=UplinkSpec(oversubscription=oversubscription),
        ),
        fabric_controller=ControllerSpec(
            kind="fabric",
            params=dict(
                hot_host_pps=hot_host_kpps * 1e3,
                cold_host_pps=cold_host_kpps * 1e3,
                shift_up_pps=shift_up_kpps * 1e3,
                shift_down_pps=shift_down_kpps * 1e3,
                window_us=sec(0.5),
                same_rack_sustain_us=sec(0.3),
                cross_rack_sustain_us=sec(0.9),
            ),
        ),
        kvs_hosts=(
            KvsHostSpec(name="kvs0", rack="rack0", controller=NO_CONTROLLER),
            KvsHostSpec(
                name="kvs1",
                rack="rack1",
                controller=NO_CONTROLLER,
                served_by="rack0/kvs0",
            ),
            KvsHostSpec(name="kvs2", rack="rack1", controller=NO_CONTROLLER),
        ),
        kvs_workload=KvsWorkloadSpec(keyspace=keyspace, rate_kpps=rate_kpps),
        sampling=SamplingSpec(power_interval_ms=50.0, bucket_ms=250.0),
    )


@register("fabric-paxos-split")
def fabric_paxos_split_spec(
    duration_s: float = 3.0,
    shift_to_hw_s: float = 1.0,
    shift_to_sw_s: float = 2.2,
    n_clients: int = 3,
    n_acceptors: int = 3,
    seed: int = 7,
) -> ScenarioSpec:
    """Figure 7's leader shift on a two-rack fabric with the acceptor
    quorum *split across racks*: two acceptors beside the leader in rack0,
    the third behind the spine in rack1 (a rack-qualified
    ``acceptor_hosts`` entry).  The leader redirect rule is installed
    fleet-wide, so 2A messages to the remote acceptor pay the uplink both
    ways — quorum latency now includes the fabric."""
    acceptors = tuple(
        f"rack1/acc{i}" if i == n_acceptors - 1 else f"acc{i}"
        for i in range(n_acceptors)
    )
    return ScenarioSpec(
        name="fabric-paxos-split",
        description=(
            "Paxos leader shift on a 2-rack fabric, acceptor quorum split "
            "across racks"
        ),
        duration_s=duration_s,
        seed=seed,
        fabric=FabricSpec(racks=2),
        paxos_groups=(
            PaxosSpec(
                name="paxos",
                rack="rack0",
                n_clients=n_clients,
                n_acceptors=n_acceptors,
                acceptor_hosts=acceptors,
                shifts=((shift_to_hw_s, True), (shift_to_sw_s, False)),
            ),
        ),
        sampling=SamplingSpec(power_interval_ms=50.0, bucket_ms=50.0),
    )


# ---------------------------------------------------------------------------
# The heterogeneous rack: every application, every controller family.
# ---------------------------------------------------------------------------


@register("rack-mixed")
def rack_mixed_spec(
    duration_s: float = 5.0,
    kvs_rate_kpps: float = 16.0,
    dns_rate_kqps: float = 10.0,
    dns_storm_kqps: float = 30.0,
    keyspace: int = 20_000,
    n_names: int = 800,
    n_paxos_groups: int = 2,
    seed: int = 23,
) -> ScenarioSpec:
    """The §9.4 mixed rack: 2 key-sharded KVS hosts, N independent Paxos
    consensus groups (own logical leader addresses, scheduled shifts at
    distinct times), and 2 anycast DNS replicas steered by qname hash —
    all behind one ToR, each placement with its own controller kind.
    ``n_paxos_groups`` is the sweep axis of ``sweep-rack-mixed``."""
    if n_paxos_groups < 1:
        raise ConfigurationError("rack-mixed needs n_paxos_groups >= 1")
    storm_start_s = min(1.5, duration_s / 3.0)
    storm_stop_s = min(duration_s - 0.5, duration_s * 0.9)
    job_start_s, job_stop_s = 0.8, min(3.5, duration_s)
    return ScenarioSpec(
        name="rack-mixed",
        description=(
            f"Heterogeneous rack: 2 KVS shards + {n_paxos_groups} Paxos "
            "groups + 2 anycast DNS hosts, mixed controller kinds"
        ),
        duration_s=duration_s,
        seed=seed,
        kvs_hosts=(
            # host-driven RAPL controller triggered by a co-located job
            # (dropped on horizons too short for the job to fit)
            KvsHostSpec(
                name="kvs0",
                colocated=(
                    ColocatedJobSpec(start_s=job_start_s, stop_s=job_stop_s),
                )
                if job_stop_s > job_start_s
                else (),
            ),
            # network-driven controller triggered by this shard's rate
            KvsHostSpec(
                name="kvs1",
                controller=ControllerSpec(
                    kind="network",
                    params=dict(
                        up_rate_pps=6_000.0,
                        down_rate_pps=2_000.0,
                        up_window_us=sec(1.0),
                        down_window_us=sec(1.0),
                    ),
                ),
            ),
        ),
        kvs_workload=KvsWorkloadSpec(keyspace=keyspace, rate_kpps=kvs_rate_kpps),
        paxos_groups=tuple(
            # staggered shift times so groups demonstrably move
            # independently; a stagger past the horizon is dropped (like
            # co-located jobs that don't fit) rather than silently queued
            PaxosSpec(
                name=f"px{i}",
                shifts=((1.2 + 1.0 * i, True),)
                if 1.2 + 1.0 * i < duration_s
                else (),
            )
            for i in range(n_paxos_groups)
        ),
        dns_hosts=(
            DnsHostSpec(
                name="dns0",
                controller=ControllerSpec(
                    kind="network",
                    params=dict(
                        up_rate_pps=8_000.0,
                        down_rate_pps=3_000.0,
                        up_window_us=sec(1.0),
                        down_window_us=sec(1.0),
                    ),
                ),
            ),
            DnsHostSpec(
                name="dns1",
                controller=ControllerSpec(
                    kind="network",
                    params=dict(
                        up_rate_pps=8_000.0,
                        down_rate_pps=3_000.0,
                        up_window_us=sec(1.0),
                        down_window_us=sec(1.0),
                    ),
                ),
            ),
        ),
        dns_workload=DnsWorkloadSpec(
            n_names=n_names,
            rate_kpps=dns_rate_kqps,
            phases=(
                (storm_start_s, dns_storm_kqps),
                (storm_stop_s, dns_rate_kqps),
            )
            if storm_stop_s > storm_start_s
            else ((storm_start_s, dns_storm_kqps),),
        ),
        sampling=SamplingSpec(power_interval_ms=100.0, bucket_ms=250.0),
    )
