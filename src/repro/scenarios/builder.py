"""Materialize a :class:`ScenarioSpec` into a wired DES run.

The builder owns all the plumbing the experiment runners used to hand-wire:
servers with NIC-replacing cards, software/hardware application pairs
behind per-host packet classifiers, the ToR switch (with key-shard and
qname-hash dispatch in rack mode, and per-group logical leader redirects),
per-placement shift controllers of any :class:`ControllerSpec` kind,
co-located CPU jobs, workload clients with phased rate schedules, and the
shared sampling.  Executing the run produces a :class:`ScenarioResult`
carrying per-host, per-group and aggregate timelines — the same series the
paper's Figures 6/7 plot, generalized to heterogeneous racks.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import calibration as cal
from ..apps.dns import DnsClient, EmuDns, SoftwareNsd, ZoneTable
from ..apps.kvs import KvsClient, LakeKvs, SoftwareMemcached
from ..apps.paxos import PaxosClient
from ..apps.paxos.deployment import (
    HardwarePaxosRole,
    LearnerGapScanner,
    PaxosDeployment,
    SoftwarePaxosRole,
    _Directory,
)
from ..apps.paxos.roles import AcceptorState, LeaderState, LearnerState
from ..core.controller import ShiftController
from ..core.fabric_controller import (
    FabricController,
    FabricControllerConfig,
    HostPlacement,
    SteerEvent,
)
from ..core.host_controller import HostController, HostControllerConfig
from ..core.network_controller import (
    DEFAULT_CONFIGS as NETCTL_DEFAULT_CONFIGS,
    NetworkController,
)
from ..core.ondemand import OnDemandService
from ..core.paxos_controller import PaxosControllerConfig, PaxosShiftController
from ..core.predictive_controller import (
    PredictiveController,
    PredictiveControllerConfig,
)
from ..errors import ConfigurationError
from ..host import make_i7_server
from ..hw.device import DEFAULT_DEVICE_KIND, OffloadDevice, get_device
from ..naming import rack_qualified, split_rack
from ..net.classifier import (
    ClassifierRule,
    KeyShardRouter,
    PacketClassifier,
    RouterFleet,
)
from ..net.node import CallbackNode
from ..net.packet import TrafficClass
from ..net.switch import Switch
from ..net.topology import Fabric, Topology, build_fabric
from ..sim import (
    PeriodicSampler,
    RngStreams,
    Simulator,
    bucket_mean_series,
    bucket_rate_series,
)
from ..units import gbit_per_s, kpps, msec, sec
from ..workloads.colocated import ChainerMNWorkload
from ..workloads.dns import DnsNameWorkload, ShardedDnsWorkload
from ..workloads.etc import EtcWorkload, ShardedEtcWorkload
from .spec import (
    RACK_DNS_SERVICE,
    RACK_KVS_SERVICE,
    DnsHostSpec,
    KvsHostSpec,
    OnDemandSweepSpec,
    PaxosSpec,
    PhaseSchedule,
    SamplingSpec,
    ScenarioSpec,
)

# ---------------------------------------------------------------------------
# Results.
# ---------------------------------------------------------------------------


def windowed_mean(series, start_us: float, end_us: float, label: str = "series") -> float:
    """Mean of the non-None values with start <= t < end.

    The one windowing rule every result type (host, paxos, aggregate, and
    the figure-shaped adapters in :mod:`repro.experiments.transitions`)
    shares.
    """
    values = [
        v for t, v in series if v is not None and start_us <= t < end_us
    ]
    if not values:
        raise ValueError(f"no {label} samples in window")
    return sum(values) / len(values)


@dataclass
class HostResult:
    """One host's Figure-6-style timelines plus its transition markers.

    ``app`` tells KVS hosts from DNS hosts in mixed racks; for DNS hosts
    ``hw_hits`` counts Emu-served queries and ``hw_miss_forwards`` the
    deeper-than-parser fallbacks (§9.2).
    """

    name: str
    offered_pps: float
    shift_times_us: List[float]
    throughput_series: List[Tuple[float, float]]
    latency_series: List[Tuple[float, Optional[float]]]
    power_series: List[Tuple[float, float]]
    hw_hits: int
    hw_miss_forwards: int
    responses: int
    app: str = "kvs"
    controller_kind: str = "host"
    #: which offload card this host carries ("none" = NIC-only host)
    device_kind: str = DEFAULT_DEVICE_KIND

    def mean_throughput_pps(self, start_us: float, end_us: float) -> float:
        return windowed_mean(self.throughput_series, start_us, end_us, "throughput")

    def mean_latency_us(self, start_us: float, end_us: float) -> float:
        return windowed_mean(self.latency_series, start_us, end_us, "latency")

    def mean_power_w(self, start_us: float, end_us: float) -> float:
        return windowed_mean(self.power_series, start_us, end_us, "power")


@dataclass
class PaxosResult:
    """One consensus group's Figure-7-style timelines."""

    throughput_series: List[Tuple[float, float]]
    latency_series: List[Tuple[float, Optional[float]]]
    power_series: List[Tuple[float, float]]
    shift_times_us: List[float]
    decided: int
    retries: int
    stall_us: List[float] = field(default_factory=list)
    name: str = "paxos"

    def mean_throughput_pps(self, start_us: float, end_us: float) -> float:
        return windowed_mean(self.throughput_series, start_us, end_us, "throughput")

    def mean_latency_us(self, start_us: float, end_us: float) -> float:
        return windowed_mean(self.latency_series, start_us, end_us, "latency")


@dataclass
class ScenarioResult:
    """Everything a scenario run measured."""

    name: str
    duration_us: float
    hosts: List[HostResult]
    paxos_groups: List[PaxosResult]
    #: summed per-bucket host throughput (the rack's served rate, KVS+DNS)
    aggregate_throughput_series: List[Tuple[float, float]]
    #: summed per-bucket host platform power (the rack's CPU draw, KVS+DNS)
    aggregate_power_series: List[Tuple[float, float]]
    #: routed-packet counts per KVS host in rack mode (ToR telemetry)
    routed_per_host: Dict[str, int] = field(default_factory=dict)
    #: routed-query counts per DNS host in anycast mode (ToR telemetry)
    dns_routed_per_host: Dict[str, int] = field(default_factory=dict)
    dns_hosts: List[HostResult] = field(default_factory=list)
    #: mean **wall** watts (platform + card) attributed to each placement —
    #: KVS host, DNS replica or Paxos group — over the whole run; a server
    #: claimed by several placements is split between them (§9.4 rack
    #: accounting).  The per-host ``power_series`` above stay CPU-only,
    #: matching the paper's RAPL methodology.
    power_by_placement: Dict[str, float] = field(default_factory=dict)
    #: mean summed wall power of every rack server+card — computed from the
    #: per-sample totals, independently of the per-placement attribution,
    #: so the two must agree (the attribution invariant the §9.4 sweep
    #: benchmark asserts).
    total_wall_power_w: float = 0.0
    #: fabric telemetry (empty/zero on single-ToR scenarios, so every
    #: pre-fabric result — and its rendering — is unchanged)
    fabric_racks: Tuple[str, ...] = ()
    #: packets for the KVS service seen at each rack's ToR (raw per-ToR
    #: telemetry: a rack counts its own clients' offered load plus
    #: cross-rack arrivals handed down from the spine)
    rack_kvs_packets: Dict[str, int] = field(default_factory=dict)
    #: KVS packets that transited the spine — the cross-rack subset
    spine_crossrack_packets: int = 0
    #: per-host served requests that crossed racks (spine router view)
    crossrack_routed_per_host: Dict[str, int] = field(default_factory=dict)
    #: shard moves issued by the centralized fabric controller
    fabric_steers: List[SteerEvent] = field(default_factory=list)
    #: total / worst FIFO queueing delay accumulated on the uplinks
    uplink_queued_us: float = 0.0
    uplink_max_queue_us: float = 0.0

    def cross_rack_steers(self) -> List[SteerEvent]:
        return [s for s in self.fabric_steers if s.cross_rack]

    def same_rack_steers(self) -> List[SteerEvent]:
        return [s for s in self.fabric_steers if not s.cross_rack]

    @property
    def paxos(self) -> Optional[PaxosResult]:
        """The single consensus group of a Figure-7-style scenario (the
        first group of a multi-group rack), or None."""
        return self.paxos_groups[0] if self.paxos_groups else None

    def host(self, name: str) -> HostResult:
        for host in (*self.hosts, *self.dns_hosts):
            if host.name == name:
                return host
        raise KeyError(name)

    def paxos_group(self, name: str) -> PaxosResult:
        for group in self.paxos_groups:
            if group.name == name:
                return group
        raise KeyError(name)

    @property
    def all_hosts(self) -> List[HostResult]:
        return [*self.hosts, *self.dns_hosts]

    @property
    def total_responses(self) -> int:
        return sum(h.responses for h in self.all_hosts)

    @property
    def offered_pps(self) -> float:
        return sum(h.offered_pps for h in self.all_hosts)

    def aggregate_mean_throughput_pps(self, start_us: float, end_us: float) -> float:
        return windowed_mean(
            self.aggregate_throughput_series, start_us, end_us, "throughput"
        )

    def attributed_power_w(self) -> float:
        """Sum of the per-placement wall-power attribution."""
        return sum(self.power_by_placement.values())

    def hosts_with_shifts(self) -> List[HostResult]:
        return [h for h in self.all_hosts if h.shift_times_us]

    def distinct_first_shift_times(self) -> List[float]:
        """Sorted unique first-shift moments across the rack — evidence
        that hosts move between software and hardware independently."""
        return sorted({h.shift_times_us[0] for h in self.hosts_with_shifts()})

    def paxos_distinct_first_shift_times(self) -> List[float]:
        """Unique first-shift moments across consensus groups — evidence
        that groups behind one ToR shift independently."""
        return sorted(
            {g.shift_times_us[0] for g in self.paxos_groups if g.shift_times_us}
        )

    def render(self) -> str:
        lines = [f"Scenario: {self.name} ({self.duration_us / 1e6:.1f}s simulated)"]
        if self.fabric_racks:
            lines.append(
                f"fabric: {len(self.fabric_racks)} rack(s) "
                f"[{', '.join(self.fabric_racks)}], "
                f"{self.spine_crossrack_packets} cross-rack packet(s), "
                f"uplink queueing {self.uplink_queued_us / 1e3:.1f} ms total "
                f"(max {self.uplink_max_queue_us:.1f} us)"
            )
            if any(self.rack_kvs_packets.values()):
                per_rack = ", ".join(
                    f"{rack}={count}"
                    for rack, count in self.rack_kvs_packets.items()
                )
                lines.append(f"per-rack ToR KVS packets: {per_rack}")
            for steer in self.fabric_steers:
                kind = "cross-rack" if steer.cross_rack else "same-rack"
                lines.append(
                    f"fabricctl steer @{steer.time_us / 1e6:.2f}s: "
                    f"shard {steer.shard} {steer.from_host} -> {steer.to_host} "
                    f"({kind})"
                )
        if self.hosts:
            lines.append(
                f"rack: {len(self.hosts)} KVS host(s), "
                f"offered {sum(h.offered_pps for h in self.hosts) / 1e3:.1f} kpps total, "
                f"{sum(h.responses for h in self.hosts)} responses"
            )
            lines.extend(self._host_table(self.hosts, self.duration_us))
            if self.routed_per_host:
                routed = ", ".join(
                    f"{name}={count}" for name, count in self.routed_per_host.items()
                )
                lines.append(f"ToR key-shard routing: {routed}")
        if self.dns_hosts:
            lines.append(
                f"anycast DNS: {len(self.dns_hosts)} host(s), "
                f"offered {sum(h.offered_pps for h in self.dns_hosts) / 1e3:.1f} kqps total, "
                f"{sum(h.responses for h in self.dns_hosts)} responses"
            )
            lines.extend(self._host_table(self.dns_hosts, self.duration_us))
            if self.dns_routed_per_host:
                routed = ", ".join(
                    f"{name}={count}"
                    for name, count in self.dns_routed_per_host.items()
                )
                lines.append(f"ToR qname-hash routing: {routed}")
        if self.all_hosts:
            agg = self.aggregate_mean_throughput_pps(0.0, self.duration_us)
            lines.append(f"aggregate throughput: {agg / 1e3:.1f} kpps")
        for group in self.paxos_groups:
            lines.append(
                f"paxos[{group.name}]: {group.decided} decisions, "
                f"{group.retries} retries, shifts at "
                + (
                    ", ".join(f"{t / 1e6:.2f}s" for t in group.shift_times_us)
                    or "-"
                )
            )
        return "\n".join(lines)

    @staticmethod
    def _host_table(hosts: List[HostResult], duration_us: float) -> List[str]:
        # the device column appears only on heterogeneous racks, keeping
        # the default-device scenario outputs identical to the pre-device
        # renderer
        with_devices = any(h.device_kind != DEFAULT_DEVICE_KIND for h in hosts)
        header = "host            ctl         shifts[s]           mean thr[kpps]  hw hits  misses"
        if with_devices:
            header = "host            device          " + header[16:]
        lines = [header]
        for host in hosts:
            shifts = ", ".join(f"{t / 1e6:.2f}" for t in host.shift_times_us) or "-"
            thr = (
                windowed_mean(host.throughput_series, 0.0, duration_us, "throughput")
                if any(v for _, v in host.throughput_series)
                else 0.0
            )
            device_col = f"{host.device_kind:<14}  " if with_devices else ""
            lines.append(
                f"{host.name:<14}  {device_col}{host.controller_kind:<10}  "
                f"{shifts:<18}  "
                f"{thr / 1e3:14.1f}  {host.hw_hits:7d}  {host.hw_miss_forwards:6d}"
            )
        return lines


# ---------------------------------------------------------------------------
# Built runtime handles.
# ---------------------------------------------------------------------------


@dataclass
class BuiltKvsHost:
    """The wired stack behind one KVS host (construction handles).

    On a NIC-only host (``DeviceSpec(kind="none")``) there is no card, no
    hardware pipeline and no classifier: ``card``/``lake``/``classifier``
    are None and the software memcached handles every packet directly.
    """

    spec: KvsHostSpec
    server: object
    card: Optional[object]
    memcached: SoftwareMemcached
    lake: Optional[LakeKvs]
    classifier: Optional[PacketClassifier]
    service: OnDemandService
    controller: Optional[ShiftController]
    client: KvsClient
    power_sampler: PeriodicSampler
    wall_sampler: PeriodicSampler
    jobs: List[ChainerMNWorkload]
    offered_pps: float


@dataclass
class BuiltDnsHost:
    """The wired stack behind one anycast DNS replica (see
    :class:`BuiltKvsHost` for the NIC-only shape)."""

    spec: DnsHostSpec
    server: object
    card: Optional[object]
    nsd: SoftwareNsd
    emu: Optional[EmuDns]
    classifier: Optional[PacketClassifier]
    service: OnDemandService
    controller: Optional[ShiftController]
    client: DnsClient
    power_sampler: PeriodicSampler
    wall_sampler: PeriodicSampler
    offered_pps: float


@dataclass
class BuiltPaxosGroup:
    """One wired consensus group (construction handles)."""

    spec: PaxosSpec
    deployment: PaxosDeployment
    controller: PaxosShiftController
    clients: List[PaxosClient]
    gap_scanner: LearnerGapScanner
    power_sampler: PeriodicSampler
    #: server/card name -> wall-power sampler for every node the group owns
    #: (a *shared* acceptor box appears in several groups' maps, pointing
    #: at one sampler object)
    wall_samplers: Dict[str, PeriodicSampler] = field(default_factory=dict)
    #: node name -> this group's software role on it, for the busy-time
    #: weights of the shared-host power split
    roles_by_node: Dict[str, SoftwarePaxosRole] = field(default_factory=dict)

    def busy_us_on(self, node_name: str) -> float:
        """Cumulative service busy time this group spent on a node (the
        proportional-split weight; nodes without a software role — the
        hardware leader card — are sole-owned, so the weight is moot)."""
        role = self.roles_by_node.get(node_name)
        if role is None:
            return 1.0
        return role.served * role.service_time_us


class ScenarioRun:
    """A materialized scenario: simulator, topology and all runtimes."""

    def __init__(
        self,
        spec: ScenarioSpec,
        sim: Simulator,
        topology: Topology,
        switch: Switch,
        kvs_hosts: List[BuiltKvsHost],
        router: Optional[KeyShardRouter],
        paxos_groups: List[BuiltPaxosGroup],
        dns_hosts: Optional[List[BuiltDnsHost]] = None,
        dns_router: Optional[KeyShardRouter] = None,
        fabric: Optional[Fabric] = None,
        fabric_controller: Optional[FabricController] = None,
    ):
        self.spec = spec
        self.sim = sim
        self.topology = topology
        #: the rack ToR on single-switch scenarios, the spine on fabrics
        self.switch = switch
        self.kvs_hosts = kvs_hosts
        #: the ToR's :class:`KeyShardRouter` on single-switch scenarios, or
        #: the fabric-wide :class:`RouterFleet` (same ``per_host`` surface)
        self.router = router
        self.paxos_groups = paxos_groups
        self.dns_hosts = dns_hosts or []
        self.dns_router = dns_router
        self.fabric = fabric
        self.fabric_controller = fabric_controller
        self._executed = False

    # -- execution -----------------------------------------------------------

    def execute(self) -> ScenarioResult:
        """Run the scenario to its horizon and collect every timeline."""
        if self._executed:
            raise ConfigurationError("scenario already executed; build a new run")
        self._executed = True
        duration_us = sec(self.spec.duration_s)
        self.sim.run_until(duration_us)
        for host in (*self.kvs_hosts, *self.dns_hosts):
            if host.controller is not None:
                host.controller.stop()
        for group in self.paxos_groups:
            group.controller.stop()
            group.gap_scanner.stop()
        if self.fabric_controller is not None:
            self.fabric_controller.stop()
        return self._collect(duration_us)

    # -- series collection ---------------------------------------------------

    def _effective_sampling(self, host_spec) -> SamplingSpec:
        return host_spec.sampling or self.spec.sampling

    def _collect(self, duration_us: float) -> ScenarioResult:
        bucket_us = msec(self.spec.sampling.bucket_ms)
        host_results = [
            self._collect_host(host, duration_us) for host in self.kvs_hosts
        ]
        dns_results = [
            self._collect_dns_host(host, duration_us) for host in self.dns_hosts
        ]
        # Aggregates always use the scenario-level bucket so hosts with
        # per-host sampling overrides still sum onto aligned buckets.
        aggregate_thr = _sum_series(
            [
                bucket_rate_series(
                    host.client.response_times_us, bucket_us, duration_us
                )
                for host in (*self.kvs_hosts, *self.dns_hosts)
            ]
        )
        aggregate_pw = _sum_series(
            [
                _power_series(host.power_sampler, bucket_us, duration_us)
                for host in (*self.kvs_hosts, *self.dns_hosts)
            ]
        )
        paxos_results = [
            self._collect_paxos(group, bucket_us, duration_us)
            for group in self.paxos_groups
        ]
        power_by_placement, total_wall_power_w = self._attribute_wall_power()
        fabric_racks: Tuple[str, ...] = ()
        rack_kvs_packets: Dict[str, int] = {}
        spine_crossrack = 0
        crossrack_per_host: Dict[str, int] = {}
        steers: List[SteerEvent] = []
        uplink_queued_us = 0.0
        uplink_max_queue_us = 0.0
        if self.fabric is not None:
            fabric_racks = self.fabric.racks
            rack_kvs_packets = self.fabric.rack_logical_counts(
                TrafficClass.MEMCACHED, RACK_KVS_SERVICE
            )
            # every packet the spine forwards crossed racks, whatever its
            # class or direction — counts Paxos quorums and responses too,
            # not just KVS dispatch
            spine_crossrack = self.fabric.spine.forwarded
            if isinstance(self.router, RouterFleet):
                crossrack_per_host = self.router.crossrack_per_host
            uplink_queued_us = sum(l.queued_us for l in self.fabric.uplinks)
            uplink_max_queue_us = max(
                (l.max_queue_us for l in self.fabric.uplinks), default=0.0
            )
        if self.fabric_controller is not None:
            steers = list(self.fabric_controller.steers)
        return ScenarioResult(
            name=self.spec.name,
            duration_us=duration_us,
            hosts=host_results,
            paxos_groups=paxos_results,
            aggregate_throughput_series=aggregate_thr,
            aggregate_power_series=aggregate_pw,
            routed_per_host=dict(self.router.per_host) if self.router else {},
            dns_routed_per_host=(
                dict(self.dns_router.per_host) if self.dns_router else {}
            ),
            dns_hosts=dns_results,
            power_by_placement=power_by_placement,
            total_wall_power_w=total_wall_power_w,
            fabric_racks=fabric_racks,
            rack_kvs_packets=rack_kvs_packets,
            spine_crossrack_packets=spine_crossrack,
            crossrack_routed_per_host=crossrack_per_host,
            fabric_steers=steers,
            uplink_queued_us=uplink_queued_us,
            uplink_max_queue_us=uplink_max_queue_us,
        )

    def _attribute_wall_power(self) -> Tuple[Dict[str, float], float]:
        """Per-placement wall-power attribution over the whole run.

        Every rack server (and hardware card) is sampled on the shared
        scenario cadence; each sampled node is claimed by the placement(s)
        running on it — :func:`merge_power_claims` folds multiple
        claimants of one node together so shared hosts split, never
        double-count or drop.
        """
        entries = [
            (host.spec.name, host.wall_sampler.series.values, host.spec.name, 1.0)
            for host in (*self.kvs_hosts, *self.dns_hosts)
        ]
        for group in self.paxos_groups:
            for node_name, sampler in group.wall_samplers.items():
                entries.append(
                    (
                        node_name,
                        sampler.series.values,
                        group.spec.name,
                        group.busy_us_on(node_name),
                    )
                )
        return attribute_power(*merge_power_claims(entries))

    def _collect_host(self, host: BuiltKvsHost, duration_us: float) -> HostResult:
        bucket_us = msec(self._effective_sampling(host.spec).bucket_ms)
        client = host.client
        throughput = bucket_rate_series(
            client.response_times_us, bucket_us, duration_us
        )
        latency = bucket_mean_series(
            list(zip(client.latency_series.times, client.latency_series.values)),
            bucket_us,
            duration_us,
        )
        power = _power_series(host.power_sampler, bucket_us, duration_us)
        lake = host.lake
        hw_hits = 0
        hw_miss_forwards = 0
        if lake is not None:
            hw_hits = lake.l1.hits + (lake.l2.hits if lake.l2 is not None else 0)
            hw_miss_forwards = lake.miss_forwards
        return HostResult(
            name=host.spec.name,
            offered_pps=host.offered_pps,
            shift_times_us=host.service.shift_times_us(),
            throughput_series=throughput,
            latency_series=latency,
            power_series=power,
            hw_hits=hw_hits,
            hw_miss_forwards=hw_miss_forwards,
            responses=client.responses,
            app="kvs",
            controller_kind=host.spec.controller.kind,
            device_kind=host.spec.device.kind,
        )

    def _collect_dns_host(self, host: BuiltDnsHost, duration_us: float) -> HostResult:
        bucket_us = msec(self._effective_sampling(host.spec).bucket_ms)
        client = host.client
        throughput = bucket_rate_series(
            client.response_times_us, bucket_us, duration_us
        )
        latency = bucket_mean_series(
            list(zip(client.latency_series.times, client.latency_series.values)),
            bucket_us,
            duration_us,
        )
        power = _power_series(host.power_sampler, bucket_us, duration_us)
        return HostResult(
            name=host.spec.name,
            offered_pps=host.offered_pps,
            shift_times_us=host.service.shift_times_us(),
            throughput_series=throughput,
            latency_series=latency,
            power_series=power,
            hw_hits=host.emu.served if host.emu is not None else 0,
            hw_miss_forwards=(
                host.emu.deep_query_fallbacks if host.emu is not None else 0
            ),
            responses=client.responses,
            app="dns",
            controller_kind=host.spec.controller.kind,
            device_kind=host.spec.device.kind,
        )

    def _collect_paxos(
        self, group: BuiltPaxosGroup, bucket_us: float, duration_us: float
    ) -> PaxosResult:
        clients = group.clients
        decision_times = sorted(
            t for client in clients for t in client.decision_times_us
        )
        latency_samples = []
        for client in clients:
            latency_samples.extend(
                zip(client.latency_series.times, client.latency_series.values)
            )
        latency_samples.sort()
        throughput = bucket_rate_series(decision_times, bucket_us, duration_us)
        latency = bucket_mean_series(latency_samples, bucket_us, duration_us)
        power = _power_series(group.power_sampler, bucket_us, duration_us)
        # Post-shift stall: the largest decision gap in the 300ms following
        # each shift (in-flight decisions may land just after the rule
        # flip; the stall is the silence until client retries).
        shift_times = group.controller.shift_times_us()
        stalls = []
        for shift_time in shift_times:
            window = [shift_time] + [
                t
                for t in decision_times
                if shift_time < t <= shift_time + msec(300.0)
            ]
            if len(window) > 1:
                gaps = [b - a for a, b in zip(window, window[1:])]
                stalls.append(max(gaps))
        return PaxosResult(
            throughput_series=throughput,
            latency_series=latency,
            power_series=power,
            shift_times_us=shift_times,
            decided=sum(c.decided for c in clients),
            retries=sum(c.retries for c in clients),
            stall_us=stalls,
            name=group.spec.name,
        )


def merge_power_claims(
    entries: List[Tuple[str, List[float], str, float]],
) -> Tuple[
    Dict[str, List[float]],
    Dict[str, Tuple[str, ...]],
    Dict[str, Dict[str, float]],
]:
    """Fold (node, samples, owner, busy_us) tuples into
    :func:`attribute_power` inputs.  A node listed by several placements
    keeps **one** sample set (it is one physical box — same probe either
    way), accumulates every distinct owner, and sums each owner's busy
    time, so shared hosts reach the split path instead of the last
    claimant silently absorbing the whole draw.
    """
    samples: Dict[str, List[float]] = {}
    claims: Dict[str, Tuple[str, ...]] = {}
    busy: Dict[str, Dict[str, float]] = {}
    for node_name, values, owner, busy_us in entries:
        samples.setdefault(node_name, values)
        owners = claims.get(node_name, ())
        if owner not in owners:
            claims[node_name] = owners + (owner,)
        node_busy = busy.setdefault(node_name, {})
        node_busy[owner] = node_busy.get(owner, 0.0) + busy_us
    return samples, claims, busy


def attribute_power(
    samples_by_server: Dict[str, List[float]],
    claims: Dict[str, Tuple[str, ...]],
    busy_us_by_server: Optional[Dict[str, Dict[str, float]]] = None,
) -> Tuple[Dict[str, float], float]:
    """Split per-server wall-power samples among claiming placements.

    ``claims`` maps each sampled server to the placements running on it; a
    server claimed by several placements (Paxos groups sharing acceptor
    hosts, KVS shards co-resident with a consensus role) is split between
    them **in proportion to each claimant's busy time** on that box
    (``busy_us_by_server``: server → owner → busy µs).  Claimants with no
    recorded busy time — or a box where nobody was busy at all — fall back
    to the equal split, so idle shared boxes still decompose.  Returns the
    per-placement attribution plus the independently-reduced total (mean of
    per-sample sums), so callers can assert the decomposition drops or
    double-counts nothing.

    All non-empty sample series must be the same length — i.e. sampled on
    one shared cadence, as the builder's wall samplers are.  With ragged
    series a "mean of per-sample sums" would silently disagree with the
    attribution, so that is rejected rather than approximated.
    """
    lengths = {len(s) for s in samples_by_server.values() if s}
    if len(lengths) > 1:
        raise ConfigurationError(
            "power attribution needs aligned sample series (one shared "
            f"sampling cadence); got lengths {sorted(lengths)}"
        )
    attribution: Dict[str, float] = {}
    per_sample_totals: List[float] = []
    for server, samples in samples_by_server.items():
        if not samples:
            continue
        owners = claims.get(server)
        if not owners:
            raise ConfigurationError(
                f"power samples for {server!r} are claimed by no placement"
            )
        mean_w = sum(samples) / len(samples)
        weights = (busy_us_by_server or {}).get(server)
        busy = [max(0.0, (weights or {}).get(owner, 0.0)) for owner in owners]
        busy_total = sum(busy)
        for owner, owner_busy in zip(owners, busy):
            if busy_total > 0.0:
                share = mean_w * owner_busy / busy_total
            else:
                share = mean_w / len(owners)
            attribution[owner] = attribution.get(owner, 0.0) + share
        for i, value in enumerate(samples):
            if i < len(per_sample_totals):
                per_sample_totals[i] += value
            else:
                per_sample_totals.append(value)
    total = (
        sum(per_sample_totals) / len(per_sample_totals)
        if per_sample_totals
        else 0.0
    )
    return attribution, total


def _power_series(
    sampler: PeriodicSampler, bucket_us: float, duration_us: float
) -> List[Tuple[float, float]]:
    series = bucket_mean_series(
        list(zip(sampler.series.times, sampler.series.values)),
        bucket_us,
        duration_us,
    )
    return [(t, v if v is not None else 0.0) for t, v in series]


def _sum_series(
    series_list: List[List[Tuple[float, Optional[float]]]]
) -> List[Tuple[float, float]]:
    """Bucket-wise sum of aligned (t, value) series (None counts as 0)."""
    if not series_list:
        return []
    out = []
    for i, (t, _) in enumerate(series_list[0]):
        total = 0.0
        for series in series_list:
            if i < len(series) and series[i][1] is not None:
                total += series[i][1]
        out.append((t, total))
    return out


# ---------------------------------------------------------------------------
# The builder.
# ---------------------------------------------------------------------------


class _PaxosRoleFanout:
    """Packet dispatch for a server hosting several groups' acceptor roles.

    A shared acceptor box is one switch port, so inbound 1A/2A messages
    from *different groups' leaders* arrive on one handler; acceptors only
    ever receive from their group's leader nodes, which makes the packet
    source the natural dispatch key.
    """

    def __init__(self, server_name: str):
        self.server_name = server_name
        self._roles_by_src: Dict[str, SoftwarePaxosRole] = {}

    def register(self, leader_names: Tuple[str, ...], role) -> None:
        for src in leader_names:
            if src in self._roles_by_src:
                raise ConfigurationError(
                    f"leader {src!r} already routed on shared acceptor "
                    f"host {self.server_name!r}"
                )
            self._roles_by_src[src] = role

    def offer(self, packet) -> None:
        role = self._roles_by_src.get(packet.src)
        if role is None:
            raise ConfigurationError(
                f"shared acceptor host {self.server_name!r} got a packet "
                f"from unregistered source {packet.src!r}"
            )
        role.offer(packet)


class ScenarioBuilder:
    """Materializes a :class:`ScenarioSpec` into a :class:`ScenarioRun`."""

    def __init__(self, spec: ScenarioSpec):
        self.spec = spec.validate()

    # -- public API ----------------------------------------------------------

    def build(self) -> ScenarioRun:
        spec = self.spec
        sim = Simulator()
        streams = RngStreams(spec.seed)
        if spec.fabric is not None:
            # -- leaf-spine fabric: a ToR per rack under one spine, with
            # oversubscribed queueing uplinks; the per-rack ToRs reuse the
            # single-switch spelling under their rack prefix
            self._fabric = build_fabric(
                sim,
                spec.fabric.rack_names(),
                spine_name=spec.fabric.spine.name,
                tor_name=spec.switch.name,
                host_latency_us=spec.switch.latency_us,
                host_bandwidth_bps=gbit_per_s(spec.switch.bandwidth_gbps),
                uplink_latency_us=spec.fabric.uplink.latency_us,
                uplink_bandwidth_bps=gbit_per_s(spec.fabric.uplink.bandwidth_gbps),
                oversubscription=spec.fabric.uplink.oversubscription,
            )
            topo = self._fabric.topology
            switch = self._fabric.spine
        else:
            self._fabric = None
            switch = Switch(sim, spec.switch.name)
            topo = Topology(sim)
            topo.add(switch)
        #: shared acceptor boxes built so far: name -> (server, fanout)
        self._shared_acceptor_hosts: Dict[str, Tuple[object, _PaxosRoleFanout]] = {}
        #: one wall sampler per physical box, even when groups share it
        self._wall_sampler_cache: Dict[str, PeriodicSampler] = {}

        kvs_hosts: List[BuiltKvsHost] = []
        router = None
        if spec.kvs_hosts:
            kvs_hosts, router = self._build_kvs_rack(sim, streams, topo, switch)

        paxos_groups = [
            self._build_paxos_group(sim, streams, topo, switch, group)
            for group in spec.paxos_groups
        ]

        dns_hosts: List[BuiltDnsHost] = []
        dns_router = None
        if spec.dns_hosts:
            dns_hosts, dns_router = self._build_dns_rack(sim, streams, topo, switch)

        fabric_controller = self._build_fabric_controller(sim, kvs_hosts, router)

        return ScenarioRun(
            spec,
            sim,
            topo,
            switch,
            kvs_hosts,
            router,
            paxos_groups,
            dns_hosts=dns_hosts,
            dns_router=dns_router,
            fabric=self._fabric,
            fabric_controller=fabric_controller,
        )

    def run(self) -> ScenarioResult:
        """Build and execute in one step."""
        return self.build().execute()

    # -- shared plumbing -----------------------------------------------------

    def _connect(
        self, topo: Topology, node_name: str, rack: Optional[str] = None
    ) -> None:
        """Attach a node to the scenario's switching layer.

        Single-switch scenarios wire to the one ToR; fabric scenarios wire
        to the rack's ToR (the rack prefix of an already-qualified name
        wins, otherwise ``rack``, otherwise the fabric default).
        """
        if self._fabric is not None:
            name_rack = split_rack(node_name)[0]
            target_rack = (
                name_rack or rack or self.spec.fabric.default_rack
            )
            self._fabric.connect_host(
                target_rack,
                topo.node(node_name),
                latency_us=self.spec.switch.latency_us,
                bandwidth_bps=gbit_per_s(self.spec.switch.bandwidth_gbps),
            )
            return
        topo.connect_via_switch(
            self.spec.switch.name,
            node_name,
            latency_us=self.spec.switch.latency_us,
            bandwidth_bps=gbit_per_s(self.spec.switch.bandwidth_gbps),
        )

    def _qualified(self, host_spec):
        """Rack-qualify a host/group spec's names for fabric scenarios.

        Every derived name (clients, paxos roles, RNG stream keys, sampler
        names) flows from the spec's ``name``, so one ``dataclasses.replace``
        namespaces the whole host under ``<rack>/`` — racks can reuse host
        spellings without colliding in the topology or the RNG registry.
        Single-switch scenarios return the spec untouched (byte-identity).
        """
        if self._fabric is None:
            return host_spec
        rack = self.spec.host_rack(host_spec)
        if isinstance(host_spec, PaxosSpec):
            return dataclasses.replace(
                host_spec,
                name=rack_qualified(rack, host_spec.name),
                acceptor_hosts=tuple(
                    rack_qualified(rack, acc) for acc in host_spec.acceptor_hosts
                ),
            )
        updates = dict(
            name=rack_qualified(rack, host_spec.name),
            client_name=rack_qualified(rack, host_spec.resolved_client_name()),
        )
        if getattr(host_spec, "served_by", None) is not None:
            updates["served_by"] = rack_qualified(rack, host_spec.served_by)
        return dataclasses.replace(host_spec, **updates)

    def _install_dispatch(
        self,
        switch: Switch,
        traffic_class: TrafficClass,
        logical_dst: str,
        router_factory,
    ):
        """Install the key-shard dispatcher for a logical service.

        On a single switch: one router, installed once.  On a fabric:
        one router per switch (per-hop counters stay meaningful), kept in
        lock-step by the returned :class:`RouterFleet`; the spine's router
        only sees cross-rack traffic, so the fleet's ``per_host`` uses the
        ``sum(ToRs) - spine`` transit identity.
        """
        if self._fabric is None:
            router = router_factory()
            switch.install_dispatch(traffic_class, logical_dst, router.route)
            return router
        tor_routers: Dict[str, KeyShardRouter] = {}
        spine_router: Optional[KeyShardRouter] = None
        for sw in self._fabric.switches:
            router = router_factory()
            sw.install_dispatch(traffic_class, logical_dst, router.route)
            if sw is self._fabric.spine:
                spine_router = router
            else:
                tor_routers[sw.name] = router
        return RouterFleet(tor_routers, spine_router)

    def _build_fabric_controller(
        self, sim: Simulator, kvs_hosts: List[BuiltKvsHost], router
    ) -> Optional[FabricController]:
        """Materialize the scenario-level §9.1 centralized controller."""
        ctl_spec = self.spec.fabric_controller
        if ctl_spec is None:
            return None
        if not kvs_hosts:
            raise ConfigurationError(
                f"scenario {self.spec.name!r}: the fabric controller drives "
                "the sharded KVS fleet and needs at least one KVS host"
            )
        placements = []
        for host in kvs_hosts:
            device = get_device(host.spec.device.kind)
            up_pps = down_pps = None
            if device.is_offload:
                up_pps, down_pps = device.netctl_thresholds_pps("kvs")
            placements.append(
                HostPlacement(
                    host=host.spec.name,
                    rack=self.spec.host_rack(host.spec),
                    service=host.service if host.classifier is not None else None,
                    shift_up_pps=up_pps,
                    shift_down_pps=down_pps,
                )
            )
        params = ctl_spec.as_dict()
        return FabricController(
            sim,
            self._fabric,
            TrafficClass.MEMCACHED,
            RACK_KVS_SERVICE,
            placements,
            fleet=router if isinstance(router, RouterFleet) else None,
            config=FabricControllerConfig(**params) if params else None,
        )

    def _schedule_phases(
        self,
        sim: Simulator,
        phases: PhaseSchedule,
        clients: List,
        weights: List[float],
    ) -> None:
        """Apply a (at_s, total_rate_kpps) schedule: each client gets its
        host's popularity-weighted share of the new total rate."""
        for at_s, rate_kpps in phases:
            for client, weight in zip(clients, weights):
                sim.schedule_at(
                    sec(at_s),
                    lambda c=client, r=kpps(rate_kpps) * weight: c.set_rate(r),
                    name="workload.phase",
                )

    def _build_controller(
        self,
        sim: Simulator,
        app: str,
        host_spec,
        server,
        classifier: Optional[PacketClassifier],
        traffic_class: TrafficClass,
        service: OnDemandService,
        device: OffloadDevice,
    ) -> Optional[ShiftController]:
        """Materialize the host's :class:`ControllerSpec` — the unified
        controller plane.  Every §9.1 family plugs in here; the rate
        thresholds and standby figures default to the host's *device*
        profile (the §4 calibrated crossovers on the NetFPGA, each other
        device's own analytic crossover), and ``params`` override them."""
        kind = host_spec.controller.kind
        params = host_spec.controller.as_dict()
        if kind == "none":
            return None
        up_pps, down_pps = device.netctl_thresholds_pps(app)
        if kind == "host":
            server.start_rapl(update_interval_us=msec(host_spec.rapl_interval_ms))
            defaults = {"rate_down_pps": down_pps}
            return HostController(
                sim,
                server,
                service,
                config=HostControllerConfig(**{**defaults, **params}),
                classifier=classifier,
                traffic_class=traffic_class,
            )
        if kind == "network":
            # the NetFPGA's §4 crossover defaults live next to the
            # controller; other devices get their analytic crossover
            if device.kind == DEFAULT_DEVICE_KIND:
                config = NETCTL_DEFAULT_CONFIGS[app]
            else:
                config = dataclasses.replace(
                    NETCTL_DEFAULT_CONFIGS[app],
                    up_rate_pps=up_pps,
                    down_rate_pps=down_pps,
                )
            if params:
                config = dataclasses.replace(config, **params)
            return NetworkController(
                sim, classifier, traffic_class, service, config
            )
        if kind == "predictive":
            # the steady-state curves of both placements — on *this*
            # device — are the model the §9.1-forward predictive
            # controller carries
            from ..steady.ondemand import make_ondemand_model

            model = make_ondemand_model(app, device=device.kind)
            standby_card_w = params.pop("standby_card_w", model.standby_card_w)
            return PredictiveController(
                sim,
                classifier,
                traffic_class,
                service,
                software_model=model.software,
                hardware_model=model.hardware,
                standby_card_w=standby_card_w,
                config=PredictiveControllerConfig(**params),
            )
        raise ConfigurationError(f"unknown controller kind {kind!r}")  # pragma: no cover

    # -- KVS rack ------------------------------------------------------------

    def _build_kvs_rack(
        self,
        sim: Simulator,
        streams: RngStreams,
        topo: Topology,
        switch: Switch,
    ) -> Tuple[List[BuiltKvsHost], Optional[KeyShardRouter]]:
        spec = self.spec
        workload = spec.kvs_workload
        host_specs = [self._qualified(h) for h in spec.kvs_hosts]
        n_hosts = len(host_specs)
        total_rate_pps = kpps(workload.rate_kpps)

        if spec.sharded:
            # A sub-rack (workload.n_shards > host count) keeps the *full*
            # rack's shard space: each host samples, weighs and preloads
            # its original shard, so per-host traffic is byte-identical to
            # the complete scenario and absent shards simply offer nothing.
            n_shards = workload.n_shards or n_hosts
            shard_indices = [
                h.shard_index if h.shard_index is not None else i
                for i, h in enumerate(host_specs)
            ]
            sharded = ShardedEtcWorkload(
                keyspace=workload.keyspace,
                n_shards=n_shards,
                zipf_s=workload.zipf_s,
                seed=spec.seed,
            )
            all_weights = sharded.shard_weights()
            weights = [all_weights[s] for s in shard_indices]
            owners: List[Optional[str]] = [None] * n_shards
            for host_spec, s in zip(host_specs, shard_indices):
                # consolidated initial placement: another host starts as
                # this shard's server (the donor still offers its traffic)
                owners[s] = host_spec.served_by or host_spec.name
            router = self._install_dispatch(
                switch,
                TrafficClass.MEMCACHED,
                RACK_KVS_SERVICE,
                lambda: KeyShardRouter(list(owners)),
            )
        else:
            sharded = None
            shard_indices = [0]
            weights = [1.0]
            router = None

        hosts: List[BuiltKvsHost] = []
        for index, host_spec in enumerate(host_specs):
            if sharded is not None:
                stream = sharded.stream(shard_indices[index])
                key_sampler, value_sampler = stream.key, stream.value
                set_fraction = stream.set_fraction
                preloader = stream.preload if workload.preload else None
                server_name = RACK_KVS_SERVICE
                rate_pps = total_rate_pps * weights[index]
            else:
                etc = EtcWorkload(
                    keyspace=workload.keyspace,
                    zipf_s=workload.zipf_s,
                    seed=spec.seed,
                )
                key_sampler, value_sampler = etc.key, etc.value
                set_fraction = etc.set_fraction
                preloader = (
                    (lambda store_set: etc.preload(store_set, workload.keyspace))
                    if workload.preload
                    else None
                )
                server_name = host_spec.name
                rate_pps = total_rate_pps
            hosts.append(
                self._build_kvs_host(
                    sim,
                    streams,
                    topo,
                    host_spec,
                    server_name=server_name,
                    rate_pps=rate_pps,
                    key_sampler=key_sampler,
                    value_sampler=value_sampler,
                    set_fraction=set_fraction,
                    preloader=preloader,
                )
            )
        if sharded is not None:
            # consolidated shards: the serving host also preloads the
            # donated shard's keys (a fresh same-seed stream, so the
            # donor's own samplers are not perturbed)
            by_name = {host.spec.name: host for host in hosts}
            for host, s in zip(hosts, shard_indices):
                target = host.spec.served_by
                if target and target != host.spec.name and workload.preload:
                    sharded.stream(s).preload(by_name[target].memcached.store.set)
        self._schedule_phases(
            sim, workload.phases, [host.client for host in hosts], weights
        )
        return hosts, router

    def _build_kvs_host(
        self,
        sim: Simulator,
        streams: RngStreams,
        topo: Topology,
        host_spec: KvsHostSpec,
        server_name: str,
        rate_pps: float,
        key_sampler,
        value_sampler,
        set_fraction: float,
        preloader,
    ) -> BuiltKvsHost:
        spec = self.spec
        device = get_device(host_spec.device.kind)
        if device.is_offload:
            # -- server with the device's card replacing its NIC (§4.2)
            server = make_i7_server(sim, name=host_spec.name, nic=None)
            card = device.make_card("kvs", **host_spec.device.as_dict())
            server.install_card(card.power_w)
            memcached = SoftwareMemcached(sim, server)
            lake = LakeKvs(
                sim,
                card,
                server,
                memcached,
                rng=streams.get(f"{host_spec.name}.lake.latency"),
                capacity_pps=device.capacity_pps("kvs"),
            )
            lake.disable(power_save=host_spec.power_save)

            classifier = PacketClassifier(sim)
            classifier.add_rule(
                ClassifierRule(
                    TrafficClass.MEMCACHED, hardware=lake.offer, host=memcached.offer
                )
            )
            server.set_packet_handler(classifier.classify)
        else:
            # -- NIC-only host: the ordinary NIC stays in, the software
            # memcached handles every packet, nothing can ever shift
            server = make_i7_server(sim, name=host_spec.name)
            card = None
            memcached = SoftwareMemcached(sim, server)
            lake = None
            classifier = None
            server.set_packet_handler(memcached.offer)
        if preloader is not None:
            preloader(memcached.store.set)
        topo.add(server)
        self._connect(topo, host_spec.name)

        # -- the host's slice of the rack workload
        client_name = host_spec.resolved_client_name()
        client = KvsClient(
            sim,
            client_name,
            server_name=server_name,
            key_sampler=key_sampler,
            value_sampler=value_sampler,
            set_fraction=set_fraction,
            rng=streams.get(f"{client_name}.arrivals"),
        )
        topo.add(client)
        self._connect(topo, client_name)
        client.set_rate(rate_pps)

        # -- co-located CPU jobs (the Figure 6 trigger)
        jobs = []
        for job_spec in host_spec.colocated:
            job = ChainerMNWorkload(
                sim,
                server,
                cores=job_spec.cores,
                utilization=job_spec.utilization,
                app_name=job_spec.app_name,
            )
            job.schedule(sec(job_spec.start_s), sec(job_spec.stop_s))
            jobs.append(job)

        # -- on-demand service + the host's chosen controller kind (§9.1);
        # a NIC-only host gets a hook-less service that never shifts.  The
        # device's warm-up (FPGA reconfiguration, ASIC table loads) delays
        # classifier activation; software keeps serving meanwhile.
        service = OnDemandService(
            sim,
            host_spec.name,
            classifier=classifier,
            traffic_class=TrafficClass.MEMCACHED,
            to_hardware=lake.enable if lake is not None else None,
            to_software=(
                (lambda lake=lake: lake.disable(power_save=host_spec.power_save))
                if lake is not None
                else None
            ),
            warmup_us=device.warmup_us,
        )
        controller = self._build_controller(
            sim,
            "kvs",
            host_spec,
            server,
            classifier,
            TrafficClass.MEMCACHED,
            service,
            device,
        )
        if host_spec.start_in_hardware:
            # before instrumentation: the first sample must see the active
            # card; a declared initial placement was warm before the
            # experiment window opened, so it skips the warm-up
            service.shift_to_hardware(
                "spec: initial hardware placement", immediate=True
            )

        # -- instrumentation (the paper reads CPU power from RAPL; the wall
        # sampler adds the card draw on the shared scenario cadence so the
        # §9.4 power attribution sees what the SHW 3A meter would)
        sampling = host_spec.sampling or spec.sampling
        power_sampler = PeriodicSampler(
            sim,
            server.platform_power_w,
            msec(sampling.power_interval_ms),
            name=f"{host_spec.name}.rapl-power",
        )
        wall_sampler = PeriodicSampler(
            sim,
            server.wall_power_w,
            msec(spec.sampling.power_interval_ms),
            name=f"{host_spec.name}.wall-power",
        )
        return BuiltKvsHost(
            spec=host_spec,
            server=server,
            card=card,
            memcached=memcached,
            lake=lake,
            classifier=classifier,
            service=service,
            controller=controller,
            client=client,
            power_sampler=power_sampler,
            wall_sampler=wall_sampler,
            jobs=jobs,
            offered_pps=rate_pps,
        )

    # -- anycast DNS rack ----------------------------------------------------

    def _build_dns_rack(
        self,
        sim: Simulator,
        streams: RngStreams,
        topo: Topology,
        switch: Switch,
    ) -> Tuple[List[BuiltDnsHost], Optional[KeyShardRouter]]:
        spec = self.spec
        workload = spec.dns_workload
        host_specs = [self._qualified(h) for h in spec.dns_hosts]
        n_hosts = len(host_specs)
        total_rate_pps = kpps(workload.rate_kpps)

        if spec.dns_sharded:
            sharded = ShardedDnsWorkload(
                n_names=workload.n_names,
                n_shards=n_hosts,
                zipf_s=workload.zipf_s,
                seed=spec.seed,
                miss_fraction=workload.miss_fraction,
            )
            weights = sharded.shard_weights()
            records = sharded.records()
            replica_names = [h.name for h in host_specs]
            router = self._install_dispatch(
                switch,
                TrafficClass.DNS,
                RACK_DNS_SERVICE,
                lambda: KeyShardRouter.for_qnames(replica_names),
            )
        else:
            sharded = None
            weights = [1.0]
            records = None
            router = None

        hosts: List[BuiltDnsHost] = []
        for index, host_spec in enumerate(host_specs):
            if sharded is not None:
                name_sampler = sharded.stream(index).name
                server_name = RACK_DNS_SERVICE
                rate_pps = total_rate_pps * weights[index]
                host_records = records
            else:
                workload_obj = DnsNameWorkload(
                    n_names=workload.n_names,
                    zipf_s=workload.zipf_s,
                    seed=spec.seed,
                    miss_fraction=workload.miss_fraction,
                )
                name_sampler = workload_obj.name
                server_name = host_spec.name
                rate_pps = total_rate_pps
                host_records = workload_obj.records()
            hosts.append(
                self._build_dns_host(
                    sim,
                    streams,
                    topo,
                    host_spec,
                    server_name=server_name,
                    rate_pps=rate_pps,
                    name_sampler=name_sampler,
                    records=host_records,
                )
            )
        self._schedule_phases(
            sim, workload.phases, [host.client for host in hosts], weights
        )
        return hosts, router

    def _build_dns_host(
        self,
        sim: Simulator,
        streams: RngStreams,
        topo: Topology,
        host_spec: DnsHostSpec,
        server_name: str,
        rate_pps: float,
        name_sampler,
        records,
    ) -> BuiltDnsHost:
        spec = self.spec
        device = get_device(host_spec.device.kind)
        zone = ZoneTable(name=f"{host_spec.name}.zone")
        zone.add_many(records)
        if device.is_offload:
            # -- server with the device's DNS card doubling as its NIC (§3.3)
            server = make_i7_server(sim, name=host_spec.name, nic=None)
            card = device.make_card("dns", **host_spec.device.as_dict())
            server.install_card(card.power_w)
            nsd = SoftwareNsd(sim, server, zone=zone)
            emu = EmuDns(
                sim,
                card,
                server,
                fallback=nsd,
                rng=streams.get(f"{host_spec.name}.emu.jitter"),
                capacity_pps=device.capacity_pps("dns"),
            )
            # every anycast replica answers for the whole zone
            emu.zone.add_many(records)
            emu.disable(power_save=host_spec.power_save)

            classifier = PacketClassifier(sim)
            classifier.add_rule(
                ClassifierRule(TrafficClass.DNS, hardware=emu.offer, host=nsd.offer)
            )
            server.set_packet_handler(classifier.classify)
        else:
            # -- NIC-only replica: NSD answers everything, forever
            server = make_i7_server(sim, name=host_spec.name)
            card = None
            nsd = SoftwareNsd(sim, server, zone=zone)
            emu = None
            classifier = None
            server.set_packet_handler(nsd.offer)
        topo.add(server)
        self._connect(topo, host_spec.name)

        # -- the host's slice of the query stream
        client_name = host_spec.resolved_client_name()
        client = DnsClient(
            sim,
            client_name,
            server_name=server_name,
            name_sampler=name_sampler,
            rng=streams.get(f"{client_name}.arrivals"),
        )
        topo.add(client)
        self._connect(topo, client_name)
        client.set_rate(rate_pps)

        # -- on-demand service + the host's chosen controller kind
        service = OnDemandService(
            sim,
            host_spec.name,
            classifier=classifier,
            traffic_class=TrafficClass.DNS,
            to_hardware=emu.enable if emu is not None else None,
            to_software=(
                (lambda emu=emu: emu.disable(power_save=host_spec.power_save))
                if emu is not None
                else None
            ),
            warmup_us=device.warmup_us,
        )
        controller = self._build_controller(
            sim, "dns", host_spec, server, classifier, TrafficClass.DNS, service, device
        )
        if host_spec.start_in_hardware:
            service.shift_to_hardware(
                "spec: initial hardware placement", immediate=True
            )

        sampling = host_spec.sampling or spec.sampling
        power_sampler = PeriodicSampler(
            sim,
            server.platform_power_w,
            msec(sampling.power_interval_ms),
            name=f"{host_spec.name}.rapl-power",
        )
        wall_sampler = PeriodicSampler(
            sim,
            server.wall_power_w,
            msec(spec.sampling.power_interval_ms),
            name=f"{host_spec.name}.wall-power",
        )
        return BuiltDnsHost(
            spec=host_spec,
            server=server,
            card=card,
            nsd=nsd,
            emu=emu,
            classifier=classifier,
            service=service,
            controller=controller,
            client=client,
            power_sampler=power_sampler,
            wall_sampler=wall_sampler,
            offered_pps=rate_pps,
        )

    # -- Paxos groups ----------------------------------------------------------

    def _build_paxos_group(
        self,
        sim: Simulator,
        streams: RngStreams,
        topo: Topology,
        switch: Switch,
        px: PaxosSpec,
    ) -> BuiltPaxosGroup:
        # On a fabric the group (and its derived role/client names) lives
        # under its rack prefix; explicitly rack-qualified acceptor_hosts
        # entries keep their declared rack, splitting the quorum across
        # racks.  The switch handle is then the Fabric facade, so leader
        # redirect rules and rate reads span every ToR.
        px = self._qualified(px)
        switch = self._fabric if self._fabric is not None else switch
        acceptor_names = px.acceptor_names()
        learner_names = [px.learner_name]
        directory = _Directory(
            acceptor_names, learner_names, leader_address=px.leader_address
        )
        roles_by_node: Dict[str, SoftwarePaxosRole] = {}

        # -- software leader on an i7 host
        sw_name = px.software_leader_name
        sw_server = make_i7_server(sim, name=sw_name)
        sw_leader = SoftwarePaxosRole(
            sim,
            sw_server,
            LeaderState(sw_name, 0, px.n_acceptors),
            directory,
            capacity_pps=cal.LIBPAXOS_LEADER_CAPACITY_PPS,
            stack_latency_us=cal.LIBPAXOS_LEADER_STACK_US,
            app_name=f"libpaxos-leader.{px.name}",
        )
        sw_server.set_packet_handler(sw_leader.offer)
        topo.add(sw_server)
        self._connect(topo, sw_name)
        roles_by_node[sw_name] = sw_leader

        # -- hardware leader: the group's device behind its own port
        device = get_device(px.device.kind)
        hw_name = px.hardware_leader_name
        hw_card = device.make_card("paxos", **px.device.as_dict())
        hw_node = CallbackNode(
            sim, hw_name, on_packet=lambda p: hw_leader.offer(p)
        )
        hw_capacity = device.capacity_pps("paxos")
        hw_leader = HardwarePaxosRole(
            sim,
            hw_card,
            hw_node,
            LeaderState(hw_name, 1, px.n_acceptors),
            directory,
            **({"capacity_pps": hw_capacity} if hw_capacity is not None else {}),
        )
        topo.add(hw_node)
        self._connect(topo, hw_name)

        # -- software acceptors and learner.  With explicit acceptor_hosts
        # the boxes may be shared with other groups: one server, one port,
        # one wall sampler — and one role per group, dispatched by the
        # sending leader.
        group_servers = [sw_server]
        for name in acceptor_names:
            if px.acceptor_hosts:
                existing = self._shared_acceptor_hosts.get(name)
                if existing is None:
                    server = make_i7_server(sim, name=name)
                    fanout = _PaxosRoleFanout(name)
                    server.set_packet_handler(fanout.offer)
                    topo.add(server)
                    self._connect(topo, name)
                    self._shared_acceptor_hosts[name] = (server, fanout)
                else:
                    server, fanout = existing
                role = SoftwarePaxosRole(
                    sim,
                    server,
                    AcceptorState(name, recovery_window=px.recovery_window),
                    directory,
                    capacity_pps=cal.LIBPAXOS_ACCEPTOR_CAPACITY_PPS,
                    stack_latency_us=cal.LIBPAXOS_ACCEPTOR_STACK_US,
                    app_name=f"acceptor.{px.name}.{name}",
                )
                fanout.register((sw_name, hw_name), role)
            else:
                server = make_i7_server(sim, name=name)
                role = SoftwarePaxosRole(
                    sim,
                    server,
                    AcceptorState(name, recovery_window=px.recovery_window),
                    directory,
                    capacity_pps=cal.LIBPAXOS_ACCEPTOR_CAPACITY_PPS,
                    stack_latency_us=cal.LIBPAXOS_ACCEPTOR_STACK_US,
                    app_name=f"acceptor.{name}",
                )
                server.set_packet_handler(role.offer)
                topo.add(server)
                self._connect(topo, name)
            group_servers.append(server)
            roles_by_node[name] = role

        learner_server = make_i7_server(sim, name=px.learner_name)
        group_servers.append(learner_server)
        learner_role = SoftwarePaxosRole(
            sim,
            learner_server,
            LearnerState(px.learner_name, px.n_acceptors),
            directory,
            capacity_pps=cal.LIBPAXOS_ACCEPTOR_CAPACITY_PPS,
            stack_latency_us=cal.LIBPAXOS_LEARNER_STACK_US,
            app_name=f"learner.{px.name}",
        )
        learner_server.set_packet_handler(learner_role.offer)
        topo.add(learner_server)
        self._connect(topo, px.learner_name)
        roles_by_node[px.learner_name] = learner_role
        gap_scanner = LearnerGapScanner(sim, learner_role)

        # -- deployment + this group's shift controller (§9.2)
        deployment = PaxosDeployment(switch, logical_leader=px.leader_address)
        deployment.register_leader(sw_name, sw_leader)
        deployment.register_leader(hw_name, hw_leader)
        if px.start_in_hardware:
            deployment.activate_leader(hw_name)
        else:
            deployment.activate_leader(sw_name)
            # inactive hardware leader waits in the §9.2 standby state
            hw_leader.stand_by()
        params = px.controller.as_dict()
        automatic = px.controller.kind == "rate"
        controller = PaxosShiftController(
            sim,
            switch,
            deployment,
            software_node=sw_name,
            hardware_node=hw_name,
            config=PaxosControllerConfig(**params) if params else None,
            automatic=automatic,
            logical_dst=px.leader_address,
        )
        for at_s, to_hardware in px.shifts:
            controller.schedule_shift(sec(at_s), to_hardware=to_hardware)

        # -- closed-loop clients
        clients = []
        for name in px.client_names():
            client = PaxosClient(
                sim,
                name,
                rng=streams.get(f"{name}.arrivals"),
                leader_address=px.leader_address,
            )
            topo.add(client)
            self._connect(topo, client.name)
            clients.append(client)
        # start after a short warm-up so the software leader finished phase 1
        for client in clients:
            sim.schedule_at(
                msec(px.client_start_ms),
                lambda c=client: c.start_closed_loop(px.client_window),
                name="client.start",
            )

        power_sampler = PeriodicSampler(
            sim,
            sw_server.platform_power_w,
            msec(self.spec.sampling.power_interval_ms),
            name=f"{sw_name}.power",
        )
        # Every node the group owns is wall-sampled on the scenario cadence
        # so the §9.4 sweep can attribute the rack's draw per group; the
        # hardware leader card has no host CPU, its probe is the card
        # itself.  Shared acceptor boxes are sampled once — both groups'
        # maps point at the same sampler (it is one physical probe).
        wall_interval_us = msec(self.spec.sampling.power_interval_ms)
        wall_samplers = {}
        for server in group_servers:
            sampler = self._wall_sampler_cache.get(server.name)
            if sampler is None:
                sampler = PeriodicSampler(
                    sim,
                    server.wall_power_w,
                    wall_interval_us,
                    name=f"{server.name}.wall-power",
                )
                self._wall_sampler_cache[server.name] = sampler
            wall_samplers[server.name] = sampler
        wall_samplers[hw_name] = PeriodicSampler(
            sim, hw_card.power_w, wall_interval_us, name=f"{hw_name}.wall-power"
        )
        return BuiltPaxosGroup(
            spec=px,
            deployment=deployment,
            controller=controller,
            clients=clients,
            gap_scanner=gap_scanner,
            power_sampler=power_sampler,
            wall_samplers=wall_samplers,
            roles_by_node=roles_by_node,
        )


def run_scenario_spec(spec: ScenarioSpec) -> ScenarioResult:
    """Convenience: validate, build, execute."""
    return ScenarioBuilder(spec).run()


# ---------------------------------------------------------------------------
# Analytic on-demand sweep (the Figure 5 path).
# ---------------------------------------------------------------------------


@dataclass
class OnDemandSweepResult:
    """Figure-5 series: per-app on-demand vs software-only power curves."""

    series: Dict[str, list]
    savings_at_peak: Dict[str, float]


def run_ondemand_sweep(spec: OnDemandSweepSpec) -> OnDemandSweepResult:
    """Execute the declarative Figure-5 sweep over the steady-state models."""
    # Imported lazily: repro.experiments imports this package at module
    # scope (transitions are scenario-backed), so the dependency must stay
    # one-way at import time.
    from ..experiments.sweep import linspace_rates, sweep_model
    from ..steady.ondemand import ondemand_models

    rates = linspace_rates(kpps(spec.max_rate_kpps), spec.steps)
    series: Dict[str, list] = {}
    savings: Dict[str, float] = {}
    for app, model in ondemand_models().items():
        series[f"{app} (On demand)"] = sweep_model(model, rates)
        series[f"{app} (SW)"] = sweep_model(model.software, rates)
        peak = min(kpps(spec.peak_rate_kpps), model.software.capacity_pps)
        savings[app] = model.saving_vs_software_w(peak) / model.software.power_at(
            peak
        )
    return OnDemandSweepResult(series=series, savings_at_peak=savings)
