"""Materialize a :class:`ScenarioSpec` into a wired DES run.

The builder owns all the plumbing the experiment runners used to hand-wire:
servers with NIC-replacing LaKe cards, software/hardware application pairs
behind per-host packet classifiers, the ToR switch (with key-shard dispatch
in rack mode), per-host on-demand controllers, co-located CPU jobs,
workload clients, and the shared sampling.  Executing the run produces a
:class:`ScenarioResult` carrying per-host and aggregate timelines — the
same series the paper's Figures 6/7 plot, generalized to N hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import calibration as cal
from ..apps.kvs import KvsClient, LakeKvs, SoftwareMemcached
from ..apps.paxos import PaxosClient
from ..apps.paxos.deployment import (
    HardwarePaxosRole,
    LearnerGapScanner,
    PaxosDeployment,
    SoftwarePaxosRole,
    _Directory,
)
from ..apps.paxos.roles import AcceptorState, LeaderState, LearnerState
from ..core.host_controller import HostController, HostControllerConfig
from ..core.ondemand import OnDemandService
from ..core.paxos_controller import PaxosShiftController
from ..errors import ConfigurationError
from ..host import make_i7_server
from ..hw.fpga import make_lake_fpga, make_p4xos_fpga
from ..net.classifier import ClassifierRule, KeyShardRouter, PacketClassifier
from ..net.node import CallbackNode
from ..net.packet import TrafficClass
from ..net.switch import Switch
from ..net.topology import Topology
from ..sim import (
    PeriodicSampler,
    RngStreams,
    Simulator,
    bucket_mean_series,
    bucket_rate_series,
)
from ..units import gbit_per_s, kpps, msec, sec
from ..workloads.colocated import ChainerMNWorkload
from ..workloads.etc import EtcWorkload, ShardedEtcWorkload
from .spec import (
    RACK_KVS_SERVICE,
    KvsHostSpec,
    OnDemandSweepSpec,
    ScenarioSpec,
)

# ---------------------------------------------------------------------------
# Results.
# ---------------------------------------------------------------------------


def windowed_mean(series, start_us: float, end_us: float, label: str = "series") -> float:
    """Mean of the non-None values with start <= t < end.

    The one windowing rule every result type (host, paxos, aggregate, and
    the figure-shaped adapters in :mod:`repro.experiments.transitions`)
    shares.
    """
    values = [
        v for t, v in series if v is not None and start_us <= t < end_us
    ]
    if not values:
        raise ValueError(f"no {label} samples in window")
    return sum(values) / len(values)


@dataclass
class HostResult:
    """One host's Figure-6-style timelines plus its transition markers."""

    name: str
    offered_pps: float
    shift_times_us: List[float]
    throughput_series: List[Tuple[float, float]]
    latency_series: List[Tuple[float, Optional[float]]]
    power_series: List[Tuple[float, float]]
    hw_hits: int
    hw_miss_forwards: int
    responses: int

    def mean_throughput_pps(self, start_us: float, end_us: float) -> float:
        return windowed_mean(self.throughput_series, start_us, end_us, "throughput")

    def mean_latency_us(self, start_us: float, end_us: float) -> float:
        return windowed_mean(self.latency_series, start_us, end_us, "latency")

    def mean_power_w(self, start_us: float, end_us: float) -> float:
        return windowed_mean(self.power_series, start_us, end_us, "power")


@dataclass
class PaxosResult:
    """A Paxos group's Figure-7-style timelines."""

    throughput_series: List[Tuple[float, float]]
    latency_series: List[Tuple[float, Optional[float]]]
    power_series: List[Tuple[float, float]]
    shift_times_us: List[float]
    decided: int
    retries: int
    stall_us: List[float] = field(default_factory=list)

    def mean_throughput_pps(self, start_us: float, end_us: float) -> float:
        return windowed_mean(self.throughput_series, start_us, end_us, "throughput")

    def mean_latency_us(self, start_us: float, end_us: float) -> float:
        return windowed_mean(self.latency_series, start_us, end_us, "latency")


@dataclass
class ScenarioResult:
    """Everything a scenario run measured."""

    name: str
    duration_us: float
    hosts: List[HostResult]
    paxos: Optional[PaxosResult]
    #: summed per-bucket host throughput (the rack's served rate)
    aggregate_throughput_series: List[Tuple[float, float]]
    #: summed per-bucket host platform power (the rack's CPU draw)
    aggregate_power_series: List[Tuple[float, float]]
    #: routed-packet counts per host in rack mode (ToR telemetry)
    routed_per_host: Dict[str, int] = field(default_factory=dict)

    def host(self, name: str) -> HostResult:
        for host in self.hosts:
            if host.name == name:
                return host
        raise KeyError(name)

    @property
    def total_responses(self) -> int:
        return sum(h.responses for h in self.hosts)

    @property
    def offered_pps(self) -> float:
        return sum(h.offered_pps for h in self.hosts)

    def aggregate_mean_throughput_pps(self, start_us: float, end_us: float) -> float:
        return windowed_mean(
            self.aggregate_throughput_series, start_us, end_us, "throughput"
        )

    def hosts_with_shifts(self) -> List[HostResult]:
        return [h for h in self.hosts if h.shift_times_us]

    def distinct_first_shift_times(self) -> List[float]:
        """Sorted unique first-shift moments across the rack — evidence
        that hosts move between software and hardware independently."""
        return sorted({h.shift_times_us[0] for h in self.hosts_with_shifts()})

    def render(self) -> str:
        lines = [f"Scenario: {self.name} ({self.duration_us / 1e6:.1f}s simulated)"]
        if self.hosts:
            lines.append(
                f"rack: {len(self.hosts)} KVS host(s), "
                f"offered {self.offered_pps / 1e3:.1f} kpps total, "
                f"{self.total_responses} responses"
            )
            lines.append(
                "host            shifts[s]           mean thr[kpps]  hw hits  misses"
            )
            for host in self.hosts:
                shifts = (
                    ", ".join(f"{t / 1e6:.2f}" for t in host.shift_times_us) or "-"
                )
                thr = windowed_mean(
                    host.throughput_series, 0.0, self.duration_us, "throughput"
                )
                lines.append(
                    f"{host.name:<14}  {shifts:<18}  {thr / 1e3:14.1f}  "
                    f"{host.hw_hits:7d}  {host.hw_miss_forwards:6d}"
                )
            agg = self.aggregate_mean_throughput_pps(0.0, self.duration_us)
            lines.append(f"aggregate throughput: {agg / 1e3:.1f} kpps")
            if self.routed_per_host:
                routed = ", ".join(
                    f"{name}={count}" for name, count in self.routed_per_host.items()
                )
                lines.append(f"ToR key-shard routing: {routed}")
        if self.paxos is not None:
            lines.append(
                f"paxos: {self.paxos.decided} decisions, "
                f"{self.paxos.retries} retries, shifts at "
                + (
                    ", ".join(f"{t / 1e6:.2f}s" for t in self.paxos.shift_times_us)
                    or "-"
                )
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Built runtime handles.
# ---------------------------------------------------------------------------


@dataclass
class BuiltKvsHost:
    """The wired stack behind one KVS host (construction handles)."""

    spec: KvsHostSpec
    server: object
    card: object
    memcached: SoftwareMemcached
    lake: LakeKvs
    classifier: PacketClassifier
    service: OnDemandService
    controller: Optional[HostController]
    client: KvsClient
    power_sampler: PeriodicSampler
    jobs: List[ChainerMNWorkload]
    offered_pps: float


@dataclass
class BuiltPaxosGroup:
    """The wired Figure-7 substrate (construction handles)."""

    deployment: PaxosDeployment
    controller: PaxosShiftController
    clients: List[PaxosClient]
    gap_scanner: LearnerGapScanner
    power_sampler: PeriodicSampler


class ScenarioRun:
    """A materialized scenario: simulator, topology and all runtimes."""

    def __init__(
        self,
        spec: ScenarioSpec,
        sim: Simulator,
        topology: Topology,
        switch: Switch,
        kvs_hosts: List[BuiltKvsHost],
        router: Optional[KeyShardRouter],
        paxos: Optional[BuiltPaxosGroup],
    ):
        self.spec = spec
        self.sim = sim
        self.topology = topology
        self.switch = switch
        self.kvs_hosts = kvs_hosts
        self.router = router
        self.paxos = paxos
        self._executed = False

    # -- execution -----------------------------------------------------------

    def execute(self) -> ScenarioResult:
        """Run the scenario to its horizon and collect every timeline."""
        if self._executed:
            raise ConfigurationError("scenario already executed; build a new run")
        self._executed = True
        duration_us = sec(self.spec.duration_s)
        self.sim.run_until(duration_us)
        for host in self.kvs_hosts:
            if host.controller is not None:
                host.controller.stop()
        if self.paxos is not None:
            self.paxos.controller.stop()
            self.paxos.gap_scanner.stop()
        return self._collect(duration_us)

    # -- series collection ---------------------------------------------------

    def _collect(self, duration_us: float) -> ScenarioResult:
        bucket_us = msec(self.spec.sampling.bucket_ms)
        host_results = [
            self._collect_host(host, bucket_us, duration_us)
            for host in self.kvs_hosts
        ]
        aggregate_thr = _sum_series(
            [h.throughput_series for h in host_results]
        )
        aggregate_pw = _sum_series([h.power_series for h in host_results])
        paxos_result = (
            self._collect_paxos(bucket_us, duration_us)
            if self.paxos is not None
            else None
        )
        return ScenarioResult(
            name=self.spec.name,
            duration_us=duration_us,
            hosts=host_results,
            paxos=paxos_result,
            aggregate_throughput_series=aggregate_thr,
            aggregate_power_series=aggregate_pw,
            routed_per_host=dict(self.router.per_host) if self.router else {},
        )

    def _collect_host(
        self, host: BuiltKvsHost, bucket_us: float, duration_us: float
    ) -> HostResult:
        client = host.client
        throughput = bucket_rate_series(
            client.response_times_us, bucket_us, duration_us
        )
        latency = bucket_mean_series(
            list(zip(client.latency_series.times, client.latency_series.values)),
            bucket_us,
            duration_us,
        )
        power = bucket_mean_series(
            list(
                zip(
                    host.power_sampler.series.times,
                    host.power_sampler.series.values,
                )
            ),
            bucket_us,
            duration_us,
        )
        power = [(t, v if v is not None else 0.0) for t, v in power]
        lake = host.lake
        return HostResult(
            name=host.spec.name,
            offered_pps=host.offered_pps,
            shift_times_us=host.service.shift_times_us(),
            throughput_series=throughput,
            latency_series=latency,
            power_series=power,
            hw_hits=lake.l1.hits + (lake.l2.hits if lake.l2 is not None else 0),
            hw_miss_forwards=lake.miss_forwards,
            responses=client.responses,
        )

    def _collect_paxos(self, bucket_us: float, duration_us: float) -> PaxosResult:
        group = self.paxos
        clients = group.clients
        decision_times = sorted(
            t for client in clients for t in client.decision_times_us
        )
        latency_samples = []
        for client in clients:
            latency_samples.extend(
                zip(client.latency_series.times, client.latency_series.values)
            )
        latency_samples.sort()
        throughput = bucket_rate_series(decision_times, bucket_us, duration_us)
        latency = bucket_mean_series(latency_samples, bucket_us, duration_us)
        power = bucket_mean_series(
            list(
                zip(
                    group.power_sampler.series.times,
                    group.power_sampler.series.values,
                )
            ),
            bucket_us,
            duration_us,
        )
        power = [(t, v if v is not None else 0.0) for t, v in power]
        # Post-shift stall: the largest decision gap in the 300ms following
        # each shift (in-flight decisions may land just after the rule
        # flip; the stall is the silence until client retries).
        stalls = []
        for shift_time in group.controller.shift_times_us:
            window = [shift_time] + [
                t
                for t in decision_times
                if shift_time < t <= shift_time + msec(300.0)
            ]
            if len(window) > 1:
                gaps = [b - a for a, b in zip(window, window[1:])]
                stalls.append(max(gaps))
        return PaxosResult(
            throughput_series=throughput,
            latency_series=latency,
            power_series=power,
            shift_times_us=list(group.controller.shift_times_us),
            decided=sum(c.decided for c in clients),
            retries=sum(c.retries for c in clients),
            stall_us=stalls,
        )


def _sum_series(
    series_list: List[List[Tuple[float, Optional[float]]]]
) -> List[Tuple[float, float]]:
    """Bucket-wise sum of aligned (t, value) series (None counts as 0)."""
    if not series_list:
        return []
    out = []
    for i, (t, _) in enumerate(series_list[0]):
        total = 0.0
        for series in series_list:
            if i < len(series) and series[i][1] is not None:
                total += series[i][1]
        out.append((t, total))
    return out


# ---------------------------------------------------------------------------
# The builder.
# ---------------------------------------------------------------------------


class ScenarioBuilder:
    """Materializes a :class:`ScenarioSpec` into a :class:`ScenarioRun`."""

    def __init__(self, spec: ScenarioSpec):
        self.spec = spec.validate()

    # -- public API ----------------------------------------------------------

    def build(self) -> ScenarioRun:
        spec = self.spec
        sim = Simulator()
        streams = RngStreams(spec.seed)
        switch = Switch(sim, spec.switch.name)
        topo = Topology(sim)
        topo.add(switch)

        kvs_hosts: List[BuiltKvsHost] = []
        router: Optional[KeyShardRouter] = None
        if spec.kvs_hosts:
            kvs_hosts, router = self._build_kvs_rack(sim, streams, topo, switch)

        paxos = (
            self._build_paxos(sim, streams, topo, switch)
            if spec.paxos is not None
            else None
        )
        return ScenarioRun(spec, sim, topo, switch, kvs_hosts, router, paxos)

    def run(self) -> ScenarioResult:
        """Build and execute in one step."""
        return self.build().execute()

    # -- KVS rack ------------------------------------------------------------

    def _connect(self, topo: Topology, node_name: str) -> None:
        topo.connect_via_switch(
            self.spec.switch.name,
            node_name,
            latency_us=self.spec.switch.latency_us,
            bandwidth_bps=gbit_per_s(self.spec.switch.bandwidth_gbps),
        )

    def _build_kvs_rack(
        self,
        sim: Simulator,
        streams: RngStreams,
        topo: Topology,
        switch: Switch,
    ) -> Tuple[List[BuiltKvsHost], Optional[KeyShardRouter]]:
        spec = self.spec
        workload = spec.kvs_workload
        host_specs = spec.kvs_hosts
        n_hosts = len(host_specs)
        total_rate_pps = kpps(workload.rate_kpps)

        if spec.sharded:
            sharded = ShardedEtcWorkload(
                keyspace=workload.keyspace,
                n_shards=n_hosts,
                zipf_s=workload.zipf_s,
                seed=spec.seed,
            )
            weights = sharded.shard_weights()
            router = KeyShardRouter([h.name for h in host_specs])
            switch.install_dispatch(
                TrafficClass.MEMCACHED, RACK_KVS_SERVICE, router.route
            )
        else:
            sharded = None
            weights = [1.0]
            router = None

        hosts: List[BuiltKvsHost] = []
        for index, host_spec in enumerate(host_specs):
            if sharded is not None:
                stream = sharded.stream(index)
                key_sampler, value_sampler = stream.key, stream.value
                set_fraction = stream.set_fraction
                preloader = stream.preload if workload.preload else None
                server_name = RACK_KVS_SERVICE
                rate_pps = total_rate_pps * weights[index]
            else:
                etc = EtcWorkload(
                    keyspace=workload.keyspace,
                    zipf_s=workload.zipf_s,
                    seed=spec.seed,
                )
                key_sampler, value_sampler = etc.key, etc.value
                set_fraction = etc.set_fraction
                preloader = (
                    (lambda store_set: etc.preload(store_set, workload.keyspace))
                    if workload.preload
                    else None
                )
                server_name = host_spec.name
                rate_pps = total_rate_pps
            hosts.append(
                self._build_kvs_host(
                    sim,
                    streams,
                    topo,
                    host_spec,
                    server_name=server_name,
                    rate_pps=rate_pps,
                    key_sampler=key_sampler,
                    value_sampler=value_sampler,
                    set_fraction=set_fraction,
                    preloader=preloader,
                )
            )
        return hosts, router

    def _build_kvs_host(
        self,
        sim: Simulator,
        streams: RngStreams,
        topo: Topology,
        host_spec: KvsHostSpec,
        server_name: str,
        rate_pps: float,
        key_sampler,
        value_sampler,
        set_fraction: float,
        preloader,
    ) -> BuiltKvsHost:
        spec = self.spec
        # -- server with the LaKe card replacing its NIC (§4.2)
        server = make_i7_server(sim, name=host_spec.name, nic=None)
        card = make_lake_fpga()
        server.install_card(card.power_w)
        memcached = SoftwareMemcached(sim, server)
        lake = LakeKvs(
            sim,
            card,
            server,
            memcached,
            rng=streams.get(f"{host_spec.name}.lake.latency"),
        )
        lake.disable(power_save=host_spec.power_save)

        classifier = PacketClassifier(sim)
        classifier.add_rule(
            ClassifierRule(
                TrafficClass.MEMCACHED, hardware=lake.offer, host=memcached.offer
            )
        )
        server.set_packet_handler(classifier.classify)
        if preloader is not None:
            preloader(memcached.store.set)
        topo.add(server)
        self._connect(topo, host_spec.name)

        # -- the host's slice of the rack workload
        client_name = host_spec.resolved_client_name()
        client = KvsClient(
            sim,
            client_name,
            server_name=server_name,
            key_sampler=key_sampler,
            value_sampler=value_sampler,
            set_fraction=set_fraction,
            rng=streams.get(f"{client_name}.arrivals"),
        )
        topo.add(client)
        self._connect(topo, client_name)
        client.set_rate(rate_pps)

        # -- co-located CPU jobs (the Figure 6 trigger)
        jobs = []
        for job_spec in host_spec.colocated:
            job = ChainerMNWorkload(
                sim,
                server,
                cores=job_spec.cores,
                utilization=job_spec.utilization,
                app_name=job_spec.app_name,
            )
            job.schedule(sec(job_spec.start_s), sec(job_spec.stop_s))
            jobs.append(job)

        # -- on-demand service + host controller (§9.1)
        service = OnDemandService(
            sim,
            host_spec.name,
            classifier=classifier,
            traffic_class=TrafficClass.MEMCACHED,
            to_hardware=lake.enable,
            to_software=lambda lake=lake: lake.disable(
                power_save=host_spec.power_save
            ),
        )
        controller = None
        if host_spec.controller:
            server.start_rapl(update_interval_us=msec(host_spec.rapl_interval_ms))
            controller = HostController(
                sim,
                server,
                service,
                config=HostControllerConfig(
                    rate_down_pps=host_spec.rate_down_pps
                    if host_spec.rate_down_pps is not None
                    else cal.NETCTL_KVS_DOWN_PPS
                ),
                classifier=classifier,
                traffic_class=TrafficClass.MEMCACHED,
            )

        # -- instrumentation (the paper reads CPU power from RAPL)
        power_sampler = PeriodicSampler(
            sim,
            server.platform_power_w,
            msec(spec.sampling.power_interval_ms),
            name=f"{host_spec.name}.rapl-power",
        )
        return BuiltKvsHost(
            spec=host_spec,
            server=server,
            card=card,
            memcached=memcached,
            lake=lake,
            classifier=classifier,
            service=service,
            controller=controller,
            client=client,
            power_sampler=power_sampler,
            jobs=jobs,
            offered_pps=rate_pps,
        )

    # -- Paxos group -----------------------------------------------------------

    def _build_paxos(
        self,
        sim: Simulator,
        streams: RngStreams,
        topo: Topology,
        switch: Switch,
    ) -> BuiltPaxosGroup:
        px = self.spec.paxos
        acceptor_names = [f"acceptor{i}" for i in range(px.n_acceptors)]
        learner_names = ["learner0"]
        directory = _Directory(acceptor_names, learner_names)

        # -- software leader on an i7 host
        sw_server = make_i7_server(sim, name="sw-leader")
        sw_leader = SoftwarePaxosRole(
            sim,
            sw_server,
            LeaderState("sw-leader", 0, px.n_acceptors),
            directory,
            capacity_pps=cal.LIBPAXOS_LEADER_CAPACITY_PPS,
            stack_latency_us=cal.LIBPAXOS_LEADER_STACK_US,
            app_name="libpaxos-leader",
        )
        sw_server.set_packet_handler(sw_leader.offer)
        topo.add(sw_server)
        self._connect(topo, "sw-leader")

        # -- hardware leader: P4xos on a NetFPGA behind its own port
        hw_card = make_p4xos_fpga()
        hw_node = CallbackNode(
            sim, "hw-leader", on_packet=lambda p: hw_leader.offer(p)
        )
        hw_leader = HardwarePaxosRole(
            sim,
            hw_card,
            hw_node,
            LeaderState("hw-leader", 1, px.n_acceptors),
            directory,
        )
        topo.add(hw_node)
        self._connect(topo, "hw-leader")

        # -- software acceptors and learner
        for name in acceptor_names:
            server = make_i7_server(sim, name=name)
            role = SoftwarePaxosRole(
                sim,
                server,
                AcceptorState(name, recovery_window=px.recovery_window),
                directory,
                capacity_pps=cal.LIBPAXOS_ACCEPTOR_CAPACITY_PPS,
                stack_latency_us=cal.LIBPAXOS_ACCEPTOR_STACK_US,
                app_name=f"acceptor.{name}",
            )
            server.set_packet_handler(role.offer)
            topo.add(server)
            self._connect(topo, name)

        learner_server = make_i7_server(sim, name="learner0")
        learner_role = SoftwarePaxosRole(
            sim,
            learner_server,
            LearnerState("learner0", px.n_acceptors),
            directory,
            capacity_pps=cal.LIBPAXOS_ACCEPTOR_CAPACITY_PPS,
            stack_latency_us=cal.LIBPAXOS_LEARNER_STACK_US,
            app_name="learner",
        )
        learner_server.set_packet_handler(learner_role.offer)
        topo.add(learner_server)
        self._connect(topo, "learner0")
        gap_scanner = LearnerGapScanner(sim, learner_role)

        # -- deployment + centralized shift controller (§9.2)
        deployment = PaxosDeployment(switch)
        deployment.register_leader("sw-leader", sw_leader)
        deployment.register_leader("hw-leader", hw_leader)
        deployment.activate_leader("sw-leader")
        controller = PaxosShiftController(
            sim,
            switch,
            deployment,
            software_node="sw-leader",
            hardware_node="hw-leader",
            automatic=False,
        )
        for at_s, to_hardware in px.shifts:
            controller.schedule_shift(sec(at_s), to_hardware=to_hardware)

        # -- closed-loop clients
        clients = []
        for i in range(px.n_clients):
            client = PaxosClient(sim, f"pxclient{i}", rng=streams.get(f"client{i}"))
            topo.add(client)
            self._connect(topo, client.name)
            clients.append(client)
        # start after a short warm-up so the software leader finished phase 1
        for client in clients:
            sim.schedule_at(
                msec(px.client_start_ms),
                lambda c=client: c.start_closed_loop(px.client_window),
                name="client.start",
            )

        power_sampler = PeriodicSampler(
            sim,
            sw_server.platform_power_w,
            msec(self.spec.sampling.power_interval_ms),
            name="sw-leader.power",
        )
        return BuiltPaxosGroup(
            deployment=deployment,
            controller=controller,
            clients=clients,
            gap_scanner=gap_scanner,
            power_sampler=power_sampler,
        )


def run_scenario_spec(spec: ScenarioSpec) -> ScenarioResult:
    """Convenience: validate, build, execute."""
    return ScenarioBuilder(spec).run()


# ---------------------------------------------------------------------------
# Analytic on-demand sweep (the Figure 5 path).
# ---------------------------------------------------------------------------


@dataclass
class OnDemandSweepResult:
    """Figure-5 series: per-app on-demand vs software-only power curves."""

    series: Dict[str, list]
    savings_at_peak: Dict[str, float]


def run_ondemand_sweep(spec: OnDemandSweepSpec) -> OnDemandSweepResult:
    """Execute the declarative Figure-5 sweep over the steady-state models."""
    # Imported lazily: repro.experiments imports this package at module
    # scope (transitions are scenario-backed), so the dependency must stay
    # one-way at import time.
    from ..experiments.sweep import linspace_rates, sweep_model
    from ..steady.ondemand import ondemand_models

    rates = linspace_rates(kpps(spec.max_rate_kpps), spec.steps)
    series: Dict[str, list] = {}
    savings: Dict[str, float] = {}
    for app, model in ondemand_models().items():
        series[f"{app} (On demand)"] = sweep_model(model, rates)
        series[f"{app} (SW)"] = sweep_model(model.software, rates)
        peak = min(kpps(spec.peak_rate_kpps), model.software.capacity_pps)
        savings[app] = model.saving_vs_software_w(peak) / model.software.power_at(
            peak
        )
    return OnDemandSweepResult(series=series, savings_at_peak=savings)
