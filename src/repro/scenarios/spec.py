"""Declarative scenario specifications.

A :class:`ScenarioSpec` describes a complete on-demand cluster — hosts with
their NIC-replacing FPGA cards, the ToR switch fabric, per-host application
placements and controllers, workloads, and sampling — without constructing
anything.  :class:`repro.scenarios.builder.ScenarioBuilder` materializes a
spec into a wired DES run; :mod:`repro.scenarios.registry` names the
canonical ones (the paper's Figures 6/7 plus the rack-scale extensions).

A rack may mix all three of the paper's applications: key-sharded KVS
hosts, N independent Paxos consensus groups sharing the ToR (each with its
own logical leader address), and anycast DNS hosts steered by qname hash.
Each placement names its own :class:`ControllerSpec` — the §9.1 host- and
network-driven designs, the predictive enhancement, or none — so *who
decides to shift* is part of the declaration, not the wiring.  Each
placement also names its own :class:`DeviceSpec` — the NetFPGA, a §10
SmartNIC tier, or ``none`` for a NIC-only host — so *what there is to
shift to* is declarative as well, and racks may mix offload devices.

Specs are frozen dataclasses so scenarios can be derived from one another
with :func:`dataclasses.replace` (the registry test shortens horizons that
way, and sweeps can scale host counts or rates).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple, Union

from ..core.controller import CONTROLLER_KINDS, PAXOS_CONTROLLER_KINDS
from ..core.fabric_controller import (
    FABRIC_CONTROLLER_KINDS,
    FabricControllerConfig,
)
from ..core.host_controller import HostControllerConfig
from ..core.network_controller import NetworkControllerConfig
from ..core.paxos_controller import PaxosControllerConfig
from ..core.predictive_controller import PredictiveControllerConfig
from ..errors import ConfigurationError
from ..hw.device import DEFAULT_DEVICE_KIND, get_device
from ..naming import rack_qualified, split_rack


def _config_fields(config_cls, *extra: str) -> FrozenSet[str]:
    return frozenset(f.name for f in fields(config_cls)) | frozenset(extra)


#: kind -> parameter names its controller family accepts.  Validated at
#: declaration time so a typo fails in ``validate()`` like every other
#: spec mistake, not as a TypeError deep inside the builder.
_KIND_PARAMS: Dict[str, FrozenSet[str]] = {
    "host": _config_fields(HostControllerConfig),
    "network": _config_fields(NetworkControllerConfig),
    "predictive": _config_fields(PredictiveControllerConfig, "standby_card_w"),
    "none": frozenset(),
    "schedule": _config_fields(PaxosControllerConfig),
    "rate": _config_fields(PaxosControllerConfig),
    "fabric": _config_fields(FabricControllerConfig),
}

#: (at_s, value) steps applied over a run, e.g. offered-rate ramps.
PhaseSchedule = Tuple[Tuple[float, float], ...]


@dataclass(frozen=True)
class SwitchSpec:
    """The ToR switch and the rack's port characteristics.

    In a multi-rack scenario (``ScenarioSpec.fabric``) this describes
    *each rack's* ToR: one switch named ``<rack>/<name>`` is built per
    rack, with these host-port characteristics.
    """

    name: str = "tor"
    latency_us: float = 1.0
    bandwidth_gbps: float = 10.0


@dataclass(frozen=True)
class UplinkSpec:
    """A rack's ToR->spine uplink (both directions).

    ``oversubscription`` divides the effective bandwidth — a 4:1
    oversubscribed 40G uplink serves cross-rack traffic at 10G — and the
    uplink queues (FIFO output contention), so oversubscription shows up
    as cross-rack tail latency under load, not just a rate cap.
    """

    latency_us: float = 5.0
    bandwidth_gbps: float = 40.0
    oversubscription: float = 1.0

    def effective_bandwidth_bps(self) -> float:
        """The per-direction bandwidth the DES uplinks actually serve —
        the declared bandwidth divided down by the oversubscription ratio.
        This is the analytic parameter the steady fast path's queueing
        model consumes (``repro.steady.fabric``)."""
        from ..net.topology import uplink_effective_bps
        from ..units import gbit_per_s

        return uplink_effective_bps(
            gbit_per_s(self.bandwidth_gbps), self.oversubscription
        )

    def validate(self, owner: str) -> None:
        if self.latency_us < 0:
            raise ConfigurationError(
                f"uplink latency_us must be >= 0 on {owner!r}"
            )
        if self.bandwidth_gbps <= 0:
            raise ConfigurationError(
                f"uplink bandwidth_gbps must be positive on {owner!r}"
            )
        if self.oversubscription < 1.0:
            raise ConfigurationError(
                f"uplink oversubscription must be >= 1 on {owner!r}, got "
                f"{self.oversubscription}"
            )


@dataclass(frozen=True)
class SpineSpec:
    """The aggregation/spine switch tier (one switch; latency and
    bandwidth live on the :class:`UplinkSpec` links that reach it)."""

    name: str = "spine"


@dataclass(frozen=True)
class FabricSpec:
    """A declarative leaf-spine fabric: N racks of ToRs under one spine.

    Racks are named ``rack0..rack{N-1}``; placements choose a rack with
    their ``rack`` field (default: ``rack0``).  ``hosts_per_rack`` is an
    optional capacity cap on declared KVS/DNS server hosts per rack —
    exceeding it is a declaration error, the way a real rack runs out of
    slots.
    """

    racks: int = 2
    hosts_per_rack: Optional[int] = None
    uplink: UplinkSpec = field(default_factory=UplinkSpec)
    spine: SpineSpec = field(default_factory=SpineSpec)

    def rack_names(self) -> Tuple[str, ...]:
        return tuple(f"rack{i}" for i in range(self.racks))

    @property
    def default_rack(self) -> str:
        return "rack0"

    def validate(self, owner: str) -> None:
        if self.racks < 1:
            raise ConfigurationError(
                f"fabric on {owner!r} needs at least one rack"
            )
        if self.hosts_per_rack is not None and self.hosts_per_rack < 1:
            raise ConfigurationError(
                f"fabric hosts_per_rack must be >= 1 on {owner!r}"
            )
        self.uplink.validate(owner)
        if not self.spine.name:
            raise ConfigurationError(f"fabric spine needs a name on {owner!r}")


@dataclass(frozen=True)
class ControllerSpec:
    """Which controller family drives a placement, and with what knobs.

    ``kind`` names one of the §9 designs (:data:`CONTROLLER_KINDS` for
    per-host placements, :data:`PAXOS_CONTROLLER_KINDS` for consensus
    groups); ``params`` carries family-specific overrides (threshold rates,
    window lengths, predictive margins, …) applied on top of each family's
    calibrated defaults.  ``params`` accepts a mapping and is normalized to
    a sorted tuple of pairs so specs stay hashable and replace-derivable.
    """

    kind: str = "host"
    params: Union[Mapping[str, object], Tuple[Tuple[str, object], ...]] = ()

    def __post_init__(self):
        items = (
            tuple(sorted(self.params.items()))
            if isinstance(self.params, Mapping)
            else tuple(tuple(pair) for pair in self.params)
        )
        object.__setattr__(self, "params", items)

    def as_dict(self) -> Dict[str, object]:
        return dict(self.params)

    def validate_for(self, app: str, owner: str) -> None:
        if app == "paxos":
            kinds = PAXOS_CONTROLLER_KINDS
        elif app == "fabric":
            kinds = FABRIC_CONTROLLER_KINDS
        else:
            kinds = CONTROLLER_KINDS
        if self.kind not in kinds:
            raise ConfigurationError(
                f"unknown controller kind {self.kind!r} on {owner!r}; "
                f"{app} placements accept: {', '.join(kinds)}"
            )
        allowed = _KIND_PARAMS[self.kind]
        for key, _ in self.params:
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"controller param names on {owner!r} must be strings"
                )
            if key not in allowed:
                accepted = ", ".join(sorted(allowed)) or "none"
                raise ConfigurationError(
                    f"unknown {self.kind!r} controller param {key!r} on "
                    f"{owner!r}; accepted: {accepted}"
                )


#: A host running a static software placement (no controller at all).
NO_CONTROLLER = ControllerSpec(kind="none")


@dataclass(frozen=True)
class DeviceSpec:
    """Which offload device a placement's host carries, and with what knobs.

    ``kind`` names a profile of the :mod:`repro.hw.device` registry —
    ``netfpga-sume`` (the paper's platform, the default), the §10 SmartNIC
    tiers (``accelnet-fpga``, ``asic-nic``, ``soc-nic``), or ``none`` (a
    NIC-only host whose placement can never shift).  ``params`` carries
    device-specific construction overrides (e.g. the NetFPGA's LaKe
    ``pe_count``), validated against the profile at declaration time.  Like
    :class:`ControllerSpec`, ``params`` accepts a mapping and is normalized
    to a sorted tuple of pairs so specs stay hashable.
    """

    kind: str = DEFAULT_DEVICE_KIND
    params: Union[Mapping[str, object], Tuple[Tuple[str, object], ...]] = ()

    def __post_init__(self):
        items = (
            tuple(sorted(self.params.items()))
            if isinstance(self.params, Mapping)
            else tuple(tuple(pair) for pair in self.params)
        )
        object.__setattr__(self, "params", items)

    def as_dict(self) -> Dict[str, object]:
        return dict(self.params)

    @property
    def is_offload(self) -> bool:
        """False for the ``none`` profile (NIC-only host)."""
        return get_device(self.kind).is_offload

    def validate_for(self, app: str, owner: str) -> None:
        # unknown kinds raise here with a case-insensitive did-you-mean
        # suggestion, like scenario and sweep names
        device = get_device(self.kind)
        device.validate_app(app, owner)
        allowed = device.accepted_params(app)
        for key, _ in self.params:
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"device param names on {owner!r} must be strings"
                )
            if key not in allowed:
                accepted = ", ".join(sorted(allowed)) or "none"
                raise ConfigurationError(
                    f"unknown {device.kind!r} device param {key!r} on "
                    f"{owner!r}; accepted: {accepted}"
                )


#: A host with no offload card at all (software placement forever).
NO_DEVICE = DeviceSpec(kind="none")


@dataclass(frozen=True)
class ColocatedJobSpec:
    """A ChainerMN-style CPU job co-located on one host (Figure 6)."""

    start_s: float
    stop_s: float
    cores: float = 2.5
    utilization: float = 0.95
    app_name: str = "chainermn"


@dataclass(frozen=True)
class SamplingSpec:
    """Instrumentation cadence — the scenario default, overridable per host."""

    power_interval_ms: float = 50.0
    bucket_ms: float = 250.0

    def validate(self, owner: str) -> None:
        if self.power_interval_ms <= 0:
            raise ConfigurationError(
                f"sampling power_interval_ms must be positive on {owner!r}"
            )
        if self.bucket_ms <= 0:
            raise ConfigurationError(
                f"sampling bucket_ms must be positive on {owner!r}"
            )


@dataclass(frozen=True)
class KvsHostSpec:
    """One memcached host with a LaKe card and its own shift controller.

    ``client_name`` names the load-generator node driving this host's key
    shard (defaults to ``<name>-client``).  ``controller`` selects the
    decision policy (host-driven RAPL by default; ``NO_CONTROLLER`` builds
    the host with a static software placement).  ``sampling`` overrides the
    scenario-wide instrumentation cadence for this host's series.
    """

    name: str
    client_name: Optional[str] = None
    power_save: bool = False
    controller: ControllerSpec = ControllerSpec(kind="host")
    rapl_interval_ms: float = 10.0
    colocated: Tuple[ColocatedJobSpec, ...] = ()
    sampling: Optional[SamplingSpec] = None
    #: Begin the run already shifted into the network (the sweep engine's
    #: hardware-pinned mode).  Applied before instrumentation starts, so
    #: the very first power sample sees the active card.
    start_in_hardware: bool = False
    #: Which offload card this host carries (``none`` = NIC-only host).
    device: DeviceSpec = DeviceSpec()
    #: Which key shard of the rack-wide keyspace this host owns.  Defaults
    #: to the host's position; set explicitly (with
    #: ``KvsWorkloadSpec.n_shards``) to build a *sub-rack* — a residual
    #: scenario simulating only some shards of a larger rack while keeping
    #: every per-shard RNG stream, traffic weight and route identical to
    #: the full rack (the per-placement steady fast path depends on this).
    shard_index: Optional[int] = None
    #: Which fabric rack this host (and its client) lives in.  Requires
    #: ``ScenarioSpec.fabric``; None means the fabric's default rack — or,
    #: without a fabric, the plain single-ToR wiring.
    rack: Optional[str] = None
    #: Consolidated initial placement: the name of *another* KVS host that
    #: initially serves this host's key shard (this host still offers its
    #: shard's traffic, but starts serving nothing).  Requires a sharded
    #: rack.  In fabric mode a bare name resolves inside this host's rack;
    #: write ``"rack0/kvs0"`` to consolidate onto another rack — the
    #: centralized fabric controller can later steer the shard back out.
    served_by: Optional[str] = None

    def resolved_client_name(self) -> str:
        return self.client_name or f"{self.name}-client"


@dataclass(frozen=True)
class KvsWorkloadSpec:
    """ETC traffic offered to the KVS hosts.

    ``rate_kpps`` is the **total** rack load.  With one host the client
    offers all of it; with several, the rate is split per host in
    proportion to each key shard's Zipf traffic weight (the per-host ETC
    split), and clients address the logical rack service routed by the
    ToR's key-shard dispatcher.  ``phases`` steps the total rate over the
    run — ``((at_s, rate_kpps), ...)`` — which is how rate-driven
    controllers are exercised on a load ramp.
    """

    keyspace: int = 50_000
    rate_kpps: float = 16.0
    zipf_s: float = 0.99
    preload: bool = True
    phases: PhaseSchedule = ()
    #: Total shard count of the rack this workload describes.  ``None``
    #: (the default) means "one shard per declared host".  Setting it
    #: larger than the host count declares a sub-rack: the declared hosts
    #: own only their ``shard_index`` shards, traffic for absent shards is
    #: simply not offered, and ``rate_kpps`` still names the **full** rack
    #: load so per-shard rates stay identical to the complete scenario.
    n_shards: Optional[int] = None


@dataclass(frozen=True)
class DnsHostSpec:
    """One anycast DNS replica: NSD in software, Emu DNS on the card.

    Every replica answers authoritatively for the whole zone; the ToR
    spreads queries across replicas by qname hash.  The default controller
    is the network-driven design (§9.1's 40-lines-in-the-classifier
    controller — the natural fit for a rate-driven query storm).
    """

    name: str
    client_name: Optional[str] = None
    power_save: bool = True
    controller: ControllerSpec = ControllerSpec(kind="network")
    rapl_interval_ms: float = 10.0
    sampling: Optional[SamplingSpec] = None
    #: Begin the run already shifted into the network (see KvsHostSpec).
    start_in_hardware: bool = False
    #: Which offload card this replica carries (``none`` = NIC-only host).
    device: DeviceSpec = DeviceSpec()
    #: Which fabric rack this replica (and its client) lives in (see
    #: KvsHostSpec.rack).
    rack: Optional[str] = None

    def resolved_client_name(self) -> str:
        return self.client_name or f"{self.name}-client"


@dataclass(frozen=True)
class DnsWorkloadSpec:
    """Query traffic offered to the anycast DNS hosts.

    ``rate_kpps`` is the total rack query rate, split per host by each
    qname shard's popularity weight; ``phases`` steps it over the run
    (query storms).  ``miss_fraction`` of queries ask names beyond the
    zone and answer NXDOMAIN.
    """

    n_names: int = 1_000
    rate_kpps: float = 20.0
    zipf_s: float = 0.99
    miss_fraction: float = 0.0
    phases: PhaseSchedule = ()


@dataclass(frozen=True)
class PaxosSpec:
    """One Figure-7-style Paxos consensus group with a shiftable leader.

    A scenario may declare several independent groups sharing the ToR;
    ``name`` prefixes every node of the group and derives its logical
    leader address (``<name>-leader``), which the switch maps to the
    currently active physical leader.  ``controller`` selects the shift
    policy: ``"schedule"`` executes the explicit ``shifts`` timetable
    (``(at_s, to_hardware)`` pairs, the Figure 7 drive); ``"rate"``
    watches this group's leader-bound packet rate at the ToR and shifts
    autonomously (§9.2's centralized controller proper).
    """

    name: str = "paxos"
    n_clients: int = 3
    client_window: int = 1
    n_acceptors: int = 3
    recovery_window: int = 512
    client_start_ms: float = 20.0
    shifts: Tuple[Tuple[float, bool], ...] = ()
    controller: ControllerSpec = ControllerSpec(kind="schedule")
    #: Activate the P4xos leader (not the software one) from the start —
    #: the sweep engine's hardware-pinned mode.
    start_in_hardware: bool = False
    #: Which offload card hosts the hardware leader (must support paxos).
    device: DeviceSpec = DeviceSpec()
    #: Explicit acceptor server names.  Empty: the group lays out its own
    #: ``<name>-acceptor{i}`` boxes (disjoint from every other group).
    #: Non-empty (length must equal ``n_acceptors``): the named servers
    #: host this group's acceptors, and several groups naming the same
    #: server *share* it — the §9.4 shared-host case whose wall power is
    #: split between the groups in proportion to their busy time.  In a
    #: fabric scenario an entry may be rack-qualified (``"rack1/acc0"``)
    #: to place that acceptor outside the group's home rack — a consensus
    #: group whose quorum spans racks.
    acceptor_hosts: Tuple[str, ...] = ()
    #: Which fabric rack the group's nodes live in by default (leaders,
    #: learner, clients, and any acceptor_hosts entry without an explicit
    #: ``<rack>/`` prefix).  Requires ``ScenarioSpec.fabric``.
    rack: Optional[str] = None

    # -- derived addressing (the builder and validator share these) ----------

    @property
    def leader_address(self) -> str:
        """The group's logical leader destination at the ToR."""
        return f"{self.name}-leader"

    @property
    def software_leader_name(self) -> str:
        return f"{self.name}-sw-leader"

    @property
    def hardware_leader_name(self) -> str:
        return f"{self.name}-hw-leader"

    @property
    def learner_name(self) -> str:
        return f"{self.name}-learner0"

    def acceptor_names(self) -> List[str]:
        if self.acceptor_hosts:
            return list(self.acceptor_hosts)
        return [f"{self.name}-acceptor{i}" for i in range(self.n_acceptors)]

    def client_names(self) -> List[str]:
        return [f"{self.name}-client{i}" for i in range(self.n_clients)]

    def node_names(self) -> List[str]:
        """Every concrete node this group adds to the topology."""
        return [
            self.software_leader_name,
            self.hardware_leader_name,
            self.learner_name,
            *self.acceptor_names(),
            *self.client_names(),
        ]


@dataclass(frozen=True)
class OnDemandSweepSpec:
    """The analytic Figure-5 sweep: on-demand vs software-only power for
    each application's steady-state model across offered rates."""

    max_rate_kpps: float = 1200.0
    steps: int = 25
    peak_rate_kpps: float = 1000.0


def _validate_host_device(host, app: str) -> None:
    """The NIC-only rules: a host with no card can never leave software, so
    a hardware pin or any shifting controller on it is a declaration error,
    caught at ``validate()`` time like every other spec mistake."""
    if host.device.is_offload:
        return
    if host.start_in_hardware:
        raise ConfigurationError(
            f"NIC-only {app} host {host.name!r} (device 'none') cannot "
            "start_in_hardware: there is no card to start on"
        )
    if host.controller.kind != "none":
        raise ConfigurationError(
            f"NIC-only {app} host {host.name!r} (device 'none') cannot be "
            f"driven by a {host.controller.kind!r} controller: there is "
            "nothing to shift to"
        )


def _validate_phases(phases: PhaseSchedule, owner: str) -> None:
    last_at = -1.0
    for at_s, rate_kpps in phases:
        if at_s < 0:
            raise ConfigurationError(f"{owner} phase scheduled before t=0")
        if at_s <= last_at:
            raise ConfigurationError(f"{owner} phases must be strictly increasing")
        if rate_kpps < 0:
            raise ConfigurationError(f"{owner} phase rate must be >= 0")
        last_at = at_s


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative cluster scenario (possibly mixed-app)."""

    name: str
    description: str = ""
    duration_s: float = 10.0
    seed: int = 42
    switch: SwitchSpec = field(default_factory=SwitchSpec)
    #: None: the classic single-ToR rack (byte-identical legacy wiring).
    #: Set: a leaf-spine fabric; placements pick racks via their ``rack``
    #: fields and all node names become ``<rack>/<name>``-qualified.
    fabric: Optional[FabricSpec] = None
    #: The §9.1 centralized controller over the whole fabric
    #: (``ControllerSpec(kind="fabric")``); requires ``fabric``.
    fabric_controller: Optional[ControllerSpec] = None
    kvs_hosts: Tuple[KvsHostSpec, ...] = ()
    kvs_workload: Optional[KvsWorkloadSpec] = None
    paxos_groups: Tuple[PaxosSpec, ...] = ()
    dns_hosts: Tuple[DnsHostSpec, ...] = ()
    dns_workload: Optional[DnsWorkloadSpec] = None
    sampling: SamplingSpec = field(default_factory=SamplingSpec)

    def validate(self) -> "ScenarioSpec":
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        if not self.kvs_hosts and not self.paxos_groups and not self.dns_hosts:
            raise ConfigurationError(
                f"scenario {self.name!r} declares no KVS hosts, no Paxos "
                "groups and no DNS hosts"
            )
        self._validate_fabric()
        self._validate_kvs()
        self._validate_dns()
        self._validate_paxos()
        self._validate_sampling()
        self._validate_node_names()
        return self

    # -- fabric placement ----------------------------------------------------

    def host_rack(self, placement) -> Optional[str]:
        """The rack a placement (host spec or Paxos group) lives in: its
        ``rack`` field, the fabric default, or None without a fabric."""
        if self.fabric is None:
            return None
        return placement.rack or self.fabric.default_rack

    def _validate_fabric(self) -> None:
        placements = [
            ("KVS host", h) for h in self.kvs_hosts
        ] + [
            ("DNS host", h) for h in self.dns_hosts
        ] + [
            ("Paxos group", g) for g in self.paxos_groups
        ]
        if self.fabric is None:
            for what, placement in placements:
                if placement.rack is not None:
                    raise ConfigurationError(
                        f"{what} {placement.name!r} names rack "
                        f"{placement.rack!r} but scenario {self.name!r} "
                        "declares no fabric"
                    )
            if self.fabric_controller is not None:
                raise ConfigurationError(
                    f"scenario {self.name!r} declares a fabric_controller "
                    "but no fabric"
                )
            return
        self.fabric.validate(self.name)
        racks = set(self.fabric.rack_names())
        for what, placement in placements:
            if placement.rack is not None and placement.rack not in racks:
                raise ConfigurationError(
                    f"{what} {placement.name!r} names unknown rack "
                    f"{placement.rack!r}; fabric racks are "
                    f"{', '.join(self.fabric.rack_names())}"
                )
        for group in self.paxos_groups:
            for acceptor in group.acceptor_hosts:
                rack, _ = split_rack(acceptor)
                if rack is not None and rack not in racks:
                    raise ConfigurationError(
                        f"Paxos group {group.name!r} places acceptor "
                        f"{acceptor!r} in unknown rack {rack!r}"
                    )
        if self.fabric.hosts_per_rack is not None:
            per_rack: Dict[str, int] = {}
            for host in (*self.kvs_hosts, *self.dns_hosts):
                rack = self.host_rack(host)
                per_rack[rack] = per_rack.get(rack, 0) + 1
            for rack, count in per_rack.items():
                if count > self.fabric.hosts_per_rack:
                    raise ConfigurationError(
                        f"rack {rack!r} has {count} server hosts but the "
                        f"fabric caps hosts_per_rack at "
                        f"{self.fabric.hosts_per_rack} in {self.name!r}"
                    )
        if self.fabric_controller is not None:
            self.fabric_controller.validate_for("fabric", self.name)

    # -- per-app checks ------------------------------------------------------

    def _validate_kvs(self) -> None:
        if self.kvs_hosts and self.kvs_workload is None:
            raise ConfigurationError(
                f"scenario {self.name!r} has KVS hosts but no workload"
            )
        if self.kvs_workload is not None:
            if not self.kvs_hosts:
                raise ConfigurationError(
                    f"scenario {self.name!r} declares a KVS workload but no hosts"
                )
            _validate_phases(self.kvs_workload.phases, "KVS workload")
            self._validate_kvs_shards()
        for host in self.kvs_hosts:
            host.controller.validate_for("kvs", host.name)
            host.device.validate_for("kvs", host.name)
            _validate_host_device(host, "kvs")
            for job in host.colocated:
                if job.stop_s <= job.start_s:
                    raise ConfigurationError(
                        f"colocated job on {host.name!r} stops before it starts"
                    )
        self._validate_kvs_served_by()

    def _validate_kvs_shards(self) -> None:
        n_shards = self.kvs_workload.n_shards
        indices = [h.shard_index for h in self.kvs_hosts]
        if n_shards is None:
            if any(i is not None for i in indices):
                raise ConfigurationError(
                    f"scenario {self.name!r} sets shard_index on a KVS host "
                    "but the workload declares no n_shards"
                )
            return
        if n_shards < len(self.kvs_hosts):
            raise ConfigurationError(
                f"scenario {self.name!r} declares n_shards={n_shards} for "
                f"{len(self.kvs_hosts)} KVS hosts"
            )
        if any(i is None for i in indices):
            raise ConfigurationError(
                f"scenario {self.name!r} declares n_shards but a KVS host "
                "is missing its shard_index"
            )
        if len(set(indices)) != len(indices):
            raise ConfigurationError(
                f"scenario {self.name!r} assigns the same shard_index twice"
            )
        for i in indices:
            if not 0 <= i < n_shards:
                raise ConfigurationError(
                    f"scenario {self.name!r} shard_index {i} out of range "
                    f"for n_shards={n_shards}"
                )

    def _validate_kvs_served_by(self) -> None:
        """Consolidated initial ownership must name a real, distinct host
        on a sharded rack, in both single-ToR and fabric spellings."""
        donors = [h for h in self.kvs_hosts if h.served_by is not None]
        if not donors:
            return
        if len(self.kvs_hosts) < 2:
            raise ConfigurationError(
                f"scenario {self.name!r}: served_by needs a sharded rack "
                "(at least two KVS hosts)"
            )
        fq_names = {
            rack_qualified(self.host_rack(h), h.name) for h in self.kvs_hosts
        }
        for host in donors:
            rack = self.host_rack(host)
            target = rack_qualified(rack, host.served_by)
            own = rack_qualified(rack, host.name)
            if target == own:
                raise ConfigurationError(
                    f"KVS host {host.name!r} cannot be served_by itself"
                )
            if target not in fq_names:
                raise ConfigurationError(
                    f"KVS host {host.name!r} is served_by unknown host "
                    f"{host.served_by!r}"
                )

    def _validate_dns(self) -> None:
        if self.dns_hosts and self.dns_workload is None:
            raise ConfigurationError(
                f"scenario {self.name!r} has DNS hosts but no workload"
            )
        if self.dns_workload is not None:
            if not self.dns_hosts:
                raise ConfigurationError(
                    f"scenario {self.name!r} declares a DNS workload but no hosts"
                )
            _validate_phases(self.dns_workload.phases, "DNS workload")
            if not 0.0 <= self.dns_workload.miss_fraction < 1.0:
                raise ConfigurationError(
                    f"DNS miss_fraction must be in [0, 1) in {self.name!r}"
                )
            # every anycast replica loads the whole zone into the card's
            # on-chip table, so the zone must fit Emu's capacity (§5.3)
            from ..apps.dns.emu import EMU_ZONE_CAPACITY

            if self.dns_workload.n_names > EMU_ZONE_CAPACITY:
                raise ConfigurationError(
                    f"DNS zone of {self.dns_workload.n_names} names exceeds "
                    f"the Emu on-chip capacity ({EMU_ZONE_CAPACITY}) in "
                    f"{self.name!r}"
                )
            if self.dns_workload.n_names < 1:
                raise ConfigurationError(
                    f"DNS n_names must be >= 1 in {self.name!r}"
                )
        for host in self.dns_hosts:
            host.controller.validate_for("dns", host.name)
            host.device.validate_for("dns", host.name)
            _validate_host_device(host, "dns")

    def _validate_paxos(self) -> None:
        group_names = [g.name for g in self.paxos_groups]
        if len(set(group_names)) != len(group_names):
            raise ConfigurationError(
                f"duplicate Paxos group names in {self.name!r}"
            )
        for group in self.paxos_groups:
            group.controller.validate_for("paxos", group.name)
            group.device.validate_for("paxos", group.name)
            if group.n_clients < 1 or group.n_acceptors < 1:
                raise ConfigurationError(
                    f"Paxos group {group.name!r} needs >=1 client and acceptor"
                )
            if group.acceptor_hosts:
                if len(group.acceptor_hosts) != group.n_acceptors:
                    raise ConfigurationError(
                        f"Paxos group {group.name!r} names "
                        f"{len(group.acceptor_hosts)} acceptor hosts for "
                        f"{group.n_acceptors} acceptors"
                    )
                if len(set(group.acceptor_hosts)) != len(group.acceptor_hosts):
                    raise ConfigurationError(
                        f"Paxos group {group.name!r} repeats an acceptor host"
                    )
            for at_s, _ in group.shifts:
                if at_s < 0:
                    raise ConfigurationError(
                        f"Paxos group {group.name!r} shift scheduled before t=0"
                    )

    def _validate_sampling(self) -> None:
        self.sampling.validate(self.name)
        for host in (*self.kvs_hosts, *self.dns_hosts):
            if host.sampling is not None:
                host.sampling.validate(host.name)

    def _validate_node_names(self) -> None:
        """Node names must be unique across *all* apps sharing the ToR —
        a KVS host, a Paxos acceptor and a DNS client are all ports on the
        same switch — and must not shadow the logical service addresses.
        The one sanctioned overlap: a server named in several groups'
        ``acceptor_hosts`` is *shared* (one box, one port, many roles).

        In a fabric scenario uniqueness is checked on the *fully-qualified*
        ``<rack>/<name>`` spellings (the names the builder actually
        registers), so two racks may each declare an ``h0``; the rack
        prefix is exactly what prevents the duplicate-node collision.
        """
        seen: Dict[str, str] = {}
        _SHARED = "a shared Paxos acceptor host"

        def claim(name: str, what: str) -> None:
            if name in seen:
                raise ConfigurationError(
                    f"node name {name!r} used by both {seen[name]} and {what} "
                    f"in {self.name!r}"
                )
            seen[name] = what

        def claim_shared(name: str) -> None:
            prev = seen.get(name)
            if prev is None:
                seen[name] = _SHARED
            elif prev != _SHARED:
                raise ConfigurationError(
                    f"node name {name!r} used by both {prev} and {_SHARED} "
                    f"in {self.name!r}"
                )

        if self.fabric is None:
            claim(self.switch.name, "the ToR switch")
        else:
            claim(self.fabric.spine.name, "the spine switch")
            for rack in self.fabric.rack_names():
                claim(rack_qualified(rack, self.switch.name), "a ToR switch")
        for host in self.kvs_hosts:
            rack = self.host_rack(host)
            claim(rack_qualified(rack, host.name), "a KVS host")
            claim(
                rack_qualified(rack, host.resolved_client_name()),
                "a KVS client",
            )
        for host in self.dns_hosts:
            rack = self.host_rack(host)
            claim(rack_qualified(rack, host.name), "a DNS host")
            claim(
                rack_qualified(rack, host.resolved_client_name()),
                "a DNS client",
            )
        for group in self.paxos_groups:
            rack = self.host_rack(group)
            shared = {
                rack_qualified(rack, a) for a in group.acceptor_hosts
            }
            for node in group.node_names():
                fq = rack_qualified(rack, node)
                if fq in shared:
                    claim_shared(fq)
                else:
                    claim(fq, f"Paxos group {group.name!r}")
        # logical addresses are switch-level destinations, not ports, but a
        # node with the same name would swallow redirected traffic
        for logical in self.logical_addresses():
            if logical in seen:
                raise ConfigurationError(
                    f"node name {logical!r} collides with a logical service "
                    f"address in {self.name!r}"
                )

    def logical_addresses(self) -> List[str]:
        """The switch-level service destinations, as the builder installs
        them: Paxos leader addresses are rack-qualified in fabric mode
        (each group's leader rule is still installed fleet-wide), while
        the sharded KVS/DNS services stay fabric-global."""
        addresses = [
            rack_qualified(self.host_rack(g), g.leader_address)
            for g in self.paxos_groups
        ]
        if self.sharded:
            addresses.append(RACK_KVS_SERVICE)
        if self.dns_sharded:
            addresses.append(RACK_DNS_SERVICE)
        return addresses

    # -- rack modes ----------------------------------------------------------

    @property
    def sharded(self) -> bool:
        """Rack mode: more than one KVS host — or a declared sub-rack of a
        sharded rack — ⇒ key-sharded ToR routing."""
        if len(self.kvs_hosts) > 1:
            return True
        return (
            self.kvs_workload is not None
            and self.kvs_workload.n_shards is not None
            and self.kvs_workload.n_shards > 1
        )

    @property
    def dns_sharded(self) -> bool:
        """Anycast mode: more than one DNS host ⇒ qname-hash ToR routing."""
        return len(self.dns_hosts) > 1


# ---------------------------------------------------------------------------
# Sweeps: a grid of scenario points (the §9.4 rack tipping-point engine).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepAxis:
    """One swept factory parameter and the values it takes.

    ``param`` names a keyword of the base scenario's registry factory
    (``n_hosts``, ``rate_per_host_kpps``, ``n_paxos_groups``, …); the sweep
    materializes one scenario per point of the axes' cross product.
    """

    param: str
    values: Tuple[object, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "values", tuple(self.values))

    def validate(self, owner: str) -> None:
        if not isinstance(self.param, str) or not self.param:
            raise ConfigurationError(f"sweep axis on {owner!r} needs a parameter name")
        if not self.values:
            raise ConfigurationError(
                f"sweep axis {self.param!r} on {owner!r} has no values"
            )


@dataclass(frozen=True)
class ScenarioSweepSpec:
    """A parameter grid over one registered scenario (§9.4 tipping points).

    ``base`` names a registry entry; each grid point calls its factory with
    the axis values (plus the constant ``fixed`` overrides) and runs the
    resulting spec twice — pinned to software and pinned to hardware — so
    the sweep can chart where the rack tips from one to the other on
    ops/W.  ``tip_axis`` names the axis along which the crossover is
    reported (the offered-rate ramp by default: the last axis).
    """

    name: str
    base: str
    axes: Tuple[SweepAxis, ...] = ()
    description: str = ""
    fixed: Union[Mapping[str, object], Tuple[Tuple[str, object], ...]] = ()
    tip_axis: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "axes", tuple(self.axes))
        items = (
            tuple(sorted(self.fixed.items()))
            if isinstance(self.fixed, Mapping)
            else tuple(tuple(pair) for pair in self.fixed)
        )
        object.__setattr__(self, "fixed", items)

    def validate(self) -> "ScenarioSweepSpec":
        if not self.axes:
            raise ConfigurationError(f"sweep {self.name!r} declares no axes")
        params = [axis.param for axis in self.axes]
        if len(set(params)) != len(params):
            raise ConfigurationError(f"duplicate sweep axis in {self.name!r}")
        for axis in self.axes:
            axis.validate(self.name)
        for key, _ in self.fixed:
            if key in params:
                raise ConfigurationError(
                    f"fixed override {key!r} collides with a sweep axis in "
                    f"{self.name!r}"
                )
        if self.tip_axis is not None and self.tip_axis not in params:
            raise ConfigurationError(
                f"tip_axis {self.tip_axis!r} is not an axis of {self.name!r}"
            )
        return self

    def fixed_dict(self) -> Dict[str, object]:
        return dict(self.fixed)

    def resolved_tip_axis(self) -> str:
        """The axis the crossover is searched along (defaults to the last)."""
        return self.tip_axis if self.tip_axis is not None else self.axes[-1].param

    def points(self) -> List[Dict[str, object]]:
        """The cross product of the axes, last axis varying fastest."""
        self.validate()
        grid: List[Dict[str, object]] = [{}]
        for axis in self.axes:
            grid = [
                {**point, axis.param: value}
                for point in grid
                for value in axis.values
            ]
        return grid

    def ramp_groups(
        self,
    ) -> List[Tuple[Dict[str, object], List[int]]]:
        """Grid indices grouped by the non-ramp axes, each group ordered
        along the ramp axis — the iteration shape of the tipping-point
        scan and of the adaptive crossover search.

        Returns ``(fixed_params, indices)`` pairs in first-seen grid
        order; ``indices`` point into :meth:`points` and are sorted by
        the ramp-axis value (declaration order when the values are not
        mutually comparable, mirroring the tipping scan's fallback).
        """
        grid = self.points()
        axis = self.resolved_tip_axis()
        other = [a.param for a in self.axes if a.param != axis]
        groups: Dict[Tuple, List[int]] = {}
        for i, params in enumerate(grid):
            key = tuple(params[p] for p in other)
            groups.setdefault(key, []).append(i)
        out = []
        for key, indices in groups.items():
            try:
                indices = sorted(indices, key=lambda i: grid[i][axis])
            except TypeError:
                pass
            out.append((dict(zip(other, key)), indices))
        return out


#: Logical destination clients address in rack mode; the ToR's key-shard
#: dispatch rule spreads it across the hosts.
RACK_KVS_SERVICE = "kvs-rack"

#: Logical destination DNS resolvers address in anycast mode; the ToR's
#: qname-hash dispatch rule spreads it across the replicas.
RACK_DNS_SERVICE = "dns-rack"
