"""Declarative scenario specifications.

A :class:`ScenarioSpec` describes a complete on-demand cluster — hosts with
their NIC-replacing FPGA cards, the ToR switch fabric, per-host application
placements and controllers, workloads, and sampling — without constructing
anything.  :class:`repro.scenarios.builder.ScenarioBuilder` materializes a
spec into a wired DES run; :mod:`repro.scenarios.registry` names the
canonical ones (the paper's Figures 6/7 plus the rack-scale extensions).

Specs are frozen dataclasses so scenarios can be derived from one another
with :func:`dataclasses.replace` (the registry test shortens horizons that
way, and sweeps can scale host counts or rates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import ConfigurationError


@dataclass(frozen=True)
class SwitchSpec:
    """The ToR switch and the rack's port characteristics."""

    name: str = "tor"
    latency_us: float = 1.0
    bandwidth_gbps: float = 10.0


@dataclass(frozen=True)
class ColocatedJobSpec:
    """A ChainerMN-style CPU job co-located on one host (Figure 6)."""

    start_s: float
    stop_s: float
    cores: float = 2.5
    utilization: float = 0.95
    app_name: str = "chainermn"


@dataclass(frozen=True)
class KvsHostSpec:
    """One memcached host with a LaKe card and its own shift controller.

    ``client_name`` names the load-generator node driving this host's key
    shard (defaults to ``<name>-client``).  ``controller=False`` builds the
    host without a :class:`HostController` (static software placement).
    """

    name: str
    client_name: Optional[str] = None
    power_save: bool = False
    controller: bool = True
    rapl_interval_ms: float = 10.0
    rate_down_pps: Optional[float] = None  # None -> calibration default
    colocated: Tuple[ColocatedJobSpec, ...] = ()

    def resolved_client_name(self) -> str:
        return self.client_name or f"{self.name}-client"


@dataclass(frozen=True)
class KvsWorkloadSpec:
    """ETC traffic offered to the KVS hosts.

    ``rate_kpps`` is the **total** rack load.  With one host the client
    offers all of it; with several, the rate is split per host in
    proportion to each key shard's Zipf traffic weight (the per-host ETC
    split), and clients address the logical rack service routed by the
    ToR's key-shard dispatcher.
    """

    keyspace: int = 50_000
    rate_kpps: float = 16.0
    zipf_s: float = 0.99
    preload: bool = True


@dataclass(frozen=True)
class PaxosSpec:
    """A Figure-7-style Paxos group with a shiftable leader.

    ``shifts`` is a schedule of ``(at_s, to_hardware)`` pairs executed by
    the centralized :class:`PaxosShiftController`.
    """

    n_clients: int = 3
    client_window: int = 1
    n_acceptors: int = 3
    recovery_window: int = 512
    client_start_ms: float = 20.0
    shifts: Tuple[Tuple[float, bool], ...] = ()


@dataclass(frozen=True)
class SamplingSpec:
    """Shared instrumentation cadence for every host in the scenario."""

    power_interval_ms: float = 50.0
    bucket_ms: float = 250.0


@dataclass(frozen=True)
class OnDemandSweepSpec:
    """The analytic Figure-5 sweep: on-demand vs software-only power for
    each application's steady-state model across offered rates."""

    max_rate_kpps: float = 1200.0
    steps: int = 25
    peak_rate_kpps: float = 1000.0


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative cluster scenario."""

    name: str
    description: str = ""
    duration_s: float = 10.0
    seed: int = 42
    switch: SwitchSpec = field(default_factory=SwitchSpec)
    kvs_hosts: Tuple[KvsHostSpec, ...] = ()
    kvs_workload: Optional[KvsWorkloadSpec] = None
    paxos: Optional[PaxosSpec] = None
    sampling: SamplingSpec = field(default_factory=SamplingSpec)

    def validate(self) -> "ScenarioSpec":
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        if not self.kvs_hosts and self.paxos is None:
            raise ConfigurationError(
                f"scenario {self.name!r} declares no hosts and no Paxos group"
            )
        if self.kvs_hosts and self.kvs_workload is None:
            raise ConfigurationError(
                f"scenario {self.name!r} has KVS hosts but no workload"
            )
        names = [h.name for h in self.kvs_hosts]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate host names in {self.name!r}")
        clients = [h.resolved_client_name() for h in self.kvs_hosts]
        if len(set(clients)) != len(clients):
            raise ConfigurationError(f"duplicate client names in {self.name!r}")
        if set(names) & set(clients):
            raise ConfigurationError(
                f"client names collide with host names in {self.name!r}"
            )
        for host in self.kvs_hosts:
            for job in host.colocated:
                if job.stop_s <= job.start_s:
                    raise ConfigurationError(
                        f"colocated job on {host.name!r} stops before it starts"
                    )
        if self.paxos is not None:
            for at_s, _ in self.paxos.shifts:
                if at_s < 0:
                    raise ConfigurationError("paxos shift scheduled before t=0")
        return self

    @property
    def sharded(self) -> bool:
        """Rack mode: more than one KVS host ⇒ key-sharded ToR routing."""
        return len(self.kvs_hosts) > 1


#: Logical destination clients address in rack mode; the ToR's key-shard
#: dispatch rule spreads it across the hosts.
RACK_KVS_SERVICE = "kvs-rack"
