"""Scenario sweep engine — the §9.4 rack-scale tipping-point charts.

The paper's core claim is that in-network computing pays off only beyond a
per-application crossover rate; §9.4 asks where that crossover lands at
*rack scale*.  A :class:`~repro.scenarios.spec.ScenarioSweepSpec` names a
registered scenario and a grid of factory parameters (host count, per-host
offered rate, Paxos group count, …); :func:`run_sweep` materializes every
grid point through :class:`ScenarioBuilder` **twice** — once pinned to
software (controllers stripped, cards in the §9.2 standby configuration)
and once pinned to hardware (every placement shifted into the network at
t=0) — and reduces each run into a :class:`SweepAggregate`: achieved rate,
total rack **wall** power, p50/p99 latency, ops/W, and the per-placement
power attribution of :meth:`ScenarioResult.power_by_placement`.

The tipping point of a sweep is, for each setting of the non-ramp axes,
the first value of the ramp axis where the hardware-pinned rack beats the
software-pinned rack on ops/W — the rack-scale generalization of the §8
crossover (``repro.steady.base.find_crossover``) from analytic curves to
measured DES runs.

Named sweeps live in the registry here (``sweep-rack-kvs``,
``sweep-rack-mixed``); run one with ``python -m repro --sweep <name>`` or
:func:`run_sweep`.
"""

from __future__ import annotations

import atexit
import dataclasses
import hashlib
import math
from array import array
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError
from ..sim.recorder import percentiles
from .builder import ScenarioBuilder, ScenarioResult, ScenarioRun
from .registry import _REGISTRY, resolve_factory
from .spec import (
    NO_CONTROLLER,
    ControllerSpec,
    ScenarioSpec,
    ScenarioSweepSpec,
    SweepAxis,
)

# ---------------------------------------------------------------------------
# Pinned scenario variants.
# ---------------------------------------------------------------------------


def software_variant(spec: ScenarioSpec) -> ScenarioSpec:
    """The sweep's software baseline: every placement stays on the host.

    Controllers are stripped (nothing may shift), co-located jobs are
    dropped (they exist to *trigger* controllers, and their CPU draw would
    pollute the power comparison), and ``power_save=True`` holds each card
    in the §9.2 standby configuration — the software phase of an on-demand
    rack, which is the baseline the paper's Figure 5 "SW + idle card"
    comparison uses.
    """
    return _pinned(spec, hardware=False)


def hardware_variant(spec: ScenarioSpec) -> ScenarioSpec:
    """The sweep's hardware run: every placement in the network from the
    first instant (``start_in_hardware``, applied by the builder before
    instrumentation, so even the t=0 power sample sees the active cards;
    caches start cold — warm-up is part of what the sweep measures).

    A NIC-only host (device ``none``) has nothing to pin *to*: it keeps
    running software even in the hardware run — exactly the §9.4 question
    "which hosts in a mixed rack should even have a card".
    """
    return _pinned(spec, hardware=True)


def ondemand_variant(spec: ScenarioSpec) -> ScenarioSpec:
    """The third pin: the scenario's *declared* on-demand controllers run
    live at the grid point, between the two static brackets.

    Placements start in software with cards in the §9.2 standby
    configuration (``power_save=True``) and shift — or don't — on their
    own controllers' triggers.  Co-located jobs are dropped for
    comparability with the pinned runs (their CPU draw would pollute the
    power comparison), so a host-driven controller without its job trigger
    may honestly never shift; the rate-driven families react to the grid
    point's offered rate.
    """
    kvs_hosts = tuple(
        dataclasses.replace(
            host, colocated=(), power_save=True, start_in_hardware=False
        )
        for host in spec.kvs_hosts
    )
    dns_hosts = tuple(
        dataclasses.replace(host, power_save=True, start_in_hardware=False)
        for host in spec.dns_hosts
    )
    paxos_groups = tuple(
        dataclasses.replace(group, start_in_hardware=False)
        for group in spec.paxos_groups
    )
    # the scenario-level fabric controller (if any) stays live: it is an
    # on-demand drive like the per-host controllers
    return dataclasses.replace(
        spec,
        name=f"{spec.name}[od]",
        kvs_hosts=kvs_hosts,
        dns_hosts=dns_hosts,
        paxos_groups=paxos_groups,
    )


def _pinned(spec: ScenarioSpec, hardware: bool) -> ScenarioSpec:
    suffix = "hw" if hardware else "sw"
    kvs_hosts = tuple(
        dataclasses.replace(
            host,
            controller=NO_CONTROLLER,
            colocated=(),
            power_save=True,
            # a NIC-only host can never shift; its "hardware" pin is the
            # software placement it is stuck with
            start_in_hardware=hardware and host.device.is_offload,
        )
        for host in spec.kvs_hosts
    )
    dns_hosts = tuple(
        dataclasses.replace(
            host,
            controller=NO_CONTROLLER,
            power_save=True,
            start_in_hardware=hardware and host.device.is_offload,
        )
        for host in spec.dns_hosts
    )
    paxos_groups = tuple(
        dataclasses.replace(
            group,
            controller=ControllerSpec(kind="schedule"),
            shifts=(),
            start_in_hardware=hardware,
        )
        for group in spec.paxos_groups
    )
    # a pinned rack must stay pinned: the centralized fabric controller
    # is stripped along with the per-host controllers
    return dataclasses.replace(
        spec,
        name=f"{spec.name}[{suffix}]",
        kvs_hosts=kvs_hosts,
        dns_hosts=dns_hosts,
        paxos_groups=paxos_groups,
        fabric_controller=None,
    )


# ---------------------------------------------------------------------------
# Per-point aggregates.
# ---------------------------------------------------------------------------


@dataclass
class SweepAggregate:
    """One pinned run reduced to the numbers the tipping chart needs.

    ``achieved_pps`` counts every operation the rack completed — KVS/DNS
    responses *plus* Paxos decisions (they are the ops of ops/W) —
    while ``offered_pps`` covers only the open-loop KVS/DNS clients;
    Paxos clients are closed-loop and offer no fixed rate, so
    ``achieved/offered`` is not a goodput ratio on mixed racks.
    """

    mode: str  # "software" | "hardware"
    offered_pps: float
    achieved_pps: float
    total_power_w: float
    p50_latency_us: float
    p99_latency_us: float
    ops_per_watt: float
    #: mean wall watts per placement (KVS host / DNS replica / Paxos group)
    power_by_placement: Dict[str, float] = field(default_factory=dict)

    @property
    def attributed_power_w(self) -> float:
        return sum(self.power_by_placement.values())


@dataclass
class SweepPointResult:
    """The pinned runs of one grid point: the software/hardware brackets
    plus the live on-demand controllers between them."""

    params: Dict[str, object]
    software: SweepAggregate
    hardware: SweepAggregate
    ondemand: Optional[SweepAggregate] = None
    #: True when the aggregates are analytic steady-state estimates filled
    #: in by the adaptive search rather than a DES replay of this point
    estimated: bool = False

    @property
    def hardware_wins(self) -> bool:
        """Does the hardware-pinned rack beat software on ops/W here?"""
        return self.hardware.ops_per_watt > self.software.ops_per_watt


@dataclass
class TippingPoint:
    """The crossover along the ramp axis for one setting of the others."""

    fixed: Dict[str, object]
    axis: str
    crossover: Optional[object]
    sw_ops_per_watt: Optional[float] = None
    hw_ops_per_watt: Optional[float] = None
    #: what the declared on-demand controllers achieved at the crossover
    #: point (between the two pins, when they react in time)
    od_ops_per_watt: Optional[float] = None
    #: once hardware wins, does it keep winning for every later ramp value?
    monotone: bool = True


@dataclass
class ScenarioSweepResult:
    """Every grid point of a sweep, plus the tipping-point reduction.

    ``search`` records how the grid was evaluated: ``"exhaustive"`` (every
    point through its configured path) or ``"adaptive"`` (DES only at the
    bracketed crossovers, analytic aggregates elsewhere).
    ``des_points_run`` counts the grid points whose pinned brackets
    replayed the DES — the savings counter ``des_points_run /
    grid_points_total`` the adaptive mode reports.  An adaptive run also
    stores its DES-confirmed crossover rows in ``tipping_rows``;
    :meth:`tipping_points` returns those instead of rescanning the mixed
    DES/analytic point list (the analytic fills are estimates and must not
    vote in the crossover scan).
    """

    spec: ScenarioSweepSpec
    points: List[SweepPointResult]
    search: str = "exhaustive"
    des_points_run: Optional[int] = None
    tipping_rows: Optional[List[TippingPoint]] = None

    @property
    def grid_points_total(self) -> int:
        return len(self.points)

    def point(self, **params) -> SweepPointResult:
        for pt in self.points:
            if all(pt.params.get(k) == v for k, v in params.items()):
                return pt
        raise KeyError(params)

    def tipping_points(self) -> List[TippingPoint]:
        """One crossover search per setting of the non-ramp axes."""
        if self.tipping_rows is not None:
            return list(self.tipping_rows)
        axis = self.spec.resolved_tip_axis()
        other_params = [a.param for a in self.spec.axes if a.param != axis]
        groups: Dict[Tuple, List[SweepPointResult]] = {}
        for pt in self.points:
            key = tuple(pt.params[p] for p in other_params)
            groups.setdefault(key, []).append(pt)
        rows = []
        for key, pts in groups.items():
            # scan in ramp order even when the axis was declared descending
            # (non-comparable axis values fall back to declaration order)
            try:
                pts = sorted(pts, key=lambda pt: pt.params[axis])
            except TypeError:
                pass
            crossover = None
            sw_opw = hw_opw = od_opw = None
            monotone = True
            seen_win = False
            for pt in pts:
                if pt.hardware_wins:
                    if not seen_win:
                        seen_win = True
                        crossover = pt.params[axis]
                        sw_opw = pt.software.ops_per_watt
                        hw_opw = pt.hardware.ops_per_watt
                        if pt.ondemand is not None:
                            od_opw = pt.ondemand.ops_per_watt
                elif seen_win:
                    monotone = False
            rows.append(
                TippingPoint(
                    fixed=dict(zip(other_params, key)),
                    axis=axis,
                    crossover=crossover,
                    sw_ops_per_watt=sw_opw,
                    hw_ops_per_watt=hw_opw,
                    od_ops_per_watt=od_opw,
                    monotone=monotone,
                )
            )
        return rows

    # -- reporting -----------------------------------------------------------

    def render(self) -> str:
        from ..experiments.reporting import format_table

        axis_params = [a.param for a in self.spec.axes]
        with_od = any(pt.ondemand is not None for pt in self.points)
        pins = "3 pinned placements" if with_od else "2 pinned placements"
        lines = [
            f"Sweep: {self.spec.name} over {self.spec.base!r} — "
            f"{len(self.points)} points × {pins}",
        ]
        headers = axis_params + [
            "sw kpps", "sw W", "sw ops/W",
            "hw kpps", "hw W", "hw ops/W",
        ]
        if with_od:
            headers += ["od kpps", "od W", "od ops/W"]
        headers += ["winner"]
        rows = []
        for pt in self.points:
            row = [pt.params[p] for p in axis_params] + [
                pt.software.achieved_pps / 1e3,
                pt.software.total_power_w,
                pt.software.ops_per_watt,
                pt.hardware.achieved_pps / 1e3,
                pt.hardware.total_power_w,
                pt.hardware.ops_per_watt,
            ]
            if with_od:
                row += (
                    [
                        pt.ondemand.achieved_pps / 1e3,
                        pt.ondemand.total_power_w,
                        pt.ondemand.ops_per_watt,
                    ]
                    if pt.ondemand is not None
                    else ["-", "-", "-"]
                )
            winner = "hardware" if pt.hardware_wins else "software"
            if pt.estimated:
                winner = "~" + winner
            row += [winner]
            rows.append(row)
        lines.append(format_table(headers, rows))
        if any(pt.estimated for pt in self.points):
            lines.append(
                "~ analytic steady-state estimate (adaptive search; "
                "point not DES-replayed)"
            )
        lines.append("")
        axis = self.spec.resolved_tip_axis()
        lines.append(
            f"Tipping points: first {axis} where the hardware rack wins on ops/W"
        )
        other_params = [p for p in axis_params if p != axis]
        tip_headers = (other_params or ["rack"]) + [
            f"crossover {axis}", "sw ops/W @ tip", "hw ops/W @ tip",
        ]
        if with_od:
            tip_headers += ["ondemand ops/W @ tip"]
        tip_headers += ["monotone"]
        tip_rows = []
        for tip in self.tipping_points():
            prefix = (
                [tip.fixed[p] for p in other_params] if other_params else ["(all)"]
            )
            row = prefix + [
                tip.crossover if tip.crossover is not None else "-",
                tip.sw_ops_per_watt if tip.sw_ops_per_watt is not None else "-",
                tip.hw_ops_per_watt if tip.hw_ops_per_watt is not None else "-",
            ]
            if with_od:
                row += [
                    tip.od_ops_per_watt
                    if tip.od_ops_per_watt is not None
                    else "-"
                ]
            row += ["yes" if tip.monotone else "NO"]
            tip_rows.append(row)
        lines.append(format_table(tip_headers, tip_rows))
        last = self.points[-1]
        attribution = ", ".join(
            f"{name}={watts:.1f}W"
            for name, watts in last.hardware.power_by_placement.items()
        )
        lines.append("")
        lines.append(
            "per-placement wall power at the last point (hardware-pinned): "
            + attribution
        )
        if self.search == "adaptive" and self.des_points_run is not None:
            # exhaustive renders predate the counter and are golden-pinned
            total = self.grid_points_total
            saved = total - self.des_points_run
            lines.append(
                f"{self.search} search: DES on {self.des_points_run}/{total} "
                f"grid points ({saved} answered analytically)"
            )
        return "\n".join(lines)

    def save_png(self, path):
        """Render the crossover chart to ``path`` (requires matplotlib;
        text :meth:`render` stays the dependency-free contract)."""
        from ..experiments.plots import save_sweep_png

        return save_sweep_png(self, path)


# ---------------------------------------------------------------------------
# Execution.
# ---------------------------------------------------------------------------


_VARIANTS = {
    "software": software_variant,
    "hardware": hardware_variant,
    "ondemand": ondemand_variant,
}


def run_point(spec: ScenarioSpec, hardware: bool) -> Tuple[ScenarioRun, ScenarioResult]:
    """Build and execute one pinned variant of a scenario point."""
    return run_pinned(spec, "hardware" if hardware else "software")


def run_pinned(spec: ScenarioSpec, mode: str) -> Tuple[ScenarioRun, ScenarioResult]:
    """Build and execute one variant ("software" | "hardware" |
    "ondemand") of a scenario point."""
    variant_fn = _VARIANTS.get(mode)
    if variant_fn is None:
        raise ConfigurationError(
            f"unknown pin mode {mode!r}; choose {', '.join(sorted(_VARIANTS))}"
        )
    run = ScenarioBuilder(variant_fn(spec)).build()
    return run, run.execute()


def _aggregate(run: ScenarioRun, result: ScenarioResult, mode: str) -> SweepAggregate:
    duration_s = result.duration_us / 1e6
    decided = sum(g.decided for g in result.paxos_groups)
    achieved_pps = (result.total_responses + decided) / duration_s
    latencies: List[float] = []
    for host in (*run.kvs_hosts, *run.dns_hosts):
        latencies.extend(
            v for v in host.client.latency_series.values if v is not None
        )
    for group in run.paxos_groups:
        for client in group.clients:
            latencies.extend(
                v for v in client.latency_series.values if v is not None
            )
    total_power_w = result.total_wall_power_w
    if total_power_w <= 0.0 and achieved_pps > 0.0:
        # mirror experiments.sweep.sweep_model: a rack serving traffic on
        # zero watts is a misconfigured model, not infinite efficiency
        raise ConfigurationError(
            f"scenario {result.name!r} reports non-positive wall power "
            f"({total_power_w}W) while serving {achieved_pps:.0f} pps"
        )
    p50, p99 = percentiles(latencies, (50.0, 99.0)) if latencies else (0.0, 0.0)
    return SweepAggregate(
        mode=mode,
        offered_pps=result.offered_pps,
        achieved_pps=achieved_pps,
        total_power_w=total_power_w,
        p50_latency_us=p50,
        p99_latency_us=p99,
        ops_per_watt=achieved_pps / total_power_w if total_power_w > 0 else 0.0,
        power_by_placement=dict(result.power_by_placement),
    )


def spec_hash(base: str, overrides: Dict[str, object]) -> str:
    """Stable hash of one grid point's materialization inputs: the base
    scenario name plus its full override set (sweep ``fixed`` + point
    params, key-sorted).  Override values are the primitives a sweep axis
    can carry (numbers, strings, tuples), whose ``repr`` is stable within
    a process — and the cache this keys is per-process anyway."""
    payload = repr(
        (base, sorted(overrides.items(), key=lambda item: item[0]))
    )
    return hashlib.sha256(payload.encode()).hexdigest()


#: Materialized-spec cache: grid points are re-materialized once per
#: eligibility precheck, once per task, and K times across replicate seeds
#: that share (base, overrides); specs are frozen dataclasses, so handing
#: the same instance out repeatedly is safe.  Entries pin the factory that
#: built them — a re-registered scenario name misses instead of serving a
#: stale spec.  Fork-started pool workers inherit a pre-warmed cache.
_SPEC_CACHE: "OrderedDict[Tuple[str, str], Tuple[Callable, ScenarioSpec]]" = (
    OrderedDict()
)
_SPEC_CACHE_MAX = 512
_spec_cache_hits = 0
_spec_cache_misses = 0


def spec_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the materialization cache (diagnostics)."""
    return {
        "hits": _spec_cache_hits,
        "misses": _spec_cache_misses,
        "size": len(_SPEC_CACHE),
    }


def clear_spec_cache() -> None:
    """Drop every cached materialized spec (and reset the counters)."""
    global _spec_cache_hits, _spec_cache_misses
    _SPEC_CACHE.clear()
    _spec_cache_hits = 0
    _spec_cache_misses = 0


def _materialize(sweep: ScenarioSweepSpec, params: Dict[str, object]) -> ScenarioSpec:
    global _spec_cache_hits, _spec_cache_misses
    overrides = {**sweep.fixed_dict(), **params}
    factory = resolve_factory(_REGISTRY, sweep.base, "scenario")
    key = (sweep.base, spec_hash(sweep.base, overrides))
    entry = _SPEC_CACHE.get(key)
    if entry is not None and entry[0] is factory:
        _spec_cache_hits += 1
        _SPEC_CACHE.move_to_end(key)
        return entry[1]
    _spec_cache_misses += 1
    try:
        spec = factory(**overrides)
    except TypeError as exc:
        raise ConfigurationError(
            f"sweep {sweep.name!r}: scenario factory {sweep.base!r} rejected "
            f"overrides {sorted(overrides)} ({exc})"
        ) from None
    _SPEC_CACHE[key] = (factory, spec)
    while len(_SPEC_CACHE) > _SPEC_CACHE_MAX:
        _SPEC_CACHE.popitem(last=False)
    return spec


def _estimate_aggregate(est, mode: str) -> SweepAggregate:
    """Shape a :class:`SteadyEstimate` into the sweep's aggregate record."""
    return SweepAggregate(
        mode=mode,
        offered_pps=est.offered_pps,
        achieved_pps=est.achieved_pps,
        total_power_w=est.total_power_w,
        p50_latency_us=est.p50_latency_us,
        p99_latency_us=est.p99_latency_us,
        ops_per_watt=est.ops_per_watt,
        power_by_placement=dict(est.power_by_placement),
    )


def _steady_aggregate(pinned_spec: ScenarioSpec, mode: str) -> SweepAggregate:
    """The fast path's analytic stand-in for one pinned DES run."""
    from .fastpath import steady_point

    return _estimate_aggregate(steady_point(pinned_spec, mode), mode)


def _hybrid_ondemand_aggregate(
    od_spec: ScenarioSpec,
    analytic_indices: Tuple[int, ...],
    residual: ScenarioSpec,
) -> SweepAggregate:
    """Per-placement fast path for the on-demand pin of a mixed rack.

    Hosts that cannot shift (NIC-only, or declared with no controller) sit
    in the software placement for the whole run, so the steady curves
    answer them; only the shifting hosts run DES — as a residual sub-rack
    that keeps the full rack's shard space, so their series are the ones
    the full DES would have produced.  The two halves add: rates and watts
    sum, latency percentiles merge achieved-weighted.
    """
    from .fastpath import steady_point

    est = steady_point(od_spec, "software", host_indices=analytic_indices)
    run = ScenarioBuilder(residual).build()
    result = run.execute()
    des = _aggregate(run, result, "ondemand")
    achieved = est.achieved_pps + des.achieved_pps
    total_power = est.total_power_w + des.total_power_w
    total = achieved or 1.0
    p50 = (
        est.p50_latency_us * est.achieved_pps
        + des.p50_latency_us * des.achieved_pps
    ) / total
    p99 = (
        est.p99_latency_us * est.achieved_pps
        + des.p99_latency_us * des.achieved_pps
    ) / total
    return SweepAggregate(
        mode="ondemand",
        offered_pps=est.offered_pps + des.offered_pps,
        achieved_pps=achieved,
        total_power_w=total_power,
        p50_latency_us=p50,
        p99_latency_us=p99,
        ops_per_watt=achieved / total_power if total_power > 0 else 0.0,
        power_by_placement={
            **est.power_by_placement,
            **des.power_by_placement,
        },
    )


def _run_grid_point(
    task: Tuple[ScenarioSweepSpec, Dict[str, object], bool]
) -> SweepPointResult:
    """Execute every pinned variant of one grid point.

    Module-level (not a closure) so the parallel executor can pickle it to
    worker processes.  Each point builds its own Simulator and RNGs from
    the spec's seeds, so running points in separate processes produces the
    same :class:`SweepPointResult` values as the serial loop.
    """
    spec, params, fastpath = task
    scenario = _materialize(spec, params)
    if fastpath:
        from .fastpath import split_steady, steady_eligible

        if steady_eligible(software_variant(scenario)):
            # rate-constant KVS pins: the steady curves replace both DES
            # replays (the on-demand pin below still runs DES when it can
            # actually shift — controllers are not rate-constant)
            software = _steady_aggregate(software_variant(scenario), "software")
            hardware = _steady_aggregate(hardware_variant(scenario), "hardware")
            if _has_ondemand_drive(scenario):
                od_spec = ondemand_variant(scenario)
                analytic_idx, residual = split_steady(od_spec)
                if analytic_idx and residual is not None:
                    # mixed rack: analytics for the hosts that cannot
                    # shift, DES only for the sub-rack that can
                    ondemand = _hybrid_ondemand_aggregate(
                        od_spec, analytic_idx, residual
                    )
                else:
                    od_run, od_result = run_pinned(scenario, "ondemand")
                    ondemand = _aggregate(od_run, od_result, "ondemand")
            else:
                ondemand = dataclasses.replace(
                    software,
                    mode="ondemand",
                    power_by_placement=dict(software.power_by_placement),
                )
            return SweepPointResult(
                params=params,
                software=software,
                hardware=hardware,
                ondemand=ondemand,
            )
    sw_run, sw_result = run_pinned(scenario, "software")
    hw_run, hw_result = run_pinned(scenario, "hardware")
    software = _aggregate(sw_run, sw_result, "software")
    if _has_ondemand_drive(scenario):
        od_run, od_result = run_pinned(scenario, "ondemand")
        ondemand = _aggregate(od_run, od_result, "ondemand")
    else:
        # nothing can shift (no controllers, no scheduled shifts):
        # the on-demand run is the software run, so don't re-run it
        ondemand = dataclasses.replace(
            software,
            mode="ondemand",
            power_by_placement=dict(software.power_by_placement),
        )
    return SweepPointResult(
        params=params,
        software=software,
        hardware=_aggregate(hw_run, hw_result, "hardware"),
        ondemand=ondemand,
    )


# ---------------------------------------------------------------------------
# The executor: a persistent worker pool with chunked dispatch.
# ---------------------------------------------------------------------------

#: One long-lived pool reused across run_sweep/run_replicated calls:
#: forking + importing per call costs a noticeable fraction of a reduced
#: sweep's wall time, and sequential benchmark legs (serial vs pooled vs
#: pooled-again) were paying it over and over.
_POOL = None
_POOL_SIZE = 0
#: The scenario registry as the pool's workers saw it at fork time
#: (strong refs, compared by identity).  Fork workers resolve scenario
#: names in their inherited registry, so a scenario registered *after*
#: the fork would be invisible to a reused pool — recreate instead.
_POOL_REGISTRY: Optional[Dict[str, Callable]] = None

#: Executor observability (``--perf-stats``): how often parallel calls
#: found the persistent pool warm vs had to fork one, and how many grid
#: tasks were dispatched through it.
_EXECUTOR_STATS = {"pool_creates": 0, "pool_reuses": 0, "tasks_dispatched": 0}


def executor_stats() -> Dict[str, int]:
    """Pool create/reuse and dispatched-task counters (diagnostics)."""
    return dict(_EXECUTOR_STATS)


def reset_executor_stats() -> None:
    for key in _EXECUTOR_STATS:
        _EXECUTOR_STATS[key] = 0


def _fork_context():
    import multiprocessing

    # fork (where available) shares the already-imported registry with
    # the workers; spawn re-imports it, which also works — just slower.
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def _registry_changed() -> bool:
    return _POOL_REGISTRY is None or not (
        len(_POOL_REGISTRY) == len(_REGISTRY)
        and all(_REGISTRY.get(k) is v for k, v in _POOL_REGISTRY.items())
    )


def _get_pool(workers: int):
    """The shared pool, created on first use and reused while the worker
    count and the scenario registry stay the same."""
    global _POOL, _POOL_SIZE, _POOL_REGISTRY
    if _POOL is not None and (_POOL_SIZE != workers or _registry_changed()):
        shutdown_executor()
    if _POOL is None:
        _POOL = _fork_context().Pool(processes=workers)
        _POOL_SIZE = workers
        _POOL_REGISTRY = dict(_REGISTRY)
        _EXECUTOR_STATS["pool_creates"] += 1
    else:
        _EXECUTOR_STATS["pool_reuses"] += 1
    return _POOL


def shutdown_executor() -> None:
    """Tear down the persistent worker pool (idempotent; re-created on the
    next parallel call).  Registered at interpreter exit."""
    global _POOL, _POOL_SIZE, _POOL_REGISTRY
    if _POOL is not None:
        _POOL.terminate()
        _POOL.join()
        _POOL = None
        _POOL_SIZE = 0
        _POOL_REGISTRY = None


atexit.register(shutdown_executor)


def _auto_chunksize(n_tasks: int, workers: int) -> int:
    """Dispatch granularity: ~4 chunks per worker.  Coarse enough that
    per-task IPC (pickle a spec over a pipe, wake the worker, pickle the
    result back) stops dominating second-long DES tasks, fine enough that
    work stealing still evens out slow points."""
    return max(1, n_tasks // (max(1, workers) * 4))


def _require_fastpath_eligibility(
    spec: ScenarioSweepSpec, grid: Sequence[Dict[str, object]]
) -> None:
    """``fastpath=True`` on a sweep where no grid point qualifies would
    silently run the full DES for everything — refuse instead."""
    from .fastpath import steady_eligible

    if any(
        steady_eligible(software_variant(_materialize(spec, params)))
        for params in grid
    ):
        return
    raise ConfigurationError(
        f"sweep {spec.name!r} over {spec.base!r}: fastpath=True, but no "
        "grid point is steady-state eligible — every point would silently "
        "run the full DES; drop fastpath=True or sweep an eligible "
        "scenario (see repro.scenarios.fastpath.steady_eligible)"
    )


def _run_grid_point_packed(
    task: Tuple[ScenarioSweepSpec, Dict[str, object], bool]
) -> tuple:
    """Worker-side wrapper: run the grid point and ship back only the
    packed aggregate (:func:`_pack_point`) — per-rack placement series
    stay in the worker, so transport cost is independent of fabric size."""
    return _pack_point(_run_grid_point(task))


_SEARCH_MODES = ("exhaustive", "adaptive")


def _count_ineligible(
    spec: ScenarioSweepSpec, grid: Sequence[Dict[str, object]]
) -> int:
    """Grid points the fast path cannot answer (they replay the DES)."""
    from .fastpath import steady_eligible

    return sum(
        1
        for params in grid
        if not steady_eligible(software_variant(_materialize(spec, params)))
    )


def _validate_anchors(
    spec: ScenarioSweepSpec, anchors: Sequence[Dict[str, object]]
) -> None:
    axis_params = {a.param for a in spec.axes}
    for anchor in anchors:
        if not anchor:
            raise ConfigurationError(
                "an empty anchor matches every grid point; give axis=value "
                "pairs to pin the points that must replay the DES"
            )
        unknown = sorted(set(anchor) - axis_params)
        if unknown:
            raise ConfigurationError(
                f"anchor keys {unknown} are not axes of sweep {spec.name!r} "
                f"(axes: {sorted(axis_params)})"
            )


def _matches_anchors(
    params: Dict[str, object], anchors: Sequence[Dict[str, object]]
) -> bool:
    return any(
        all(params.get(key) == value for key, value in anchor.items())
        for anchor in anchors
    )


def _bracket_first_win(flags: Sequence[bool]) -> Optional[int]:
    """Position of the first analytic win along one ramp group.

    Bisection over the (assumed monotone lose→win) analytic flags — the
    crossover bracket refined to axis resolution — verified against the
    prefix so a non-monotone analytic curve falls back to the exact
    linear scan instead of returning a wrong bracket.
    """
    if not any(flags):
        return None
    lo, hi = 0, len(flags) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if flags[mid]:
            hi = mid
        else:
            lo = mid + 1
    if any(flags[pos] for pos in range(lo)):  # non-monotone analytics
        return list(flags).index(True)
    return lo


def _run_des_points(
    spec: ScenarioSweepSpec,
    grid: Sequence[Dict[str, object]],
    indices: Sequence[int],
    workers: Optional[int],
) -> Dict[int, SweepPointResult]:
    """Full-DES evaluation of selected grid points (one adaptive probe
    wave), serial or through the persistent pool — byte-identical to the
    same points of an exhaustive run."""
    tasks = [(spec, grid[i], False) for i in indices]
    if workers is None or workers == 1 or len(tasks) <= 1:
        return {i: _run_grid_point(task) for i, task in zip(indices, tasks)}
    pool = _get_pool(workers)
    _EXECUTOR_STATS["tasks_dispatched"] += len(tasks)
    try:
        packed = pool.map(
            _run_grid_point_packed,
            tasks,
            chunksize=_auto_chunksize(len(tasks), workers),
        )
    except Exception:
        shutdown_executor()
        raise
    return {i: _unpack_point(*blob) for i, blob in zip(indices, packed)}


def _linear_fill(
    xs: Sequence[int], ys: Sequence[float], n: int
) -> List[float]:
    """Piecewise-linear interpolation of samples ``(xs, ys)`` over
    ``range(n)``, linearly extrapolated from the two nearest samples past
    each end (flat when only one sample exists).  ``xs`` is sorted."""
    out = []
    for x in range(n):
        if len(xs) == 1:
            out.append(ys[0])
            continue
        if x <= xs[0]:
            j = 1
        elif x >= xs[-1]:
            j = len(xs) - 1
        else:
            j = next(k for k in range(1, len(xs)) if xs[k] >= x)
        x0, x1, y0, y1 = xs[j - 1], xs[j], ys[j - 1], ys[j]
        out.append(y0 + (y1 - y0) * (x - x0) / (x1 - x0))
    return out


def _scan_tipping_group(
    fixed: Dict[str, object],
    axis: str,
    pts: Sequence[SweepPointResult],
) -> TippingPoint:
    """The exhaustive crossover scan over one fully-evaluated ramp group —
    the same reduction :meth:`ScenarioSweepResult.tipping_points` applies."""
    crossover = None
    sw_opw = hw_opw = od_opw = None
    monotone = True
    seen_win = False
    for pt in pts:
        if pt.hardware_wins:
            if not seen_win:
                seen_win = True
                crossover = pt.params[axis]
                sw_opw = pt.software.ops_per_watt
                hw_opw = pt.hardware.ops_per_watt
                if pt.ondemand is not None:
                    od_opw = pt.ondemand.ops_per_watt
        elif seen_win:
            monotone = False
    return TippingPoint(
        fixed=dict(fixed),
        axis=axis,
        crossover=crossover,
        sw_ops_per_watt=sw_opw,
        hw_ops_per_watt=hw_opw,
        od_ops_per_watt=od_opw,
        monotone=monotone,
    )


def _run_adaptive(
    spec: ScenarioSweepSpec,
    grid: Sequence[Dict[str, object]],
    workers: Optional[int],
    anchors: Sequence[Dict[str, object]] = (),
    bracket_hints: Optional[Dict[int, Optional[int]]] = None,
    hints_out: Optional[Dict[int, Optional[int]]] = None,
) -> ScenarioSweepResult:
    """The adaptive crossover search: analytic grid, calibrated brackets,
    DES only at the decision boundary.

    One vectorized pass per pin (:func:`repro.scenarios.fastpath.steady_grid`)
    answers the analytic ops/W margin ``hw − sw`` at every eligible grid
    point.  The analytic margin has the right *shape* but a finite-replay
    bias against the DES (the fast-path tolerance, a few percent — enough
    to flip the winner where the pins are close), so each ramp group's
    crossover is located on the **calibrated** margin: every DES probe
    contributes a bias sample ``margin_DES − margin_analytic`` at its ramp
    position, pooled across groups (the grid is a full product, so groups
    share ramp positions) and interpolated linearly across positions.  A
    group converges when its first predicted win is DES-confirmed **and**
    the preceding ramp value is a DES-confirmed loss — the reported
    crossover row is built from real replays only, identical to the
    exhaustive row under the paper's monotone-crossover premise (§8: once
    hardware wins it keeps winning along the ramp).  Any probe that
    contradicts that premise (a DES loss above a DES-confirmed win)
    demotes its whole group to exhaustive DES, which reproduces the
    non-monotone row exactly.  Never-tipping groups DES-confirm only the
    last ramp value; groups with ineligible points (and user-anchored
    points) replay the DES outright.

    Unprobed points carry the analytic aggregates, flagged
    ``estimated=True`` (the on-demand column is filled only where nothing
    could shift); the DES-confirmed rows are stored on the result so the
    tipping reduction never consults the estimates.

    ``bracket_hints`` seeds each group's initial probe position
    (:func:`run_replicated` brackets once on seed 0 and DES-validates the
    bracket per replicate seed); ``hints_out``, when given, receives this
    run's confirmed crossover positions in the same shape.
    """
    scenarios = [_materialize(spec, params) for params in grid]
    from .fastpath import steady_eligible, steady_grid

    eligible = [steady_eligible(software_variant(sc)) for sc in scenarios]
    if not any(eligible):
        raise ConfigurationError(
            f"sweep {spec.name!r} over {spec.base!r}: search='adaptive', "
            "but no grid point is steady-state eligible — there is no "
            "analytic grid to bracket crossovers on; use the exhaustive "
            "search (see repro.scenarios.fastpath.steady_eligible)"
        )
    _validate_anchors(spec, anchors)
    # one vectorized kernel pass per pin answers every eligible point
    elig = [i for i in range(len(grid)) if eligible[i]]
    sw_est = steady_grid(
        [software_variant(scenarios[i]) for i in elig], "software"
    )
    hw_est = steady_grid(
        [hardware_variant(scenarios[i]) for i in elig], "hardware"
    )
    analytic: Dict[int, Tuple[SweepAggregate, SweepAggregate]] = {}
    margin_a: Dict[int, float] = {}
    for i, sw, hw in zip(elig, sw_est, hw_est):
        sw_agg = _estimate_aggregate(sw, "software")
        hw_agg = _estimate_aggregate(hw, "hardware")
        analytic[i] = (sw_agg, hw_agg)
        margin_a[i] = hw_agg.ops_per_watt - sw_agg.ops_per_watt
    groups = spec.ramp_groups()
    adaptive_groups = [
        (g, indices)
        for g, (_, indices) in enumerate(groups)
        if all(eligible[i] for i in indices)
    ]
    demoted: set = set()  # groups that fell back to exhaustive DES
    pending = {
        i
        for _, indices in groups
        if not all(eligible[j] for j in indices)
        for i in indices
    }
    pending.update(
        i
        for i, params in enumerate(grid)
        if _matches_anchors(params, anchors)
    )
    for g, indices in adaptive_groups:
        if bracket_hints is not None and g in bracket_hints:
            k = bracket_hints[g]
        elif (g, indices) == adaptive_groups[0]:
            # seed only the first group: its ramp endpoints calibrate the
            # pooled bias across the whole ramp (linear in position), and
            # its analytic bracket lands the first crossover candidate —
            # the remaining groups then bracket off the calibrated
            # margins, which beat the raw analytic flags by construction
            pending.add(indices[0])
            pending.add(indices[-1])
            k = _bracket_first_win([margin_a[i] > 0.0 for i in indices])
        else:
            continue
        if k is None:
            pending.add(indices[-1])
        else:
            k = min(k, len(indices) - 1)
            pending.add(indices[k])
            if k > 0:
                pending.add(indices[k - 1])
    probed: Dict[int, SweepPointResult] = {}

    def _margin_des(i: int) -> float:
        pt = probed[i]
        return pt.hardware.ops_per_watt - pt.software.ops_per_watt

    def _first_win(g: int, indices: Sequence[int]) -> Optional[int]:
        """First effective win: DES flags where probed, calibrated
        analytic margins elsewhere.

        The bias (DES margin − analytic margin) is estimated local-first:
        a group with two or more of its own probes gets a linear fit of
        its own samples (bias drifts near-linearly along the ramp); with
        exactly one it borrows the *shape* pooled across every group's
        samples, re-anchored through its own point; with none it takes
        the pooled shape as-is.  Local-first matters because groups can
        sit a few ops/W apart (host counts) or on entirely different
        scales (device kinds) — one group's raw samples must not poison
        another's bracket.
        """
        n = len(indices)
        per_group: Dict[int, Dict[int, float]] = {}
        by_pos: Dict[int, List[float]] = {}
        for h, h_indices in adaptive_groups:
            samples = {
                pos: _margin_des(i) - margin_a[i]
                for pos, i in enumerate(h_indices)
                if i in probed
            }
            per_group[h] = samples
            for pos, v in samples.items():
                by_pos.setdefault(pos, []).append(v)
        xs = sorted(by_pos)
        ys = [sum(by_pos[x]) / len(by_pos[x]) for x in xs]
        shape = _linear_fill(xs, ys, n) if xs else [0.0] * n
        own = per_group.get(g, {})
        if len(own) >= 2:
            xs_own = sorted(own)
            bias = _linear_fill(xs_own, [own[p] for p in xs_own], n)
        elif len(own) == 1:
            (p0, s0), = own.items()
            bias = [shape[pos] + (s0 - shape[p0]) for pos in range(n)]
        else:
            bias = shape
        for pos, i in enumerate(indices):
            if i in probed:
                won = probed[i].hardware_wins
            else:
                won = margin_a[i] + bias[pos] > 0.0
            if won:
                return pos
        return None

    while True:
        todo = sorted(i for i in pending if i not in probed)
        pending.clear()
        if todo:
            fresh = _run_des_points(spec, grid, todo, workers)
            probed.update(fresh)
        for g, indices in adaptive_groups:
            if g in demoted:
                pending.update(i for i in indices if i not in probed)
                continue
            k_eff = _first_win(g, indices)
            if k_eff is None:
                # never tips (so far): the last ramp value must be a
                # DES-confirmed loss
                if indices[-1] not in probed:
                    pending.add(indices[-1])
                continue
            # a DES loss above a DES-confirmed win breaks the monotone
            # premise — this group needs the full exhaustive scan
            if any(
                indices[q] in probed and not probed[indices[q]].hardware_wins
                for q in range(k_eff + 1, len(indices))
            ) and indices[k_eff] in probed:
                demoted.add(g)
                pending.update(i for i in indices if i not in probed)
                continue
            if indices[k_eff] not in probed:
                pending.add(indices[k_eff])
            elif k_eff > 0 and indices[k_eff - 1] not in probed:
                pending.add(indices[k_eff - 1])
        if not pending:
            break
    # DES-confirmed rows, in the tipping scan's group order
    rows: List[TippingPoint] = []
    axis = spec.resolved_tip_axis()
    adaptive_by_g = dict(adaptive_groups)
    final_pos: Dict[int, Optional[int]] = {}
    for g, (fixed, indices) in enumerate(groups):
        fully_probed = all(i in probed for i in indices)
        if g not in adaptive_by_g or (fully_probed and g in demoted):
            rows.append(
                _scan_tipping_group(fixed, axis, [probed[i] for i in indices])
            )
            if g in adaptive_by_g:
                flags = [probed[i].hardware_wins for i in indices]
                final_pos[g] = flags.index(True) if any(flags) else None
            continue
        w = _first_win(g, indices)
        final_pos[g] = w
        if w is None:
            rows.append(
                TippingPoint(fixed=dict(fixed), axis=axis, crossover=None)
            )
            continue
        pt = probed[indices[w]]
        rows.append(
            TippingPoint(
                fixed=dict(fixed),
                axis=axis,
                crossover=pt.params[axis],
                sw_ops_per_watt=pt.software.ops_per_watt,
                hw_ops_per_watt=pt.hardware.ops_per_watt,
                od_ops_per_watt=(
                    pt.ondemand.ops_per_watt
                    if pt.ondemand is not None
                    else None
                ),
                monotone=True,
            )
        )
    if hints_out is not None:
        hints_out.update(final_pos)
    points = []
    for i, params in enumerate(grid):
        if i in probed:
            points.append(probed[i])
            continue
        sw_agg, hw_agg = analytic[i]
        if _has_ondemand_drive(scenarios[i]):
            # the controllers never ran at this point; leave the column
            # empty rather than substitute a curve for live behavior
            ondemand = None
        else:
            ondemand = dataclasses.replace(
                sw_agg,
                mode="ondemand",
                power_by_placement=dict(sw_agg.power_by_placement),
            )
        points.append(
            SweepPointResult(
                params=params,
                software=sw_agg,
                hardware=hw_agg,
                ondemand=ondemand,
                estimated=True,
            )
        )
    return ScenarioSweepResult(
        spec=spec,
        points=points,
        search="adaptive",
        des_points_run=len(probed),
        tipping_rows=rows,
    )


def run_sweep(
    sweep: Union[str, ScenarioSweepSpec],
    workers: Optional[int] = None,
    fastpath: bool = False,
    search: str = "exhaustive",
    anchors: Sequence[Dict[str, object]] = (),
    **overrides,
) -> ScenarioSweepResult:
    """Execute a sweep (named, or an explicit spec) over its whole grid.

    ``workers`` > 1 fans the grid points out over the persistent process
    pool (one point — all of its pinned runs — per task, dispatched in
    auto-sized chunks, results shipped back packed).  Every point seeds
    its own simulator and RNGs, so the parallel result is identical to
    the serial one; ``Pool.map`` preserves grid order, so so is the point
    order (and therefore the rendered tables).  The default is the serial
    in-process loop.

    ``fastpath=True`` answers steady-state-eligible grid points (see
    :func:`repro.scenarios.fastpath.steady_eligible`) from the analytic
    models instead of replaying the DES — opt-in, because the numbers are
    the infinite-horizon limit rather than the finite replay (held within
    tolerance by the fastpath validation gate, but not byte-identical).
    Raises :class:`ConfigurationError` when *no* grid point qualifies —
    a fastpath request that would silently run the full DES everywhere
    is a misconfiguration, not a slow success.

    ``search="adaptive"`` brackets each ramp group's sw/hw crossover on
    the vectorized analytic grid and replays the full DES only at the
    bracketing points (plus any ``anchors`` — mappings of axis values
    that must always replay), walking the bracket until the crossover is
    DES-confirmed on both sides; every other point carries analytic
    aggregates.  The tipping rows are the ones the exhaustive search
    reports whenever the analytic win flags agree with the DES away from
    the bracket (the walk re-probes every disagreement it meets), and
    ``result.des_points_run / result.grid_points_total`` is the savings
    counter.
    """
    if isinstance(sweep, ScenarioSweepSpec):
        if overrides:
            raise ConfigurationError(
                "overrides apply to named sweeps; pass an adjusted spec instead"
            )
        spec = sweep
    else:
        spec = build_sweep_spec(sweep, **overrides)
    spec.validate()
    if workers is not None and workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if search not in _SEARCH_MODES:
        raise ConfigurationError(
            f"unknown search mode {search!r}; choose "
            f"{', '.join(_SEARCH_MODES)}"
        )
    if anchors and search != "adaptive":
        raise ConfigurationError(
            "anchors apply to search='adaptive' (the exhaustive search "
            "replays every grid point anyway)"
        )
    grid = spec.points()
    if search == "adaptive":
        if fastpath:
            raise ConfigurationError(
                "fastpath=True is redundant under search='adaptive' (un"
                "probed points are already analytic); choose one of the two"
            )
        return _run_adaptive(spec, grid, workers, anchors=anchors)
    if fastpath:
        # pre-warming the materialization cache here also seeds the fork
        # workers' caches (they inherit it), so the check is ~free
        _require_fastpath_eligibility(spec, grid)
    tasks = [(spec, params, fastpath) for params in grid]
    if workers is None or workers == 1 or len(tasks) <= 1:
        points = [_run_grid_point(task) for task in tasks]
    else:
        pool = _get_pool(workers)
        _EXECUTOR_STATS["tasks_dispatched"] += len(tasks)
        try:
            packed = pool.map(
                _run_grid_point_packed,
                tasks,
                chunksize=_auto_chunksize(len(tasks), workers),
            )
        except Exception:
            # a dead or poisoned pool must not wedge the next call
            shutdown_executor()
            raise
        points = [_unpack_point(*blob) for blob in packed]
    des_points = _count_ineligible(spec, grid) if fastpath else len(grid)
    return ScenarioSweepResult(
        spec=spec, points=points, des_points_run=des_points
    )


# ---------------------------------------------------------------------------
# Replication: K seeds per grid point (statistical weight at sweep scale).
# ---------------------------------------------------------------------------


def replication_seeds(base_seed: int, k: int) -> List[int]:
    """K deterministic, independent seeds derived from ``base_seed``.

    ``seeds[0]`` **is** ``base_seed``, so a K=1 replication reproduces the
    single-seed sweep byte-for-byte; the rest hash the base through
    sha256, the same namespacing discipline :class:`repro.sim.rng.RngStreams`
    uses, so replicate streams never collide with each other or with any
    in-run stream.
    """
    if k < 1:
        raise ConfigurationError(f"replication needs >= 1 seed, got {k}")
    seeds = [int(base_seed)]
    for i in range(1, k):
        digest = hashlib.sha256(f"{base_seed}:replicate:{i}".encode()).digest()
        seeds.append(int.from_bytes(digest[:8], "big"))
    return seeds


@dataclass(frozen=True)
class ReplicationSpec:
    """How to replicate a sweep: K seeds per grid point.

    ``workers`` fans the K × points task list over a process pool;
    ``chunksize`` is the work-stealing granularity of the unordered
    executor.  The default (``None``) auto-tunes it from the task count
    and worker count (:func:`_auto_chunksize`) — per-task dispatch was
    measurably slower than serial on short tasks; ``1`` restores the
    finest stealing.  ``fastpath`` forwards to :func:`run_sweep`'s
    steady-state analytics.  ``search="adaptive"`` brackets the
    crossovers once on seed 0's analytic grid and DES-validates the
    bracket per replicate seed (each seed's tipping rows are its own
    DES-confirmed ones; later seeds just start the walk from seed 0's
    answer instead of re-deriving the bracket).
    """

    seeds: int = 8
    workers: Optional[int] = None
    chunksize: Optional[int] = None
    fastpath: bool = False
    search: str = "exhaustive"

    def validate(self) -> "ReplicationSpec":
        if self.seeds < 1:
            raise ConfigurationError(
                f"replication needs >= 1 seed, got {self.seeds}"
            )
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.chunksize is not None and self.chunksize < 1:
            raise ConfigurationError(
                f"chunksize must be >= 1, got {self.chunksize}"
            )
        if self.search not in _SEARCH_MODES:
            raise ConfigurationError(
                f"unknown search mode {self.search!r}; choose "
                f"{', '.join(_SEARCH_MODES)}"
            )
        if self.search == "adaptive" and self.fastpath:
            raise ConfigurationError(
                "fastpath=True is redundant under search='adaptive' (un"
                "probed points are already analytic); choose one of the two"
            )
        return self


#: two-sided 95% t critical values keyed by sample count (df = n-1);
#: larger replications fall back to the normal 1.96.
_T95_BY_N = {
    2: 12.706, 3: 4.303, 4: 3.182, 5: 2.776, 6: 2.571,
    7: 2.447, 8: 2.365, 9: 2.306, 10: 2.262,
}


@dataclass(frozen=True)
class ReplicateStats:
    """Mean ± 95% CI of one metric across the replicate seeds."""

    mean: float
    ci95: float
    n: int
    values: Tuple[float, ...] = ()


def replicate_stats(values: Sequence[float]) -> ReplicateStats:
    """Small-n t-interval summary of per-seed metric values."""
    n = len(values)
    if n == 0:
        raise ConfigurationError("no replicate values to summarize")
    mean = sum(values) / n
    if n == 1:
        return ReplicateStats(mean=mean, ci95=0.0, n=1, values=tuple(values))
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    t = _T95_BY_N.get(n, 1.96)
    return ReplicateStats(
        mean=mean,
        ci95=t * math.sqrt(var / n),
        n=n,
        values=tuple(values),
    )


#: scalar SweepAggregate fields carried across the process boundary.
_AGG_FIELDS = (
    "offered_pps",
    "achieved_pps",
    "total_power_w",
    "p50_latency_us",
    "p99_latency_us",
    "ops_per_watt",
)


def _pack_point(pt: SweepPointResult) -> tuple:
    """Reduce a grid-point result to compact transport: one ``array('d')``
    byte blob of per-mode aggregates plus a tiny name layout.

    Raw series never cross the process boundary — a packed point is a few
    hundred bytes regardless of the run's event count — and the
    float64 round-trip is exact, so parallel replication stays
    byte-identical to serial execution.
    """
    aggs = [("software", pt.software), ("hardware", pt.hardware)]
    if pt.ondemand is not None:
        aggs.append(("ondemand", pt.ondemand))
    layout = []
    vals = array("d")
    for mode, agg in aggs:
        names = tuple(agg.power_by_placement)
        layout.append((mode, names))
        vals.extend(getattr(agg, f) for f in _AGG_FIELDS)
        vals.extend(agg.power_by_placement[name] for name in names)
    return pt.params, tuple(layout), vals.tobytes()


def _unpack_point(
    params: Dict[str, object], layout: tuple, blob: bytes
) -> SweepPointResult:
    vals = array("d")
    vals.frombytes(blob)
    offset = 0
    by_mode: Dict[str, SweepAggregate] = {}
    n_fields = len(_AGG_FIELDS)
    for mode, names in layout:
        fields = dict(zip(_AGG_FIELDS, vals[offset:offset + n_fields]))
        offset += n_fields
        placements = dict(zip(names, vals[offset:offset + len(names)]))
        offset += len(names)
        by_mode[mode] = SweepAggregate(
            mode=mode, power_by_placement=placements, **fields
        )
    return SweepPointResult(
        params=params,
        software=by_mode["software"],
        hardware=by_mode["hardware"],
        ondemand=by_mode.get("ondemand"),
    )


def _with_seed(spec: ScenarioSweepSpec, seed: int) -> ScenarioSweepSpec:
    """The sweep spec with its fixed ``seed`` override replaced."""
    return dataclasses.replace(
        spec, fixed={**spec.fixed_dict(), "seed": seed}
    )


def _run_replicated_task(
    task: Tuple[int, int, ScenarioSweepSpec, Dict[str, object], bool]
) -> Tuple[int, int, tuple]:
    """One (replicate, grid point) unit of work, packed for transport.

    Module-level so the pool can pickle it; the (rep, point) indices ride
    along because the executor is unordered (work stealing)."""
    rep_idx, pt_idx, spec, params, fastpath = task
    point = _run_grid_point((spec, params, fastpath))
    return rep_idx, pt_idx, _pack_point(point)


@dataclass
class ReplicatedSweepResult:
    """K seeded repetitions of a sweep, with cross-seed reductions.

    ``runs[0]`` used the sweep's own base seed, so it is byte-identical to
    the unreplicated :func:`run_sweep` result; the rest used derived
    seeds (:func:`replication_seeds`).
    """

    spec: ScenarioSweepSpec
    seeds: List[int]
    runs: List[ScenarioSweepResult]

    @property
    def base_run(self) -> ScenarioSweepResult:
        return self.runs[0]

    def point_stats(
        self, metric: str = "ops_per_watt"
    ) -> List[Dict[str, object]]:
        """Per grid point: mean ± CI of ``metric`` for each pinned mode."""
        out: List[Dict[str, object]] = []
        for i, base_pt in enumerate(self.runs[0].points):
            row: Dict[str, object] = {"params": dict(base_pt.params)}
            for mode in ("software", "hardware", "ondemand"):
                values = []
                for run in self.runs:
                    agg = getattr(run.points[i], mode)
                    if agg is None:
                        break
                    values.append(getattr(agg, metric))
                row[mode] = (
                    replicate_stats(values)
                    if len(values) == len(self.runs)
                    else None
                )
            out.append(row)
        return out

    def tipping_stats(self) -> List[Dict[str, object]]:
        """Per tipping group: how often the rack tipped across seeds, and
        the crossover's mean ± CI over the seeds where it did."""
        per_run = [run.tipping_points() for run in self.runs]
        out: List[Dict[str, object]] = []
        for group in zip(*per_run):
            first = group[0]
            crossings = [tip.crossover for tip in group]
            tipped = [c for c in crossings if c is not None]
            numeric = all(isinstance(c, (int, float)) for c in tipped)
            stats = (
                replicate_stats([float(c) for c in tipped])
                if tipped and numeric
                else None
            )
            out.append(
                {
                    "fixed": dict(first.fixed),
                    "axis": first.axis,
                    "tip_count": len(tipped),
                    "tip_fraction": len(tipped) / len(crossings),
                    "crossover": stats,
                    "crossovers": tuple(crossings),
                }
            )
        return out

    # -- reporting -----------------------------------------------------------

    def render(self) -> str:
        """Point and tipping tables with mean ± 95% CI error bars."""
        from ..experiments.reporting import format_table

        k = len(self.seeds)
        axis_params = [a.param for a in self.spec.axes]
        base_points = self.runs[0].points
        with_od = any(pt.ondemand is not None for pt in base_points)
        lines = [
            f"Replicated sweep: {self.spec.name} over {self.spec.base!r} — "
            f"{len(base_points)} points × K={k} seeds (mean ± 95% CI)",
        ]
        modes = ("software", "hardware") + (("ondemand",) if with_od else ())
        short = {"software": "sw", "hardware": "hw", "ondemand": "od"}
        headers = list(axis_params)
        for mode in modes:
            headers += [f"{short[mode]} ops/W", f"{short[mode]} ±"]
        headers += ["hw wins"]
        stats = self.point_stats("ops_per_watt")
        rows = []
        for i, row_stats in enumerate(stats):
            row: List[object] = [
                base_points[i].params[p] for p in axis_params
            ]
            for mode in modes:
                st = row_stats[mode]
                row += [st.mean, st.ci95] if st is not None else ["-", "-"]
            wins = sum(1 for run in self.runs if run.points[i].hardware_wins)
            row.append(f"{wins}/{k}")
            rows.append(row)
        lines.append(format_table(headers, rows))
        lines.append("")
        axis = self.spec.resolved_tip_axis()
        lines.append(
            f"Tipping points across seeds: first {axis} where the hardware "
            "rack wins on ops/W"
        )
        other = [p for p in axis_params if p != axis]
        tip_headers = (other or ["rack"]) + [
            "tipped", f"crossover {axis}", "±",
        ]
        tip_rows = []
        for group in self.tipping_stats():
            prefix = (
                [group["fixed"][p] for p in other] if other else ["(all)"]
            )
            st = group["crossover"]
            tip_rows.append(
                prefix
                + [
                    f"{group['tip_count']}/{k}",
                    st.mean if st is not None else "-",
                    st.ci95 if st is not None else "-",
                ]
            )
        lines.append(format_table(tip_headers, tip_rows))
        return "\n".join(lines)


def run_replicated(
    sweep: Union[str, ScenarioSweepSpec],
    replication: Optional[ReplicationSpec] = None,
    *,
    seeds: Optional[int] = None,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    fastpath: Optional[bool] = None,
    search: Optional[str] = None,
    **overrides,
) -> ReplicatedSweepResult:
    """Run a sweep K times with independent seeds (§9.4 with error bars).

    The K × grid-points task list is flattened through one unordered,
    chunked process pool — work stealing across both axes, so a slow grid
    point on one seed does not serialize the other seeds — and each task
    ships back only its packed aggregate (:func:`_pack_point`), never raw
    series.  Per-seed results reassemble deterministically by (seed,
    point) index: ``result.runs[i]`` is byte-identical to running
    ``run_sweep`` serially with seed ``result.seeds[i]``, regardless of
    worker count or completion order.

    ``search="adaptive"`` brackets the crossovers once, on seed 0's
    analytic grid, and reuses the confirmed bracket as every later
    seed's starting probe — each seed still DES-validates its own
    crossover rows (the rows are per-seed DES facts; only the *starting
    point* of the walk is shared), so ``runs[i].tipping_points()``
    matches a standalone adaptive run of seed ``i``, while the probe
    *set* — and therefore which fill points are analytic estimates —
    may differ from the standalone run's.

    Keyword shortcuts (``seeds=``, ``workers=``, ``chunksize=``,
    ``fastpath=``, ``search=``) override the corresponding
    :class:`ReplicationSpec` fields; ``**overrides`` forward to the
    named sweep's factory exactly as in :func:`run_sweep`.
    """
    rep = replication if replication is not None else ReplicationSpec()
    if seeds is not None:
        rep = dataclasses.replace(rep, seeds=seeds)
    if workers is not None:
        rep = dataclasses.replace(rep, workers=workers)
    if chunksize is not None:
        rep = dataclasses.replace(rep, chunksize=chunksize)
    if fastpath is not None:
        rep = dataclasses.replace(rep, fastpath=fastpath)
    if search is not None:
        rep = dataclasses.replace(rep, search=search)
    rep.validate()
    if isinstance(sweep, ScenarioSweepSpec):
        if overrides:
            raise ConfigurationError(
                "overrides apply to named sweeps; pass an adjusted spec instead"
            )
        spec = sweep
    else:
        spec = build_sweep_spec(sweep, **overrides)
    spec.validate()
    base_seed = spec.fixed_dict().get("seed")
    grid = spec.points()
    if base_seed is None:
        # the sweep does not pin a seed: replicate around the scenario's
        # own default (read off the first materialized point)
        base_seed = _materialize(spec, grid[0]).seed
    if rep.fastpath:
        # eligibility is seed-independent, so the base grid stands in for
        # every replicate's
        _require_fastpath_eligibility(spec, grid)
    seed_list = replication_seeds(int(base_seed), rep.seeds)
    variants = [_with_seed(spec, s) for s in seed_list]
    if rep.search == "adaptive":
        # bracket once on seed 0's analytic grid; later replicates start
        # their DES validation from seed 0's confirmed crossovers
        hints: Optional[Dict[int, Optional[int]]] = None
        runs = []
        for variant in variants:
            hints_out: Dict[int, Optional[int]] = {}
            runs.append(
                _run_adaptive(
                    variant,
                    variant.points(),
                    rep.workers,
                    bracket_hints=hints,
                    hints_out=hints_out,
                )
            )
            if hints is None:
                hints = hints_out
        return ReplicatedSweepResult(spec=spec, seeds=seed_list, runs=runs)
    tasks = [
        (rep_idx, pt_idx, variants[rep_idx], params, rep.fastpath)
        for rep_idx in range(rep.seeds)
        for pt_idx, params in enumerate(grid)
    ]
    packed: Dict[Tuple[int, int], tuple] = {}
    if rep.workers is None or rep.workers == 1 or len(tasks) <= 1:
        for task in tasks:
            rep_idx, pt_idx, blob = _run_replicated_task(task)
            packed[(rep_idx, pt_idx)] = blob
    else:
        chunksize = (
            rep.chunksize
            if rep.chunksize is not None
            else _auto_chunksize(len(tasks), rep.workers)
        )
        pool = _get_pool(rep.workers)
        _EXECUTOR_STATS["tasks_dispatched"] += len(tasks)
        try:
            for rep_idx, pt_idx, blob in pool.imap_unordered(
                _run_replicated_task, tasks, chunksize=chunksize
            ):
                packed[(rep_idx, pt_idx)] = blob
        except Exception:
            shutdown_executor()
            raise
    des_points = _count_ineligible(spec, grid) if rep.fastpath else len(grid)
    runs = [
        ScenarioSweepResult(
            spec=variants[rep_idx],
            points=[
                _unpack_point(*packed[(rep_idx, pt_idx)])
                for pt_idx in range(len(grid))
            ],
            des_points_run=des_points,
        )
        for rep_idx in range(rep.seeds)
    ]
    return ReplicatedSweepResult(spec=spec, seeds=seed_list, runs=runs)


def _has_ondemand_drive(spec: ScenarioSpec) -> bool:
    """Can anything in this scenario actually shift under its declared
    on-demand drive?  False when every host controller is ``none`` and no
    Paxos group has a rate controller or a shift schedule — then the
    on-demand variant is the software variant by construction."""
    if spec.fabric_controller is not None:
        return True
    if any(
        host.controller.kind != "none"
        for host in (*spec.kvs_hosts, *spec.dns_hosts)
    ):
        return True
    return any(
        group.controller.kind == "rate" or group.shifts
        for group in spec.paxos_groups
    )


# ---------------------------------------------------------------------------
# The sweep registry.
# ---------------------------------------------------------------------------

SweepFactory = Callable[..., ScenarioSweepSpec]

_SWEEPS: Dict[str, SweepFactory] = {}


def register_sweep(name: str) -> Callable[[SweepFactory], SweepFactory]:
    """Decorator: add a sweep factory to the catalogue under ``name``."""

    def wrap(factory: SweepFactory) -> SweepFactory:
        if name in _SWEEPS:
            raise ConfigurationError(f"duplicate sweep name {name!r}")
        _SWEEPS[name] = factory
        return factory

    return wrap


def sweep_names() -> List[str]:
    return sorted(_SWEEPS)


def sweep_descriptions() -> Dict[str, str]:
    """Name → one-line description for every registered sweep."""
    return {name: _SWEEPS[name]().description for name in sweep_names()}


def closest_sweep(name: str) -> Optional[str]:
    """The registered sweep most similar to ``name`` (case-insensitive)."""
    from .registry import closest_name

    return closest_name(name, sweep_names())


def build_sweep_spec(name: str, **overrides) -> ScenarioSweepSpec:
    """Instantiate a named sweep's spec (factory overrides applied).

    Exact case-insensitive spellings (``SWEEP-RACK-KVS``) resolve
    directly, mirroring :func:`repro.scenarios.registry.build_spec`.
    """
    from .registry import resolve_factory

    factory = resolve_factory(_SWEEPS, name, "sweep")
    try:
        return factory(**overrides)
    except TypeError as exc:
        raise ConfigurationError(
            f"sweep {name!r} rejected overrides {sorted(overrides)} ({exc})"
        ) from None


def sweep_fastpath_eligibility(
    sweep: Union[str, ScenarioSweepSpec], **overrides
) -> str:
    """Classify a sweep's grid for the analytic fast path.

    ``"eligible"`` — every grid point is steady-state eligible (the
    vectorized grid kernel and the adaptive search cover the whole
    grid); ``"partial"`` — only some points are; ``"DES-only"`` — none
    are (``fastpath=True`` and ``search="adaptive"`` both refuse).
    Shown per sweep by ``python -m repro --list``.
    """
    from .fastpath import steady_eligible

    if isinstance(sweep, ScenarioSweepSpec):
        if overrides:
            raise ConfigurationError(
                "overrides apply to named sweeps; pass an adjusted spec instead"
            )
        spec = sweep
    else:
        spec = build_sweep_spec(sweep, **overrides)
    flags = [
        steady_eligible(software_variant(_materialize(spec, params)))
        for params in spec.points()
    ]
    if all(flags):
        return "eligible"
    if any(flags):
        return "partial"
    return "DES-only"


# ---------------------------------------------------------------------------
# The catalogue.
# ---------------------------------------------------------------------------


@register_sweep("sweep-rack-kvs")
def sweep_rack_kvs(
    hosts: Tuple[int, ...] = (1, 2, 4, 8),
    rates_kpps: Tuple[float, ...] = (8.0, 16.0, 24.0, 32.0),
    duration_s: float = 0.5,
    keyspace: int = 8_000,
    seed: int = 11,
) -> ScenarioSweepSpec:
    """§9.4 flagship: a key-sharded memcached rack swept 1→8 hosts × a
    per-host ETC rate ramp, charting where the rack tips from software to
    hardware on ops/W."""
    return ScenarioSweepSpec(
        name="sweep-rack-kvs",
        base="rack-kvs",
        description=(
            "§9.4 tipping sweep: KVS rack, 1→8 hosts × per-host rate ramp "
            "(software vs hardware ops/W crossover)"
        ),
        axes=(
            SweepAxis("n_hosts", hosts),
            SweepAxis("rate_per_host_kpps", rates_kpps),
        ),
        fixed=dict(duration_s=duration_s, keyspace=keyspace, seed=seed),
        tip_axis="rate_per_host_kpps",
    )


@register_sweep("sweep-rack-hetero")
def sweep_rack_hetero(
    device_kinds: Tuple[str, ...] = ("netfpga-sume", "asic-nic", "none"),
    rates_kpps: Tuple[float, ...] = (8.0, 16.0, 24.0, 32.0),
    duration_s: float = 0.5,
    keyspace: int = 8_000,
    seed: int = 11,
) -> ScenarioSweepSpec:
    """The device axis made sweepable: homogeneous ``rack-hetero`` racks,
    one grid row per **device kind** × a per-host rate ramp, so the
    tipping table reports each device's own rack-scale crossover — the
    ASIC SmartNIC tips at a lower rate than the NetFPGA, and the NIC-only
    row never tips (there is no hardware to win)."""
    return ScenarioSweepSpec(
        name="sweep-rack-hetero",
        base="rack-hetero",
        description=(
            "per-device tipping sweep: homogeneous racks per offload "
            "device kind × per-host rate ramp (incl. NIC-only)"
        ),
        axes=(
            SweepAxis("device_kind", device_kinds),
            SweepAxis("rate_per_host_kpps", rates_kpps),
        ),
        fixed=dict(
            duration_s=duration_s,
            keyspace=keyspace,
            seed=seed,
            # steady grid points: the ramp is the mixed showcase's drive
            ramp=False,
            # controllers must fit the short horizon for the on-demand pin
            ctl_window_s=0.15,
        ),
        tip_axis="rate_per_host_kpps",
    )


@register_sweep("sweep-fabric-scale")
def sweep_fabric_scale(
    racks: Tuple[int, ...] = (1, 2, 4),
    rates_kpps: Tuple[float, ...] = (8.0, 16.0, 24.0, 32.0),
    hosts_per_rack: int = 2,
    oversubscription: float = 4.0,
    duration_s: float = 0.5,
    keyspace: int = 8_000,
    seed: int = 11,
) -> ScenarioSweepSpec:
    """The tipping sweep at datacenter scale: leaf-spine ``fabric-kvs``
    grids swept over the **rack count** × a per-host rate ramp.  Each rack
    row reports its own software/hardware crossover; cross-rack dispatch
    through the oversubscribed spine uplinks is what separates the
    multi-rack rows from ``sweep-rack-kvs``'s single-ToR curve."""
    return ScenarioSweepSpec(
        name="sweep-fabric-scale",
        base="fabric-kvs",
        description=(
            "fabric-scale tipping sweep: 1→4 leaf-spine racks × per-host "
            "rate ramp over oversubscribed uplinks"
        ),
        axes=(
            SweepAxis("n_racks", racks),
            SweepAxis("rate_per_host_kpps", rates_kpps),
        ),
        fixed=dict(
            hosts_per_rack=hosts_per_rack,
            oversubscription=oversubscription,
            duration_s=duration_s,
            keyspace=keyspace,
            seed=seed,
        ),
        tip_axis="rate_per_host_kpps",
    )


@register_sweep("sweep-rack-mixed")
def sweep_rack_mixed(
    groups: Tuple[int, ...] = (1, 2, 3),
    duration_s: float = 1.0,
    kvs_rate_kpps: float = 8.0,
    dns_rate_kqps: float = 6.0,
    seed: int = 23,
) -> ScenarioSweepSpec:
    """The mixed rack swept over its Paxos group count — the per-group
    power-attribution showcase (KVS shards + DNS replicas + N consensus
    groups all drawing from one rack budget)."""
    return ScenarioSweepSpec(
        name="sweep-rack-mixed",
        base="rack-mixed",
        description=(
            "mixed-rack sweep over Paxos group count (per-group/per-"
            "placement wall-power attribution)"
        ),
        axes=(SweepAxis("n_paxos_groups", groups),),
        fixed=dict(
            duration_s=duration_s,
            kvs_rate_kpps=kvs_rate_kpps,
            dns_rate_kqps=dns_rate_kqps,
            # no storm: the sweep wants the steady rate, not the phase ramp
            dns_storm_kqps=dns_rate_kqps,
            seed=seed,
        ),
        tip_axis="n_paxos_groups",
    )
