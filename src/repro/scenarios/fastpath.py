"""Steady-state fast path: skip DES for rate-constant KVS placements.

A pinned sweep run of a pure KVS rack at a constant offered rate converges
to exactly what the :mod:`repro.steady` analytic models describe — idle
power plus a utilization-scaled dynamic term per host.  For those grid
points the DES replay buys convergence noise, not information, so the
sweep engine can (opt-in, ``run_sweep(..., fastpath=True)``) substitute
the analytic curves and skip the event loop entirely.

Eligibility (:func:`steady_eligible`) is deliberately narrow:

* KVS hosts only — no Paxos groups (closed-loop clients adapt to latency,
  which the steady curves do not model) and no DNS hosts (storm phases);
* a rate-constant workload — no ``phases`` schedule;
* nothing that can *change* during the run: every controller is ``none``,
  no centralized fabric controller, no ``served_by`` shard donations (the
  fabric controller may steer them back mid-run), and no co-located jobs.
  (The sweep's software/hardware pins satisfy this by construction; the
  on-demand pin does not, and always runs DES.)

Multi-rack fabrics are eligible too: per-rack steady aggregates compose
with the analytic uplink model of :mod:`repro.steady.fabric`.  Each
cross-rack host pays four uplink traversals (request up + down, response
up + down) of propagation + serialization + the utilization-scaled M/D/1
FIFO wait at that uplink direction's own offered load, where the
per-direction loads are the spec-derived cross-rack subset — the same
quantity the DES's transit identity ``sum(ToRs) − spine`` measures from
counters.  Achieved throughput is capped by the bottleneck direction's
effective bandwidth.  Single-ToR estimates are untouched by the fabric
terms (no fabric → no adder, bare placement names), so pre-fabric outputs
stay byte-identical.

:func:`validate_fastpath` is the tolerance gate: it runs both the DES and
the analytic path for the same spec and checks the relative error on
achieved throughput, total wall power, and ops/W.  The test suite holds
the gate at :data:`DEFAULT_REL_TOL`; if a model or calibration change
pushes the analytic curves away from the DES, the gate — not a silently
wrong sweep — is what fails.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from .. import calibration as cal
from ..errors import ConfigurationError
from ..hw.device import get_device
from ..naming import rack_qualified, split_rack
from ..steady import grid as steady_grid_kernels
from ..steady.fabric import FabricUplinkModel
from ..steady.kvs import memcached_model
from ..steady.ondemand import device_hardware_model
from ..workloads.etc import ShardedEtcWorkload
from .spec import ScenarioSpec

#: Relative error the DES-vs-analytic gate tolerates per compared metric.
#: Short DES horizons carry warm-up and sampling noise; the analytic curve
#: is the infinite-horizon limit.
DEFAULT_REL_TOL = 0.15

_FASTPATH_MODES = ("software", "hardware")


def _rack_steady_shape(spec: ScenarioSpec) -> bool:
    """Rack-level preconditions shared by full and per-host eligibility:
    a pure KVS fleet offered a rate-constant (phase-free) workload, with
    no fleet-level dynamics.  Single-ToR racks and multi-rack fabrics both
    qualify (the fabric composes with the analytic uplink model of
    :mod:`repro.steady.fabric`), but a live centralized fabric controller
    or a ``served_by`` shard donation means serving assignments can move
    mid-run — those always replay the DES."""
    if not spec.kvs_hosts or spec.paxos_groups or spec.dns_hosts:
        return False
    if spec.fabric_controller is not None:
        return False
    if any(host.served_by is not None for host in spec.kvs_hosts):
        return False
    workload = spec.kvs_workload
    return workload is not None and not workload.phases


def host_steady_eligible(host) -> bool:
    """Can this one KVS host's run be answered analytically?  Nothing may
    change during the run: no controller that could shift the placement,
    no co-located job that could perturb its power draw."""
    return host.controller.kind == "none" and not host.colocated


def steady_eligible(spec: ScenarioSpec) -> bool:
    """Can this scenario's pinned runs be answered analytically?"""
    return _rack_steady_shape(spec) and all(
        host_steady_eligible(host) for host in spec.kvs_hosts
    )


def split_steady(
    spec: ScenarioSpec,
) -> Tuple[Tuple[int, ...], Optional[ScenarioSpec]]:
    """Partition a scenario into analytically-answerable hosts and a
    residual DES sub-rack (per-placement fast-path eligibility).

    Returns ``(analytic_indices, residual)``:

    * ``((), spec)`` — nothing eligible (wrong rack shape, or every host
      can shift): run the full DES.
    * ``(all indices, None)`` — fully eligible: pure analytics.
    * ``(some indices, sub_rack)`` — the mixed case (``sweep-rack-hetero``
      style racks): answer the pinned/NIC-only hosts from the steady
      curves and DES-simulate only the shifting ones.  The residual spec
      keeps the full rack's shard space (``n_shards``/``shard_index``), so
      every surviving host samples, weighs, routes and preloads exactly as
      it would in the complete rack — its DES series are byte-identical to
      the full run's.
    """
    if not _rack_steady_shape(spec):
        return (), spec
    eligible = tuple(
        i for i, host in enumerate(spec.kvs_hosts) if host_steady_eligible(host)
    )
    if not eligible:
        return (), spec
    if len(eligible) == len(spec.kvs_hosts):
        return eligible, None
    if spec.fabric is not None:
        # no partial split on a fabric: eligible and residual hosts share
        # the uplink FIFO queues, so dropping the analytic hosts from the
        # residual DES would change the survivors' queueing delays — the
        # residual would NOT be byte-identical to the full run.  Fabric
        # fast-pathing is all-or-nothing.
        return (), spec
    n_shards = spec.kvs_workload.n_shards or len(spec.kvs_hosts)
    analytic = set(eligible)
    residual_hosts = tuple(
        dataclasses.replace(
            host,
            shard_index=(
                host.shard_index if host.shard_index is not None else i
            ),
        )
        for i, host in enumerate(spec.kvs_hosts)
        if i not in analytic
    )
    residual = dataclasses.replace(
        spec,
        name=f"{spec.name}[resid]",
        kvs_hosts=residual_hosts,
        kvs_workload=dataclasses.replace(spec.kvs_workload, n_shards=n_shards),
    )
    return eligible, residual


@dataclass
class SteadyEstimate:
    """The analytic stand-in for one pinned run's :class:`SweepAggregate`
    inputs (same fields the sweep reduction needs)."""

    mode: str
    offered_pps: float
    achieved_pps: float
    total_power_w: float
    p50_latency_us: float
    p99_latency_us: float
    ops_per_watt: float
    power_by_placement: Dict[str, float] = field(default_factory=dict)


@lru_cache(maxsize=256)
def _shard_weights(
    keyspace: int, n_shards: int, zipf_s: float, seed: int
) -> Tuple[float, ...]:
    """Memoized Zipf shard split: every grid point of a sweep that shares
    (keyspace, shard count, skew, seed) — an entire rate ramp — reuses one
    ranking pass instead of recomputing it per analytic evaluation."""
    sharded = ShardedEtcWorkload(
        keyspace=keyspace, n_shards=n_shards, zipf_s=zipf_s, seed=seed
    )
    return tuple(sharded.shard_weights())


def _per_host_rates(spec: ScenarioSpec) -> List[float]:
    """Offered pps per host: the sweep's Zipf shard-weight rate split.

    Honors ``n_shards``/``shard_index`` sub-racks: each host is weighed by
    its *own* shard of the full rack's shard space, so a residual sub-rack
    sees the same per-host rates as the complete scenario.
    """
    workload = spec.kvs_workload
    total_pps = workload.rate_kpps * 1e3
    hosts = spec.kvs_hosts
    n_shards = workload.n_shards or len(hosts)
    if n_shards == 1:
        return [total_pps]
    weights = _shard_weights(
        workload.keyspace, n_shards, workload.zipf_s, spec.seed
    )
    return [
        weights[host.shard_index if host.shard_index is not None else i]
        * total_pps
        for i, host in enumerate(hosts)
    ]


def _fabric_uplink_model(spec: ScenarioSpec) -> FabricUplinkModel:
    """The declared fabric's analytic uplink parameters (shared by every
    ToR↔spine direction: the spec declares one :class:`UplinkSpec`)."""
    uplink = spec.fabric.uplink
    return FabricUplinkModel(
        latency_us=uplink.latency_us,
        effective_bps=uplink.effective_bandwidth_bps(),
    )


def _host_racks(spec: ScenarioSpec, host) -> Tuple[str, str]:
    """``(host_rack, client_rack)`` of one placement.  The client rack is
    read off the (possibly rack-qualified) client name — a bare client
    name enters the fabric at its host's own ToR."""
    host_rack = spec.host_rack(host)
    client_rack, _ = split_rack(host.resolved_client_name())
    return host_rack, client_rack or host_rack


def _uplink_direction_loads(
    spec: ScenarioSpec, rates: Sequence[float]
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Offered pps on each uplink direction: ``(up[rack], down[rack])``.

    This is the spec-derived cross-rack subset — analytically, the same
    packets the DES transit identity ``sum(ToRs) − spine`` isolates: a
    cross-rack host's requests leave the client's rack (up), enter the
    host's rack (down), and its responses make the reverse trip.  Loads
    always cover the **whole** fleet, not just an estimated subset: the
    FIFO uplinks queue everyone's packets together.
    """
    racks = spec.fabric.rack_names()
    up = {rack: 0.0 for rack in racks}
    down = {rack: 0.0 for rack in racks}
    for i, host in enumerate(spec.kvs_hosts):
        host_rack, client_rack = _host_racks(spec, host)
        if client_rack == host_rack:
            continue
        rate = rates[i]
        up[client_rack] += rate    # requests leave the client's rack
        down[host_rack] += rate    # ...and enter the host's rack
        up[host_rack] += rate      # responses leave the host's rack
        down[client_rack] += rate  # ...and return to the client's rack
    return up, down


def _host_models(host, mode: str):
    """(power_at(pps), capacity_pps, latency_at(pps)) for one host+mode."""
    software = memcached_model()
    if mode == "software" or not host.device.is_offload:
        # the software pin (and a NIC-only host under the hardware pin,
        # which has nothing to shift to).  power_save holds a present card
        # in its standby configuration: the card replaces the NIC, so the
        # host curve loses the NIC idle share and gains the standby draw.
        if host.device.is_offload and host.power_save:
            profile = get_device(host.device.kind)
            standby_w = profile.standby_power_w("kvs")

            def power_at(pps: float) -> float:
                return (
                    software.power_at(pps)
                    - cal.NIC_MELLANOX_CX311A_IDLE_W
                    + standby_w
                )

            return power_at, software.capacity_pps, software.latency_at
        return software.power_at, software.capacity_pps, software.latency_at
    hardware = device_hardware_model("kvs", host.device.kind)
    return hardware.power_at, hardware.capacity_pps, hardware.latency_at


def steady_point(
    spec: ScenarioSpec,
    mode: str,
    host_indices: Optional[Sequence[int]] = None,
) -> SteadyEstimate:
    """Analytic aggregate for one pinned mode of an eligible scenario.

    ``host_indices`` restricts the estimate to a subset of the rack's
    hosts (the per-placement fast path: analytics for the pinned hosts of
    a mixed rack while the shifting ones run DES).  Rates always come from
    the **full** rack's shard split, so the subset estimate composes
    exactly with the residual sub-rack's DES aggregate.

    On a fabric spec, placement keys are rack-qualified (matching the
    builder's ``power_by_placement`` spelling) and every cross-rack host
    additionally pays the four-traversal analytic uplink adder on latency
    plus the bottleneck direction's throughput cap — see
    :mod:`repro.steady.fabric` for the model and its validity envelope.
    """
    if mode not in _FASTPATH_MODES:
        raise ConfigurationError(
            f"fast path answers {', '.join(_FASTPATH_MODES)}; got {mode!r}"
        )
    if host_indices is None:
        if not steady_eligible(spec):
            raise ConfigurationError(
                f"scenario {spec.name!r} is not steady-state eligible "
                "(see scenarios.fastpath.steady_eligible)"
            )
        host_indices = range(len(spec.kvs_hosts))
    else:
        if not _rack_steady_shape(spec):
            raise ConfigurationError(
                f"scenario {spec.name!r} is not a rate-constant KVS rack"
            )
        for i in host_indices:
            if not host_steady_eligible(spec.kvs_hosts[i]):
                raise ConfigurationError(
                    f"host {spec.kvs_hosts[i].name!r} is not steady-state "
                    "eligible (live controller or co-located job)"
                )
    rates = _per_host_rates(spec)
    selected = [(spec.kvs_hosts[i], rates[i]) for i in host_indices]
    total_offered = sum(rate for _, rate in selected)
    fabric = spec.fabric
    if fabric is not None:
        uplink = _fabric_uplink_model(spec)
        up_loads, down_loads = _uplink_direction_loads(spec, rates)
    achieved = 0.0
    power_by_placement: Dict[str, float] = {}
    latencies: List[Tuple[float, float]] = []  # (served share, latency)
    for host, rate in selected:
        power_at, capacity, latency_at = _host_models(host, mode)
        served = min(rate, capacity)
        latency = latency_at(rate)
        key = host.name
        if fabric is not None:
            host_rack, client_rack = _host_racks(spec, host)
            key = rack_qualified(host_rack, host.name)
            if client_rack != host_rack:
                # request: client-rack up, host-rack down; response:
                # host-rack up, client-rack down — four traversals, each
                # at its own direction's offered load
                directions = (
                    up_loads[client_rack],
                    down_loads[host_rack],
                    up_loads[host_rack],
                    down_loads[client_rack],
                )
                latency += sum(uplink.crossing_us(load) for load in directions)
                served *= min(
                    uplink.throughput_factor(load) for load in directions
                )
        achieved += served
        power_by_placement[key] = power_at(rate)
        latencies.append((served, latency))
    total_power = sum(power_by_placement.values())
    total_served = sum(share for share, _ in latencies) or 1.0
    # the rack-level "median" of per-host flat medians: served-weighted
    p50 = sum(share * lat for share, lat in latencies) / total_served
    return SteadyEstimate(
        mode=mode,
        offered_pps=total_offered,
        achieved_pps=achieved,
        total_power_w=total_power,
        p50_latency_us=p50,
        p99_latency_us=p50,  # steady curves model medians only
        ops_per_watt=achieved / total_power if total_power > 0 else 0.0,
        power_by_placement=power_by_placement,
    )


@lru_cache(maxsize=128)
def _grid_host_constants(
    device_kind: str, is_offload: bool, power_save: bool, mode: str
) -> Tuple:
    """The scalar constants :func:`_host_models`' closures close over,
    flattened for the array kernels and memoized per (device kind, mode):
    a sweep grid re-derives each model family once, not once per point.

    Returns ``("software", capacity, idle, span, alpha, poly_w, poly_exp,
    sub_w, add_w, base_latency_us)`` or ``("hardware", capacity, fixed_w,
    dyn_max_w, latency_us)``; ``fixed_w`` is host idle + the probed card
    draw (``power_at(0.0)``, exact — the dynamic term is +0.0 there).
    """
    software = memcached_model()
    if mode == "software" or not is_offload:
        sub_w = add_w = 0.0
        if is_offload and power_save:
            sub_w = cal.NIC_MELLANOX_CX311A_IDLE_W
            add_w = get_device(device_kind).standby_power_w("kvs")
        span = software.peak_w - software.idle_w - software.poly_w
        return (
            "software",
            software.capacity_pps,
            software.idle_w,
            span,
            software.alpha,
            software.poly_w,
            software.poly_exp,
            sub_w,
            add_w,
            software.base_latency_us(),
        )
    hardware = device_hardware_model("kvs", device_kind)
    return (
        "hardware",
        hardware.capacity_pps,
        hardware.power_at(0.0),
        hardware.card_dynamic_max_w,
        hardware.base_latency_us(),
    )


def steady_grid(
    specs: Sequence[ScenarioSpec], mode: str
) -> List[SteadyEstimate]:
    """Batched :func:`steady_point`: one vectorized pass over many
    eligible specs (a sweep grid's pinned variants), identical output.

    The grid is flattened into struct-of-arrays host records — offered
    rate plus the memoized per-device model constants — and evaluated
    through the array kernels of :mod:`repro.steady.grid`; cross-rack
    hosts of fabric specs additionally gather their four uplink-direction
    loads for the batched M/D/1 adder.  Per-spec reductions (achieved
    sum, wall-power sum, the served-weighted p50) stay in python, in host
    order, so every returned :class:`SteadyEstimate` is byte-identical to
    ``steady_point(spec, mode)``.

    Without numpy (or under ``REPRO_PURE_PYTHON=1``) the fallback *is*
    the per-point loop — identity by construction.
    """
    if mode not in _FASTPATH_MODES:
        raise ConfigurationError(
            f"fast path answers {', '.join(_FASTPATH_MODES)}; got {mode!r}"
        )
    specs = list(specs)
    if not steady_grid_kernels.have_numpy():
        return [steady_point(spec, mode) for spec in specs]
    # -- flatten: one record per (spec, host) --------------------------------
    flat_rate: List[float] = []
    sw_slots: List[int] = []
    hw_slots: List[int] = []
    sw_const: List[List[float]] = [[] for _ in range(9)]
    hw_const: List[List[float]] = [[] for _ in range(4)]
    # cross-rack records: flat slot + the four direction loads + uplink
    cross_slots: List[int] = []
    cross_loads: Tuple[List[float], ...] = ([], [], [], [])
    cross_lat: List[float] = []
    cross_ser: List[float] = []
    cross_cap: List[float] = []
    layouts = []  # per spec: (slot_lo, rates, placement keys)
    for spec in specs:
        if not steady_eligible(spec):
            raise ConfigurationError(
                f"scenario {spec.name!r} is not steady-state eligible "
                "(see scenarios.fastpath.steady_eligible)"
            )
        rates = _per_host_rates(spec)
        fabric = spec.fabric
        if fabric is not None:
            uplink = _fabric_uplink_model(spec)
            serialization_us = uplink.serialization_us
            capacity_pps = uplink.capacity_pps
            up_loads, down_loads = _uplink_direction_loads(spec, rates)
        slot_lo = len(flat_rate)
        keys = []
        for i, host in enumerate(spec.kvs_hosts):
            slot = len(flat_rate)
            flat_rate.append(rates[i])
            constants = _grid_host_constants(
                host.device.kind,
                host.device.is_offload,
                host.power_save,
                mode,
            )
            if constants[0] == "software":
                sw_slots.append(slot)
                for column, value in zip(sw_const, constants[1:]):
                    column.append(value)
            else:
                hw_slots.append(slot)
                for column, value in zip(hw_const, constants[1:]):
                    column.append(value)
            key = host.name
            if fabric is not None:
                host_rack, client_rack = _host_racks(spec, host)
                key = rack_qualified(host_rack, host.name)
                if client_rack != host_rack:
                    cross_slots.append(slot)
                    directions = (
                        up_loads[client_rack],
                        down_loads[host_rack],
                        up_loads[host_rack],
                        down_loads[client_rack],
                    )
                    for column, load in zip(cross_loads, directions):
                        column.append(load)
                    cross_lat.append(uplink.latency_us)
                    cross_ser.append(serialization_us)
                    cross_cap.append(capacity_pps)
            keys.append(key)
        layouts.append((slot_lo, rates, keys))
    # -- evaluate the flattened records through the array kernels ------------
    n = len(flat_rate)
    power = [0.0] * n
    served = [0.0] * n
    latency = [0.0] * n
    if sw_slots:
        sw_rate = [flat_rate[s] for s in sw_slots]
        capacity = sw_const[0]
        for slot, value in zip(
            sw_slots, steady_grid_kernels.software_power(sw_rate, *sw_const[:8])
        ):
            power[slot] = value
        for slot, value in zip(
            sw_slots, steady_grid_kernels.served_pps(sw_rate, capacity)
        ):
            served[slot] = value
        for slot, value in zip(
            sw_slots,
            steady_grid_kernels.software_latency(sw_rate, capacity, sw_const[8]),
        ):
            latency[slot] = value
    if hw_slots:
        hw_rate = [flat_rate[s] for s in hw_slots]
        capacity = hw_const[0]
        for slot, value in zip(
            hw_slots,
            steady_grid_kernels.hardware_power(
                hw_rate, capacity, hw_const[1], hw_const[2]
            ),
        ):
            power[slot] = value
        for slot, value in zip(
            hw_slots, steady_grid_kernels.served_pps(hw_rate, capacity)
        ):
            served[slot] = value
        for slot, base in zip(hw_slots, hw_const[3]):
            latency[slot] = base  # fully pipelined: flat with load (§9.5)
    if cross_slots:
        # four traversals, each at its own direction's load; the adder and
        # the bottleneck cap compose in the scalar path's exact order
        crossings = [
            steady_grid_kernels.crossing_us(loads, cross_lat, cross_ser)
            for loads in cross_loads
        ]
        factors = [
            steady_grid_kernels.throughput_factor(loads, cross_cap)
            for loads in cross_loads
        ]
        for j, slot in enumerate(cross_slots):
            adder = (
                (crossings[0][j] + crossings[1][j]) + crossings[2][j]
            ) + crossings[3][j]
            latency[slot] = latency[slot] + adder
            served[slot] = served[slot] * min(f[j] for f in factors)
    # -- per-spec reductions, python-ordered like steady_point ---------------
    estimates = []
    for spec, (slot_lo, rates, keys) in zip(specs, layouts):
        slots = range(slot_lo, slot_lo + len(keys))
        total_offered = sum(rates)
        achieved = sum(served[s] for s in slots)
        power_by_placement = {
            key: power[s] for key, s in zip(keys, slots)
        }
        total_power = sum(power_by_placement.values())
        total_served = sum(served[s] for s in slots) or 1.0
        p50 = sum(served[s] * latency[s] for s in slots) / total_served
        estimates.append(
            SteadyEstimate(
                mode=mode,
                offered_pps=total_offered,
                achieved_pps=achieved,
                total_power_w=total_power,
                p50_latency_us=p50,
                p99_latency_us=p50,  # steady curves model medians only
                ops_per_watt=achieved / total_power if total_power > 0 else 0.0,
                power_by_placement=power_by_placement,
            )
        )
    return estimates


@dataclass
class FastPathGate:
    """One mode's DES-vs-analytic comparison."""

    mode: str
    des_achieved_pps: float
    analytic_achieved_pps: float
    des_power_w: float
    analytic_power_w: float
    rel_tol: float

    @property
    def achieved_rel_err(self) -> float:
        return _rel_err(self.analytic_achieved_pps, self.des_achieved_pps)

    @property
    def power_rel_err(self) -> float:
        return _rel_err(self.analytic_power_w, self.des_power_w)

    @property
    def ops_per_watt_rel_err(self) -> float:
        des = self.des_achieved_pps / self.des_power_w
        analytic = self.analytic_achieved_pps / self.analytic_power_w
        return _rel_err(analytic, des)

    @property
    def ok(self) -> bool:
        return (
            self.achieved_rel_err <= self.rel_tol
            and self.power_rel_err <= self.rel_tol
            and self.ops_per_watt_rel_err <= self.rel_tol
        )


def _rel_err(estimate: float, reference: float) -> float:
    if reference == 0.0:
        return 0.0 if estimate == 0.0 else float("inf")
    return abs(estimate - reference) / abs(reference)


def validate_fastpath(
    spec: ScenarioSpec, rel_tol: float = DEFAULT_REL_TOL
) -> List[FastPathGate]:
    """The tolerance gate: run DES and the analytic path for both pins and
    report the relative errors.  Raises if the spec is not eligible; the
    caller (tests, a cautious sweep user) asserts ``all(g.ok for g in ...)``.
    """
    # local import: sweep imports this module for run_sweep(fastpath=True)
    from .sweep import _aggregate, run_pinned

    gates = []
    for mode in _FASTPATH_MODES:
        run, result = run_pinned(spec, mode)
        des = _aggregate(run, result, mode)
        analytic = steady_point(spec, mode)
        gates.append(
            FastPathGate(
                mode=mode,
                des_achieved_pps=des.achieved_pps,
                analytic_achieved_pps=analytic.achieved_pps,
                des_power_w=des.total_power_w,
                analytic_power_w=analytic.total_power_w,
                rel_tol=rel_tol,
            )
        )
    return gates
