"""Declarative cluster composition: specs, the builder, and the registry.

The scenario engine decouples *what a cluster looks like* (a
:class:`ScenarioSpec`: hosts, cards, switch fabric, app placements,
per-placement shift controllers, workloads, sampling) from *running it*
(the :class:`ScenarioBuilder`, which materializes the spec into a wired
discrete-event run).  A rack may mix key-sharded KVS hosts, N independent
Paxos consensus groups and anycast DNS replicas behind one ToR, each
placement naming its own :class:`ControllerSpec` kind and its own
:class:`DeviceSpec` offload device (NetFPGA, SmartNIC tiers, or a
NIC-only host).  Named scenarios — the paper's Figures 6/7 and the
rack-scale extensions — live in :mod:`repro.scenarios.registry`.
"""

from .spec import (
    NO_CONTROLLER,
    NO_DEVICE,
    RACK_DNS_SERVICE,
    RACK_KVS_SERVICE,
    ColocatedJobSpec,
    ControllerSpec,
    DeviceSpec,
    DnsHostSpec,
    DnsWorkloadSpec,
    KvsHostSpec,
    KvsWorkloadSpec,
    OnDemandSweepSpec,
    PaxosSpec,
    SamplingSpec,
    ScenarioSpec,
    ScenarioSweepSpec,
    SweepAxis,
    SwitchSpec,
)
from .builder import (
    HostResult,
    OnDemandSweepResult,
    PaxosResult,
    ScenarioBuilder,
    ScenarioResult,
    ScenarioRun,
    attribute_power,
    run_ondemand_sweep,
    run_scenario_spec,
    windowed_mean,
)
from .fastpath import (
    FastPathGate,
    SteadyEstimate,
    steady_eligible,
    steady_point,
    validate_fastpath,
)
from .registry import (
    build_spec,
    closest_scenario,
    run_scenario,
    scenario_descriptions,
    scenario_names,
)
from .sweep import (
    ScenarioSweepResult,
    SweepAggregate,
    SweepPointResult,
    TippingPoint,
    build_sweep_spec,
    closest_sweep,
    hardware_variant,
    ondemand_variant,
    register_sweep,
    run_pinned,
    run_point,
    run_sweep,
    software_variant,
    sweep_descriptions,
    sweep_names,
)

__all__ = [
    "NO_CONTROLLER",
    "NO_DEVICE",
    "RACK_DNS_SERVICE",
    "RACK_KVS_SERVICE",
    "ColocatedJobSpec",
    "ControllerSpec",
    "DeviceSpec",
    "DnsHostSpec",
    "DnsWorkloadSpec",
    "KvsHostSpec",
    "KvsWorkloadSpec",
    "OnDemandSweepSpec",
    "PaxosSpec",
    "SamplingSpec",
    "ScenarioSpec",
    "SwitchSpec",
    "HostResult",
    "OnDemandSweepResult",
    "PaxosResult",
    "ScenarioBuilder",
    "ScenarioResult",
    "ScenarioRun",
    "run_ondemand_sweep",
    "run_scenario_spec",
    "windowed_mean",
    "build_spec",
    "closest_scenario",
    "run_scenario",
    "scenario_descriptions",
    "scenario_names",
    "ScenarioSweepSpec",
    "SweepAxis",
    "ScenarioSweepResult",
    "SweepAggregate",
    "SweepPointResult",
    "TippingPoint",
    "FastPathGate",
    "SteadyEstimate",
    "steady_eligible",
    "steady_point",
    "validate_fastpath",
    "attribute_power",
    "build_sweep_spec",
    "closest_sweep",
    "hardware_variant",
    "ondemand_variant",
    "register_sweep",
    "run_pinned",
    "run_point",
    "run_sweep",
    "software_variant",
    "sweep_descriptions",
    "sweep_names",
]
