"""Declarative cluster composition: specs, the builder, and the registry.

The scenario engine decouples *what a cluster looks like* (a
:class:`ScenarioSpec`: hosts, cards, switch fabric, app placements,
workloads, controllers, sampling) from *running it* (the
:class:`ScenarioBuilder`, which materializes the spec into a wired
discrete-event run).  Named scenarios — the paper's Figures 6/7 and the
rack-scale extensions — live in :mod:`repro.scenarios.registry`.
"""

from .spec import (
    RACK_KVS_SERVICE,
    ColocatedJobSpec,
    KvsHostSpec,
    KvsWorkloadSpec,
    OnDemandSweepSpec,
    PaxosSpec,
    SamplingSpec,
    ScenarioSpec,
    SwitchSpec,
)
from .builder import (
    HostResult,
    OnDemandSweepResult,
    PaxosResult,
    ScenarioBuilder,
    ScenarioResult,
    ScenarioRun,
    run_ondemand_sweep,
    run_scenario_spec,
    windowed_mean,
)
from .registry import build_spec, run_scenario, scenario_names

__all__ = [
    "RACK_KVS_SERVICE",
    "ColocatedJobSpec",
    "KvsHostSpec",
    "KvsWorkloadSpec",
    "OnDemandSweepSpec",
    "PaxosSpec",
    "SamplingSpec",
    "ScenarioSpec",
    "SwitchSpec",
    "HostResult",
    "OnDemandSweepResult",
    "PaxosResult",
    "ScenarioBuilder",
    "ScenarioResult",
    "ScenarioRun",
    "run_ondemand_sweep",
    "run_scenario_spec",
    "windowed_mean",
    "build_spec",
    "run_scenario",
    "scenario_names",
]
