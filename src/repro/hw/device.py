"""The offload-device abstraction layer.

The paper's core claim is that the software-vs-hardware decision depends on
the *device*: a NetFPGA SUME's fixed draw and per-packet cost put its
crossover somewhere else than an ASIC SmartNIC's, and a host with no card
at all can never shift.  This module makes the device a first-class,
declarative axis: an :class:`OffloadDevice` profile answers every question
the scenario layer used to hard-code against the NetFPGA factories —

* which applications the device can host (``apps``);
* how to build the card object an application pipeline runs on
  (:meth:`~OffloadDevice.make_card`);
* the application capacity on this device
  (:meth:`~OffloadDevice.capacity_pps`);
* its power states: active idle (:meth:`~OffloadDevice.active_idle_w`) and
  the §9.2 standby configuration (:meth:`~OffloadDevice.standby_power_w`);
* the rate thresholds an on-demand controller should use
  (:meth:`~OffloadDevice.netctl_thresholds_pps`) — the calibrated §4
  crossovers for the NetFPGA, the analytic Figure-3-style crossover of the
  device's own power curve for everything else;
* its activation (warm-up) cost, as profile metadata (``warmup_us``).

A registry of named profiles mirrors the scenario registry: exact
case-insensitive spellings resolve, typos raise with a did-you-mean
suggestion.  ``netfpga-sume`` reproduces the current behaviour exactly
(byte-identical scenario outputs); the SmartNIC tiers are built on the §10
archetypes of :mod:`repro.hw.smartnic`; ``none`` declares a NIC-only host
whose placement can never leave software.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from .. import calibration as cal
from ..errors import ConfigurationError
from ..naming import closest_name
from .fpga import make_emu_dns_fpga, make_lake_fpga, make_p4xos_fpga
from .smartnic import SMARTNIC_ARCHETYPES, SmartNic

#: Every scenario placement defaults to the paper's platform.
DEFAULT_DEVICE_KIND = "netfpga-sume"

#: Shift-up threshold for a device whose hardware curve never beats the
#: software curve: finite (controller configs validate up > down) but far
#: beyond any physical packet rate, so the shift never triggers.
NEVER_SHIFT_PPS = 1e15

#: Per-app shift-down/shift-up threshold ratio, taken from the calibrated
#: §9.1 hysteresis pairs; device-derived thresholds reuse the same ratio.
_DOWN_RATIO = {
    "kvs": cal.NETCTL_KVS_DOWN_PPS / cal.NETCTL_KVS_UP_PPS,
    "dns": cal.NETCTL_DNS_DOWN_PPS / cal.NETCTL_DNS_UP_PPS,
    "paxos": cal.NETCTL_PAXOS_DOWN_PPS / cal.NETCTL_PAXOS_UP_PPS,
}

#: Calibrated §4 crossover thresholds (the NetFPGA profile's).
_NETFPGA_THRESHOLDS = {
    "kvs": (cal.NETCTL_KVS_UP_PPS, cal.NETCTL_KVS_DOWN_PPS),
    "dns": (cal.NETCTL_DNS_UP_PPS, cal.NETCTL_DNS_DOWN_PPS),
    "paxos": (cal.NETCTL_PAXOS_UP_PPS, cal.NETCTL_PAXOS_DOWN_PPS),
}


class SmartNicCard:
    """A SmartNIC presented through the card interface the application
    pipelines (:class:`~repro.apps.kvs.lake.LakeKvs`,
    :class:`~repro.apps.dns.emu.EmuDns`,
    :class:`~repro.apps.paxos.deployment.HardwarePaxosRole`) expect.

    A sealed NIC exposes no per-module power breakdown, so the NetFPGA's
    module controls collapse to a single active/standby state: standby
    draws ``standby_fraction`` of the archetype's idle power; active power
    follows the archetype's idle→peak curve with utilization.
    """

    def __init__(self, nic: SmartNic, standby_fraction: float, design: str):
        if not 0.0 < standby_fraction <= 1.0:
            raise ConfigurationError("standby_fraction outside (0,1]")
        self.nic = nic
        self.design = design
        self.standby_fraction = standby_fraction
        self.utilization = 0.0
        self.standby = False
        #: no per-module breakdown on a sealed device (the LaKe pipeline
        #: reads these to size itself on a NetFPGA; here capacity comes
        #: from the device profile instead)
        self.modules: Dict[str, object] = {}
        self.dram = None

    # -- power ---------------------------------------------------------------

    def power_w(self) -> float:
        if self.standby:
            return self.nic.idle_w * self.standby_fraction
        return self.nic.power_w(self.utilization)

    def set_utilization(self, utilization: float) -> None:
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError("utilization outside [0,1]")
        self.utilization = utilization

    # -- NetFPGA-compatible state controls (the on-demand shift hooks) -------

    def activate_all_logic(self) -> None:
        self.standby = False

    def clock_gate_all_logic(self) -> None:
        self.standby = True

    def activate_memories(self) -> None:
        """Memory state follows the logic state on a sealed device."""

    def reset_memories(self) -> None:
        """See :meth:`activate_memories`."""


class OffloadDevice:
    """One named device profile (a registry entry).

    Subclasses implement the factory and power hooks; everything the
    scenario layer needs is answerable from the profile alone, so builders
    and controllers never name a concrete card factory again.
    """

    kind: str = ""
    description: str = ""
    #: provenance of the numbers, for the PAPER.md device table
    source: str = ""
    apps: FrozenSet[str] = frozenset()
    warmup_us: float = 0.0

    #: True for devices a workload can actually shift onto; the ``none``
    #: profile (NIC-only host) is the one exception.
    is_offload = True

    def accepted_params(self, app: str) -> FrozenSet[str]:
        """Device-spec parameter names valid for this (device, app) pair."""
        return frozenset()

    def make_card(self, app: str, **params):
        raise NotImplementedError  # pragma: no cover - abstract

    def capacity_pps(self, app: str) -> Optional[float]:
        """App capacity on this device; None defers to the app's default."""
        raise NotImplementedError  # pragma: no cover - abstract

    def active_idle_w(self, app: str) -> float:
        """Card power when active but unloaded."""
        card = self.make_card(app)
        return card.power_w()

    def standby_power_w(self, app: str) -> float:
        """Card power in the §9.2 standby configuration (logic clock-gated,
        memory interfaces in reset)."""
        card = self.make_card(app)
        card.clock_gate_all_logic()
        card.reset_memories()
        return card.power_w()

    def peak_pps(self) -> float:
        """Headline packet capacity, for the device table."""
        raise NotImplementedError  # pragma: no cover - abstract

    def dynamic_max_w(self, app: str) -> float:
        """Load-dependent power adder at full utilization (the steady
        models' slope on top of :meth:`active_idle_w`)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def netctl_thresholds_pps(self, app: str) -> Tuple[float, float]:
        """(shift-up, shift-down) rate thresholds for this device's §9.1
        controllers — the load beyond which this particular card pays for
        itself, with the calibrated hysteresis ratio below it."""
        raise NotImplementedError  # pragma: no cover - abstract

    def validate_app(self, app: str, owner: str) -> None:
        if app not in self.apps:
            raise ConfigurationError(
                f"device {self.kind!r} on {owner!r} cannot host {app}; "
                f"it supports: {', '.join(sorted(self.apps)) or 'nothing'}"
            )


class NetFpgaSumeDevice(OffloadDevice):
    """The paper's platform: NetFPGA SUME with the §3 designs.

    ``capacity_pps`` and thresholds defer to the existing calibrated paths,
    so scenarios declaring (or defaulting to) this device behave exactly as
    before the device layer existed.
    """

    kind = DEFAULT_DEVICE_KIND
    description = "NetFPGA SUME (Virtex-7): LaKe / P4xos / Emu DNS designs"
    source = "§3-§5 (LaKe 23W card, P4xos 13W, Emu 12W; 13Mpps line rate)"
    apps = frozenset({"kvs", "dns", "paxos"})
    warmup_us = 0.0  # LaKe's cache warm-up is emergent in the DES (§9.2)

    _FACTORIES = {
        "kvs": make_lake_fpga,
        "dns": make_emu_dns_fpga,
        "paxos": make_p4xos_fpga,
    }

    def accepted_params(self, app: str) -> FrozenSet[str]:
        if app == "kvs":
            return frozenset({"pe_count", "with_external_memories"})
        return frozenset()

    def make_card(self, app: str, **params):
        return self._FACTORIES[app](**params)

    def capacity_pps(self, app: str) -> Optional[float]:
        # None: LakeKvs sizes itself from the card's PEs, EmuDns and
        # HardwarePaxosRole carry their own §4 figures — the pre-device
        # behaviour, kept bit-for-bit.
        return None

    def peak_pps(self) -> float:
        return cal.LAKE_LINE_RATE_PPS

    def dynamic_max_w(self, app: str) -> float:
        return cal.EMU_DYNAMIC_MAX_W if app == "dns" else cal.FPGA_DYNAMIC_MAX_W

    def netctl_thresholds_pps(self, app: str) -> Tuple[float, float]:
        return _NETFPGA_THRESHOLDS[app]


class SmartNicDevice(OffloadDevice):
    """A SmartNIC tier built on a §10 archetype.

    Thresholds are not calibrated constants here: they are the analytic
    Figure-3-style crossover of this device's own power curve against the
    application's software curve (``repro.steady``), which is exactly how
    the paper argues the decision should be made per device.
    """

    def __init__(
        self,
        kind: str,
        archetype: str,
        apps: FrozenSet[str],
        standby_fraction: float,
        warmup_us: float,
        description: str,
        source: str,
    ):
        self.kind = kind
        self.archetype = archetype
        self.nic = SMARTNIC_ARCHETYPES[archetype]
        self.apps = apps
        self.standby_fraction = standby_fraction
        self.warmup_us = warmup_us
        self.description = description
        self.source = source
        self._thresholds: Dict[str, Tuple[float, float]] = {}

    def make_card(self, app: str, **params):
        return SmartNicCard(self.nic, self.standby_fraction, design=self.kind)

    def capacity_pps(self, app: str) -> Optional[float]:
        return self.nic.peak_pps()

    def active_idle_w(self, app: str) -> float:
        return self.nic.idle_w

    def standby_power_w(self, app: str) -> float:
        return self.nic.idle_w * self.standby_fraction

    def peak_pps(self) -> float:
        return self.nic.peak_pps()

    def dynamic_max_w(self, app: str) -> float:
        return self.nic.peak_w - self.nic.idle_w

    def netctl_thresholds_pps(self, app: str) -> Tuple[float, float]:
        cached = self._thresholds.get(app)
        if cached is None:
            # lazy: repro.steady imports repro.hw, so the analytic models
            # cannot be module-level dependencies of this package
            from ..steady.ondemand import device_crossover_pps

            up = device_crossover_pps(app, self.kind)
            if up is None:
                # this card never beats the software curve: a rate-driven
                # controller should never shift up (unreachable threshold)
                up = NEVER_SHIFT_PPS
            elif up <= 0.0:
                # cheaper than the idle software stack: shift on any
                # sustained traffic; floor well below every §4 crossover
                up = 1_000.0
            cached = (up, up * _DOWN_RATIO[app])
            self._thresholds[app] = cached
        return cached


class NoDevice(OffloadDevice):
    """A NIC-only host: the software placement that can never shift.

    The host keeps its ordinary NIC (the card of the other profiles
    replaces it), runs the software application, and rejects controllers
    and hardware pins at ``validate()`` time.
    """

    kind = "none"
    description = "NIC-only host: software placement, nothing to shift to"
    source = "§4.2 baseline (i7 + 10GE NIC, 39W idle)"
    apps = frozenset({"kvs", "dns"})
    warmup_us = 0.0
    is_offload = False

    def make_card(self, app: str, **params):
        return None

    def capacity_pps(self, app: str) -> Optional[float]:
        return None

    def active_idle_w(self, app: str) -> float:
        return 0.0

    def standby_power_w(self, app: str) -> float:
        return 0.0

    def peak_pps(self) -> float:
        return 0.0

    def dynamic_max_w(self, app: str) -> float:
        return 0.0

    def netctl_thresholds_pps(self, app: str) -> Tuple[float, float]:
        raise ConfigurationError(
            "a NIC-only host has no shift thresholds (nothing to shift to)"
        )


# ---------------------------------------------------------------------------
# The registry.
# ---------------------------------------------------------------------------

_DEVICES: Dict[str, OffloadDevice] = {}


def register_device(device: OffloadDevice) -> OffloadDevice:
    if device.kind in _DEVICES:
        raise ConfigurationError(f"duplicate device kind {device.kind!r}")
    _DEVICES[device.kind] = device
    return device


def device_names() -> List[str]:
    return sorted(_DEVICES)


def device_descriptions() -> Dict[str, str]:
    """Kind → one-line description for every registered device."""
    return {kind: _DEVICES[kind].description for kind in device_names()}


def closest_device(kind: str) -> Optional[str]:
    """The registered device most similar to ``kind`` (case-insensitive);
    mirrors the scenario registry's suggestion behaviour."""
    return closest_name(kind, list(_DEVICES))


def get_device(kind: str) -> OffloadDevice:
    """Resolve a device kind: exact case-insensitive spellings resolve
    directly, anything else raises with a did-you-mean suggestion."""
    device = _DEVICES.get(kind)
    if device is not None:
        return device
    suggestion = closest_device(kind)
    if suggestion is not None and suggestion.lower() == kind.lower():
        return _DEVICES[suggestion]
    hint = f"; did you mean {suggestion!r}?" if suggestion else ""
    raise ConfigurationError(
        f"unknown device kind {kind!r}{hint} "
        f"(known: {', '.join(device_names())})"
    )


def device_profiles() -> Dict[str, Dict[str, object]]:
    """Kind → headline figures (the PAPER.md device-profile table).

    Idle/standby watts use the KVS design where the device supports it
    (the richest profile), falling back to the first supported app.
    """
    rows: Dict[str, Dict[str, object]] = {}
    for kind in device_names():
        device = _DEVICES[kind]
        app = "kvs" if "kvs" in device.apps else sorted(device.apps)[0]
        rows[kind] = {
            "description": device.description,
            "idle_w": device.standby_power_w(app),
            "active_w": device.active_idle_w(app),
            "peak_pps": device.peak_pps(),
            "warmup_us": device.warmup_us,
            "source": device.source,
            "apps": sorted(device.apps),
        }
    return rows


register_device(NetFpgaSumeDevice())
register_device(
    SmartNicDevice(
        kind="accelnet-fpga",
        archetype="accelnet-fpga",
        apps=frozenset({"kvs", "dns", "paxos"}),
        standby_fraction=cal.SMARTNIC_FPGA_STANDBY_FRACTION,
        warmup_us=cal.DEVICE_WARMUP_FPGA_SMARTNIC_US,
        description="AccelNet-class FPGA SmartNIC (fully programmable)",
        source="§10: 17-19W standalone, ~4Mpps/W on a 40GE board",
    )
)
register_device(
    SmartNicDevice(
        kind="asic-nic",
        archetype="asic-smartnic",
        # fixed-function offload engines: no custom consensus data plane
        apps=frozenset({"kvs", "dns"}),
        standby_fraction=cal.SMARTNIC_ASIC_STANDBY_FRACTION,
        warmup_us=cal.DEVICE_WARMUP_ASIC_SMARTNIC_US,
        description="ASIC SmartNIC (Agilio-class): best perf/W, least flexible",
        source="§10 archetype inside the 25W PCIe envelope (§6 ASIC ordering)",
    )
)
register_device(
    SmartNicDevice(
        kind="soc-nic",
        archetype="soc-smartnic",
        apps=frozenset({"kvs", "dns", "paxos"}),
        standby_fraction=cal.SMARTNIC_SOC_STANDBY_FRACTION,
        warmup_us=cal.DEVICE_WARMUP_SOC_SMARTNIC_US,
        description="SoC SmartNIC (BlueField-class): easy to program, worst perf/W",
        source="§10 archetype inside the 25W PCIe envelope",
    )
)
register_device(NoDevice())
