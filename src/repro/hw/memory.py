"""On-card memory models: BRAM (on-chip), SRAM and DRAM (off-chip).

§5.3 gives the numbers this module encodes:

* 4GB DRAM: 4.8W, 33M 64B value entries, 268M hash-table entries.
* 18MB SRAM: 6W, free-chunk list of up to 4.7M entries.
* On-chip only designs store ×65k fewer values and ×32k fewer free-list
  entries.
* Off-chip access costs a few hundred nanoseconds over on-chip; the paper's
  LaKe L2-hit median is 1.67µs vs 1.4µs for an on-chip hit.

Memories can be held in **reset**, saving 40% of their power (§5.1); clock
and power gating of the memory interfaces are not supported on the platform
and raise errors.
"""

from __future__ import annotations

import enum

from .. import calibration as cal
from ..errors import ConfigurationError


class MemoryState(enum.Enum):
    ACTIVE = "active"
    RESET = "reset"      # interfaces held in reset: 40% power saving (§5.1)
    REMOVED = "removed"  # eliminated from the design


class _ExternalMemory:
    """Shared behaviour of off-chip memories (SRAM/DRAM)."""

    #: subclasses set these
    FULL_POWER_W = 0.0
    KIND = "external"

    def __init__(self) -> None:
        self.state = MemoryState.ACTIVE

    # -- power ------------------------------------------------------------

    def power_w(self) -> float:
        if self.state is MemoryState.ACTIVE:
            return self.FULL_POWER_W
        if self.state is MemoryState.RESET:
            return self.FULL_POWER_W * (1.0 - cal.MEMORY_RESET_SAVING_FRACTION)
        return 0.0

    # -- state transitions ---------------------------------------------------

    def hold_in_reset(self) -> None:
        """§9.2: memories are held in reset while the workload runs in
        software, to minimize the idle cost of the programmed-but-inactive
        design."""
        if self.state is MemoryState.REMOVED:
            raise ConfigurationError(f"{self.KIND} was removed from the design")
        self.state = MemoryState.RESET

    def activate(self) -> None:
        if self.state is MemoryState.REMOVED:
            raise ConfigurationError(f"{self.KIND} was removed from the design")
        self.state = MemoryState.ACTIVE

    def remove(self) -> None:
        self.state = MemoryState.REMOVED

    def clock_gate(self) -> None:
        raise ConfigurationError(
            f"clock gating the {self.KIND} interfaces is not supported (§5.1)"
        )

    def power_gate(self) -> None:
        raise ConfigurationError(
            f"power gating the {self.KIND} interfaces is not supported (§5.1)"
        )

    @property
    def usable(self) -> bool:
        return self.state is MemoryState.ACTIVE


class DramChannel(_ExternalMemory):
    """4GB of on-card DRAM: LaKe's L2 value store + hash table."""

    FULL_POWER_W = cal.DRAM_4GB_W
    KIND = "DRAM"

    value_entries = cal.DRAM_VALUE_ENTRIES
    hash_entries = cal.DRAM_HASH_ENTRIES
    #: extra latency of an off-chip L2 hit over an on-chip hit, µs (§5.3:
    #: 1.67µs median L2 hit vs 1.4µs on-chip).
    access_latency_us = cal.LAKE_L2_HIT_MEDIAN_US - cal.LAKE_L1_HIT_US


class SramBank(_ExternalMemory):
    """18MB of on-card SRAM: LaKe's free-chunk list."""

    FULL_POWER_W = cal.SRAM_18MB_W
    KIND = "SRAM"

    freelist_entries = cal.SRAM_FREELIST_ENTRIES
    access_latency_us = 0.1


class BramBank:
    """On-chip block RAM: LaKe's L1 cache / the only memory of on-chip-only
    designs (P4xos, Emu DNS, NetChain-style caches).

    BRAM power is part of the logic module's figure, so this class carries
    capacity and latency but no independent wattage.
    """

    value_entries = cal.ONCHIP_VALUE_ENTRIES
    freelist_entries = cal.ONCHIP_FREELIST_ENTRIES
    access_latency_us = 0.0  # included in the pipeline's 1.4µs hit figure

    def __init__(self, value_entries: int = None):
        if value_entries is not None:
            if value_entries <= 0:
                raise ConfigurationError("value_entries must be positive")
            self.value_entries = value_entries

    @property
    def usable(self) -> bool:
        return True
