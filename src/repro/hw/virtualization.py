"""Data-plane virtualization: multiple programs on one device.

§2 (Deployment): "For our study, we assume that a single in-network
computing application is deployed on a network device.  Recent work has
proposed virtualization techniques for deploying multiple data-plane
programs concurrently [P4Visor].  It would be interesting in future work to
study the impact of such a deployment."  This module is that study's
substrate: a :class:`VirtualizedCard` hosts several application designs
behind one shared shell, with per-program activation, shared-resource
accounting, and an additive power model, so the on-demand machinery can
shift *several* services onto one card.

Resource accounting follows §5.2: LaKe's full logic is <3% of the Virtex-7,
so co-residence is plausible resource-wise; the binding constraint the
paper names is the interconnect, which we model as an aggregate-capacity
cap shared by all programs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .. import calibration as cal
from ..errors import ConfigurationError
from .fpga import NetFpgaSume, PlatformMode

#: Fraction of FPGA logic available to tenant programs (the shell and
#: interconnect reserve the rest).
TENANT_LOGIC_BUDGET = 0.60

#: §5.2: LaKe's logic (5 PEs + classifier + interconnect) is "less than 3%
#: of logical elements"; we charge ~1.3% per watt of logic as a coarse map
#: from the power figures to area.
LOGIC_FRACTION_PER_WATT = 0.013

#: Aggregate pipeline capacity shared by co-resident programs (the §5.2
#: interconnect limit): one 10GE line rate.
SHARED_CAPACITY_PPS = cal.LAKE_LINE_RATE_PPS


@dataclass
class TenantProgram:
    """One data-plane program co-resident on a virtualized card."""

    name: str
    logic_power_w: float
    capacity_share_pps: float
    uses_external_memories: bool = False
    active: bool = True

    def __post_init__(self):
        if self.logic_power_w < 0:
            raise ConfigurationError("logic power must be >= 0")
        if self.capacity_share_pps <= 0:
            raise ConfigurationError("capacity share must be positive")

    @property
    def logic_fraction(self) -> float:
        return self.logic_power_w * LOGIC_FRACTION_PER_WATT


class VirtualizedCard:
    """A NetFPGA-class card hosting multiple tenant programs.

    Power is additive over the shared shell, each *active* tenant's logic,
    and the external memories (powered if any active tenant uses them).
    Admission control enforces the logic budget and the shared pipeline
    capacity.
    """

    def __init__(self, mode: PlatformMode = PlatformMode.IN_SERVER):
        self.mode = mode
        self._tenants: Dict[str, TenantProgram] = {}
        self.utilization = 0.0

    # -- admission control ---------------------------------------------------

    def admit(self, program: TenantProgram) -> None:
        """Admit a tenant; raises if it would overflow logic or capacity."""
        if program.name in self._tenants:
            raise ConfigurationError(f"tenant {program.name!r} already admitted")
        logic_after = self.logic_fraction_used + program.logic_fraction
        if logic_after > TENANT_LOGIC_BUDGET:
            raise ConfigurationError(
                f"admitting {program.name!r} needs {logic_after:.1%} of logic; "
                f"budget is {TENANT_LOGIC_BUDGET:.0%}"
            )
        capacity_after = self.capacity_committed_pps + program.capacity_share_pps
        if capacity_after > SHARED_CAPACITY_PPS:
            raise ConfigurationError(
                f"admitting {program.name!r} commits "
                f"{capacity_after / 1e6:.1f}Mpps; the shared pipeline caps at "
                f"{SHARED_CAPACITY_PPS / 1e6:.1f}Mpps (§5.2 interconnect limit)"
            )
        self._tenants[program.name] = program

    def evict(self, name: str) -> TenantProgram:
        try:
            return self._tenants.pop(name)
        except KeyError:
            raise ConfigurationError(f"unknown tenant {name!r}") from None

    def tenant(self, name: str) -> TenantProgram:
        try:
            return self._tenants[name]
        except KeyError:
            raise ConfigurationError(f"unknown tenant {name!r}") from None

    @property
    def tenants(self) -> List[TenantProgram]:
        return list(self._tenants.values())

    # -- per-tenant activation (the on-demand hook) ----------------------------

    def activate(self, name: str) -> None:
        self.tenant(name).active = True

    def deactivate(self, name: str) -> None:
        """Clock-gate a tenant's region (it stays programmed)."""
        self.tenant(name).active = False

    # -- accounting ------------------------------------------------------------

    @property
    def logic_fraction_used(self) -> float:
        return sum(t.logic_fraction for t in self._tenants.values())

    @property
    def capacity_committed_pps(self) -> float:
        return sum(t.capacity_share_pps for t in self._tenants.values())

    def set_utilization(self, utilization: float) -> None:
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError("utilization outside [0,1]")
        self.utilization = utilization

    # -- power ------------------------------------------------------------------

    def power_w(self) -> float:
        power = cal.NETFPGA_SHELL_W
        memories_needed = False
        for tenant in self._tenants.values():
            if tenant.active:
                power += tenant.logic_power_w
                memories_needed = memories_needed or tenant.uses_external_memories
            else:
                # clock-gated region: same residual fraction as §5.1
                residual = 1.0 - cal.CLOCK_GATING_SAVING_W / cal.LAKE_LOGIC_TOTAL_W
                power += tenant.logic_power_w * residual
        if memories_needed:
            power += cal.MEMORIES_TOTAL_W
        elif any(t.uses_external_memories for t in self._tenants.values()):
            # memories present but held in reset while no active tenant needs them
            power += cal.MEMORIES_TOTAL_W * (1.0 - cal.MEMORY_RESET_SAVING_FRACTION)
        power += cal.FPGA_DYNAMIC_MAX_W * self.utilization
        if self.mode is PlatformMode.STANDALONE:
            power += cal.STANDALONE_PSU_OVERHEAD_W
        return power

    def marginal_power_w(self, program: TenantProgram) -> float:
        """Extra watts of adding this tenant to the current card — the §6
        insight ('adding in-network computing to networking equipment
        already installed … has a negligible effect') quantified for the
        FPGA case."""
        before = self.power_w()
        self.admit(program)
        after = self.power_w()
        self.evict(program.name)
        return after - before


def lake_tenant(name: str = "lake", pe_count: int = cal.LAKE_DEFAULT_PES) -> TenantProgram:
    """A LaKe-sized tenant (§3.1)."""
    logic = cal.LAKE_CLASSIFIER_INTERCONNECT_W + pe_count * cal.LAKE_PE_W
    capacity = min(cal.LAKE_LINE_RATE_PPS, pe_count * cal.LAKE_PE_CAPACITY_PPS)
    return TenantProgram(
        name=name,
        logic_power_w=logic,
        capacity_share_pps=capacity,
        uses_external_memories=True,
    )


def p4xos_tenant(name: str = "p4xos") -> TenantProgram:
    """A P4xos-sized tenant (§3.2) — on-chip memory only."""
    return TenantProgram(
        name=name,
        logic_power_w=cal.P4XOS_LOGIC_W,
        capacity_share_pps=cal.P4XOS_FPGA_CAPACITY_PPS / 4.0,
        uses_external_memories=False,
    )


def emu_dns_tenant(name: str = "emu-dns") -> TenantProgram:
    """An Emu-DNS-sized tenant (§3.3)."""
    return TenantProgram(
        name=name,
        logic_power_w=cal.EMU_DNS_LOGIC_W,
        capacity_share_pps=cal.EMU_DNS_CAPACITY_PPS,
        uses_external_memories=False,
    )
