"""Barefoot Tofino switch-ASIC model (§6).

§6 reports only *normalized* power "due to the large variance in power
between different ASICs and ASIC vendors".  We therefore model the switch as
a normalized curve (idle = 1.0) with the paper's anchors:

* idle power identical for L2-forwarding-only and L2+P4xos;
* min↔max power span under load < 20% (we use 18%);
* P4xos adds ≤2% at full load; diag.p4 adds 4.8% at full load;
* P4xos capacity 2.5B msgs/s (§3.2) on a 1.28Tbps 32×40G snake config.

``power_normalized(util)`` returns power relative to L2-only idle; an
optional absolute scale de-normalizes for energy integration.
"""

from __future__ import annotations

import enum

from .. import calibration as cal
from ..errors import ConfigurationError


class TofinoProgram(enum.Enum):
    """Data-plane programs evaluated in §6."""

    L2_FORWARDING = "l2-forwarding"
    L2_PLUS_P4XOS = "l2+p4xos"
    DIAG = "diag.p4"


#: Per-program *additional* power fraction at full load, over L2-only.
_PROGRAM_OVERHEAD_AT_FULL_LOAD = {
    TofinoProgram.L2_FORWARDING: 0.0,
    TofinoProgram.L2_PLUS_P4XOS: cal.TOFINO_P4XOS_OVERHEAD_FRACTION,
    TofinoProgram.DIAG: cal.TOFINO_DIAG_OVERHEAD_FRACTION,
}


class TofinoSwitch:
    """Normalized power/performance model of a Tofino running a P4 program."""

    def __init__(
        self,
        program: TofinoProgram = TofinoProgram.L2_FORWARDING,
        ports: int = cal.TOFINO_PORTS,
        port_gbps: float = cal.TOFINO_PORT_GBPS,
        absolute_idle_w: float = cal.TOFINO_TYPICAL_IDLE_W,
    ):
        if ports <= 0 or port_gbps <= 0:
            raise ConfigurationError("ports and port_gbps must be positive")
        self.program = program
        self.ports = ports
        self.port_gbps = port_gbps
        self.absolute_idle_w = absolute_idle_w
        self.utilization = 0.0

    # -- configuration --------------------------------------------------------

    def load_program(self, program: TofinoProgram) -> None:
        """Reprogramming the data plane; §6 shows this does not change idle
        power at all."""
        self.program = program

    def set_utilization(self, utilization: float) -> None:
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError("utilization outside [0,1]")
        self.utilization = utilization

    # -- capacity ----------------------------------------------------------

    @property
    def bandwidth_tbps(self) -> float:
        return self.ports * self.port_gbps / 1000.0

    @property
    def p4xos_capacity_pps(self) -> float:
        """Consensus messages/second at full capacity (§3.2: >2.5B)."""
        return cal.TOFINO_P4XOS_CAPACITY_PPS

    def throughput_pps(self) -> float:
        if self.program is not TofinoProgram.L2_PLUS_P4XOS:
            return 0.0
        return self.p4xos_capacity_pps * self.utilization

    # -- power ------------------------------------------------------------

    def power_normalized(self, utilization: float = None) -> float:
        """Power relative to the idle L2-only switch (= 1.0).

        The L2 forwarding component rises linearly to 1.18 at full load
        (<20% span, §6); the in-network-computing overhead also scales with
        rate ("the relative increase in power using P4xos is almost constant
        with the rate"), reaching its program's full-load fraction.
        """
        u = self.utilization if utilization is None else utilization
        if not 0.0 <= u <= 1.0:
            raise ConfigurationError("utilization outside [0,1]")
        base = cal.TOFINO_IDLE_NORMALIZED + (
            cal.TOFINO_L2_FULL_LOAD_NORMALIZED - cal.TOFINO_IDLE_NORMALIZED
        ) * u
        overhead = _PROGRAM_OVERHEAD_AT_FULL_LOAD[self.program] * u
        return base * (1.0 + overhead)

    def power_w(self, utilization: float = None) -> float:
        """Absolute power using the configured de-normalization scale."""
        return self.power_normalized(utilization) * self.absolute_idle_w

    def dynamic_power_w(self, utilization: float = None) -> float:
        """Power above idle — the quantity §6 compares against the server's
        dynamic power (1/3 of the server's at 180Kpps)."""
        u = self.utilization if utilization is None else utilization
        return self.power_w(u) - self.power_w(0.0)

    def ops_per_watt(self, utilization: float = 1.0) -> float:
        """Consensus messages per watt of total power (§6: 10M's for ASIC)."""
        if self.program is not TofinoProgram.L2_PLUS_P4XOS:
            raise ConfigurationError("ops/W defined for the P4xos program only")
        if utilization <= 0:
            return 0.0
        return self.p4xos_capacity_pps * utilization / self.power_w(utilization)


def snake_connectivity(ports: int = cal.TOFINO_PORTS):
    """§6's test harness: 'Each output port is connected to the next input
    port', exercising all ports at full capacity.  Returns the port pairs."""
    return [(i, (i + 1) % ports) for i in range(ports)]
