"""SmartNIC archetypes for the §10 placement discussion.

§10 identifies four architectural approaches to SmartNICs — FPGA based,
ASIC based, combined ASIC+FPGA, and SoC based — and gives the figures this
module encodes: the 25W PCIe power envelope, AccelNet's 17–19W standalone at
~4Mpps/W, and the qualitative flexibility/scalability trade-offs the
placement advisor (:mod:`repro.core.placement`) ranks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .. import calibration as cal
from ..errors import ConfigurationError


class SmartNicArchitecture(enum.Enum):
    FPGA = "fpga"
    ASIC = "asic"
    ASIC_PLUS_FPGA = "asic+fpga"
    SOC = "soc"


@dataclass(frozen=True)
class SmartNic:
    """A SmartNIC archetype.

    ``flexibility`` and ``maturity`` are 0–5 qualitative scores encoding the
    §10 narrative (FPGA = most flexible; ASIC = best power/maturity trade;
    SoC = easiest to program but hits the resource wall earliest).
    """

    name: str
    architecture: SmartNicArchitecture
    idle_w: float
    peak_w: float
    mpps_per_w: float
    port_gbps: float
    flexibility: int
    maturity: int

    def __post_init__(self):
        if self.peak_w > cal.SMARTNIC_PCIE_POWER_CAP_W:
            raise ConfigurationError(
                f"{self.name}: SmartNICs are limited to the "
                f"{cal.SMARTNIC_PCIE_POWER_CAP_W}W PCIe envelope (§10)"
            )
        if self.peak_w < self.idle_w:
            raise ConfigurationError(f"{self.name}: peak_w < idle_w")

    def power_w(self, utilization: float) -> float:
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError("utilization outside [0,1]")
        return self.idle_w + (self.peak_w - self.idle_w) * utilization

    def peak_pps(self) -> float:
        """Throughput at peak power from the Mpps/W figure."""
        return self.mpps_per_w * 1e6 * self.peak_w

    def ops_per_watt(self, utilization: float = 1.0) -> float:
        if utilization <= 0:
            return 0.0
        return self.peak_pps() * utilization / self.power_w(utilization)


#: Archetypes used by the §10 advisor benchmark.  AccelNet numbers are the
#: paper's (17–19W standalone, ~4Mpps/W on a 40GE board); the others are
#: representative points inside the 25W envelope consistent with the §10
#: qualitative ordering (ASIC best perf/W, SoC lowest scalability).
SMARTNIC_ARCHETYPES = {
    "accelnet-fpga": SmartNic(
        name="AccelNet-class FPGA SmartNIC",
        architecture=SmartNicArchitecture.FPGA,
        idle_w=cal.ACCELNET_STANDALONE_W[0],
        peak_w=cal.ACCELNET_STANDALONE_W[1],
        mpps_per_w=cal.ACCELNET_MPPS_PER_W,
        port_gbps=40.0,
        flexibility=5,
        maturity=3,
    ),
    "asic-smartnic": SmartNic(
        name="ASIC SmartNIC (Agilio-class)",
        architecture=SmartNicArchitecture.ASIC,
        idle_w=12.0,
        peak_w=22.0,
        mpps_per_w=6.0,
        port_gbps=50.0,
        flexibility=2,
        maturity=5,
    ),
    "hybrid-smartnic": SmartNic(
        name="ASIC+FPGA SmartNIC (Innova-class)",
        architecture=SmartNicArchitecture.ASIC_PLUS_FPGA,
        idle_w=15.0,
        peak_w=24.0,
        mpps_per_w=4.5,
        port_gbps=40.0,
        flexibility=4,
        maturity=3,
    ),
    "soc-smartnic": SmartNic(
        name="SoC SmartNIC (BlueField-class)",
        architecture=SmartNicArchitecture.SOC,
        idle_w=14.0,
        peak_w=25.0,
        mpps_per_w=1.5,
        port_gbps=100.0,
        flexibility=3,
        maturity=4,
    ),
}
