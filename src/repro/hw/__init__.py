"""Programmable network hardware models.

* :mod:`repro.hw.fpga` — the NetFPGA SUME platform: module-level power with
  clock gating / power gating / reset semantics (§5.1).
* :mod:`repro.hw.memory` — BRAM/SRAM/DRAM models with the §5.3 capacities
  and latencies.
* :mod:`repro.hw.asic` — Barefoot Tofino normalized-power model (§6).
* :mod:`repro.hw.smartnic` — SmartNIC archetypes for the §10 discussion.
* :mod:`repro.hw.device` — the offload-device abstraction layer: named
  profiles (NetFPGA / SmartNIC tiers / NIC-only) behind one registry, so
  the device is a declarative scenario axis.
"""

from .memory import BramBank, DramChannel, SramBank, MemoryState
from .fpga import FpgaModule, ModuleState, NetFpgaSume, PlatformMode
from .asic import TofinoProgram, TofinoSwitch
from .smartnic import SmartNic, SMARTNIC_ARCHETYPES
from .virtualization import TenantProgram, VirtualizedCard
from .device import (
    DEFAULT_DEVICE_KIND,
    OffloadDevice,
    SmartNicCard,
    closest_device,
    device_descriptions,
    device_names,
    device_profiles,
    get_device,
    register_device,
)

__all__ = [
    "DEFAULT_DEVICE_KIND",
    "OffloadDevice",
    "SmartNicCard",
    "closest_device",
    "device_descriptions",
    "device_names",
    "device_profiles",
    "get_device",
    "register_device",
    "BramBank",
    "DramChannel",
    "SramBank",
    "MemoryState",
    "FpgaModule",
    "ModuleState",
    "NetFpgaSume",
    "PlatformMode",
    "TofinoProgram",
    "TofinoSwitch",
    "SmartNic",
    "SMARTNIC_ARCHETYPES",
    "TenantProgram",
    "VirtualizedCard",
]
