"""NetFPGA SUME platform model with module-level power accounting.

§5.1 frames the power knobs an operator has once the platform (NetFPGA) and
device (Virtex-7 690T) are fixed: **clock gating**, **power gating** (not
supported by Virtex-7; the paper compares against eliminating modules from
the design), and **deactivating/holding modules in reset**.  This module
implements those semantics over a set of :class:`FpgaModule` objects plus
the external memories of :mod:`repro.hw.memory`.

The platform produces the exact bar set of Figure 4 via
:func:`repro.experiments.figures.figure4`.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from .. import calibration as cal
from ..errors import ConfigurationError
from .memory import DramChannel, SramBank


class ModuleState(enum.Enum):
    ACTIVE = "active"
    CLOCK_GATED = "clock-gated"
    POWER_GATED = "power-gated"   # unsupported on Virtex-7 (§5.1)
    REMOVED = "removed"           # eliminated from the design


class PlatformMode(enum.Enum):
    """Whether the card sits in a host (PCIe powered) or runs standalone
    with its own PSU/management (§4.3 discusses both)."""

    IN_SERVER = "in-server"
    STANDALONE = "standalone"


#: Fraction of a logic module's power saved by clock gating.  Calibrated so
#: clock-gating all of LaKe's logic (2.2W) saves 0.8W — §5.1: "Clock gating
#: to the LaKe module and the PEs earns less than 1W".
CLOCK_GATING_SAVING_FRACTION = cal.CLOCK_GATING_SAVING_W / cal.LAKE_LOGIC_TOTAL_W


class FpgaModule:
    """A logic module on the FPGA (a PE, a classifier, an app core)."""

    def __init__(self, name: str, active_power_w: float, supports_clock_gating: bool = True):
        if active_power_w < 0:
            raise ConfigurationError("module power must be >= 0")
        self.name = name
        self.active_power_w = active_power_w
        self.supports_clock_gating = supports_clock_gating
        self.state = ModuleState.ACTIVE

    def power_w(self) -> float:
        if self.state is ModuleState.ACTIVE:
            return self.active_power_w
        if self.state is ModuleState.CLOCK_GATED:
            return self.active_power_w * (1.0 - CLOCK_GATING_SAVING_FRACTION)
        return 0.0

    def clock_gate(self) -> None:
        if not self.supports_clock_gating:
            raise ConfigurationError(f"module {self.name!r} cannot be clock gated")
        if self.state is ModuleState.REMOVED:
            raise ConfigurationError(f"module {self.name!r} was removed")
        self.state = ModuleState.CLOCK_GATED

    def activate(self) -> None:
        if self.state is ModuleState.REMOVED:
            raise ConfigurationError(f"module {self.name!r} was removed")
        self.state = ModuleState.ACTIVE

    def remove(self) -> None:
        self.state = ModuleState.REMOVED

    @property
    def usable(self) -> bool:
        return self.state is ModuleState.ACTIVE


class NetFpgaSume:
    """The NetFPGA SUME card: shell + app logic modules + memories.

    Construction helpers below build the paper's three designs.  ``power_w``
    follows Figure 4's additive structure:

        shell + Σ logic modules + Σ memories + dynamic(load) [+ PSU if standalone]

    Dynamic power scales linearly with utilization up to the design's
    ``dynamic_max_w`` (§4.3: ≤1.2W for P4xos at maximum load).
    """

    SUPPORTS_POWER_GATING = False  # Virtex-7 (§5.1)

    def __init__(
        self,
        design: str,
        mode: PlatformMode = PlatformMode.IN_SERVER,
        shell_power_w: float = cal.NETFPGA_SHELL_W,
        dynamic_max_w: float = cal.FPGA_DYNAMIC_MAX_W,
    ):
        self.design = design
        self.mode = mode
        self.shell_power_w = shell_power_w
        self.dynamic_max_w = dynamic_max_w
        self.modules: Dict[str, FpgaModule] = {}
        self.dram: Optional[DramChannel] = None
        self.sram: Optional[SramBank] = None
        self.utilization = 0.0

    # -- construction ------------------------------------------------------

    def add_module(self, module: FpgaModule) -> FpgaModule:
        if module.name in self.modules:
            raise ConfigurationError(f"duplicate module {module.name!r}")
        self.modules[module.name] = module
        return module

    def attach_dram(self) -> DramChannel:
        self.dram = DramChannel()
        return self.dram

    def attach_sram(self) -> SramBank:
        self.sram = SramBank()
        return self.sram

    # -- §5.1 power-saving controls -----------------------------------------

    def power_gate_module(self, name: str) -> None:
        """Virtex-7 does not support power gating; the paper's equivalent is
        removing the module from the design (:meth:`remove_module`)."""
        if not self.SUPPORTS_POWER_GATING:
            raise ConfigurationError(
                "Virtex-7 does not support power gating (§5.1); "
                "use remove_module to model elimination from the design"
            )

    def remove_module(self, name: str) -> None:
        self._module(name).remove()

    def clock_gate_module(self, name: str) -> None:
        self._module(name).clock_gate()

    def activate_module(self, name: str) -> None:
        self._module(name).activate()

    def clock_gate_all_logic(self) -> None:
        """Gate every app logic module (the §9.2 'inactive but programmed'
        configuration, together with memories in reset)."""
        for module in self.modules.values():
            if module.state is not ModuleState.REMOVED:
                module.clock_gate()

    def activate_all_logic(self) -> None:
        for module in self.modules.values():
            if module.state is not ModuleState.REMOVED:
                module.activate()

    def reset_memories(self) -> None:
        for memory in self._memories():
            memory.hold_in_reset()

    def activate_memories(self) -> None:
        for memory in self._memories():
            memory.activate()

    def remove_memories(self) -> None:
        for memory in self._memories():
            memory.remove()

    def set_utilization(self, utilization: float) -> None:
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError("utilization outside [0,1]")
        self.utilization = utilization

    # -- power -------------------------------------------------------------

    def power_w(self) -> float:
        power = self.shell_power_w
        power += sum(m.power_w() for m in self.modules.values())
        power += sum(mem.power_w() for mem in self._memories())
        power += self.dynamic_max_w * self.utilization
        if self.mode is PlatformMode.STANDALONE:
            power += cal.STANDALONE_PSU_OVERHEAD_W
        return power

    def logic_power_w(self) -> float:
        return sum(m.power_w() for m in self.modules.values())

    def memory_power_w(self) -> float:
        return sum(mem.power_w() for mem in self._memories())

    # -- internals -----------------------------------------------------------

    def _module(self, name: str) -> FpgaModule:
        try:
            return self.modules[name]
        except KeyError:
            raise ConfigurationError(f"unknown module {name!r}") from None

    def _memories(self) -> List:
        return [m for m in (self.dram, self.sram) if m is not None]


# ---------------------------------------------------------------------------
# The paper's three designs (§3) + the reference NIC.
# ---------------------------------------------------------------------------


def make_reference_nic(mode: PlatformMode = PlatformMode.IN_SERVER) -> NetFpgaSume:
    """The NetFPGA reference NIC: shell only, no app logic (§5.2 baseline)."""
    return NetFpgaSume(design="reference-nic", mode=mode, dynamic_max_w=0.3)


def make_lake_fpga(
    pe_count: int = cal.LAKE_DEFAULT_PES,
    with_external_memories: bool = True,
    mode: PlatformMode = PlatformMode.IN_SERVER,
) -> NetFpgaSume:
    """LaKe (§3.1): classifier + interconnect + N PEs + DRAM/SRAM."""
    if pe_count < 0 or pe_count > 16:
        raise ConfigurationError(f"pe_count={pe_count} outside supported range 0..16")
    card = NetFpgaSume(design="lake", mode=mode, dynamic_max_w=cal.FPGA_DYNAMIC_MAX_W)
    card.add_module(
        FpgaModule("classifier+interconnect", cal.LAKE_CLASSIFIER_INTERCONNECT_W)
    )
    for i in range(pe_count):
        card.add_module(FpgaModule(f"pe{i}", cal.LAKE_PE_W))
    if with_external_memories:
        card.attach_dram()
        card.attach_sram()
    return card


def make_p4xos_fpga(mode: PlatformMode = PlatformMode.IN_SERVER) -> NetFpgaSume:
    """P4xos (§3.2): single main logical core, on-chip memory only."""
    card = NetFpgaSume(design="p4xos", mode=mode, dynamic_max_w=cal.FPGA_DYNAMIC_MAX_W)
    card.add_module(FpgaModule("p4xos-core", cal.P4XOS_LOGIC_W))
    return card


def make_emu_dns_fpga(mode: PlatformMode = PlatformMode.IN_SERVER) -> NetFpgaSume:
    """Emu DNS (§3.3): main logical core + the packet classifier the paper
    added so the card can double as a NIC."""
    card = NetFpgaSume(design="emu-dns", mode=mode, dynamic_max_w=cal.EMU_DYNAMIC_MAX_W)
    card.add_module(FpgaModule("emu-dns-core", cal.EMU_DNS_LOGIC_W - 0.3))
    card.add_module(FpgaModule("classifier", 0.3))
    return card
