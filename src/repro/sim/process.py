"""Generator-based processes on top of the event kernel.

A process is a Python generator that yields delays (microseconds).  The
kernel resumes it after each delay.  Processes keep sequential protocol
logic (e.g. a closed-loop client: send, wait, receive, think) readable
without hand-written state machines.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..errors import SimulationError
from .kernel import Simulator

ProcessGenerator = Generator[float, None, None]


class Process:
    """Drives a generator that yields microsecond delays.

    ::

        def worker():
            while True:
                do_work()
                yield 100.0   # sleep 100us

        Process(sim, worker(), name="worker")
    """

    def __init__(self, sim: Simulator, gen: ProcessGenerator, name: str = "process"):
        self._sim = sim
        self._gen = gen
        self.name = name
        self.finished = False
        self.stopped = False
        self._pending = None
        self._step()

    def stop(self) -> None:
        """Stop the process; its generator is closed and pending wake
        cancelled.  Idempotent."""
        if self.stopped or self.finished:
            self.stopped = True
            return
        self.stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self._gen.close()

    def _step(self) -> None:
        if self.stopped:
            return
        self._pending = None
        try:
            delay = next(self._gen)
        except StopIteration:
            self.finished = True
            return
        if delay is None or delay < 0:
            raise SimulationError(
                f"process {self.name!r} yielded invalid delay {delay!r}"
            )
        self._pending = self._sim.schedule(delay, self._step, name=self.name)


def sleep_until(sim: Simulator, time: float) -> float:
    """Delay value that wakes a process at absolute time ``time``."""
    remaining = time - sim.now
    if remaining < 0:
        raise SimulationError(f"sleep_until target {time} is in the past")
    return remaining
