"""Discrete-event simulation kernel.

The kernel is deliberately small: an event heap, a clock in microseconds,
callback scheduling, and optional generator-based processes.  Everything in
the network/host/hardware substrates builds on :class:`Simulator`.
"""

from .calqueue import CalendarQueue
from .kernel import Event, Simulator
from .process import Process
from .queues import FifoQueue, QueueStats
from .recorder import (
    LatencyRecorder,
    PeriodicSampler,
    TimeSeries,
    bucket_mean_series,
    bucket_rate_series,
    percentile,
    percentiles,
)
from .rng import RngStreams

__all__ = [
    "CalendarQueue",
    "Event",
    "Simulator",
    "Process",
    "FifoQueue",
    "QueueStats",
    "LatencyRecorder",
    "PeriodicSampler",
    "TimeSeries",
    "bucket_mean_series",
    "bucket_rate_series",
    "percentile",
    "percentiles",
    "RngStreams",
]
