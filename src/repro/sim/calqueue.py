"""A calendar queue (R. Brown, CACM 1988) for the simulator kernel.

A bucketed event list: entries hash into day-buckets by time, the queue
walks the calendar year bucket by bucket.  Near-uniform inter-arrival
workloads (open-loop load generators, periodic samplers) enqueue/dequeue
in O(1) amortized instead of the binary heap's O(log n).

Entries are the kernel's ``(time, seq, payload[, arg])`` tuples; within a
bucket they are kept heap-ordered, so the pop order — (time, seq) — is
identical to the default heap scheduler's.  The bucket width adapts to the
observed event density on resize, the classic calendar-queue heuristic.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

_MIN_BUCKETS = 8


class CalendarQueue:
    """A priority queue of (time, seq, ...) tuples ordered like a heap."""

    def __init__(self, bucket_width_us: float = 1.0, n_buckets: int = _MIN_BUCKETS):
        if bucket_width_us <= 0:
            raise ValueError("bucket_width_us must be positive")
        if n_buckets < 1:
            raise ValueError("n_buckets must be >= 1")
        self._width = float(bucket_width_us)
        self._buckets: List[List[tuple]] = [[] for _ in range(n_buckets)]
        self._size = 0
        #: virtual clock: pops never go below this time (monotone queue)
        self._current_time = 0.0
        self._current_bucket = 0

    def __len__(self) -> int:
        return self._size

    # -- core operations -----------------------------------------------------

    def push(self, entry: tuple) -> None:
        time = entry[0]
        n = len(self._buckets)
        index = int(time / self._width) % n
        heapq.heappush(self._buckets[index], entry)
        self._size += 1
        if self._size > 2 * n:
            self._resize(2 * n)

    def push_many(self, entries: List[tuple]) -> None:
        """Bulk enqueue: one resize check for the whole block.

        Used by the batched arrival generators — pushing a refill block
        entry-by-entry re-evaluates the resize threshold per entry and can
        thrash the calendar mid-block.
        """
        n = len(self._buckets)
        width = self._width
        buckets = self._buckets
        for entry in entries:
            heapq.heappush(buckets[int(entry[0] / width) % n], entry)
        self._size += len(entries)
        if self._size > 2 * n:
            self._resize(2 * n)

    def peek(self) -> Optional[tuple]:
        if self._size == 0:
            return None
        entry = self._find_next(advance=False)
        return entry

    def pop(self) -> Optional[tuple]:
        if self._size == 0:
            return None
        entry = self._find_next(advance=True)
        self._size -= 1
        if self._size < len(self._buckets) // 4 and len(self._buckets) > _MIN_BUCKETS:
            self._resize(max(_MIN_BUCKETS, len(self._buckets) // 2))
        return entry

    # -- internals -----------------------------------------------------------

    def _find_next(self, advance: bool) -> tuple:
        """Locate (and optionally remove) the globally-minimum entry.

        Walks the calendar from the current bucket; an entry in the walked
        bucket only wins if it falls inside that bucket's current year,
        otherwise the walk continues (the standard calendar-queue scan).
        One full lap without a same-year hit falls back to a direct min
        scan — the sparse-queue escape hatch.
        """
        n = len(self._buckets)
        width = self._width
        bucket_idx = self._current_bucket
        year_end = (int(self._current_time / width) + 1) * width
        for _ in range(n):
            bucket = self._buckets[bucket_idx]
            if bucket and bucket[0][0] < year_end:
                entry = heapq.heappop(bucket) if advance else bucket[0]
                if advance:
                    self._current_time = entry[0]
                    self._current_bucket = bucket_idx
                return entry
            bucket_idx = (bucket_idx + 1) % n
            year_end += width
        # Sparse: nothing within a calendar year — take the global minimum.
        best_idx = min(
            (i for i in range(n) if self._buckets[i]),
            key=lambda i: self._buckets[i][0],
        )
        bucket = self._buckets[best_idx]
        entry = heapq.heappop(bucket) if advance else bucket[0]
        if advance:
            self._current_time = entry[0]
            self._current_bucket = best_idx
        return entry

    def _resize(self, n_buckets: int) -> None:
        entries = [e for bucket in self._buckets for e in bucket]
        if entries:
            # Adapt the day width to the live event span (Brown's heuristic:
            # aim for a handful of events per bucket).
            times = [e[0] for e in entries]
            span = max(times) - min(times)
            if span > 0:
                self._width = max(span / max(1, len(entries)) * 3.0, 1e-9)
        self._buckets = [[] for _ in range(n_buckets)]
        n = n_buckets
        for entry in entries:
            index = int(entry[0] / self._width) % n
            heapq.heappush(self._buckets[index], entry)
        self._current_bucket = int(self._current_time / self._width) % n
