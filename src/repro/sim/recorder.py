"""Measurement recorders: time series and latency statistics.

These play the role of the paper's instrumentation — the SHW 3A wall power
meter sampled once a second, hardware throughput counters on the LaKe card,
and the Endace DAG card capturing per-packet latency (§4.1).

Storage is ``array('d')`` (one machine double per sample, no per-sample
object), and the bucket/percentile reductions dispatch to numpy kernels
when numpy is importable, with a pure-python fallback that produces
bit-identical results (enforced by tests).  Set ``REPRO_PURE_PYTHON=1``
to force the fallback.
"""

from __future__ import annotations

import math
import os
from array import array
from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..units import SEC, to_seconds
from .kernel import Simulator

try:  # pragma: no cover - exercised via both dispatch branches
    import numpy as _np
except Exception:  # pragma: no cover
    _np = None

if os.environ.get("REPRO_PURE_PYTHON"):
    _np = None


def percentile(
    values: Sequence[float], pct: float, presorted: bool = False
) -> float:
    """Nearest-rank percentile (``pct`` in [0, 100]) of ``values``.

    ``presorted=True`` skips the sort for callers holding an already-
    ordered snapshot (see :meth:`LatencyRecorder.sorted_samples` and
    :func:`percentiles`).
    """
    if not len(values):
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"pct must be in [0, 100], got {pct}")
    ordered = values if presorted else sorted(values)
    if pct == 0.0:
        return ordered[0]
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


def _percentiles_python(
    values: Sequence[float], pcts: Sequence[float]
) -> List[float]:
    ordered = sorted(values)
    return [percentile(ordered, pct, presorted=True) for pct in pcts]


def _percentiles_numpy(
    values: Sequence[float], pcts: Sequence[float]
) -> List[float]:
    # One C sort; nearest-rank picks read ranks positionally, exactly as
    # the python kernel does, so both kernels select the *same element*.
    if not len(values):
        raise ValueError("percentile of empty sequence")
    ordered = _np.sort(_np.asarray(values, dtype=_np.float64))
    n = len(ordered)
    out = []
    for pct in pcts:
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"pct must be in [0, 100], got {pct}")
        if pct == 0.0:
            out.append(float(ordered[0]))
        else:
            rank = max(1, math.ceil(pct / 100.0 * n))
            out.append(float(ordered[rank - 1]))
    return out


def percentiles(values: Sequence[float], pcts: Sequence[float]) -> List[float]:
    """Several nearest-rank percentiles from **one** sort of ``values``.

    The reduction loops (sweep aggregation, figure rendering) extract
    p50+p99 from the same sample list; sorting once instead of once per
    percentile halves their dominant cost on large runs.  Dispatches to a
    numpy sort when available (identical element selection either way).
    """
    if _np is not None and len(values) >= 32:
        return _percentiles_numpy(values, pcts)
    return _percentiles_python(values, pcts)


@dataclass
class Sample:
    """One (time, value) measurement."""

    time_us: float
    value: float


class TimeSeries:
    """An append-only (time, value) series with window queries.

    Used for power meters, throughput counters and controller telemetry.
    Backed by two ``array('d')`` columns: 8 bytes per sample per column,
    no per-sample boxing, and slices hand contiguous buffers straight to
    the reduction kernels.
    """

    def __init__(self, name: str = "series"):
        self.name = name
        self._times = array("d")
        self._values = array("d")
        # cached immutable snapshots; invalidated (by length) on append
        self._times_view: Tuple[float, ...] = ()
        self._values_view: Tuple[float, ...] = ()

    def __len__(self) -> int:
        return len(self._times)

    def record(self, time_us: float, value: float) -> None:
        """Append a sample; time must be non-decreasing."""
        if self._times and time_us < self._times[-1]:
            raise ConfigurationError(
                f"time series {self.name!r} got out-of-order sample"
            )
        self._times.append(time_us)
        self._values.append(value)

    @property
    def times(self) -> Tuple[float, ...]:
        """Immutable snapshot of the sample times.

        Cached between appends: repeated property reads in reduction
        loops are O(1), not an O(n) copy per access.  (The series is
        append-only, so a length check is a complete staleness test.)
        """
        if len(self._times_view) != len(self._times):
            self._times_view = tuple(self._times)
        return self._times_view

    @property
    def values(self) -> Tuple[float, ...]:
        """Immutable snapshot of the sample values (see :attr:`times`)."""
        if len(self._values_view) != len(self._values):
            self._values_view = tuple(self._values)
        return self._values_view

    def last(self) -> Optional[Sample]:
        if not self._times:
            return None
        return Sample(self._times[-1], self._values[-1])

    def _window_bounds(self, start_us: float, end_us: float) -> Tuple[int, int]:
        """Index range [lo, hi) with start <= time < end (bisect, O(log n))."""
        lo = bisect_right(self._times, start_us - 1e-12)
        hi = bisect_right(self._times, end_us - 1e-12)
        return lo, hi

    def window(self, start_us: float, end_us: float) -> List[Sample]:
        """Samples with start <= time < end."""
        lo, hi = self._window_bounds(start_us, end_us)
        return [Sample(t, v) for t, v in zip(self._times[lo:hi], self._values[lo:hi])]

    def mean(self, start_us: Optional[float] = None, end_us: Optional[float] = None) -> float:
        """Arithmetic mean of samples in the window (whole series by default)."""
        if start_us is None and end_us is None:
            values: Sequence[float] = self._values
        else:
            lo, hi = self._window_bounds(
                start_us if start_us is not None else float("-inf"),
                end_us if end_us is not None else float("inf"),
            )
            # No Sample boxing on the reduction path — slice the column.
            values = self._values[lo:hi]
        if not len(values):
            raise ValueError(f"no samples in window for {self.name!r}")
        return sum(values) / len(values)

    def integrate_seconds(self) -> float:
        """Trapezoidal integral of value over time, time in **seconds**.

        Integrating a power (W) series yields energy in joules.
        """
        total = 0.0
        times, values = self._times, self._values
        for i in range(1, len(times)):
            dt = to_seconds(times[i] - times[i - 1])
            total += 0.5 * (values[i] + values[i - 1]) * dt
        return total


class LatencyRecorder:
    """Collects per-request latencies and reports distribution statistics.

    Samples live in one ``array('d')``; the ascending view is maintained
    *incrementally* — appends since the last query are sorted on their own
    and merged into the cached run (two ascending runs: one Timsort merge
    pass), so append-mostly workloads never pay a full re-sort.
    """

    def __init__(self, name: str = "latency"):
        self.name = name
        self._samples = array("d")
        # sorted-view cache: median()+p99() on the same snapshot cost one
        # sort, not two; _sorted_len marks how many samples it covers
        self._sorted: List[float] = []
        self._sorted_len = 0

    def __len__(self) -> int:
        return len(self._samples)

    def record(self, latency_us: float) -> None:
        if latency_us < 0:
            raise ConfigurationError("negative latency recorded")
        self._samples.append(latency_us)

    def extend(self, values: Sequence[float]) -> None:
        """Bulk append; all-or-nothing (no partial append on a bad value)."""
        staged = array("d", values)
        if staged and min(staged) < 0:
            raise ConfigurationError("negative latency recorded")
        self._samples.extend(staged)

    @property
    def samples(self) -> List[float]:
        return list(self._samples)

    def sorted_samples(self) -> List[float]:
        """The samples in ascending order (cache merged incrementally)."""
        n = len(self._samples)
        if self._sorted_len != n:
            if not self._sorted:
                self._sorted = sorted(self._samples)
            else:
                merged = self._sorted + sorted(self._samples[self._sorted_len:])
                merged.sort()  # two ascending runs -> single merge pass
                self._sorted = merged
            self._sorted_len = n
        return self._sorted

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("no latency samples")
        return sum(self._samples) / len(self._samples)

    def median(self) -> float:
        if not self._samples:
            raise ValueError("percentile of empty sequence")
        return percentile(self.sorted_samples(), 50.0, presorted=True)

    def p99(self) -> float:
        if not self._samples:
            raise ValueError("percentile of empty sequence")
        return percentile(self.sorted_samples(), 99.0, presorted=True)

    def reset(self) -> None:
        self._samples = array("d")
        self._sorted = []
        self._sorted_len = 0


def _bucket_rate_python(
    times_us: Sequence[float], window_us: float, end_us: float
) -> List[Tuple[float, float]]:
    buckets = {}
    for t in times_us:
        buckets[int(t // window_us)] = buckets.get(int(t // window_us), 0) + 1
    n_buckets = int(end_us // window_us) + 1
    series = []
    for i in range(n_buckets):
        rate = buckets.get(i, 0) * SEC / window_us
        series.append((i * window_us, rate))
    return series


def _bucket_rate_numpy(
    times_us: Sequence[float], window_us: float, end_us: float
) -> List[Tuple[float, float]]:
    n_buckets = int(end_us // window_us) + 1
    arr = _np.asarray(times_us, dtype=_np.float64)
    if arr.size:
        idx = (arr // window_us).astype(_np.int64)
        counts = _np.bincount(idx, minlength=n_buckets)
    else:
        counts = _np.zeros(n_buckets, dtype=_np.int64)
    # Counts are exact integers, so the per-bucket arithmetic below is
    # bit-identical to the python kernel.
    return [
        (i * window_us, int(counts[i]) * SEC / window_us)
        for i in range(n_buckets)
    ]


def bucket_rate_series(
    times_us: Sequence[float], window_us: float, end_us: float
) -> List[Tuple[float, float]]:
    """Convert event timestamps into a (t_us, rate_pps) series.

    Used to turn client response timestamps into the throughput timelines
    of Figures 6 and 7 (and the rack-scale scenarios).  numpy counts the
    buckets when available; both kernels return identical floats.
    """
    if window_us <= 0:
        raise ConfigurationError("window must be positive")
    if _np is not None and len(times_us) >= 64:
        return _bucket_rate_numpy(times_us, window_us, end_us)
    return _bucket_rate_python(times_us, window_us, end_us)


def _bucket_mean_python(
    samples: Sequence[Tuple[float, float]], window_us: float, end_us: float
) -> List[Tuple[float, Optional[float]]]:
    sums = {}
    counts = {}
    for t, v in samples:
        idx = int(t // window_us)
        sums[idx] = sums.get(idx, 0.0) + v
        counts[idx] = counts.get(idx, 0) + 1
    series = []
    for i in range(int(end_us // window_us) + 1):
        if counts.get(i):
            series.append((i * window_us, sums[i] / counts[i]))
        else:
            series.append((i * window_us, None))
    return series


def _bucket_mean_numpy(
    samples: Sequence[Tuple[float, float]], window_us: float, end_us: float
) -> List[Tuple[float, Optional[float]]]:
    n_buckets = int(end_us // window_us) + 1
    if len(samples):
        t = _np.fromiter((s[0] for s in samples), dtype=_np.float64, count=len(samples))
        v = _np.fromiter((s[1] for s in samples), dtype=_np.float64, count=len(samples))
        idx = (t // window_us).astype(_np.int64)
        # bincount accumulates weights in input order — the same
        # left-to-right addition sequence as the dict kernel, so the
        # per-bucket sums are bit-identical doubles.
        sums = _np.bincount(idx, weights=v, minlength=n_buckets)
        counts = _np.bincount(idx, minlength=n_buckets)
    else:
        sums = _np.zeros(n_buckets)
        counts = _np.zeros(n_buckets, dtype=_np.int64)
    series: List[Tuple[float, Optional[float]]] = []
    for i in range(n_buckets):
        c = int(counts[i])
        if c:
            series.append((i * window_us, float(sums[i]) / c))
        else:
            series.append((i * window_us, None))
    return series


def bucket_mean_series(
    samples: Sequence[Tuple[float, float]], window_us: float, end_us: float
) -> List[Tuple[float, Optional[float]]]:
    """Average (t_us, value) samples into fixed windows (None when empty)."""
    if window_us <= 0:
        raise ConfigurationError("window must be positive")
    if _np is not None and len(samples) >= 64:
        return _bucket_mean_numpy(samples, window_us, end_us)
    return _bucket_mean_python(samples, window_us, end_us)


class PeriodicSampler:
    """Samples a probe function periodically into a :class:`TimeSeries`.

    Mirrors the paper's once-a-second wall-power sampling (§4.1), but the
    interval is configurable so transition experiments (Figures 6/7) can
    sample at millisecond granularity.
    """

    def __init__(
        self,
        sim: Simulator,
        probe: Callable[[], float],
        interval_us: float,
        name: str = "sampler",
    ):
        if interval_us <= 0:
            raise ConfigurationError("sampler interval must be positive")
        self.series = TimeSeries(name)
        self._probe = probe
        # Record an initial sample at t=now, then periodically.
        self.series.record(sim.now, probe())
        self._handle = sim.call_every(interval_us, self._tick, name=name)
        self._sim = sim

    def _tick(self) -> None:
        self.series.record(self._sim.now, self._probe())

    def stop(self) -> None:
        self._handle.cancel()
