"""Bounded FIFO queues with occupancy statistics.

Used as NIC rings, switch port queues, and application request queues.
Tracking drops and time-weighted occupancy lets experiments report queueing
behaviour (and lets tests assert e.g. "no drops below saturation").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Optional

from ..errors import ConfigurationError
from .kernel import Simulator


@dataclass
class QueueStats:
    """Counters maintained by :class:`FifoQueue`."""

    enqueued: int = 0
    dequeued: int = 0
    dropped: int = 0
    peak_depth: int = 0
    #: integral of depth over time (us); divide by elapsed for mean depth
    depth_time_integral: float = 0.0
    _last_change: float = field(default=0.0, repr=False)

    def mean_depth(self, elapsed_us: float) -> float:
        """Time-weighted mean queue depth over ``elapsed_us``."""
        if elapsed_us <= 0:
            return 0.0
        return self.depth_time_integral / elapsed_us


class FifoQueue:
    """A bounded FIFO with drop-tail semantics.

    ``capacity=None`` means unbounded (useful for software request queues
    where the bottleneck is the service rate, not the buffer).
    """

    def __init__(self, sim: Simulator, capacity: Optional[int] = None, name: str = "q"):
        if capacity is not None and capacity <= 0:
            raise ConfigurationError(f"queue capacity must be positive, got {capacity}")
        self._sim = sim
        self._items: Deque[Any] = deque()
        self.capacity = capacity
        self.name = name
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def _account(self) -> None:
        now = self._sim.now
        self.stats.depth_time_integral += len(self._items) * (
            now - self.stats._last_change
        )
        self.stats._last_change = now

    def push(self, item: Any) -> bool:
        """Enqueue; returns False (and counts a drop) if the queue is full."""
        if self.full:
            self.stats.dropped += 1
            return False
        self._account()
        self._items.append(item)
        self.stats.enqueued += 1
        if len(self._items) > self.stats.peak_depth:
            self.stats.peak_depth = len(self._items)
        return True

    def pop(self) -> Optional[Any]:
        """Dequeue the oldest item, or None if empty."""
        if not self._items:
            return None
        self._account()
        item = self._items.popleft()
        self.stats.dequeued += 1
        return item

    def peek(self) -> Optional[Any]:
        """Oldest item without removing it, or None."""
        return self._items[0] if self._items else None

    def clear(self) -> int:
        """Drop everything; returns the number of items discarded."""
        self._account()
        n = len(self._items)
        self._items.clear()
        self.stats.dropped += n
        return n
