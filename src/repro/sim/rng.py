"""Deterministic named random-number streams.

Every stochastic component draws from its own named stream so that adding a
new component (or reordering draws in one) does not perturb the others —
the standard trick for reproducible systems simulations.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngStreams:
    """A factory of independent, deterministically-seeded RNGs.

    ::

        streams = RngStreams(seed=42)
        arrivals = streams.get("client.arrivals")
        keys = streams.get("workload.keys")
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return (creating if needed) the stream called ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = stream
        return stream

    def fork(self, salt: str) -> "RngStreams":
        """A new independent family of streams derived from this one."""
        digest = hashlib.sha256(f"{self.seed}:fork:{salt}".encode()).digest()
        return RngStreams(seed=int.from_bytes(digest[:8], "big"))
