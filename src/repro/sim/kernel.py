"""Event-driven simulator core.

Time is a float in **microseconds** (see :mod:`repro.units`).  Events are
callbacks ordered by (time, sequence), so same-time events run in the order
they were scheduled — a property several protocol tests rely on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

from ..errors import SimulationError


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and can be cancelled.
    Cancellation is lazy: the heap entry stays, but the callback is skipped.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "name", "_sim", "_done")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        name: str,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.name = name
        self._sim = sim
        self._done = False

    def cancel(self) -> None:
        """Prevent the callback from firing; safe to call multiple times
        (and a no-op once the event has executed)."""
        if self.cancelled or self._done:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event({self.name!r} @ {self.time:.3f}us, {state})"


class Simulator:
    """Discrete-event simulator with a microsecond clock.

    Usage::

        sim = Simulator()
        sim.schedule(10.0, lambda: print("at t=10us"))
        sim.run_until(100.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._executed = 0
        #: live (scheduled, not yet executed, not cancelled) event count;
        #: kept in sync by schedule/cancel/step so :attr:`pending` is O(1).
        self._live = 0

    # -- clock ---------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of callbacks executed so far (observability/testing)."""
        return self._executed

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued.

        O(1): a live-event counter is maintained by ``schedule``/``cancel``
        and decremented as events execute, so the heap (which may still hold
        lazily-cancelled entries) is never scanned.
        """
        return self._live

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` exactly once per cancellation."""
        self._live -= 1

    # -- scheduling ----------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[[], None], name: str = "event"
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = Event(self._now + delay, next(self._seq), callback, name, sim=self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def schedule_at(
        self, time: float, callback: Callable[[], None], name: str = "event"
    ) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(time, next(self._seq), callback, name, sim=self)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def call_every(
        self,
        interval: float,
        callback: Callable[[], None],
        name: str = "periodic",
        jitter: float = 0.0,
        rng=None,
    ) -> "PeriodicHandle":
        """Run ``callback`` every ``interval`` microseconds until cancelled.

        ``jitter`` (a fraction of the interval) requires ``rng`` and spreads
        firings uniformly in ``interval * (1 ± jitter)``.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        if jitter and rng is None:
            raise SimulationError("jitter requires an rng")
        handle = PeriodicHandle()

        def fire() -> None:
            if handle.cancelled:
                return
            callback()
            if handle.cancelled:  # callback may cancel the loop
                return
            delay = interval
            if jitter:
                delay *= 1.0 + rng.uniform(-jitter, jitter)
            handle.event = self.schedule(delay, fire, name)

        handle.event = self.schedule(interval, fire, name)
        return handle

    # -- running -------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError("event heap corrupted: time went backwards")
            self._now = event.time
            self._executed += 1
            self._live -= 1
            event._done = True
            event.callback()
            return True
        return False

    def run_until(self, time: float, max_events: Optional[int] = None) -> None:
        """Run events until the clock reaches ``time`` (inclusive of events
        scheduled exactly at ``time``).  The clock is advanced to ``time``
        even if the event heap drains first.

        ``max_events`` bounds the number of **executed callbacks** only:
        lazily-cancelled events encountered while scanning the heap are
        purged for free and never consume budget (their cost was already
        accounted when :meth:`Event.cancel` ran).  Exceeding the budget
        raises :class:`SimulationError` without executing further events.
        """
        if self._running:
            raise SimulationError("run_until is not re-entrant")
        if time < self._now:
            raise SimulationError(f"cannot run backwards to t={time}")
        self._running = True
        budget = max_events
        try:
            while self._heap:
                nxt = self._heap[0]
                if nxt.cancelled:
                    # Purge without charging the budget: only executed
                    # callbacks count against max_events.
                    heapq.heappop(self._heap)
                    continue
                if nxt.time > time:
                    break
                if budget is not None:
                    if budget <= 0:
                        raise SimulationError(
                            f"exceeded max_events={max_events} before t={time}"
                        )
                    budget -= 1
                self.step()
            self._now = max(self._now, time)
        finally:
            self._running = False

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the event heap is empty (bounded by ``max_events``)."""
        if self._running:
            raise SimulationError("run is not re-entrant")
        self._running = True
        try:
            for _ in range(max_events):
                if not self.step():
                    return
            raise SimulationError(f"exceeded max_events={max_events}")
        finally:
            self._running = False


class PeriodicHandle:
    """Handle returned by :meth:`Simulator.call_every`."""

    __slots__ = ("event", "cancelled")

    def __init__(self) -> None:
        self.event: Optional[Event] = None
        self.cancelled = False

    def cancel(self) -> None:
        """Stop the periodic callback."""
        self.cancelled = True
        if self.event is not None:
            self.event.cancel()
