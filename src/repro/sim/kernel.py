"""Event-driven simulator core.

Time is a float in **microseconds** (see :mod:`repro.units`).  Events are
callbacks ordered by (time, sequence), so same-time events run in the order
they were scheduled — a property several protocol tests rely on.

Two scheduling tiers share one total order:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return a
  cancellable, named :class:`Event` — the observable API.
* :meth:`Simulator.schedule_fast` / :meth:`Simulator.schedule_call` are the
  hot-path tier used by links, services and load generators: no Event
  object, no name string, no cancellation — just ``(time, seq, fn)`` (or
  ``(time, seq, fn, arg)``) tuples on the heap, compared at C speed.  The
  sequence numbers come from the same counter, so fast and slow entries
  interleave in exactly the order they were scheduled.

The default event queue is a binary heap; ``Simulator(scheduler="calendar")``
swaps in the bucketed calendar queue of :mod:`repro.sim.calqueue`, which
suits workloads dominated by near-uniform inter-arrival times.  Both order
events identically by (time, seq).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

from ..errors import SimulationError

_HEAP_SCHEDULERS = ("heap", "calendar")


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and can be cancelled.
    Cancellation is lazy: the heap entry stays, but the callback is skipped.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "name", "_sim", "_done")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        name: str,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.name = name
        self._sim = sim
        self._done = False

    def cancel(self) -> None:
        """Prevent the callback from firing; safe to call multiple times
        (and a no-op once the event has executed)."""
        if self.cancelled or self._done:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event({self.name!r} @ {self.time:.3f}us, {state})"


class Simulator:
    """Discrete-event simulator with a microsecond clock.

    Usage::

        sim = Simulator()
        sim.schedule(10.0, lambda: print("at t=10us"))
        sim.run_until(100.0)
    """

    def __init__(self, scheduler: str = "heap") -> None:
        if scheduler not in _HEAP_SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; choose one of "
                f"{', '.join(_HEAP_SCHEDULERS)}"
            )
        self._now = 0.0
        #: heap entries are (time, seq, payload[, arg]) tuples; payload is
        #: an Event (cancellable tier) or a bare callable (fast tier).  seq
        #: is unique, so tuple comparison never reaches the payload.
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._executed = 0
        #: Event objects re-armed via :meth:`reschedule` (pool hit count).
        self._reused = 0
        #: live (scheduled, not yet executed, not cancelled) event count;
        #: kept in sync by schedule/cancel/step so :attr:`pending` is O(1).
        self._live = 0
        self.scheduler = scheduler
        if scheduler == "calendar":
            from .calqueue import CalendarQueue

            self._calq: Optional["CalendarQueue"] = CalendarQueue()
        else:
            self._calq = None

    # -- clock ---------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in microseconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of callbacks executed so far (observability/testing)."""
        return self._executed

    @property
    def events_reused(self) -> int:
        """Number of pooled Event re-arms (observability/testing)."""
        return self._reused

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued.

        O(1): a live-event counter is maintained by ``schedule``/``cancel``
        and decremented as events execute, so the heap (which may still hold
        lazily-cancelled entries) is never scanned.
        """
        return self._live

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` exactly once per cancellation."""
        self._live -= 1

    # -- scheduling ----------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[[], None], name: str = "event"
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        event = Event(time, next(self._seq), callback, name, sim=self)
        self._push((time, event.seq, event))
        self._live += 1
        return event

    def schedule_at(
        self, time: float, callback: Callable[[], None], name: str = "event"
    ) -> Event:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(time, next(self._seq), callback, name, sim=self)
        self._push((time, event.seq, event))
        self._live += 1
        return event

    def schedule_fast(self, delay: float, callback: Callable[[], None]) -> None:
        """Hot-path scheduling: no Event object, no name, not cancellable.

        Orders identically to :meth:`schedule` (same sequence counter);
        use for high-volume machinery (packet deliveries, service
        completions) where the Event API's observability costs real time.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        if self._calq is None:
            heapq.heappush(
                self._heap, (self._now + delay, next(self._seq), callback)
            )
        else:
            self._calq.push((self._now + delay, next(self._seq), callback))
        self._live += 1

    def schedule_call(self, delay: float, callback, arg) -> None:
        """Like :meth:`schedule_fast` but invokes ``callback(arg)``.

        Saves the per-call closure/partial allocation of binding ``arg``:
        the argument rides in the heap entry itself.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        if self._calq is None:
            heapq.heappush(
                self._heap, (self._now + delay, next(self._seq), callback, arg)
            )
        else:
            self._calq.push((self._now + delay, next(self._seq), callback, arg))
        self._live += 1

    def _push(self, entry: tuple) -> None:
        if self._calq is None:
            heapq.heappush(self._heap, entry)
        else:
            self._calq.push(entry)

    def reschedule(self, event: Event, delay: float) -> Event:
        """Re-arm an **executed** :class:`Event` ``delay`` microseconds from
        now, reusing the object instead of allocating a fresh one.

        This is the event-object pool for the cancellable tier: a periodic
        loop keeps one Event alive for its whole lifetime (see
        :meth:`call_every`), so ``call_every``-heavy controller racks stop
        churning allocations.  Only legal once the event has fired — its
        queue entry has been popped, so re-pushing the same object cannot
        leave a stale duplicate behind.  The event draws a fresh sequence
        number from the shared counter, so ordering semantics are exactly
        those of a newly-scheduled event.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        if not event._done or event.cancelled:
            raise SimulationError(
                "reschedule requires an executed, uncancelled event"
            )
        event.time = self._now + delay
        event.seq = next(self._seq)
        event._done = False
        self._push((event.time, event.seq, event))
        self._live += 1
        self._reused += 1
        return event

    def call_every(
        self,
        interval: float,
        callback: Callable[[], None],
        name: str = "periodic",
        jitter: float = 0.0,
        rng=None,
    ) -> "PeriodicHandle":
        """Run ``callback`` every ``interval`` microseconds until cancelled.

        ``jitter`` (a fraction of the interval) requires ``rng`` and spreads
        firings uniformly in ``interval * (1 ± jitter)``.

        The loop allocates **one** Event for its whole lifetime: each tick
        re-arms it via :meth:`reschedule` (the entry just popped belongs to
        the event now firing, so reuse is safe), keeping the handle fully
        cancellable without a per-tick allocation.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        if jitter and rng is None:
            raise SimulationError("jitter requires an rng")
        handle = PeriodicHandle()

        def fire() -> None:
            if handle.cancelled:
                return
            callback()
            if handle.cancelled:  # callback may cancel the loop
                return
            delay = interval
            if jitter:
                delay *= 1.0 + rng.uniform(-jitter, jitter)
            handle.event = self.reschedule(handle.event, delay)

        handle.event = self.schedule(interval, fire, name)
        return handle

    def call_every_fast(
        self,
        interval: float,
        callback: Callable[[], None],
        jitter: float = 0.0,
        rng=None,
    ) -> "FastPeriodicHandle":
        """:meth:`call_every` without the per-tick Event allocation.

        Semantics are tick-for-tick identical — first firing after an
        un-jittered ``interval``, then ``callback()`` *before* the jitter
        draw, so RNG draw order matches ``call_every`` exactly (the
        byte-identity of recorded experiments depends on this).  The only
        difference: cancellation leaves the already-scheduled next tick in
        the queue as a no-op instead of cancelling it.  Use for high-rate
        loops (open-loop load generators); keep ``call_every`` where the
        handle's pending event must be observable/cancellable.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        if jitter and rng is None:
            raise SimulationError("jitter requires an rng")
        handle = FastPeriodicHandle()
        schedule_fast = self.schedule_fast

        def fire() -> None:
            if handle.cancelled:
                return
            callback()
            if handle.cancelled:  # callback may cancel the loop
                return
            delay = interval
            if jitter:
                delay *= 1.0 + rng.uniform(-jitter, jitter)
            schedule_fast(delay, fire)

        schedule_fast(interval, fire)
        return handle

    def call_every_batched(
        self,
        interval: float,
        callback: Callable[[], None],
        jitter: float = 0.0,
        rng=None,
        batch: int = 64,
    ) -> "FastPeriodicHandle":
        """Batched arrival generation: pre-draw and pre-schedule ``batch``
        ticks per refill instead of one reschedule per tick.

        The inter-arrival samples for a whole block are drawn in one tight
        loop (vectorized sampling per stream) and pushed as bare heap
        tuples; a single refill entry rides after the block's last tick.
        Statistically the tick process matches :meth:`call_every_fast`
        (same jitter distribution, same mean rate), but it is **opt-in**
        precisely because it is *not* draw-for-draw identical: a stream
        draws its whole block up front, so draws interleave differently
        with any other use of the same ``rng`` — recorded experiments that
        promise byte-identical output must keep the unbatched loop.
        Cancellation leaves the rest of the current block in the queue as
        no-ops (up to ``batch`` dead entries).
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        if batch < 1:
            raise SimulationError(f"batch must be >= 1, got {batch}")
        if jitter and rng is None:
            raise SimulationError("jitter requires an rng")
        handle = FastPeriodicHandle()

        def tick() -> None:
            if not handle.cancelled:
                callback()

        def refill() -> None:
            if handle.cancelled:
                return
            seq = self._seq
            entries = []
            if jitter:
                rand = rng.random
                low = 1.0 - jitter
                span = 2.0 * jitter
                t = self._now
                for _ in range(batch):
                    t += interval * (low + span * rand())
                    entries.append((t, next(seq), tick))
            else:
                now = self._now
                for i in range(1, batch + 1):
                    entries.append((now + interval * i, next(seq), tick))
                t = entries[-1][0]
            # the refill shares the last tick's time but a later seq, so it
            # runs immediately after it and tops the queue back up
            entries.append((t, next(seq), refill))
            if self._calq is None:
                heap = self._heap
                push = heapq.heappush
                for entry in entries:
                    push(heap, entry)
            else:
                self._calq.push_many(entries)
            self._live += len(entries)

        refill()
        return handle

    # -- running -------------------------------------------------------

    def _pop_next(self) -> Optional[tuple]:
        """Pop the next entry from whichever queue backs this simulator."""
        if self._calq is None:
            if not self._heap:
                return None
            return heapq.heappop(self._heap)
        return self._calq.pop()

    def _peek_next(self) -> Optional[tuple]:
        if self._calq is None:
            if not self._heap:
                return None
            return self._heap[0]
        return self._calq.peek()

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain."""
        while True:
            entry = self._pop_next()
            if entry is None:
                return False
            payload = entry[2]
            if payload.__class__ is Event:
                if payload.cancelled:
                    continue
                payload._done = True
                callback = payload.callback
            else:
                callback = payload
            time = entry[0]
            if time < self._now:
                raise SimulationError("event heap corrupted: time went backwards")
            self._now = time
            self._executed += 1
            self._live -= 1
            if len(entry) == 4:
                callback(entry[3])
            else:
                callback()
            return True

    def run_until(self, time: float, max_events: Optional[int] = None) -> None:
        """Run events until the clock reaches ``time`` (inclusive of events
        scheduled exactly at ``time``).  The clock is advanced to ``time``
        even if the event heap drains first.

        ``max_events`` bounds the number of **executed callbacks** only:
        lazily-cancelled events encountered while scanning the heap are
        purged for free and never consume budget (their cost was already
        accounted when :meth:`Event.cancel` ran).  Exceeding the budget
        raises :class:`SimulationError` without executing further events.
        """
        if self._running:
            raise SimulationError("run_until is not re-entrant")
        if time < self._now:
            raise SimulationError(f"cannot run backwards to t={time}")
        self._running = True
        try:
            if self._calq is None:
                self._run_heap_until(time, max_events)
            else:
                self._run_calendar_until(time, max_events)
            self._now = max(self._now, time)
        finally:
            self._running = False

    def _run_heap_until(self, time: float, max_events: Optional[int]) -> None:
        """The inlined hot loop: local aliases, tuple entries, no step()
        call overhead.  Semantics match the documented run_until contract."""
        heap = self._heap
        pop = heapq.heappop
        budget = max_events
        event_class = Event
        while heap:
            entry = heap[0]
            entry_time = entry[0]
            payload = entry[2]
            if payload.__class__ is event_class and payload.cancelled:
                # Purge without charging the budget: only executed
                # callbacks count against max_events.
                pop(heap)
                continue
            if entry_time > time:
                break
            if budget is not None:
                if budget <= 0:
                    raise SimulationError(
                        f"exceeded max_events={max_events} before t={time}"
                    )
                budget -= 1
            pop(heap)
            self._now = entry_time
            self._executed += 1
            self._live -= 1
            if payload.__class__ is event_class:
                payload._done = True
                payload.callback()
            elif len(entry) == 4:
                payload(entry[3])
            else:
                payload()

    def _run_calendar_until(self, time: float, max_events: Optional[int]) -> None:
        calq = self._calq
        budget = max_events
        event_class = Event
        while True:
            entry = calq.peek()
            if entry is None:
                break
            payload = entry[2]
            if payload.__class__ is event_class and payload.cancelled:
                calq.pop()
                continue
            if entry[0] > time:
                break
            if budget is not None:
                if budget <= 0:
                    raise SimulationError(
                        f"exceeded max_events={max_events} before t={time}"
                    )
                budget -= 1
            calq.pop()
            self._now = entry[0]
            self._executed += 1
            self._live -= 1
            if payload.__class__ is event_class:
                payload._done = True
                payload.callback()
            elif len(entry) == 4:
                payload(entry[3])
            else:
                payload()

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the event heap is empty (bounded by ``max_events``)."""
        if self._running:
            raise SimulationError("run is not re-entrant")
        self._running = True
        try:
            for _ in range(max_events):
                if not self.step():
                    return
            raise SimulationError(f"exceeded max_events={max_events}")
        finally:
            self._running = False


class PeriodicHandle:
    """Handle returned by :meth:`Simulator.call_every`."""

    __slots__ = ("event", "cancelled")

    def __init__(self) -> None:
        self.event: Optional[Event] = None
        self.cancelled = False

    def cancel(self) -> None:
        """Stop the periodic callback."""
        self.cancelled = True
        if self.event is not None:
            self.event.cancel()


class FastPeriodicHandle:
    """Handle returned by :meth:`Simulator.call_every_fast`."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        """Stop the periodic callback (the pending tick no-ops)."""
        self.cancelled = True
