"""repro — a full reproduction of "The Case For In-Network Computing On
Demand" (EuroSys 2019).

Top-level convenience exports cover the most common entry points; the
subpackages hold the full system:

* :mod:`repro.steady` — calibrated power/latency curves (Figures 3–5);
* :mod:`repro.core` — the on-demand controllers and analyses (§8–§10);
* :mod:`repro.apps` — the three applications, software and hardware;
* :mod:`repro.experiments` — one runner per paper figure/table.
"""

from .calibration import I7_6700K, XEON_E5_2637, XEON_E5_2660
from .core import (
    HostController,
    NetworkController,
    OnDemandService,
    PaxosShiftController,
    PredictiveController,
    ShiftController,
    tipping_point,
)
from .sim import Simulator
from .steady import dns_models, find_crossover, kvs_models, paxos_models

__version__ = "1.0.0"

__all__ = [
    "I7_6700K",
    "XEON_E5_2637",
    "XEON_E5_2660",
    "HostController",
    "NetworkController",
    "OnDemandService",
    "PaxosShiftController",
    "PredictiveController",
    "ShiftController",
    "tipping_point",
    "Simulator",
    "dns_models",
    "find_crossover",
    "kvs_models",
    "paxos_models",
    "__version__",
]
