"""The network-controlled on-demand controller (§9.1).

"The first controller design makes offloading decisions in the network
hardware, based on the traffic load. … The controller uses a pair of
parameters to shift a workload from the host to the network.  The first
parameter is the average message rate that would trigger the transition,
and the second is the averaging period (implemented as a sliding window).
… A mirror pair of parameters is used to shift workloads from the network
back to the host."

The controller lives conceptually inside the device's classifier module
(40 lines of FPGA code, ~0.1% resources); here it reads the classifier's
per-class packet counters on a periodic tick, maintains the two sliding
windows, and drives an :class:`OnDemandService`.

Its §9.1 disadvantage is reproduced faithfully: it sees only the packet
rate, never the host's power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import calibration as cal
from ..errors import ConfigurationError
from ..net.classifier import PacketClassifier
from ..net.packet import TrafficClass
from ..sim import Simulator, TimeSeries
from ..units import msec, sec
from .controller import ServiceShiftController
from .ondemand import OnDemandService
from .window import SlidingWindowRate


@dataclass(frozen=True)
class NetworkControllerConfig:
    """All parameters are configurable (§9.1: "The control is not entirely
    automatic: all of its parameters are configurable")."""

    up_rate_pps: float
    down_rate_pps: float
    up_window_us: float = sec(cal.CONTROLLER_SUSTAIN_S)
    down_window_us: float = sec(cal.CONTROLLER_SUSTAIN_S)
    tick_us: float = msec(100.0)

    def __post_init__(self):
        if self.up_rate_pps <= self.down_rate_pps:
            raise ConfigurationError(
                "hysteresis requires up_rate > down_rate "
                f"(got {self.up_rate_pps} <= {self.down_rate_pps})"
            )
        if min(self.up_window_us, self.down_window_us, self.tick_us) <= 0:
            raise ConfigurationError("windows and tick must be positive")


#: Per-application default configurations at the §4 crossovers.
DEFAULT_CONFIGS = {
    "kvs": NetworkControllerConfig(cal.NETCTL_KVS_UP_PPS, cal.NETCTL_KVS_DOWN_PPS),
    "paxos": NetworkControllerConfig(cal.NETCTL_PAXOS_UP_PPS, cal.NETCTL_PAXOS_DOWN_PPS),
    "dns": NetworkControllerConfig(cal.NETCTL_DNS_UP_PPS, cal.NETCTL_DNS_DOWN_PPS),
}


class NetworkController(ServiceShiftController):
    """Rate-threshold controller reading classifier counters."""

    kind = "network"

    def __init__(
        self,
        sim: Simulator,
        classifier: PacketClassifier,
        traffic_class: TrafficClass,
        service: OnDemandService,
        config: NetworkControllerConfig,
    ):
        super().__init__(service)
        self.sim = sim
        self.classifier = classifier
        self.traffic_class = traffic_class
        self.config = config
        self._up_window = SlidingWindowRate(config.up_window_us)
        self._down_window = SlidingWindowRate(config.down_window_us)
        self._last_count = classifier.counters[traffic_class]
        self._started_at = sim.now
        self.rate_series = TimeSeries("netctl.rate")
        self._timer = sim.call_every(config.tick_us, self._tick, name="netctl.tick")

    def _tick(self) -> None:
        now = self.sim.now
        count = self.classifier.counters[self.traffic_class]
        delta = count - self._last_count
        self._last_count = count
        self._up_window.observe(now, delta)
        self._down_window.observe(now, delta)
        up_rate = self._up_window.rate_pps(now)
        down_rate = self._down_window.rate_pps(now)
        self.rate_series.record(now, up_rate)

        if not self.service.in_hardware:
            # require a full window of history: the §9.1 "sustained" rule
            if (
                now - self._started_at >= self.config.up_window_us
                and up_rate >= self.config.up_rate_pps
            ):
                self.service.shift_to_hardware(
                    reason=f"rate {up_rate:.0f}pps >= {self.config.up_rate_pps:.0f}pps"
                )
                self._down_window.reset()
                self._started_at = now
        else:
            if (
                now - self._started_at >= self.config.down_window_us
                and down_rate <= self.config.down_rate_pps
            ):
                self.service.shift_to_software(
                    reason=f"rate {down_rate:.0f}pps <= {self.config.down_rate_pps:.0f}pps"
                )
                self._up_window.reset()
                self._started_at = now

    def stop(self) -> None:
        self._timer.cancel()
