"""The §9.1 *centralized* controller at datacenter scale.

§9.1 sketches, beyond the host- and network-controlled designs, a
centralized controller: an orchestrator that reads traffic counters from
the switches and decides fleet-wide where work should run.  At single-ToR
scale that collapses into :class:`PaxosShiftController`; the interesting
version needs a fabric.  :class:`FabricController` is that version: it
reads per-(class, logical-dst) counters from every ToR via the spine
(:meth:`repro.net.topology.Fabric.rack_logical_counts`) and per-host
served rates from the dispatch routers, and issues two kinds of decision:

* **placement shifts** — per-host software<->hardware moves through each
  host's :class:`OnDemandService`, driven by the host's served rate
  against its device's thresholds (the network-controlled policy, but
  decided centrally for the whole fleet);
* **shard steering** — moving a key shard from a sustained-hot host to
  the coldest eligible host by updating every switch's
  :class:`~repro.net.classifier.KeyShardRouter` in lock-step
  (:class:`~repro.net.classifier.RouterFleet`).

Cross-rack steering is deliberately more conservative than same-rack
steering: a cross-rack move puts the shard's traffic on the oversubscribed
uplinks for good, so the hot host must sustain its overload for
``cross_rack_sustain_us`` (versus ``same_rack_sustain_us`` for a move
that stays inside the rack) before the controller commits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError
from ..net.classifier import RouterFleet
from ..net.packet import TrafficClass
from ..sim import Simulator, TimeSeries
from ..units import msec, sec
from .controller import ShiftController
from .ondemand import OnDemandService
from .window import SlidingWindowRate

#: Fleet-level controller families a ``ScenarioSpec.fabric_controller``
#: may name (registered beside CONTROLLER_KINDS / PAXOS_CONTROLLER_KINDS).
FABRIC_CONTROLLER_KINDS = ("fabric",)


@dataclass(frozen=True)
class FabricControllerConfig:
    """Thresholds and pacing for the centralized fabric controller.

    ``shift_up_pps``/``shift_down_pps`` default to each host's own device
    thresholds (passed per placement); set them to override fleet-wide.
    """

    hot_host_pps: float = 20_000.0
    cold_host_pps: float = 10_000.0
    shift_up_pps: Optional[float] = None
    shift_down_pps: Optional[float] = None
    window_us: float = sec(0.5)
    tick_us: float = msec(100.0)
    same_rack_sustain_us: float = sec(0.3)
    cross_rack_sustain_us: float = sec(0.9)
    max_steers: int = 8

    def __post_init__(self):
        if self.hot_host_pps <= self.cold_host_pps:
            raise ConfigurationError("hot_host_pps must exceed cold_host_pps")
        if self.shift_up_pps is not None and self.shift_down_pps is not None:
            if self.shift_up_pps <= self.shift_down_pps:
                raise ConfigurationError("shift_up_pps must exceed shift_down_pps")
        if self.window_us <= 0 or self.tick_us <= 0:
            raise ConfigurationError("window_us and tick_us must be positive")
        if self.same_rack_sustain_us <= 0:
            raise ConfigurationError("same_rack_sustain_us must be positive")
        if self.cross_rack_sustain_us < self.same_rack_sustain_us:
            raise ConfigurationError(
                "cross_rack_sustain_us must be >= same_rack_sustain_us "
                "(cross-rack moves are the more disruptive ones)"
            )
        if self.max_steers < 0:
            raise ConfigurationError("max_steers must be >= 0")


@dataclass(frozen=True)
class HostPlacement:
    """One host as the fabric controller sees it."""

    host: str
    rack: str
    service: Optional[OnDemandService] = None
    #: device thresholds for the centralized placement policy; None on
    #: either disables placement control for this host.
    shift_up_pps: Optional[float] = None
    shift_down_pps: Optional[float] = None


@dataclass(frozen=True)
class SteerEvent:
    """One shard moved by the centralized controller."""

    time_us: float
    shard: int
    from_host: str
    to_host: str
    from_rack: str
    to_rack: str

    @property
    def cross_rack(self) -> bool:
        return self.from_rack != self.to_rack


class FabricController(ShiftController):
    """Centralized fleet orchestrator over a leaf-spine fabric."""

    kind = "fabric"

    def __init__(
        self,
        sim: Simulator,
        fabric,
        traffic_class: TrafficClass,
        logical_dst: str,
        placements: Sequence[HostPlacement],
        fleet: Optional[RouterFleet] = None,
        config: Optional[FabricControllerConfig] = None,
    ):
        if not placements:
            raise ConfigurationError("fabric controller needs at least one host")
        self.sim = sim
        self.fabric = fabric
        self.traffic_class = traffic_class
        self.logical_dst = logical_dst
        self.placements: Dict[str, HostPlacement] = {
            p.host: p for p in placements
        }
        if len(self.placements) != len(placements):
            raise ConfigurationError("duplicate host in fabric placements")
        self.fleet = fleet
        self.config = config or FabricControllerConfig()
        self.rate_series = TimeSeries("fabricctl.rate")
        self.steers: List[SteerEvent] = []
        self._shift_times_us: List[float] = []
        self._fleet_window = SlidingWindowRate(self.config.window_us)
        self._host_windows: Dict[str, SlidingWindowRate] = {
            host: SlidingWindowRate(self.config.window_us)
            for host in self.placements
        }
        self._last_fleet_count = fabric.logical_count(traffic_class, logical_dst)
        self._last_per_host: Dict[str, int] = dict(
            fleet.per_host if fleet is not None else {}
        )
        #: first tick at which each host's rate crossed hot_host_pps and
        #: stayed there — the §9.1 "sustained" requirement per host.
        self._hot_since: Dict[str, float] = {}
        self._started_at = sim.now
        self._timer = sim.call_every(
            self.config.tick_us, self._tick, name="fabricctl.tick"
        )

    # -- introspection -----------------------------------------------------

    def shift_times_us(self) -> List[float]:
        """Placement shifts this controller caused (not steers)."""
        return list(self._shift_times_us)

    def steer_times_us(self) -> List[float]:
        return [s.time_us for s in self.steers]

    def host_rate_pps(self, host: str) -> float:
        return self._host_windows[host].rate_pps(self.sim.now)

    def rack_rates_pps(self) -> Dict[str, float]:
        """Served rate per rack (sum of its hosts' windows)."""
        now = self.sim.now
        rates: Dict[str, float] = {}
        for host, placement in self.placements.items():
            rates[placement.rack] = rates.get(placement.rack, 0.0) + (
                self._host_windows[host].rate_pps(now)
            )
        return rates

    # -- control loop ------------------------------------------------------

    def _tick(self) -> None:
        now = self.sim.now
        fleet_count = self.fabric.logical_count(self.traffic_class, self.logical_dst)
        self._fleet_window.observe(now, fleet_count - self._last_fleet_count)
        self._last_fleet_count = fleet_count
        self.rate_series.record(now, self._fleet_window.rate_pps(now))
        if self.fleet is not None:
            per_host = self.fleet.per_host
            for host, window in self._host_windows.items():
                count = per_host.get(host, 0)
                window.observe(now, count - self._last_per_host.get(host, 0))
                self._last_per_host[host] = count
        if now - self._started_at < self.config.window_us:
            return
        self._drive_placements(now)
        self._maybe_steer(now)

    def _drive_placements(self, now: float) -> None:
        for host, placement in self.placements.items():
            service = placement.service
            if service is None:
                continue
            up = (
                self.config.shift_up_pps
                if self.config.shift_up_pps is not None
                else placement.shift_up_pps
            )
            down = (
                self.config.shift_down_pps
                if self.config.shift_down_pps is not None
                else placement.shift_down_pps
            )
            if up is None or down is None:
                continue
            rate = self._host_windows[host].rate_pps(now)
            if not service.in_hardware and not service.warming and rate >= up:
                if service.shift_to_hardware(
                    f"fabricctl: {host} at {rate:.0f} pps >= {up:.0f}"
                ):
                    self._shift_times_us.append(now)
            elif service.in_hardware and rate <= down:
                if service.shift_to_software(
                    f"fabricctl: {host} at {rate:.0f} pps <= {down:.0f}"
                ):
                    self._shift_times_us.append(now)

    def _maybe_steer(self, now: float) -> None:
        fleet = self.fleet
        if fleet is None or len(self.steers) >= self.config.max_steers:
            return
        rates = {
            host: window.rate_pps(now)
            for host, window in self._host_windows.items()
        }
        # track per-host sustained overload
        for host, rate in rates.items():
            if rate >= self.config.hot_host_pps:
                self._hot_since.setdefault(host, now)
            else:
                self._hot_since.pop(host, None)
        # hottest sustained-hot host that can give up a shard without
        # going dark (keeps at least one)
        candidates = [
            host
            for host in self._hot_since
            if len(fleet.shards_of(host)) >= 2
        ]
        if not candidates:
            return
        hot = max(candidates, key=lambda h: (rates[h], h))
        hot_rack = self.placements[hot].rack
        sustained_us = now - self._hot_since[hot]
        cold_hosts = [
            host
            for host, rate in rates.items()
            if host != hot and rate <= self.config.cold_host_pps
        ]
        if not cold_hosts:
            return
        # prefer a target inside the hot host's rack (cheaper move, shorter
        # sustain requirement); fall back to the coldest host fleet-wide.
        same_rack = [
            h for h in cold_hosts if self.placements[h].rack == hot_rack
        ]
        if same_rack and sustained_us >= self.config.same_rack_sustain_us:
            target = min(same_rack, key=lambda h: (rates[h], h))
        elif sustained_us >= self.config.cross_rack_sustain_us:
            target = min(cold_hosts, key=lambda h: (rates[h], h))
        else:
            return
        shard = max(fleet.shards_of(hot))
        fleet.reassign(shard, target)
        self.steers.append(
            SteerEvent(
                time_us=now,
                shard=shard,
                from_host=hot,
                to_host=target,
                from_rack=hot_rack,
                to_rack=self.placements[target].rack,
            )
        )
        # require a fresh sustain before the next move (anti-flap)
        self._hot_since.pop(hot, None)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
