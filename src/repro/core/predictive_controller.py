"""Model-predictive (PEAS-inspired) on-demand controller — §9.1 future work.

The paper's controllers are deliberately naive threshold machines and §9.1
points forward: "The algorithms used in this paper are naive … They can be
enhanced by more sophisticated algorithms … such as those based on PEAS
[peak-efficiency-aware scheduling]".

:class:`PredictiveController` implements that enhancement: instead of raw
rate/power thresholds it carries the calibrated steady-state models of both
placements and shifts when the *predicted power saving* at the measured
rate exceeds a margin — amortizing the shift cost (warm-up misses served by
software) over an expected residence time.  The margin plus the amortized
shift cost provide hysteresis without hand-tuned threshold pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..net.classifier import PacketClassifier
from ..net.packet import TrafficClass
from ..sim import Simulator, TimeSeries
from ..steady.base import SteadyModel
from ..units import msec, sec
from .controller import ServiceShiftController
from .ondemand import OnDemandService
from .window import SlidingWindowRate


@dataclass(frozen=True)
class PredictiveControllerConfig:
    #: minimum predicted saving (W) before any shift is taken
    margin_w: float = 2.0
    #: expected residence time used to amortize shift costs
    expected_residence_s: float = 60.0
    #: energy cost of one shift to hardware (J): warm-up misses served by
    #: software at elevated power
    shift_to_hw_cost_j: float = 20.0
    #: energy cost of one shift back (J): usually near zero
    shift_to_sw_cost_j: float = 2.0
    window_us: float = sec(3.0)
    tick_us: float = msec(200.0)

    def __post_init__(self):
        if self.margin_w < 0:
            raise ConfigurationError("margin_w must be >= 0")
        if self.expected_residence_s <= 0:
            raise ConfigurationError("expected_residence_s must be positive")


class PredictiveController(ServiceShiftController):
    """Chooses the placement with the lower predicted power at the current
    windowed rate, with margin + amortized shift cost as hysteresis.

    ``software_model`` should be the software power curve; ``hardware_model``
    the hardware curve; ``standby_card_w`` the §9.2 standby cost paid while
    running in software (0 if the card would be removed entirely).
    """

    kind = "predictive"

    def __init__(
        self,
        sim: Simulator,
        classifier: PacketClassifier,
        traffic_class: TrafficClass,
        service: OnDemandService,
        software_model: SteadyModel,
        hardware_model: SteadyModel,
        standby_card_w: float = 0.0,
        config: PredictiveControllerConfig = None,
    ):
        super().__init__(service)
        self.sim = sim
        self.classifier = classifier
        self.traffic_class = traffic_class
        self.software_model = software_model
        self.hardware_model = hardware_model
        self.standby_card_w = standby_card_w
        self.config = config or PredictiveControllerConfig()
        self._window = SlidingWindowRate(self.config.window_us)
        self._last_count = classifier.counters[traffic_class]
        self._started_at = sim.now
        self.prediction_series = TimeSeries("predictive.saving")
        self._timer = sim.call_every(
            self.config.tick_us, self._tick, name="predictive.tick"
        )

    # -- the model-predictive decision --------------------------------------

    def predicted_saving_w(self, rate_pps: float) -> float:
        """Predicted power saving of hardware placement at ``rate_pps``.

        Positive = hardware placement is cheaper.
        """
        software_w = self.software_model.power_at(
            min(rate_pps, self.software_model.capacity_pps)
        ) + self.standby_card_w
        hardware_w = self.hardware_model.power_at(
            min(rate_pps, self.hardware_model.capacity_pps)
        )
        return software_w - hardware_w

    def _amortized_shift_cost_w(self, to_hardware: bool) -> float:
        cost_j = (
            self.config.shift_to_hw_cost_j
            if to_hardware
            else self.config.shift_to_sw_cost_j
        )
        return cost_j / self.config.expected_residence_s

    def decide(self, rate_pps: float) -> bool:
        """True if the workload should run in hardware at this rate."""
        saving = self.predicted_saving_w(rate_pps)
        if self.service.in_hardware:
            # shift back only if software wins by margin + amortized cost
            threshold = -(self.config.margin_w + self._amortized_shift_cost_w(False))
            return saving > threshold
        return saving >= self.config.margin_w + self._amortized_shift_cost_w(True)

    # -- plumbing -----------------------------------------------------------

    def _tick(self) -> None:
        now = self.sim.now
        count = self.classifier.counters[self.traffic_class]
        self._window.observe(now, count - self._last_count)
        self._last_count = count
        if now - self._started_at < self.config.window_us:
            return
        rate = self._window.rate_pps(now)
        saving = self.predicted_saving_w(rate)
        self.prediction_series.record(now, saving)
        want_hardware = self.decide(rate)
        if want_hardware and not self.service.in_hardware:
            self.service.shift_to_hardware(
                reason=f"predicted saving {saving:.1f}W at {rate:.0f}pps"
            )
        elif not want_hardware and self.service.in_hardware:
            self.service.shift_to_software(
                reason=f"predicted saving {saving:.1f}W at {rate:.0f}pps"
            )

    def stop(self) -> None:
        self._timer.cancel()
