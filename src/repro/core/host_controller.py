"""The host-controlled on-demand controller (§9.1).

"The second controller design makes offloading decisions at the host, using
information such as the CPU usage and power consumption. … If the
application exceeds a (programmable) power threshold set for offloading,
and CPU usage is high, the controller shifts the workload to the network.
Monitoring the power consumption alone is not sufficient, as a high power
consumption can be triggered by multiple applications running on the same
host.  … In order to shift back to the host from the network, the
controller needs information from the network (e.g., packet rate processed
using in-network computing)."

Inputs, all windowed (§9.1: "the information is inspected over time,
avoiding harsh decisions based on spikes and outliers"):

* RAPL package power, obtained by differencing energy counters
  (:class:`repro.host.rapl.RaplPowerEstimator`) — the paper's controller
  spends its 0.3% CPU "mainly … performing RAPL reads";
* host CPU utilization (the co-located-job signal of Figure 6);
* hardware-processed packet rate from the device classifier (shift-back
  feedback).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .. import calibration as cal
from ..errors import ConfigurationError
from ..host.rapl import RaplDomain, RaplPowerEstimator
from ..net.classifier import PacketClassifier
from ..net.packet import TrafficClass
from ..sim import Simulator, TimeSeries
from ..units import msec, sec
from .controller import ServiceShiftController
from .ondemand import OnDemandService
from .window import SlidingWindowMean, SlidingWindowRate


@dataclass(frozen=True)
class HostControllerConfig:
    power_up_w: float = cal.HOSTCTL_POWER_UP_W
    power_down_w: float = cal.HOSTCTL_POWER_DOWN_W
    cpu_up: float = cal.HOSTCTL_CPU_UP_FRACTION
    cpu_down: float = cal.HOSTCTL_CPU_DOWN_FRACTION
    #: network-feedback rate below which shifting back is allowed
    rate_down_pps: float = cal.NETCTL_KVS_DOWN_PPS
    window_us: float = sec(cal.CONTROLLER_SUSTAIN_S)
    tick_us: float = msec(200.0)

    def __post_init__(self):
        if self.power_up_w <= self.power_down_w:
            raise ConfigurationError("power_up_w must exceed power_down_w")
        if self.cpu_up <= self.cpu_down:
            raise ConfigurationError("cpu_up must exceed cpu_down")
        if min(self.window_us, self.tick_us) <= 0:
            raise ConfigurationError("window and tick must be positive")


class HostController(ServiceShiftController):
    """CPU+RAPL controller driving an :class:`OnDemandService`."""

    kind = "host"

    def __init__(
        self,
        sim: Simulator,
        server,
        service: OnDemandService,
        config: Optional[HostControllerConfig] = None,
        classifier: Optional[PacketClassifier] = None,
        traffic_class: Optional[TrafficClass] = None,
    ):
        super().__init__(service)
        self.sim = sim
        self.server = server
        self.config = config or HostControllerConfig()
        self.classifier = classifier
        self.traffic_class = traffic_class

        self._rapl = RaplPowerEstimator(server.rapl, RaplDomain.PACKAGE_0, sim)
        self._power_window = SlidingWindowMean(self.config.window_us)
        self._cpu_window = SlidingWindowMean(self.config.window_us)
        self._hw_rate_window = SlidingWindowRate(self.config.window_us)
        self._last_hw_count = self._read_hw_counter()

        self.power_series = TimeSeries("hostctl.rapl-power")
        self.cpu_series = TimeSeries("hostctl.cpu")
        self._timer = sim.call_every(
            self.config.tick_us, self._tick, name="hostctl.tick"
        )
        # §9.1: the controller itself costs ~0.3% of a core (RAPL reads).
        server.cpu.set_load(
            "hostctl", cores=1.0, utilization=cal.HOSTCTL_CPU_OVERHEAD_FRACTION
        )

    # -- signal collection --------------------------------------------------

    def _read_hw_counter(self) -> int:
        if self.classifier is None or self.traffic_class is None:
            return 0
        return self.classifier.counters[self.traffic_class]

    def _tick(self) -> None:
        now = self.sim.now
        power = self._rapl.read_power_w()
        if power is not None:
            self._power_window.observe(now, power)
            self.power_series.record(now, power)
        cpu = self.server.cpu.utilization
        self._cpu_window.observe(now, cpu)
        self.cpu_series.record(now, cpu)
        hw_count = self._read_hw_counter()
        if self.service.in_hardware:
            self._hw_rate_window.observe(now, hw_count - self._last_hw_count)
        self._last_hw_count = hw_count
        self._decide(now)

    # -- decisions -------------------------------------------------------------

    def _decide(self, now: float) -> None:
        cfg = self.config
        if not self.service.in_hardware:
            if not (self._power_window.full(now) and self._cpu_window.full(now)):
                return
            power = self._power_window.mean(now)
            cpu = self._cpu_window.mean(now)
            if power >= cfg.power_up_w and cpu >= cfg.cpu_up:
                self.service.shift_to_hardware(
                    reason=f"RAPL {power:.1f}W >= {cfg.power_up_w}W, "
                    f"CPU {cpu:.0%} >= {cfg.cpu_up:.0%}"
                )
                self._hw_rate_window.reset()
                self._cpu_window.reset()
                self._power_window.reset()
        else:
            if not self._power_window.full(now):
                return
            power = self._power_window.mean(now)
            hw_rate = self._hw_rate_window.rate_pps(now)
            # Shift back only when the host calmed down AND the network
            # reports a rate software can serve efficiently (§9.1:
            # "Otherwise, the shift may be inefficient, or cause a workload
            # to bounce back and forth").
            if power <= cfg.power_down_w and hw_rate <= cfg.rate_down_pps:
                self.service.shift_to_software(
                    reason=f"RAPL {power:.1f}W <= {cfg.power_down_w}W, "
                    f"hw rate {hw_rate:.0f}pps <= {cfg.rate_down_pps:.0f}pps"
                )
                self._cpu_window.reset()
                self._power_window.reset()

    def stop(self) -> None:
        self._timer.cancel()
        self.server.cpu.clear_load("hostctl")
