"""Shift strategies for the programmed-but-inactive device (§9.2).

The paper weighs three ways to keep LaKe ready while the workload runs in
software:

* **RESET_AND_GATE** (chosen by the paper): memories held in reset, logic
  clock-gated — "the approach that keeps LaKe programmed but inactive, in
  order to get the best of both performance and power efficiency worlds".
  Standby power is minimal, but the caches come up cold after a shift.
* **KEEP_WARM**: the design stays fully powered and the caches stay warm —
  zero warm-up penalty, "reduced power saving".
* **PARTIAL_RECONFIGURATION**: the FPGA region is reprogrammed on demand —
  near-NIC standby power but "may result in a momentary traffic halt".

:class:`ShiftStrategyModel` quantifies the §9.2 trade-off so the ablation
benchmark can reproduce the paper's choice: given a shift cadence and load,
it scores standby energy vs warm-up and halt penalties.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .. import calibration as cal
from ..errors import ConfigurationError


class ShiftStrategy(enum.Enum):
    RESET_AND_GATE = "reset-and-gate"
    KEEP_WARM = "keep-warm"
    PARTIAL_RECONFIGURATION = "partial-reconfiguration"


#: FPGA partial reconfiguration of a LaKe-sized region: bitstream load time.
#: Order of 100ms for a multi-MB partial bitstream over ICAP.
PARTIAL_RECONFIG_HALT_S = 0.25

#: Cold-cache warm-up time constant: at rate R, the hot set is re-fetched in
#: roughly hot_set/R seconds; misses during warm-up are served by software
#: at the miss latency instead of the hit latency.
DEFAULT_HOT_SET_KEYS = 40_000.0


@dataclass(frozen=True)
class StrategyAssessment:
    """Outcome of evaluating one strategy over one duty cycle."""

    strategy: ShiftStrategy
    standby_power_w: float
    warmup_s: float
    traffic_halt_s: float
    #: energy over the assessed period relative to KEEP_WARM standby (J)
    standby_energy_j: float

    def dominates(self, other: "StrategyAssessment") -> bool:
        """Strictly better or equal on every §9.2 axis."""
        return (
            self.standby_energy_j <= other.standby_energy_j
            and self.warmup_s <= other.warmup_s
            and self.traffic_halt_s <= other.traffic_halt_s
        )


class ShiftStrategyModel:
    """Evaluate the §9.2 strategy trade-off for a LaKe-class design."""

    def __init__(
        self,
        active_card_w: float = cal.LAKE_CARD_W,
        gated_card_w: float = None,
        nic_only_w: float = cal.NETFPGA_SHELL_W,
        hot_set_keys: float = DEFAULT_HOT_SET_KEYS,
    ):
        if gated_card_w is None:
            # shell + clock-gated logic + memories in reset (§5.1 arithmetic)
            gated_card_w = (
                cal.NETFPGA_SHELL_W
                + (cal.LAKE_LOGIC_TOTAL_W - cal.CLOCK_GATING_SAVING_W)
                + cal.MEMORIES_TOTAL_W * (1.0 - cal.MEMORY_RESET_SAVING_FRACTION)
            )
        if not nic_only_w <= gated_card_w <= active_card_w:
            raise ConfigurationError(
                "expected nic_only <= gated <= active card power"
            )
        self.active_card_w = active_card_w
        self.gated_card_w = gated_card_w
        self.nic_only_w = nic_only_w
        self.hot_set_keys = hot_set_keys

    def standby_power_w(self, strategy: ShiftStrategy) -> float:
        if strategy is ShiftStrategy.KEEP_WARM:
            return self.active_card_w
        if strategy is ShiftStrategy.RESET_AND_GATE:
            return self.gated_card_w
        # partial reconfiguration: only the NIC shell region is loaded
        return self.nic_only_w

    def warmup_s(self, strategy: ShiftStrategy, rate_pps: float) -> float:
        """Seconds until the cache hit ratio recovers after a shift."""
        if rate_pps <= 0:
            raise ConfigurationError("rate must be positive")
        if strategy is ShiftStrategy.KEEP_WARM:
            return 0.0
        return self.hot_set_keys / rate_pps

    def traffic_halt_s(self, strategy: ShiftStrategy) -> float:
        if strategy is ShiftStrategy.PARTIAL_RECONFIGURATION:
            return PARTIAL_RECONFIG_HALT_S
        return 0.0

    def assess(
        self,
        strategy: ShiftStrategy,
        standby_s: float,
        rate_at_shift_pps: float,
    ) -> StrategyAssessment:
        """Evaluate one standby period ending in a shift to hardware."""
        if standby_s < 0:
            raise ConfigurationError("standby_s must be >= 0")
        power = self.standby_power_w(strategy)
        return StrategyAssessment(
            strategy=strategy,
            standby_power_w=power,
            warmup_s=self.warmup_s(strategy, rate_at_shift_pps),
            traffic_halt_s=self.traffic_halt_s(strategy),
            standby_energy_j=power * standby_s,
        )

    def assess_all(self, standby_s: float, rate_at_shift_pps: float):
        """All three strategies over the same duty cycle, best-energy first."""
        assessments = [
            self.assess(strategy, standby_s, rate_at_shift_pps)
            for strategy in ShiftStrategy
        ]
        return sorted(assessments, key=lambda a: a.standby_energy_j)

    def paper_choice(self, standby_s: float, rate_at_shift_pps: float) -> ShiftStrategy:
        """§9.2's pick: the cheapest strategy that never halts traffic.

        "Other approaches … are possible, but may result in a momentary
        traffic halt or reduced power saving, correspondingly.  We therefore
        choose the approach that keeps LaKe programmed but inactive."
        """
        candidates = [
            a
            for a in self.assess_all(standby_s, rate_at_shift_pps)
            if a.traffic_halt_s == 0.0
        ]
        return min(candidates, key=lambda a: a.standby_energy_j).strategy
