"""The unified controller plane: one protocol for every §9 controller.

The paper's core on-demand claim (§9) is that *who decides* to shift a
workload — logic in the network device (§9.1's network-controlled design),
logic on the host reading RAPL (§9.1's host-controlled design), a
model-predictive enhancement, or a centralized controller rewriting switch
rules (§9.2's Paxos leader shift) — is a pluggable policy.  Every concrete
controller in this package therefore implements one small contract:

* it is constructed running (timers armed in ``__init__``),
* it drives shifts and records them (``shift_times_us()`` returns the red
  dashed lines of Figures 6/7),
* it can be torn down with ``stop()``.

:class:`ShiftController` is that contract.  The scenario layer programs
against it exclusively: a :class:`repro.scenarios.ControllerSpec` names a
``kind`` from :data:`CONTROLLER_KINDS` (or :data:`PAXOS_CONTROLLER_KINDS`
for consensus groups) and the builder materializes whichever controller
family the spec asks for — making network-controlled and predictive
on-demand first-class citizens of any scenario, not just the host-driven
design the Figure 6 experiment happens to use.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from .ondemand import OnDemandService

#: Controller families available to per-host (KVS / DNS) placements.
#: ``"none"`` builds the host with a static software placement.
CONTROLLER_KINDS = ("host", "network", "predictive", "none")

#: Controller families available to a Paxos consensus group: ``"schedule"``
#: executes the spec's explicit shift schedule (the Figure 7 drive);
#: ``"rate"`` watches the group's leader-bound packet rate at the ToR and
#: shifts autonomously (§9.2's centralized controller proper).
PAXOS_CONTROLLER_KINDS = ("schedule", "rate")

#: A third registry lives beside these two: scenario-level (not per-host)
#: controller families for multi-rack fabrics —
#: :data:`repro.core.fabric_controller.FABRIC_CONTROLLER_KINDS` names the
#: §9.1 centralized orchestrator (``kind="fabric"``), which reads every
#: ToR's counters via the spine and shifts/steers workloads fleet-wide.


class ShiftController(ABC):
    """Common surface of every on-demand shift controller.

    Subclasses decide *when* to move a workload between its software and
    hardware placements; the mechanism (classifier offload switch, switch
    forwarding-rule rewrite) belongs to the :class:`OnDemandService` or
    deployment they drive.
    """

    #: registry name of this controller family (matches ControllerSpec.kind)
    kind: str = "abstract"

    @abstractmethod
    def stop(self) -> None:
        """Cancel timers and release any host resources."""

    @abstractmethod
    def shift_times_us(self) -> List[float]:
        """Timestamps of every transition this controller caused."""


class ServiceShiftController(ShiftController):
    """Base for controllers that drive an :class:`OnDemandService`.

    The service is the system of record for transitions, so
    :meth:`shift_times_us` simply reads it back.
    """

    def __init__(self, service: OnDemandService):
        self.service = service

    def shift_times_us(self) -> List[float]:
        return self.service.shift_times_us()
