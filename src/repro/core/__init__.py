"""The paper's primary contribution: in-network computing on demand.

§9 proposes treating programmable network devices as schedulable computing
resources, with two proof-of-concept controllers:

* :class:`NetworkController` (§9.1) — decides in the device from traffic
  rate alone: a threshold + averaging-period pair to shift up, a mirror pair
  to shift down (hysteresis).
* :class:`HostController` (§9.1) — decides at the host from application CPU
  usage and RAPL power, with feedback from the network for shifting back.
* :class:`PaxosShiftController` (§9.2) — a centralized controller that
  shifts the Paxos leader by rewriting switch forwarding rules.

plus the §8 energy analysis (:mod:`repro.core.energy_model`) and a placement
advisor (:mod:`repro.core.placement`).
"""

from .window import SlidingWindowRate, SlidingWindowMean
from .controller import (
    CONTROLLER_KINDS,
    PAXOS_CONTROLLER_KINDS,
    ServiceShiftController,
    ShiftController,
)
from .fabric_controller import (
    FABRIC_CONTROLLER_KINDS,
    FabricController,
    FabricControllerConfig,
    HostPlacement,
    SteerEvent,
)
from .hysteresis import HysteresisSwitch, Thresholds
from .network_controller import NetworkController, NetworkControllerConfig
from .host_controller import HostController, HostControllerConfig
from .paxos_controller import PaxosShiftController
from .predictive_controller import PredictiveController, PredictiveControllerConfig
from .energy_model import TippingPointAnalysis, tipping_point, tor_switch_analysis
from .ondemand import OnDemandService, Placement
from .placement import PlacementAdvisor, PlatformRecommendation
from .shift_strategy import ShiftStrategy, ShiftStrategyModel

__all__ = [
    "CONTROLLER_KINDS",
    "FABRIC_CONTROLLER_KINDS",
    "PAXOS_CONTROLLER_KINDS",
    "FabricController",
    "FabricControllerConfig",
    "HostPlacement",
    "SteerEvent",
    "ServiceShiftController",
    "ShiftController",
    "SlidingWindowRate",
    "SlidingWindowMean",
    "HysteresisSwitch",
    "Thresholds",
    "NetworkController",
    "NetworkControllerConfig",
    "HostController",
    "HostControllerConfig",
    "PaxosShiftController",
    "TippingPointAnalysis",
    "tipping_point",
    "tor_switch_analysis",
    "OnDemandService",
    "Placement",
    "PlacementAdvisor",
    "PlatformRecommendation",
    "PredictiveController",
    "PredictiveControllerConfig",
    "ShiftStrategy",
    "ShiftStrategyModel",
]
