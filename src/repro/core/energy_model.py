"""The §8 "when to use in-network computing" analysis.

Two questions from the paper:

1. *If you use standard network devices, should you start using
   programmable ones?*  Dominated by the idle powers ``Pi_S`` vs ``Pi_N``
   (§6 answers: programmable switch idle power equals fixed-function, so
   the penalty is ~zero).
2. *If you use programmable network devices, when should you offload?*
   Here ``Pi_N = Pi_S`` (same device either way) and the dynamic terms
   dominate: the tipping point is the rate R where
   ``Pd_N(R) = Pd_S(R)``.

Plus the §9.4 ToR-switch variant: with switches drawing <5W per 100G port,
a million queries costs <1W, so ``Pd_N(R) = Pd_S(R)`` at R ≈ 0 — offloading
to an already-installed switch is essentially always power-positive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import calibration as cal
from ..errors import ConfigurationError
from ..steady.base import SteadyModel, find_crossover


@dataclass(frozen=True)
class TippingPointAnalysis:
    """Result of the §8 analysis for one application."""

    software: str
    hardware: str
    crossover_pps: Optional[float]
    software_idle_w: float
    hardware_idle_w: float
    software_peak_w: float
    hardware_peak_w: float

    @property
    def hardware_ever_wins(self) -> bool:
        return self.crossover_pps is not None

    def describe(self) -> str:
        if not self.hardware_ever_wins:
            return (
                f"{self.hardware} never beats {self.software} "
                "within the examined range"
            )
        return (
            f"shift {self.software} -> {self.hardware} above "
            f"{self.crossover_pps / 1e3:.0f} Kpps"
        )


def tipping_point(software: SteadyModel, hardware: SteadyModel) -> TippingPointAnalysis:
    """Find R with ``P_N(R) = P_S(R)`` for a software/hardware model pair."""
    crossover = find_crossover(software, hardware)
    return TippingPointAnalysis(
        software=software.name,
        hardware=hardware.name,
        crossover_pps=crossover,
        software_idle_w=software.power_at(0.0),
        hardware_idle_w=hardware.power_at(0.0),
        software_peak_w=software.power_at(software.capacity_pps),
        hardware_peak_w=hardware.power_at(hardware.capacity_pps),
    )


@dataclass(frozen=True)
class TorSwitchAnalysis:
    """The §9.4 ToR-switch on-demand analysis."""

    nodes_served: int
    switch_w_per_mqps: float
    server_dynamic_w_per_mqps: float
    crossover_pps: float

    @property
    def switch_always_wins(self) -> bool:
        """True when the crossover is effectively zero (§9.4: 'PNd(R) will
        equal PSd(R) when R is almost zero')."""
        return self.crossover_pps < 1_000.0


def tor_switch_analysis(
    software: SteadyModel,
    nodes_served: int = 32,
    switch_w_per_mqps: float = cal.SWITCH_W_PER_MQPS,
) -> TorSwitchAnalysis:
    """Compare offloading to a ToR switch already forwarding the traffic.

    The switch's marginal cost is ``switch_w_per_mqps`` (<1W/Mqps, §9.4);
    the server's dynamic cost at low load is taken from the software model's
    initial slope.  The crossover is where the marginal powers match — with
    these constants, practically zero.
    """
    if nodes_served <= 0:
        raise ConfigurationError("nodes_served must be positive")
    probe_pps = software.capacity_pps * 0.01
    server_dynamic_w = software.power_at(probe_pps) - software.power_at(0.0)
    server_w_per_mqps = server_dynamic_w / (probe_pps / 1e6)
    # switch dynamic power per Mqps is constant; find R where cumulative
    # dynamic powers cross: switch_w_per_mqps * R = server curve(R).
    lo, hi = 0.0, probe_pps
    for _ in range(60):
        mid = (lo + hi) / 2.0
        switch_w = switch_w_per_mqps * mid / 1e6
        server_w = software.power_at(mid) - software.power_at(0.0)
        if switch_w < server_w:
            hi = mid
        else:
            lo = mid
    return TorSwitchAnalysis(
        nodes_served=nodes_served,
        switch_w_per_mqps=switch_w_per_mqps,
        server_dynamic_w_per_mqps=server_w_per_mqps,
        crossover_pps=hi,
    )


@dataclass(frozen=True)
class CacheOffloadEfficiency:
    """§9.4's last scenario: the switch serves only the hit fraction.

    "A different case consider[s] the switch handling just some of the
    requests, and the rest are handled by the host … it is a function of
    hit:miss ratio to define the efficiency of offloading on-demand."
    """

    hit_ratio: float
    rate_pps: float
    switch_dynamic_w: float
    host_dynamic_w: float
    host_only_dynamic_w: float

    @property
    def power_saving_w(self) -> float:
        """Dynamic power saved vs serving everything on the host."""
        return self.host_only_dynamic_w - (self.switch_dynamic_w + self.host_dynamic_w)

    @property
    def saving_fraction(self) -> float:
        if self.host_only_dynamic_w <= 0:
            return 0.0
        return self.power_saving_w / self.host_only_dynamic_w


def cache_offload_efficiency(
    software: SteadyModel,
    hit_ratio: float,
    rate_pps: float,
    switch_w_per_mqps: float = cal.SWITCH_W_PER_MQPS,
) -> CacheOffloadEfficiency:
    """Evaluate switch-cache offloading at a given hit ratio (§9.4).

    The switch absorbs ``hit_ratio`` of the requests at its ~1W/Mqps
    marginal cost; the host serves the misses along its own power curve.
    """
    if not 0.0 <= hit_ratio <= 1.0:
        raise ConfigurationError("hit_ratio outside [0,1]")
    if rate_pps < 0:
        raise ConfigurationError("rate must be >= 0")
    miss_rate = min((1.0 - hit_ratio) * rate_pps, software.capacity_pps)
    served_rate = min(rate_pps, software.capacity_pps)
    idle = software.power_at(0.0)
    return CacheOffloadEfficiency(
        hit_ratio=hit_ratio,
        rate_pps=rate_pps,
        switch_dynamic_w=switch_w_per_mqps * hit_ratio * rate_pps / 1e6,
        host_dynamic_w=software.power_at(miss_rate) - idle,
        host_only_dynamic_w=software.power_at(served_rate) - idle,
    )


def programmable_adoption_penalty_w() -> float:
    """Question 1 of §8: the idle-power penalty of deploying programmable
    instead of fixed-function switches.  §6/§9.4: none ("The power
    consumption of programmable switches is the same or better than
    fixed-function devices")."""
    return 0.0
