"""Placement advisor — the §10 "FPGA, SmartNIC or Switch?" rules of thumb.

§10's answer is "not conclusive" but structured; this module encodes the
structure: given an application profile, rank the platforms and explain
the ranking with the paper's own arguments (switch = best performance and
perf/W but ×10 price and topology questions; FPGA = most flexible, poorest
perf/W; ASIC SmartNIC = good trade-off of programmability, cost, maturity,
power; SoC = easiest bring-up, earliest resource wall).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import calibration as cal
from ..errors import ConfigurationError
from ..workloads.dynamo import PowerVariationAnalysis


@dataclass(frozen=True)
class ApplicationProfile:
    """What the advisor needs to know about a workload."""

    name: str
    peak_rate_pps: float
    latency_sensitive: bool = False
    #: bytes of state the data-plane implementation needs
    state_bytes: int = 0
    #: does every message naturally traverse a shared switch?
    traffic_through_switch: bool = True
    #: needs bespoke interfaces / exotic memories / full feature set?
    needs_flexibility: bool = False
    #: §9.3: power variation over the scheduling period
    power_variation: Optional[PowerVariationAnalysis] = None


@dataclass(frozen=True)
class PlatformRecommendation:
    platform: str
    score: float
    reasons: List[str] = field(default_factory=list)


#: On-chip state capacities (bytes) of data-plane targets; a switch ASIC
#: offers tens of MB of SRAM, an FPGA can add GBs of on-card DRAM (§5.3).
_SWITCH_STATE_LIMIT = 32 * 1024 * 1024
_SMARTNIC_STATE_LIMIT = 2 * 1024 * 1024 * 1024
_FPGA_STATE_LIMIT = 4 * 1024 * 1024 * 1024


class PlacementAdvisor:
    """Scores {server, fpga-nic, smartnic-asic, smartnic-soc, switch-asic}."""

    def recommend(self, profile: ApplicationProfile) -> List[PlatformRecommendation]:
        """Platforms ranked best-first."""
        if profile.peak_rate_pps < 0:
            raise ConfigurationError("peak rate must be >= 0")
        recs = [
            self._score_server(profile),
            self._score_switch(profile),
            self._score_smartnic_asic(profile),
            self._score_smartnic_soc(profile),
            self._score_fpga(profile),
        ]
        return sorted(recs, key=lambda r: r.score, reverse=True)

    def best(self, profile: ApplicationProfile) -> PlatformRecommendation:
        return self.recommend(profile)[0]

    # -- scoring helpers -----------------------------------------------------------

    def _variation_penalty(self, profile: ApplicationProfile) -> float:
        """§9.3: high power variance makes on-demand INC 'incorrect or
        inefficient'."""
        if profile.power_variation is None:
            return 0.0
        return 2.0 if profile.power_variation.p99 > 0.30 else 0.0

    def _score_server(self, profile: ApplicationProfile) -> PlatformRecommendation:
        reasons = [
            "software needs no data-plane port and shifts on demand at zero "
            "engineering cost (§9)"
        ]
        score = 3.0
        if profile.peak_rate_pps < cal.NETCTL_KVS_UP_PPS:
            score += 3.0
            reasons.append(
                "below the §4 crossover loads the software host is the most "
                "power-efficient placement"
            )
        if profile.latency_sensitive:
            score -= 2.0
            reasons.append("host processing pays the PCIe+kernel latency tax (§9.5)")
        score += self._variation_penalty(profile)
        if self._variation_penalty(profile):
            reasons.append(
                "high power variance makes on-demand shifts risky (§9.3); "
                "staying in software is the safe default"
            )
        return PlatformRecommendation("server", score, reasons)

    def _score_switch(self, profile: ApplicationProfile) -> PlatformRecommendation:
        reasons = [
            "switch ASIC offers the highest performance and performance/W (§10)",
            "terminating in the switch halves application packet hops (§10)",
        ]
        score = 4.0
        if profile.peak_rate_pps > 50e6:
            score += 4.0
            reasons.append("only the ASIC sustains this rate (§3.2: 2.5B msgs/s)")
        if not profile.traffic_through_switch:
            score -= 4.0
            reasons.append(
                "not all messages traverse one switch: placement there is not "
                "in-network computing for this workload (§10)"
            )
        if profile.state_bytes > _SWITCH_STATE_LIMIT:
            score -= 4.0
            reasons.append("state exceeds switch on-chip memory (§10: limited resources per Gbps)")
        if profile.needs_flexibility:
            score -= 2.0
            reasons.append("vendor-fixed target architecture limits flexibility (§10)")
        score -= 1.0  # ×10 price tag (§10)
        reasons.append("switch price is ×10 that of NIC-class solutions (§10)")
        return PlatformRecommendation("switch-asic", score, reasons)

    def _score_smartnic_asic(self, profile: ApplicationProfile) -> PlatformRecommendation:
        reasons = [
            "ASIC SmartNICs trade programmability, cost, maturity and power well (§10)"
        ]
        score = 5.0
        if profile.state_bytes > _SMARTNIC_STATE_LIMIT:
            score -= 3.0
            reasons.append("state exceeds SmartNIC memory budget")
        if profile.needs_flexibility:
            score -= 2.0
            reasons.append("ASIC-based SmartNICs may not suit every in-network function (§10)")
        if profile.peak_rate_pps > 200e6:
            score -= 2.0
            reasons.append("rate beyond a single NIC-class device")
        return PlatformRecommendation("smartnic-asic", score, reasons)

    def _score_smartnic_soc(self, profile: ApplicationProfile) -> PlatformRecommendation:
        reasons = [
            "SoC SmartNICs provide the easiest implementation trajectory (§10)"
        ]
        score = 4.0
        if profile.peak_rate_pps > 20e6:
            score -= 3.0
            reasons.append("SoC scalability hits the resource wall earliest (§10)")
        return PlatformRecommendation("smartnic-soc", score, reasons)

    def _score_fpga(self, profile: ApplicationProfile) -> PlatformRecommendation:
        reasons = [
            "FPGA is the most flexible target: any application, any interface, "
            "any memory (§10)"
        ]
        score = 4.0
        if profile.needs_flexibility:
            score += 3.0
        if profile.state_bytes > _SWITCH_STATE_LIMIT:
            score += 1.0
            reasons.append("on-card DRAM fits large state (§5.3)")
        if profile.state_bytes > _FPGA_STATE_LIMIT:
            score -= 3.0
            reasons.append("state exceeds even on-card DRAM")
        score -= 1.0
        reasons.append(
            "FPGA likely provides the poorest performance/W of the options (§10)"
        )
        return PlatformRecommendation("fpga-nic", score, reasons)
