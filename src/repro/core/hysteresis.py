"""Dual-threshold hysteresis.

§9.1: "A mirror pair of parameters is used to shift workloads from the
network back to the host.  Using two sets of parameters provides hysteresis,
and attends to concerns of rapidly shifting workloads back-and-forth."
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class Thresholds:
    """An (up, down) threshold pair; ``up`` must exceed ``down``."""

    up: float
    down: float

    def __post_init__(self):
        if self.up <= self.down:
            raise ConfigurationError(
                f"hysteresis requires up > down (got up={self.up}, down={self.down})"
            )


class HysteresisSwitch:
    """A boolean state driven through dual thresholds.

    State goes high when the signal is >= ``thresholds.up`` and low when it
    is <= ``thresholds.down``; between the two it holds (the hysteresis
    band).  Transition counts are exposed so experiments and tests can
    assert the absence of flapping.
    """

    def __init__(self, thresholds: Thresholds, initial: bool = False):
        self.thresholds = thresholds
        self.state = initial
        self.ups = 0
        self.downs = 0

    def update(self, signal: float) -> bool:
        """Feed a signal sample; returns True iff the state changed."""
        if not self.state and signal >= self.thresholds.up:
            self.state = True
            self.ups += 1
            return True
        if self.state and signal <= self.thresholds.down:
            self.state = False
            self.downs += 1
            return True
        return False

    @property
    def transitions(self) -> int:
        return self.ups + self.downs
