"""Centralized Paxos leader-shift controller (§9.2).

"We use a centralized controller to initiate the shift, depending on the
workload.  To actually implement the shift, the controller modifies switch
forwarding rules to send messages to the new leader."

The controller watches the PAXOS-class packet rate at the switch and moves
the leader between its software and hardware candidates through a
:class:`repro.apps.paxos.deployment.PaxosDeployment` (which rewrites the
forwarding rule and runs the new leader's takeover).  Shifts can also be
scheduled explicitly, which is how the Figure 7 experiment drives them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .. import calibration as cal
from ..errors import ConfigurationError
from ..net.packet import TrafficClass
from ..net.switch import Switch
from ..sim import Simulator, TimeSeries
from ..units import msec, sec
from .controller import ShiftController
from .window import SlidingWindowRate


@dataclass(frozen=True)
class PaxosControllerConfig:
    up_rate_pps: float = cal.NETCTL_PAXOS_UP_PPS
    down_rate_pps: float = cal.NETCTL_PAXOS_DOWN_PPS
    window_us: float = sec(cal.CONTROLLER_SUSTAIN_S)
    tick_us: float = msec(100.0)

    def __post_init__(self):
        if self.up_rate_pps <= self.down_rate_pps:
            raise ConfigurationError("up_rate must exceed down_rate")


class PaxosShiftController(ShiftController):
    """Moves the Paxos leader between software and hardware nodes.

    With ``automatic=True`` (kind ``"rate"``) the controller watches the
    group's packet rate at the switch and shifts on the §4.3 thresholds;
    otherwise (kind ``"schedule"``) it only executes shifts scheduled via
    :meth:`schedule_shift`.  ``logical_dst`` scopes the watched rate to one
    consensus group's leader-bound traffic (the switch's per-logical-
    destination counters), so several groups behind the same ToR shift
    independently; without it the controller reads the switch-wide PAXOS
    class counter (the single-group Figure 7 setup).
    """

    def __init__(
        self,
        sim: Simulator,
        switch: Switch,
        deployment,
        software_node: str,
        hardware_node: str,
        config: Optional[PaxosControllerConfig] = None,
        automatic: bool = True,
        logical_dst: Optional[str] = None,
    ):
        self.sim = sim
        self.switch = switch
        self.deployment = deployment
        self.software_node = software_node
        self.hardware_node = hardware_node
        self.config = config or PaxosControllerConfig()
        self.kind = "rate" if automatic else "schedule"
        self.logical_dst = logical_dst
        self._shift_times_us: List[float] = []
        self.rate_series = TimeSeries("paxosctl.rate")
        self._window = SlidingWindowRate(self.config.window_us)
        self._last_count = self._read_counter()
        self._started_at = sim.now
        self._timer = None
        if automatic:
            self._timer = sim.call_every(
                self.config.tick_us, self._tick, name="paxosctl.tick"
            )

    def _read_counter(self) -> int:
        if self.logical_dst is not None:
            return self.switch.logical_count(TrafficClass.PAXOS, self.logical_dst)
        return self.switch.class_counters[TrafficClass.PAXOS]

    def shift_times_us(self) -> List[float]:
        return list(self._shift_times_us)

    # -- manual shifts (the Figure 7 schedule) --------------------------------

    def shift_to_hardware(self) -> None:
        if self.deployment.active_leader_node != self.hardware_node:
            self.deployment.activate_leader(self.hardware_node)
            self._shift_times_us.append(self.sim.now)

    def shift_to_software(self) -> None:
        if self.deployment.active_leader_node != self.software_node:
            self.deployment.activate_leader(self.software_node)
            self._shift_times_us.append(self.sim.now)

    def schedule_shift(self, at_us: float, to_hardware: bool) -> None:
        """Pre-plan a shift (used by the Figure 7 runner)."""
        action = self.shift_to_hardware if to_hardware else self.shift_to_software
        self.sim.schedule_at(at_us, action, name="paxosctl.scheduled-shift")

    # -- automatic control --------------------------------------------------------

    def _tick(self) -> None:
        now = self.sim.now
        count = self._read_counter()
        self._window.observe(now, count - self._last_count)
        self._last_count = count
        rate = self._window.rate_pps(now)
        self.rate_series.record(now, rate)
        if now - self._started_at < self.config.window_us:
            return
        in_hardware = self.deployment.active_leader_node == self.hardware_node
        if not in_hardware and rate >= self.config.up_rate_pps:
            self.shift_to_hardware()
            self._started_at = now
        elif in_hardware and rate <= self.config.down_rate_pps:
            self.shift_to_software()
            self._started_at = now

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
