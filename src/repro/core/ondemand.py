"""The user-facing on-demand service handle.

§9: "Two components are required to support in-network computing on demand.
The first is a controller … The second is an application-specific task,
which may be null, in charge of the actual transition of an application."

:class:`OnDemandService` binds the two: it owns the current
:class:`Placement`, the classifier offload switch, and the
application-specific transition hooks (e.g. ``LakeKvs.enable`` /
``LakeKvs.disable``, or a Paxos leader shift).  Controllers call
``shift_to_hardware()`` / ``shift_to_software()``; the service records
every transition for the Figure 6/7 timelines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..errors import PlacementError
from ..net.classifier import PacketClassifier
from ..net.packet import TrafficClass
from ..sim import Simulator


class Placement(enum.Enum):
    SOFTWARE = "software"
    HARDWARE = "hardware"


@dataclass(frozen=True)
class Shift:
    """One recorded transition."""

    time_us: float
    to: Placement
    reason: str


class OnDemandService:
    """A service whose placement can shift between host and network."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        classifier: Optional[PacketClassifier] = None,
        traffic_class: Optional[TrafficClass] = None,
        to_hardware: Optional[Callable[[], None]] = None,
        to_software: Optional[Callable[[], None]] = None,
        initial: Placement = Placement.SOFTWARE,
    ):
        self.sim = sim
        self.name = name
        self.classifier = classifier
        self.traffic_class = traffic_class
        self._to_hardware = to_hardware
        self._to_software = to_software
        self.placement = initial
        self.shifts: List[Shift] = []

    # -- transitions ------------------------------------------------------

    def shift_to_hardware(self, reason: str = "") -> bool:
        """Shift processing into the network; False if already there."""
        if self.placement is Placement.HARDWARE:
            return False
        if self._to_hardware is not None:
            self._to_hardware()
        if self.classifier is not None:
            if self.traffic_class is None:
                raise PlacementError(f"{self.name}: classifier without traffic class")
            self.classifier.set_offload(self.traffic_class, True)
        self.placement = Placement.HARDWARE
        self.shifts.append(Shift(self.sim.now, Placement.HARDWARE, reason))
        return True

    def shift_to_software(self, reason: str = "") -> bool:
        """Shift processing back to the host; False if already there."""
        if self.placement is Placement.SOFTWARE:
            return False
        if self.classifier is not None:
            if self.traffic_class is None:
                raise PlacementError(f"{self.name}: classifier without traffic class")
            self.classifier.set_offload(self.traffic_class, False)
        if self._to_software is not None:
            self._to_software()
        self.placement = Placement.SOFTWARE
        self.shifts.append(Shift(self.sim.now, Placement.SOFTWARE, reason))
        return True

    # -- introspection ------------------------------------------------------

    @property
    def in_hardware(self) -> bool:
        return self.placement is Placement.HARDWARE

    def shift_times_us(self) -> List[float]:
        """The red dashed lines of Figures 6 and 7."""
        return [s.time_us for s in self.shifts]
